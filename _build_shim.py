"""Minimal in-tree PEP 517/660 build backend.

This environment is offline and lacks the ``wheel`` package, so the stock
setuptools backend cannot produce (editable) wheels.  Wheels are just zip
files with a dist-info directory, so this shim builds them directly:

* ``build_editable`` emits a wheel containing a ``.pth`` file pointing at
  ``src/`` -- a classic path-based editable install.
* ``build_wheel`` emits a regular wheel by zipping ``src/repro``.

Only what pip needs for this project is implemented.
"""

from __future__ import annotations

import base64
import hashlib
import os
import zipfile

NAME = "repro"
VERSION = "1.0.0"
TAG = "py3-none-any"
DIST = f"{NAME}-{VERSION}"

# Extras must stay in sync with [project.optional-dependencies] in
# pyproject.toml; without the Provides-Extra lines pip would silently
# resolve `repro[test]` to the bare package.
_METADATA = f"""\
Metadata-Version: 2.1
Name: {NAME}
Version: {VERSION}
Summary: Pack-free ghost-zone exchange via data-layout optimization (PPoPP'21 reproduction)
Requires-Python: >=3.9
Requires-Dist: numpy>=1.21
Provides-Extra: test
Requires-Dist: pytest; extra == "test"
Requires-Dist: pytest-benchmark; extra == "test"
Requires-Dist: hypothesis; extra == "test"
Provides-Extra: cov
Requires-Dist: pytest-cov; extra == "cov"
Provides-Extra: lint
Requires-Dist: ruff; extra == "lint"
"""

_WHEEL = f"""\
Wheel-Version: 1.0
Generator: _build_shim
Root-Is-Purelib: true
Tag: {TAG}
"""


def _record_line(name: str, data: bytes) -> str:
    digest = base64.urlsafe_b64encode(hashlib.sha256(data).digest()).rstrip(b"=")
    return f"{name},sha256={digest.decode()},{len(data)}"


def _write_wheel(path: str, files: dict) -> None:
    record_name = f"{DIST}.dist-info/RECORD"
    lines = [_record_line(n, d) for n, d in files.items()]
    lines.append(f"{record_name},,")
    files[record_name] = ("\n".join(lines) + "\n").encode()
    with zipfile.ZipFile(path, "w", zipfile.ZIP_DEFLATED) as zf:
        for name, data in files.items():
            zf.writestr(name, data)


def _dist_info_files() -> dict:
    return {
        f"{DIST}.dist-info/METADATA": _METADATA.encode(),
        f"{DIST}.dist-info/WHEEL": _WHEEL.encode(),
    }


# ---------------------------------------------------------------------------
# PEP 517 hooks
# ---------------------------------------------------------------------------

def build_editable(wheel_directory, config_settings=None, metadata_directory=None):
    src = os.path.abspath(os.path.join(os.path.dirname(__file__), "src"))
    files = {f"_{NAME}_editable.pth": (src + "\n").encode()}
    files.update(_dist_info_files())
    name = f"{DIST}-{TAG}.whl"
    _write_wheel(os.path.join(wheel_directory, name), files)
    return name


def build_wheel(wheel_directory, config_settings=None, metadata_directory=None):
    root = os.path.abspath(os.path.join(os.path.dirname(__file__), "src"))
    files = {}
    for dirpath, _dirnames, filenames in os.walk(root):
        for fn in sorted(filenames):
            if not fn.endswith(".py"):
                continue
            full = os.path.join(dirpath, fn)
            rel = os.path.relpath(full, root).replace(os.sep, "/")
            with open(full, "rb") as fh:
                files[rel] = fh.read()
    files.update(_dist_info_files())
    name = f"{DIST}-{TAG}.whl"
    _write_wheel(os.path.join(wheel_directory, name), files)
    return name


def build_sdist(sdist_directory, config_settings=None):  # pragma: no cover
    raise NotImplementedError("sdists are not needed in this environment")


def prepare_metadata_for_build_wheel(metadata_directory, config_settings=None):
    dist_info = os.path.join(metadata_directory, f"{DIST}.dist-info")
    os.makedirs(dist_info, exist_ok=True)
    for name, data in _dist_info_files().items():
        with open(os.path.join(metadata_directory, name), "wb") as fh:
            fh.write(data)
    return f"{DIST}.dist-info"


prepare_metadata_for_build_editable = prepare_metadata_for_build_wheel
