#!/usr/bin/env python
"""Multi-field (multi-physics) simulation with interleaved brick storage.

The memory-intensive multi-physics scenario from the paper's introduction:
several coupled fields advance together, each needing its own ghost-zone
exchange every step.  The brick library interleaves fields inside each
brick (array-of-structure-of-arrays, Section 6), so ONE exchange moves
every field's surface at once -- no extra messages per field.

Here a two-field reaction-diffusion-style system (u diffuses with a 7-pt
stencil, v with a 125-pt stencil; both then relax toward each other) runs
over 8 simulated ranks using the MemMap exchange, and is validated against
a serial periodic reference.

    python examples/multifield_simulation.py
"""

import numpy as np

from repro.brick.convert import bricks_to_extended, extended_to_bricks
from repro.brick.decomp import BrickDecomp
from repro.exchange.memmap_ex import MemMapExchanger
from repro.hardware.profiles import theta_knl
from repro.simmpi import run_spmd
from repro.stencil.brick_kernels import apply_brick_stencil
from repro.stencil.kernels import owned_slices
from repro.stencil.reference import apply_periodic_reference
from repro.stencil.spec import CUBE125, SEVEN_POINT

GLOBAL = (32, 32, 32)
RANKS = (2, 2, 2)
SUB = tuple(g // r for g, r in zip(GLOBAL, RANKS))
GHOST = 8
STEPS = 2
COUPLING = 0.1


def serial_reference(u0, v0):
    """Oracle: the same coupled system on the unpartitioned domain."""
    u, v = u0.copy(), v0.copy()
    for _ in range(STEPS):
        du = apply_periodic_reference(u, SEVEN_POINT)
        dv = apply_periodic_reference(v, CUBE125)
        u, v = (
            du + COUPLING * (dv - du),
            dv + COUPLING * (du - dv),
        )
    return u, v


def rank_main(comm, u_global, v_global):
    cart = comm.Create_cart(RANKS)
    profile = theta_knl()
    # TWO fields interleaved in one storage: one exchange moves both.
    decomp = BrickDecomp(SUB, (8, 8, 8), GHOST, nfields=2)
    storage_a, asn = decomp.mmap_alloc(profile.page_size)
    storage_b, _ = decomp.mmap_alloc(profile.page_size)
    info = decomp.brick_info(asn)
    slots = decomp.compute_slots(asn)
    exchangers = [
        MemMapExchanger(cart, decomp, st, asn, profile)
        for st in (storage_a, storage_b)
    ]
    storages = [storage_a, storage_b]

    lo = [c * s for c, s in zip(cart.coords, SUB)]
    own_global = tuple(
        slice(l, l + s) for l, s in zip(reversed(lo), reversed(SUB))
    )
    ext_shape = tuple(s + 2 * GHOST for s in reversed(SUB))
    own = owned_slices(SUB, GHOST)

    for fld, field_global in ((0, u_global), (1, v_global)):
        ext = np.zeros(ext_shape)
        ext[own] = field_global[own_global]
        extended_to_bricks(ext, decomp, storage_a, asn, fld=fld)

    vol = decomp.brick_volume
    src, dst = 0, 1
    messages = 0
    for _ in range(STEPS):
        # ONE exchange refreshes the ghosts of BOTH interleaved fields.
        result = exchangers[src].exchange()
        messages += result.messages_sent
        apply_brick_stencil(
            SEVEN_POINT, storages[src], storages[dst], info, slots,
            field_offset=0,
        )
        apply_brick_stencil(
            CUBE125, storages[src], storages[dst], info, slots,
            field_offset=vol,
        )
        # Pointwise coupling, computed on the owned bricks of dst.
        du = storages[dst].data[:, :vol]
        dv = storages[dst].data[:, vol:]
        u_new = du + COUPLING * (dv - du)
        dv[:] = dv + COUPLING * (du - dv)
        du[:] = u_new
        src, dst = dst, src

    u_out = bricks_to_extended(decomp, storages[src], asn, fld=0)[own].copy()
    v_out = bricks_to_extended(decomp, storages[src], asn, fld=1)[own].copy()
    for ex in exchangers:
        ex.close()
    for st in storages:
        st.close()
    return cart.coords, u_out, v_out, messages


def main() -> None:
    rng = np.random.default_rng(42)
    shape = tuple(reversed(GLOBAL))
    u0 = rng.random(shape)
    v0 = rng.random(shape)

    results = run_spmd(int(np.prod(RANKS)), rank_main, u0, v0)

    u = np.empty(shape)
    v = np.empty(shape)
    for coords, u_blk, v_blk, messages in results:
        lo = [c * s for c, s in zip(coords, SUB)]
        slc = tuple(
            slice(l, l + s) for l, s in zip(reversed(lo), reversed(SUB))
        )
        u[slc] = u_blk
        v[slc] = v_blk

    u_ref, v_ref = serial_reference(u0, v0)
    print(f"ranks: {len(results)}, steps: {STEPS}, fields: 2 (interleaved)")
    print(f"messages per rank per step: {messages // STEPS}"
          " (one exchange covers both fields)")
    print(f"u bit-exact: {np.array_equal(u, u_ref)}")
    print(f"v bit-exact: {np.array_equal(v, v_ref)}")
    assert np.array_equal(u, u_ref) and np.array_equal(v, v_ref)


if __name__ == "__main__":
    main()
