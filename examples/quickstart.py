#!/usr/bin/env python
"""Quickstart: pack-free ghost-zone exchange in five minutes.

Runs a 7-point stencil on a 64^3 periodic domain decomposed over 8
simulated ranks, once with the classic packing exchange (YASK-style) and
once with MemMap (zero-copy mmap views), verifies both against the serial
reference bit-for-bit, and prints the artifact-style metrics:

    python examples/quickstart.py
"""

import numpy as np

from repro import SEVEN_POINT, StencilProblem, run_executed, theta_knl
from repro.stencil import apply_periodic_reference


def main() -> None:
    problem = StencilProblem(
        global_extent=(64, 64, 64),   # periodic cube
        rank_dims=(2, 2, 2),          # 8 ranks, one 32^3 subdomain each
        stencil=SEVEN_POINT,          # the paper's bandwidth-bound kernel
        brick_dim=(8, 8, 8),          # fine-grained data blocking
        ghost=8,                      # one brick deep (ghost-cell expansion)
    )
    profile = theta_knl()  # Theta's cost models price the modelled times
    timesteps = 3

    print(f"domain {problem.global_extent}, {problem.nranks} ranks, "
          f"{timesteps} timesteps\n")

    reference = apply_periodic_reference(
        problem.initial_global(seed=0), problem.stencil, timesteps
    )

    for method in ("yask", "memmap"):
        run = run_executed(problem, method, profile, timesteps=timesteps)
        exact = np.array_equal(run.global_result, reference)
        print(run.metrics.report())
        print(f"  messages/rank/step: {run.messages_per_rank}"
              f"   bit-exact vs serial reference: {exact}")
        if method == "memmap":
            print(f"  live mmap views:    {run.mapping_count} kernel mappings"
                  f" (limit {profile.mmap_limit})")
        assert exact, "distributed result diverged from the reference!"
        print()

    print("Note how 'pack' is exactly zero for memmap: the surface regions")
    print("are sent straight out of brick storage through stitched virtual-")
    print("memory views -- the paper's pack-free exchange.")


if __name__ == "__main__":
    main()
