#!/usr/bin/env python
"""Strong-scaling advisor: which exchange scheme, and how many nodes?

The downstream-user tool the paper motivates: you have a fixed global
domain and want minimum time-to-solution.  As you add nodes, subdomains
shrink, the surface-to-volume ratio worsens, and the exchange scheme
starts to dominate -- this script sweeps node counts on a chosen machine
and reports, per node count, each scheme's modelled timestep time, the
parallel efficiency, and the best scheme.

    python examples/strong_scaling_advisor.py --domain 1024 --machine theta
    python examples/strong_scaling_advisor.py --domain 2048 --machine summit \
        --stencil 125pt --max-nodes 4096

Thin wrapper around :mod:`repro.bench.advisor`.
"""

import argparse
import sys

from repro.bench.advisor import MACHINES, STENCILS, advise, render_advice


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--domain", type=int, default=1024)
    parser.add_argument("--machine", choices=sorted(MACHINES), default="theta")
    parser.add_argument("--stencil", choices=sorted(STENCILS), default="7pt")
    parser.add_argument("--max-nodes", type=int, default=1024)
    args = parser.parse_args(argv)

    rows = advise(args.domain, args.machine, args.stencil, args.max_nodes)
    print(render_advice(rows, args.domain, args.machine, args.stencil))

    good = [r for r in rows if r.efficiency >= 0.5]
    if good:
        r = good[-1]
        sub = "x".join(map(str, r.subdomain))
        print(
            f"Recommendation: up to {r.nodes} nodes ({sub} subdomains) with"
            f" '{r.best}', parallel efficiency {100 * r.efficiency:.0f}%."
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
