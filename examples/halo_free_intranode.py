#!/usr/bin/env python
"""Halo-free intra-node domains: ghost zones that ARE the neighbor.

The paper's Section 4 observes that memory mapping can optimize data
movement "between subdomains on the same rank".  This example runs a
complete periodic simulation across 8 co-resident subdomains whose ghost
zones are mmap *aliases* of their neighbors' surface bricks:

* no exchange calls, no messages, no packing -- ghost data is simply
  always current;
* ghost zones occupy zero physical memory;
* results are still bit-exact vs the serial reference.

    python examples/halo_free_intranode.py
"""

import time

import numpy as np

from repro.exchange.local import LocalDomainGrid
from repro.stencil.brick_kernels import apply_brick_stencil
from repro.stencil.reference import apply_periodic_reference
from repro.stencil.spec import SEVEN_POINT

DOMAINS = (2, 2, 2)
SUB = (32, 32, 32)
STEPS = 4


def main() -> None:
    grids = [
        LocalDomainGrid(DOMAINS, SUB, (8, 8, 8), 8),
        LocalDomainGrid(DOMAINS, SUB, (8, 8, 8), 8),
    ]
    a = grids[0]
    virtual = a.assignment.total_slots * a.decomp.brick_bytes * a.ndomains
    print(f"{a.ndomains} subdomains of {SUB}, zero-copy aliasing: {a.zero_copy}")
    print(f"physical storage : {a.arena.nbytes / 2**20:.2f} MiB")
    print(f"virtual  storage : {virtual / 2**20:.2f} MiB "
          f"({virtual - a.arena.nbytes:,} bytes of ghosts are pure aliases)")

    rng = np.random.default_rng(2024)
    global_arr = rng.random(
        tuple(s * d for s, d in zip(reversed(SUB), reversed(DOMAINS)))
    )
    a.load_global(global_arr)

    t0 = time.perf_counter()
    src, dst = 0, 1
    for _ in range(STEPS):
        for idx in range(a.ndomains):
            apply_brick_stencil(
                SEVEN_POINT,
                grids[src].storages[idx],
                grids[dst].storages[idx],
                a.info,
                a.compute_slots,
            )
        # On the real memfd arena these two calls are no-ops: neighbors
        # already see the new surfaces through their ghost aliases.
        grids[dst].flush_owned()
        grids[dst].sync()
        src, dst = dst, src
    elapsed = time.perf_counter() - t0

    got = grids[src].extract_global()
    ref = apply_periodic_reference(global_arr, SEVEN_POINT, STEPS)
    exact = np.array_equal(got, ref)
    print(f"\n{STEPS} timesteps in {elapsed:.3f}s wall "
          f"-- exchange calls issued: 0, messages sent: 0")
    print(f"bit-exact vs serial reference: {exact}")
    assert exact
    for g in grids:
        g.close()


if __name__ == "__main__":
    main()
