#!/usr/bin/env python
"""Regenerate any table or figure from the paper's evaluation section.

    python examples/paper_figures.py            # everything
    python examples/paper_figures.py fig9 tab2  # a selection
    python examples/paper_figures.py --list

Thin wrapper around :mod:`repro.bench.render`, which holds one renderer
per artifact; the benchmark suite asserts the quantitative shapes of the
same data (see benchmarks/).
"""

import argparse
import sys

from repro.bench.render import ARTIFACTS, render


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("artifacts", nargs="*",
                        help="which artifacts (default: all)")
    parser.add_argument("--list", action="store_true")
    args = parser.parse_args(argv)
    if args.list:
        print(" ".join(ARTIFACTS))
        return 0
    names = args.artifacts or list(ARTIFACTS)
    unknown = [n for n in names if n not in ARTIFACTS]
    if unknown:
        parser.error(f"unknown artifacts {unknown}; see --list")
    for name in names:
        print(render(name))
    return 0


if __name__ == "__main__":
    sys.exit(main())
