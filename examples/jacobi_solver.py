#!/usr/bin/env python
"""Distributed iterative solver: halo exchange + collectives together.

The paper's introduction motivates pack-free exchange with iterative
solvers (Krylov methods) where communication per iteration is small and
frequent -- exactly the strong-scaling regime where packing hurts.  This
example runs damped-Jacobi relaxation of a periodic Poisson problem
``L u = f`` across 8 simulated ranks:

* the 7-point Laplacian ghost exchange uses MemMap (pack-free, one
  message per neighbor);
* the global residual norm each iteration is an ``allreduce`` over the
  simulated fabric (deterministic tree reduction);
* the final field is validated bit-for-bit against the identical serial
  iteration.

    python examples/jacobi_solver.py
"""

import numpy as np

from repro.brick.convert import bricks_to_extended, extended_to_bricks
from repro.brick.decomp import BrickDecomp
from repro.exchange.memmap_ex import MemMapExchanger
from repro.hardware.profiles import theta_knl
from repro.simmpi import allreduce, run_spmd
from repro.stencil.brick_kernels import apply_brick_stencil
from repro.stencil.kernels import owned_slices
from repro.stencil.spec import star_stencil

GLOBAL = (32, 32, 32)
RANKS = (2, 2, 2)
SUB = tuple(g // r for g, r in zip(GLOBAL, RANKS))
GHOST = 8
OMEGA = 0.9
ITERS = 30

#: Jacobi update as a stencil: u' = (1-w) u + (w/6) * sum(neighbors) + w*h^2/6 f
#: We fold the f term in separately; the stencil handles the u part.
JACOBI = star_stencil(
    3, 1,
    coefficients=[1.0 - OMEGA] + [OMEGA / 6.0] * 6,
    name="jacobi7",
)


def serial_jacobi(u0, f):
    """The identical iteration on the unpartitioned periodic domain."""
    u = u0.copy()
    norms = []
    for _ in range(ITERS):
        acc = None
        for off, c in JACOBI.taps:
            term = c * np.roll(u, tuple(-o for o in reversed(off)),
                               axis=(0, 1, 2))
            acc = term if acc is None else acc + term
        new = acc + OMEGA / 6.0 * f
        norms.append(float(np.sqrt(np.sum((new - u) ** 2))))
        u = new
    return u, norms


def rank_main(comm, u0_global, f_global):
    cart = comm.Create_cart(RANKS)
    profile = theta_knl()
    decomp = BrickDecomp(SUB, (8, 8, 8), GHOST)
    storages = []
    asn = None
    for _ in range(2):
        st, asn = decomp.mmap_alloc(profile.page_size)
        storages.append(st)
    info = decomp.brick_info(asn)
    slots = decomp.compute_slots(asn)
    exchangers = [
        MemMapExchanger(cart, decomp, st, asn, profile) for st in storages
    ]

    lo = [c * s for c, s in zip(cart.coords, SUB)]
    own_g = tuple(slice(l, l + s) for l, s in zip(reversed(lo), reversed(SUB)))
    ext_shape = tuple(s + 2 * GHOST for s in reversed(SUB))
    own = owned_slices(SUB, GHOST)

    ext = np.zeros(ext_shape)
    ext[own] = u0_global[own_g]
    extended_to_bricks(ext, decomp, storages[0], asn)
    f_local = f_global[own_g]

    src, dst = 0, 1
    norms = []
    for _ in range(ITERS):
        exchangers[src].exchange()
        apply_brick_stencil(JACOBI, storages[src], storages[dst], info, slots)
        u_old = bricks_to_extended(decomp, storages[src], asn)[own]
        u_new = bricks_to_extended(decomp, storages[dst], asn)[own] + (
            OMEGA / 6.0
        ) * f_local
        ext = np.zeros(ext_shape)
        ext[own] = u_new
        extended_to_bricks(ext, decomp, storages[dst], asn)
        local_sq = np.array([np.sum((u_new - u_old) ** 2)])
        norms.append(float(np.sqrt(allreduce(comm, local_sq)[0])))
        src, dst = dst, src

    result = bricks_to_extended(decomp, storages[src], asn)[own].copy()
    for ex in exchangers:
        ex.close()
    for st in storages:
        st.close()
    return cart.coords, result, norms


def main() -> None:
    rng = np.random.default_rng(7)
    shape = tuple(reversed(GLOBAL))
    u0 = rng.random(shape)
    f = rng.random(shape)
    f -= f.mean()  # periodic Poisson compatibility

    results = run_spmd(int(np.prod(RANKS)), rank_main, u0, f)

    u = np.empty(shape)
    for coords, block, norms in results:
        lo = [c * s for c, s in zip(coords, SUB)]
        slc = tuple(slice(l, l + s) for l, s in zip(reversed(lo), reversed(SUB)))
        u[slc] = block

    u_ref, ref_norms = serial_jacobi(u0, f)
    print(f"{ITERS} Jacobi iterations on {GLOBAL} over {len(results)} ranks")
    print(f"residual: {norms[0]:.4e} -> {norms[-1]:.4e} (monotone: "
          f"{all(a >= b for a, b in zip(norms, norms[1:]))})")
    print(f"field bit-exact vs serial: {np.array_equal(u, u_ref)}")
    drift = max(abs(a - b) for a, b in zip(norms, ref_norms))
    print(f"max residual-norm drift vs serial: {drift:.2e}")
    assert np.array_equal(u, u_ref)
    assert drift < 1e-9


if __name__ == "__main__":
    main()
