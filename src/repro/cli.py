"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``figures [name ...]``
    Regenerate paper artifacts as text tables (all 16 by default).
``run``
    Execute a distributed stencil run on simulated ranks, validate it
    bit-for-bit against the serial reference, and print the artifact
    metrics.  ``--trace`` additionally records an observability trace.
``trace``
    Execute a run with the span tracer and metrics registry enabled;
    write a Chrome trace-event JSON timeline (chrome://tracing), print a
    flame summary, and optionally write machine-readable stats
    (``BENCH_trace.json``) for the CI perf-regression gate.
``advise``
    Strong-scaling advisor: best exchange scheme per node count.
``search-layout``
    Search for a message-minimal region order in D dimensions.
``validate``
    Self-check: run every executable method on a small problem and
    verify all of them against the reference.
``check``
    Ahead-of-run static verifier: rebuild the global message schedule
    plan-only and prove deadlock freedom, byte/split agreement, tag
    hygiene, in-bounds compiled plans and C-backend sanity without
    touching the fabric.  ``--selftest`` runs the mutation harness
    (every violation class must be detected); exits nonzero on any
    error finding.
``chaos``
    Seeded fault-injection soak: corrupt/drop/duplicate/delay wire
    faults, scheduled rank crashes (with and without checkpoint-based
    restart), permanent node loss with elastic reshape, and MemMap
    degradation, with a survival/detection report.  Exits nonzero on
    any silent corruption, unexpected error, failed resume or failed
    reshape (the CI chaos jobs gate on this).
``ckpt``
    Checkpoint store maintenance: ``ls`` epochs and their global
    consistency, ``verify`` every chunk's CRC32 (nonzero exit on any
    corruption), ``prune`` old epochs while keeping referenced parents.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

import numpy as np

__all__ = ["main"]


def _cmd_figures(args) -> int:
    from repro.bench.render import ARTIFACTS, render

    if args.list:
        print(" ".join(ARTIFACTS))
        return 0
    names = args.names or list(ARTIFACTS)
    for name in names:
        print(render(name))
    return 0


def _profile(name: str):
    from repro.hardware.profiles import generic_host, summit_v100, theta_knl

    return {"theta": theta_knl, "summit": summit_v100, "generic": generic_host}[
        name
    ]()


def _build_problem(args):
    from repro.core.problem import StencilProblem
    from repro.stencil.spec import CUBE125, SEVEN_POINT

    stencil = {"7pt": SEVEN_POINT, "125pt": CUBE125}[args.stencil]
    return StencilProblem(
        global_extent=tuple(args.domain),
        rank_dims=tuple(args.ranks),
        stencil=stencil,
        brick_dim=(args.brick,) * 3,
        ghost=args.ghost,
        periodic=not getattr(args, "open_boundaries", False),
    )


def _cmd_run(args) -> int:
    from repro import obs
    from repro.core.driver import run_executed
    from repro.stencil.reference import apply_periodic_reference

    problem = _build_problem(args)
    stencil = problem.stencil
    fault_plan = None
    if getattr(args, "kill", None):
        from repro.faults.plan import FaultPlan

        deaths = []
        for spec in args.kill:
            rank_s, _, step_s = spec.partition(":")
            try:
                deaths.append((int(rank_s), int(step_s)))
            except ValueError:
                print(f"--kill wants RANK:STEP, got {spec!r}",
                      file=sys.stderr)
                return 2
        fault_plan = FaultPlan(deaths=tuple(deaths))
    tracing = getattr(args, "trace", False)
    if tracing:
        obs.enable()
    try:
        run = run_executed(
            problem, args.method, _profile(args.machine),
            timesteps=args.steps, exchange_period=args.exchange_period,
            checkpoint_dir=args.checkpoint_dir,
            checkpoint_period=args.checkpoint_period,
            checkpoint_mode=args.checkpoint_mode,
            resume=args.resume,
            fault_plan=fault_plan,
            elastic=args.elastic,
            check=getattr(args, "check", None),
        )
    finally:
        if tracing:
            obs.disable()
    if args.checkpoint_dir:
        line = (
            f"checkpoints: {run.checkpoint_saves} epoch(s),"
            f" {run.checkpoint_bytes} bytes -> {args.checkpoint_dir}"
        )
        if run.resumed_epoch >= 0:
            line += f" (resumed from epoch {run.resumed_epoch})"
        print(line)
    if run.reshapes:
        print(
            f"elastic: survived loss of rank(s)"
            f" {', '.join(map(str, run.dead_ranks))} --"
            f" {run.reshapes} reshape(s) onto rank dims"
            f" {'x'.join(map(str, run.final_rank_dims))}"
        )
    if tracing:
        out = getattr(args, "trace_out", None) or "trace.json"
        obs.write_chrome_trace(out, obs.TRACER, obs.METRICS)
        print(f"wrote {out} (load in chrome://tracing)")
        print(obs.flame_summary(obs.TRACER))
    print(run.metrics.report())
    print(f"messages/rank/step: {run.messages_per_rank}")
    if run.exchange_period > 1:
        print(f"exchange period: {run.exchange_period} (ghost-cell expansion)")
    if run.mapping_count:
        print(f"mmap views: {run.mapping_count} kernel mappings")
    exact = None
    if problem.periodic:
        ref = apply_periodic_reference(
            problem.initial_global(0), stencil, args.steps
        )
        exact = bool(np.array_equal(run.global_result, ref))
        print(f"bit-exact vs serial reference: {exact}")
    if args.json:
        import json

        m = run.metrics
        payload = {
            "method": args.method,
            "machine": args.machine,
            "stencil": args.stencil,
            "global_extent": list(problem.global_extent),
            "rank_dims": list(problem.rank_dims),
            "timesteps": args.steps,
            "exchange_period": run.exchange_period,
            "messages_per_rank": run.messages_per_rank,
            "wire_bytes_per_rank": run.wire_bytes_per_rank,
            "padding_fraction": run.padding_fraction,
            "mapping_count": run.mapping_count,
            "gstencils_per_s": m.gstencils_per_s,
            "phases_s": {
                p: vars(m.phase(p))
                for p in ("calc", "pack", "call", "wait", "move")
            },
            "bit_exact": exact,
        }
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2)
        print(f"wrote {args.json}")
    return 1 if exact is False else 0


def _cmd_trace(args) -> int:
    import json

    from repro import obs
    from repro.bench.tracebench import traced_run_stats

    stats, run = traced_run_stats(
        method=args.method,
        domain=tuple(args.domain),
        ranks=tuple(args.ranks),
        steps=args.steps,
        brick=args.brick,
        ghost=args.ghost,
        stencil=args.stencil,
        machine=args.machine,
        exchange_period=args.exchange_period,
        overhead=args.overhead,
    )
    obs.write_chrome_trace(args.out, obs.TRACER, obs.METRICS)
    print(f"wrote {args.out} (load in chrome://tracing or Perfetto)")
    if args.bench_json:
        with open(args.bench_json, "w") as fh:
            json.dump(stats, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.bench_json}")
    print(obs.flame_summary(obs.TRACER))
    counts = stats["counts"]
    print(
        f"spans: {counts['spans_total']} across"
        f" {counts['ranks_traced']} ranks;"
        f" traced wall-clock {stats['wall_s']:.3f}s"
    )
    if "overhead" in stats:
        oh = stats["overhead"]
        print(
            f"tracing overhead: {oh['traced_s']:.3f}s traced vs"
            f" {oh['untraced_s']:.3f}s untraced"
            f" ({100 * (oh['overhead_ratio'] - 1):+.1f}%)"
        )
    print(run.metrics.report())
    return 0


def _cmd_bench(args) -> int:
    import json

    from repro.bench.e2ebench import measure_e2e_stats

    stats = measure_e2e_stats(quick=args.quick)
    doc = stats["run_executed_layout"]
    out = args.json
    if out:
        with open(out, "w") as fh:
            json.dump(stats, fh, indent=2)
            fh.write("\n")
        print(f"wrote {out}")
    print(
        f"run_executed_layout ({doc['timesteps']} steps,"
        f" {doc['kernel_backend']} kernels): plans on"
        f" {doc['plans_on_s']:.3f}s, off {doc['plans_off_s']:.3f}s ->"
        f" {doc['speedup']:.2f}x, bit_identical={doc['bit_identical']}"
    )
    return 0 if doc["bit_identical"] else 1


def _cmd_bench_overlap(args) -> int:
    import json

    from repro.bench.overlapbench import measure_overlap_stats

    stats = measure_overlap_stats(quick=args.quick)
    out = args.json
    if out:
        with open(out, "w") as fh:
            json.dump(stats, fh, indent=2)
            fh.write("\n")
        print(f"wrote {out}")
    ex = stats["phased_layout"]
    mod = stats["modelled_strong_scaling"]
    print(
        f"phased_layout ({ex['timesteps']} steps,"
        f" {ex['interior_bricks_per_rank']}/{ex['bricks_per_rank']} interior"
        f" bricks): phased={ex['phased']},"
        f" bit_identical={ex['bit_identical']},"
        f" hidden_comm_positive={ex['hidden_comm_positive']}"
    )
    for row in mod["scales"]:
        print(
            f"  {row['ranks']:>4} ranks: wait {row['wait_s'] * 1e3:7.3f}ms,"
            f" interior {row['interior_calc_s'] * 1e3:7.3f}ms ->"
            f" hidden {100 * row['hidden_fraction']:5.1f}%"
        )
    print(
        f"modelled_strong_scaling aggregate hidden fraction:"
        f" {mod['aggregate_hidden_fraction']:.3f}"
        f" (gate > 0.5: {'pass' if mod['hidden_fraction_gate'] else 'FAIL'})"
    )
    ok = (
        ex["phased"] and ex["bit_identical"]
        and ex["hidden_comm_positive"] and mod["hidden_fraction_gate"]
    )
    return 0 if ok else 1


def _cmd_bench_elastic(args) -> int:
    import json

    from repro.elastic.bench import measure_elastic_stats

    stats = measure_elastic_stats(quick=args.quick)
    out = args.json
    if out:
        with open(out, "w") as fh:
            json.dump(stats, fh, indent=2)
            fh.write("\n")
        print(f"wrote {out}")
    rb, rn = stats["rebrick"], stats["run"]
    print(
        f"rebrick {rb['old_ranks']} -> {rb['new_ranks']} ranks"
        f" (dims {'x'.join(map(str, rb['new_rank_dims']))}):"
        f" epoch {rb['epoch']}, {rb['bytes_written']} bytes,"
        f" best {rb['rebrick_s'] * 1e3:.1f}ms"
    )
    print(
        f"elastic run: {rn['dead_ranks']} death(s), {rn['reshapes']}"
        f" reshape(s) -> {rn['final_nranks']} ranks, resumed epoch"
        f" {rn['resumed_epoch']}, bit_exact={bool(rn['exact'])}"
    )
    return 0 if rn["exact"] and rn["reshapes"] >= 1 else 1


def _cmd_advise(args) -> int:
    from repro.bench.advisor import advise, render_advice

    rows = advise(args.domain, args.machine, args.stencil, args.max_nodes)
    print(render_advice(rows, args.domain, args.machine, args.stencil))
    good = [r for r in rows if r.efficiency >= 0.5]
    if good:
        r = good[-1]
        print(
            f"Recommendation: up to {r.nodes} nodes with '{r.best}',"
            f" parallel efficiency {100 * r.efficiency:.0f}%."
        )
    return 0


def _cmd_search_layout(args) -> int:
    from repro.layout.analysis import optimal_message_count
    from repro.layout.messages import messages_for_order
    from repro.layout.search import anneal_order, exhaustive_best_order

    target = optimal_message_count(args.ndim)
    if args.exhaustive:
        order, count = exhaustive_best_order(args.ndim)
    else:
        order, count = anneal_order(
            args.ndim, seed=args.seed, restarts=args.restarts,
            iters=args.iters, target=target,
        )
    print(f"D={args.ndim}: found order with {count} messages"
          f" (Eq. 1 bound: {target})")
    for region in order:
        print(f"  {region.notation()}")
    return 0 if count == target else 2


def _cmd_validate(args) -> int:
    from repro.core.driver import run_executed
    from repro.core.problem import StencilProblem
    from repro.stencil.reference import apply_periodic_reference
    from repro.stencil.spec import SEVEN_POINT

    problem = StencilProblem(
        global_extent=(32, 32, 32), rank_dims=(2, 2, 2),
        stencil=SEVEN_POINT, brick_dim=(8, 8, 8), ghost=8,
    )
    ref = apply_periodic_reference(problem.initial_global(0), SEVEN_POINT, 2)
    failures = 0
    for method in ("yask", "yask_ol", "mpi_types", "shift", "basic",
                   "layout", "memmap"):
        run = run_executed(problem, method, _profile(args.machine), timesteps=2)
        ok = np.array_equal(run.global_result, ref)
        print(f"  {method:<10} {'OK' if ok else 'FAILED'}"
              f"  ({run.messages_per_rank} msgs/rank/step)")
        failures += not ok
    print("all exchange methods bit-exact" if not failures
          else f"{failures} method(s) diverged")
    return 1 if failures else 0


def _cmd_chaos(args) -> int:
    import dataclasses

    from repro.faults.chaos import PRESETS, ChaosConfig, run_soak

    if args.quick:
        config = ChaosConfig.quick(trials=args.trials, seed=args.seed)
    else:
        config = ChaosConfig(trials=args.trials, seed=args.seed)
    if args.no_recheck:
        config = dataclasses.replace(config, check_determinism=False)
    if args.presets:
        names = tuple(s.strip() for s in args.presets.split(",") if s.strip())
        unknown = sorted(set(names) - set(PRESETS))
        if unknown:
            print(
                f"unknown preset(s) {', '.join(unknown)};"
                f" choose from {', '.join(sorted(PRESETS))}",
                file=sys.stderr,
            )
            return 2
        config = dataclasses.replace(config, presets=names)
    report = run_soak(config)
    print(report.render())
    if args.json:
        import json

        with open(args.json, "w") as fh:
            json.dump(report.to_literal(), fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.json}")
    return 0 if report.passed else 1


def _cmd_ckpt(args) -> int:
    from repro.ckpt import CheckpointStore

    store = CheckpointStore(args.dir)
    if args.ckpt_cmd == "ls":
        rows = store.ls_rows(nranks=args.nranks)
        if not rows:
            print(f"no checkpoints under {args.dir}")
            return 0
        print(f"{'epoch':>8} {'ranks':>5} {'mode':<10} {'bytes':>12}"
              f" consistent")
        for r in rows:
            print(f"{r['epoch']:>8} {r['ranks']:>5} {r['modes']:<10}"
                  f" {r['bytes']:>12} {'yes' if r['consistent'] else 'no'}")
        latest = store.latest_consistent(args.nranks)
        print(f"latest consistent epoch: "
              f"{latest if latest >= 0 else 'none'}")
        return 0
    if args.ckpt_cmd == "verify":
        rows = store.verify()
        bad = 0
        for r in rows:
            ok = r["ok"]
            bad += not ok
            status = "OK" if ok else f"CORRUPT: {r['error']}"
            print(f"rank {r['rank']:>4} epoch {r['epoch']:>6}"
                  f" {r['mode'] or '?':<5} {r['data_bytes']:>12}B {status}")
        print(f"{len(rows) - bad}/{len(rows)} snapshot(s) verified clean")
        return 1 if bad else 0
    removed = store.prune(keep=args.keep)
    print(f"pruned {len(removed)} file(s), keeping the newest {args.keep}"
          f" epoch(s) per rank (plus referenced parents)")
    return 0


def _cmd_check(args) -> int:
    import json

    from repro.check import CHECKABLE_METHODS, run_checks, run_selftest

    if args.selftest:
        methods = (
            CHECKABLE_METHODS if args.all_methods else ("memmap", "shift")
        )
        results = run_selftest(methods=methods)
        missed = sorted(k for k, ok in results.items() if not ok)
        for k in sorted(results):
            print(f"{'detected' if results[k] else 'MISSED':8s} {k}")
        print(
            f"selftest: {len(results) - len(missed)}/{len(results)}"
            " violation classes detected"
        )
        return 1 if missed else 0

    problem = _build_problem(args)
    dead = tuple(int(r) for r in (args.dead or []))
    methods = (
        list(CHECKABLE_METHODS) if args.all_methods else [args.method]
    )
    payloads = []
    failed = False
    for method in methods:
        report = run_checks(
            problem, method,
            profile=_profile(args.machine),
            partitions=args.partitions,
            dead_ranks=dead,
        )
        failed = failed or not report.ok
        if args.json:
            payloads.append(report.to_literal())
        else:
            print(report.render())
            if len(methods) > 1:
                print()
    if args.json:
        out = payloads[0] if len(payloads) == 1 else payloads
        with open(args.json, "w") as fh:
            json.dump(out, fh, indent=2)
        print(f"wrote {args.json}")
    return 1 if failed else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Pack-free ghost-zone exchange (PPoPP'21 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("figures", help="regenerate paper artifacts")
    p.add_argument("names", nargs="*")
    p.add_argument("--list", action="store_true")
    p.set_defaults(fn=_cmd_figures)

    def add_run_args(p):
        p.add_argument("--method", default="memmap")
        p.add_argument("--domain", type=int, nargs=3, default=[32, 32, 32])
        p.add_argument("--ranks", type=int, nargs=3, default=[2, 2, 2])
        p.add_argument("--steps", type=int, default=2)
        p.add_argument("--brick", type=int, default=8)
        p.add_argument("--ghost", type=int, default=8)
        p.add_argument("--stencil", choices=("7pt", "125pt"), default="7pt")
        p.add_argument("--machine", choices=("theta", "summit", "generic"),
                       default="theta")
        p.add_argument(
            "--exchange-period", default=None,
            help="exchange every N steps ('auto' for the maximum the ghost"
                 " width supports); redundant computation fills the gaps",
        )

    p = sub.add_parser("run", help="executed distributed run + validation")
    add_run_args(p)
    p.add_argument("--open-boundaries", action="store_true")
    p.add_argument("--check", nargs="?", const="strict",
                   choices=("strict", "warn"), default=None,
                   help="static pre-flight: verify the exchange schedule"
                        " and compiled plans before launching ranks"
                        " (bare --check means strict)")
    p.add_argument("--checkpoint-dir", metavar="DIR", default=None,
                   help="write content-verified snapshots to this store")
    p.add_argument("--checkpoint-period", type=int, default=None,
                   help="snapshot every N steps (default 1)")
    p.add_argument("--checkpoint-mode", choices=("full", "incr"),
                   default="incr",
                   help="full snapshots, or dirty-section incremental")
    p.add_argument("--resume", action="store_true",
                   help="restore from the latest consistent epoch in"
                        " --checkpoint-dir before stepping")
    p.add_argument("--elastic", action="store_true",
                   help="survive permanent rank deaths by re-bricking the"
                        " newest common snapshot epoch onto a shrunken"
                        " decomposition (needs --checkpoint-dir)")
    p.add_argument("--kill", metavar="RANK:STEP", action="append",
                   default=None,
                   help="schedule a permanent rank death (repeatable);"
                        " pair with --elastic to exercise recovery")
    p.add_argument("--json", metavar="PATH",
                   help="also write the run summary as JSON")
    p.add_argument("--trace", action="store_true",
                   help="record an observability trace of the run")
    p.add_argument("--trace-out", metavar="PATH", default="trace.json",
                   help="Chrome trace-event output path for --trace")
    p.set_defaults(fn=_cmd_run)

    p = sub.add_parser(
        "trace",
        help="traced executed run: Chrome timeline + flame summary",
    )
    add_run_args(p)
    p.set_defaults(method="layout", steps=4)
    p.add_argument("--out", metavar="PATH", default="trace.json",
                   help="Chrome trace-event JSON output path")
    p.add_argument("--bench-json", metavar="PATH", default=None,
                   help="also write machine-readable trace stats"
                        " (BENCH_trace.json schema)")
    p.add_argument("--overhead", action="store_true",
                   help="also run untraced and report tracing overhead")
    p.set_defaults(fn=_cmd_trace)

    p = sub.add_parser("advise", help="strong-scaling advisor")
    p.add_argument("--domain", type=int, default=1024)
    p.add_argument("--machine", choices=("theta", "summit"), default="theta")
    p.add_argument("--stencil", choices=("7pt", "125pt"), default="7pt")
    p.add_argument("--max-nodes", type=int, default=1024)
    p.set_defaults(fn=_cmd_advise)

    p = sub.add_parser("search-layout", help="find a message-minimal order")
    p.add_argument("ndim", type=int)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--restarts", type=int, default=20)
    p.add_argument("--iters", type=int, default=8000)
    p.add_argument("--exhaustive", action="store_true")
    p.set_defaults(fn=_cmd_search_layout)

    p = sub.add_parser("validate", help="self-check all exchange methods")
    p.add_argument("--machine", choices=("theta", "summit", "generic"),
                   default="theta")
    p.set_defaults(fn=_cmd_validate)

    p = sub.add_parser(
        "check", help="ahead-of-run static schedule/plan verifier"
    )
    add_run_args(p)
    p.add_argument("--open-boundaries", action="store_true")
    p.add_argument("--partitions", type=int, default=1,
                   help="channel partition count the run will negotiate"
                        " (phased runs use 4)")
    p.add_argument("--dead", type=int, action="append", default=None,
                   metavar="RANK",
                   help="treat RANK as permanently dead (repeatable);"
                        " any schedule edge touching it is an error")
    p.add_argument("--all-methods", action="store_true",
                   help="check every executable method, not just"
                        " --method")
    p.add_argument("--selftest", action="store_true",
                   help="mutation harness: inject one violation of each"
                        " class and require the verifier to catch it")
    p.add_argument("--json", metavar="PATH", default=None,
                   help="also write the report(s) as JSON")
    p.set_defaults(fn=_cmd_check)

    p = sub.add_parser("chaos", help="seeded fault-injection soak")
    p.add_argument("--trials", type=int, default=10)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--quick", action="store_true",
                   help="shorter runs (2 steps/trial, tighter timeout)")
    p.add_argument("--no-recheck", action="store_true",
                   help="skip the per-trial determinism rerun")
    p.add_argument("--json", metavar="PATH",
                   help="also write the report as JSON")
    p.add_argument("--presets", metavar="LIST", default=None,
                   help="comma-separated preset subset to cycle"
                        " (e.g. 'crash_restart')")
    p.set_defaults(fn=_cmd_chaos)

    p = sub.add_parser("bench", help="measured performance baselines")
    bsub = p.add_subparsers(dest="bench_cmd", required=True)
    bp = bsub.add_parser(
        "e2e",
        help="whole-run executed speedup, plans on vs off (BENCH_e2e.json)",
    )
    bp.add_argument("--quick", action="store_true",
                    help="fewer repetitions (same configuration)")
    bp.add_argument("--json", metavar="PATH", default="BENCH_e2e.json",
                    help="output JSON path (default BENCH_e2e.json;"
                         " '' to skip writing)")
    bp.set_defaults(fn=_cmd_bench)
    bp = bsub.add_parser(
        "overlap",
        help="phased interior/surface overlap efficiency"
             " (BENCH_overlap.json)",
    )
    bp.add_argument("--quick", action="store_true",
                    help="fewer repetitions (same configuration)")
    bp.add_argument("--json", metavar="PATH", default="BENCH_overlap.json",
                    help="output JSON path (default BENCH_overlap.json;"
                         " '' to skip writing)")
    bp.set_defaults(fn=_cmd_bench_overlap)
    bp = bsub.add_parser(
        "elastic",
        help="re-brick cost + end-to-end elastic recovery"
             " (BENCH_elastic.json)",
    )
    bp.add_argument("--quick", action="store_true",
                    help="fewer repetitions (same configuration)")
    bp.add_argument("--json", metavar="PATH", default="BENCH_elastic.json",
                    help="output JSON path (default BENCH_elastic.json;"
                         " '' to skip writing)")
    bp.set_defaults(fn=_cmd_bench_elastic)

    p = sub.add_parser("ckpt", help="checkpoint store maintenance")
    cksub = p.add_subparsers(dest="ckpt_cmd", required=True)
    cp = cksub.add_parser("ls", help="list epochs and global consistency")
    cp.add_argument("dir")
    cp.add_argument("--nranks", type=int, default=None,
                    help="expected world size (default: rank dirs found)")
    cp.set_defaults(fn=_cmd_ckpt)
    cp = cksub.add_parser("verify", help="CRC-verify every snapshot chunk")
    cp.add_argument("dir")
    cp.set_defaults(fn=_cmd_ckpt)
    cp = cksub.add_parser("prune", help="drop all but the newest epochs")
    cp.add_argument("dir")
    cp.add_argument("--keep", type=int, default=1,
                    help="epochs to keep per rank (default 1)")
    cp.set_defaults(fn=_cmd_ckpt)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)
