"""``[minimum, average, maximum]`` summaries matching the paper's artifact.

The PPoPP artifact reports every per-timestep metric (``calc``, ``pack``,
``call``, ``wait``) in the format ``[minimum, average, maximum]`` across MPI
ranks; :class:`MinAvgMax` is that triple.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = ["MinAvgMax", "summarize", "geometric_mean"]


@dataclass(frozen=True)
class MinAvgMax:
    """Minimum / average / maximum of a sample, plus its standard deviation."""

    min: float
    avg: float
    max: float
    std: float = 0.0
    n: int = 1

    def __format__(self, spec: str) -> str:
        spec = spec or ".3g"
        return (
            f"[{self.min:{spec}}, {self.avg:{spec}}, {self.max:{spec}}]"
            f" (sigma: {self.std:{spec}})"
        )

    def scaled(self, factor: float) -> "MinAvgMax":
        """Return a copy with every field multiplied by *factor*."""
        return MinAvgMax(
            self.min * factor,
            self.avg * factor,
            self.max * factor,
            self.std * abs(factor),
            self.n,
        )


def summarize(values: Iterable[float]) -> MinAvgMax:
    """Summarize a non-empty sample into a :class:`MinAvgMax`."""
    vals = [float(v) for v in values]
    if not vals:
        raise ValueError("cannot summarize an empty sample")
    n = len(vals)
    avg = sum(vals) / n
    var = sum((v - avg) ** 2 for v in vals) / n
    return MinAvgMax(min(vals), avg, max(vals), math.sqrt(var), n)


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values (speedup aggregation)."""
    vals = [float(v) for v in values]
    if not vals:
        raise ValueError("cannot take the geometric mean of an empty sample")
    if any(v <= 0 for v in vals):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))
