"""Phase timers and the per-timestep time breakdown.

Two notions of time coexist in this reproduction (see DESIGN.md Section 6):

* *measured* wall-clock seconds, captured with :class:`PhaseTimer` around the
  real in-process data movement, and
* *modelled* virtual seconds, accumulated into a :class:`TimeBreakdown` by
  the hardware cost models.

Both use the same breakdown structure so the benchmark harness can print
either interchangeably.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict

__all__ = ["PhaseTimer", "TimeBreakdown", "PHASES"]

#: Canonical phase names, matching the paper artifact's metrics.
PHASES = ("calc", "pack", "call", "wait", "move")


@dataclass
class TimeBreakdown:
    """Per-timestep time split into the artifact's phases (seconds).

    ``calc``: stencil computation (plus any communication-avoiding redundant
    compute).  ``pack``: copying data into/out of message buffers -- the
    on-node movement the paper eliminates.  ``call``: posting MPI operations.
    ``wait``: completing them.  ``move``: explicit CPU<->GPU shuttling
    (zero on CPU-only runs and for CUDA-aware / Unified-Memory paths).
    """

    calc: float = 0.0
    pack: float = 0.0
    call: float = 0.0
    wait: float = 0.0
    move: float = 0.0

    @property
    def comm(self) -> float:
        """Total communication time: everything except computation."""
        return self.pack + self.call + self.wait + self.move

    @property
    def total(self) -> float:
        return self.calc + self.comm

    def add(self, other: "TimeBreakdown") -> "TimeBreakdown":
        return TimeBreakdown(
            self.calc + other.calc,
            self.pack + other.pack,
            self.call + other.call,
            self.wait + other.wait,
            self.move + other.move,
        )

    def scaled(self, factor: float) -> "TimeBreakdown":
        return TimeBreakdown(
            self.calc * factor,
            self.pack * factor,
            self.call * factor,
            self.wait * factor,
            self.move * factor,
        )

    def as_dict(self) -> Dict[str, float]:
        return {p: getattr(self, p) for p in PHASES}

    def charge(self, phase: str, seconds: float) -> None:
        """Accumulate *seconds* into *phase* (must be one of PHASES)."""
        if phase not in PHASES:
            raise ValueError(f"unknown phase {phase!r}; expected one of {PHASES}")
        if seconds < 0:
            raise ValueError(f"cannot charge negative time {seconds}")
        setattr(self, phase, getattr(self, phase) + seconds)


class PhaseTimer:
    """Wall-clock timer that attributes elapsed time to breakdown phases.

    Usage::

        timer = PhaseTimer()
        with timer.phase("pack"):
            ...  # real data movement
        breakdown = timer.breakdown
    """

    def __init__(self) -> None:
        self.breakdown = TimeBreakdown()

    def phase(self, name: str) -> "_PhaseContext":
        if name not in PHASES:
            raise ValueError(f"unknown phase {name!r}; expected one of {PHASES}")
        return _PhaseContext(self, name)

    def reset(self) -> TimeBreakdown:
        """Return the accumulated breakdown and start a fresh one."""
        done, self.breakdown = self.breakdown, TimeBreakdown()
        return done


class _PhaseContext:
    __slots__ = ("_timer", "_name", "_start")

    def __init__(self, timer: PhaseTimer, name: str) -> None:
        self._timer = timer
        self._name = name
        self._start = 0.0

    def __enter__(self) -> "_PhaseContext":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        # Record-and-reraise: a phase whose body raised still spent real
        # wall-clock, so charge it before the exception propagates (the
        # same contract as repro.obs spans).
        elapsed = time.perf_counter() - self._start
        self._timer.breakdown.charge(self._name, elapsed)
        return False
