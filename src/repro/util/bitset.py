"""Direction-set notation for surface/ghost regions and neighbors.

The paper (Section 3.1) identifies every surface region, ghost region and
neighbor of a ``D``-dimensional subdomain by a set of *signed axes*: axis
``i`` (1-based) appears as ``+i`` for the positive direction (up/right/front)
or ``-i`` for the negative direction.  For example the north-east neighbor of
a 2-D subdomain is ``N({A1+, A2+})`` which we write ``BitSet([1, 2])``, and
the left-edge surface region is ``r({A1-})`` = ``BitSet([-1])``.

A :class:`BitSet` is an immutable, hashable set of non-zero integers with at
most one entry per axis.  It converts to and from *direction vectors*
(``D``-tuples over ``{-1, 0, +1}``), which is the representation the
decomposition code uses internally.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence, Tuple

__all__ = ["BitSet"]


class BitSet:
    """Immutable set of signed axis directions, e.g. ``{A1-, A2+}``.

    Parameters
    ----------
    elements:
        Iterable of non-zero integers.  ``+i`` selects the positive direction
        of axis ``i`` (1-based), ``-i`` the negative direction.  Supplying
        both ``+i`` and ``-i`` is an error: a region lies on one side of an
        axis only.
    """

    __slots__ = ("_elems",)

    def __init__(self, elements: Iterable[int] = ()):
        elems = frozenset(int(e) for e in elements)
        if 0 in elems:
            raise ValueError("BitSet elements must be non-zero signed axes")
        axes = [abs(e) for e in elems]
        if len(axes) != len(set(axes)):
            raise ValueError(
                f"BitSet may contain at most one direction per axis: {sorted(elems)}"
            )
        self._elems = elems

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_vector(cls, vec: Sequence[int]) -> "BitSet":
        """Build from a direction vector over ``{-1, 0, +1}``.

        ``vec[i] == +1`` contributes ``+(i+1)``; ``-1`` contributes
        ``-(i+1)``; ``0`` contributes nothing.
        """
        elems = []
        for i, v in enumerate(vec):
            if v not in (-1, 0, 1):
                raise ValueError(f"direction vector entries must be -1/0/+1, got {v}")
            if v:
                elems.append(v * (i + 1))
        return cls(elems)

    def to_vector(self, ndim: int) -> Tuple[int, ...]:
        """Direction vector of length *ndim* over ``{-1, 0, +1}``."""
        if self._elems and max(abs(e) for e in self._elems) > ndim:
            raise ValueError(f"{self} does not fit in {ndim} dimensions")
        vec = [0] * ndim
        for e in self._elems:
            vec[abs(e) - 1] = 1 if e > 0 else -1
        return tuple(vec)

    # ------------------------------------------------------------------
    # Set behaviour
    # ------------------------------------------------------------------
    def __contains__(self, item: int) -> bool:
        return int(item) in self._elems

    def __iter__(self) -> Iterator[int]:
        return iter(sorted(self._elems, key=abs))

    def __len__(self) -> int:
        return len(self._elems)

    def __bool__(self) -> bool:
        return bool(self._elems)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, BitSet):
            return self._elems == other._elems
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._elems)

    def issubset(self, other: "BitSet") -> bool:
        """True if every signed axis of *self* also appears in *other*.

        Region ``r(S)`` is sent to neighbor ``N(T)`` exactly when
        ``T.issubset(S)`` and ``T`` is non-empty (paper, Section 2).
        """
        return self._elems <= other._elems

    def issuperset(self, other: "BitSet") -> bool:
        return self._elems >= other._elems

    def union(self, other: "BitSet") -> "BitSet":
        return BitSet(self._elems | other._elems)

    def intersection(self, other: "BitSet") -> "BitSet":
        return BitSet(self._elems & other._elems)

    # ------------------------------------------------------------------
    # Domain helpers
    # ------------------------------------------------------------------
    def axes(self) -> Tuple[int, ...]:
        """The (1-based, unsigned) axes this set constrains, sorted."""
        return tuple(sorted(abs(e) for e in self._elems))

    def direction(self, axis: int) -> int:
        """-1, 0 or +1: the direction of *axis* (1-based) in this set."""
        if axis in self._elems:
            return 1
        if -axis in self._elems:
            return -1
        return 0

    def opposite(self) -> "BitSet":
        """Mirror every direction: the neighbor's view of this set."""
        return BitSet(-e for e in self._elems)

    def covers_neighbor(self, neighbor: "BitSet") -> bool:
        """True if surface region ``r(self)`` is sent to ``N(neighbor)``."""
        return bool(neighbor) and neighbor.issubset(self)

    # ------------------------------------------------------------------
    def __repr__(self) -> str:
        inner = ", ".join(str(e) for e in self)
        return f"BitSet({{{inner}}})" if self._elems else "BitSet({})"

    def notation(self) -> str:
        """Paper-style notation, e.g. ``{A1-, A2+}``."""
        parts = [f"A{abs(e)}{'+' if e > 0 else '-'}" for e in self]
        return "{" + ", ".join(parts) + "}"
