"""Shared utilities: direction-set notation, index math, timing, statistics.

These helpers are deliberately dependency-light; every other subpackage in
:mod:`repro` builds on them.
"""

from repro.util.bitset import BitSet
from repro.util.indexing import (
    ceil_div,
    lexicographic_coords,
    ravel_coord,
    unravel_index,
)
from repro.util.stats import MinAvgMax, summarize
from repro.util.timing import PhaseTimer, TimeBreakdown

__all__ = [
    "BitSet",
    "MinAvgMax",
    "PhaseTimer",
    "TimeBreakdown",
    "ceil_div",
    "lexicographic_coords",
    "ravel_coord",
    "summarize",
    "unravel_index",
]
