"""Small index-arithmetic helpers shared by the brick and layout machinery.

All multi-dimensional coordinates in :mod:`repro` are ordered
``(c_1, c_2, ..., c_D)`` where axis 1 is the *fastest varying* (unit-stride)
axis, matching the paper's ``i-j-k`` convention for lexicographic layouts.
"""

from __future__ import annotations

from itertools import product
from typing import Iterator, Sequence, Tuple

__all__ = [
    "ceil_div",
    "lexicographic_coords",
    "ravel_coord",
    "unravel_index",
    "strides_for",
]


def ceil_div(a: int, b: int) -> int:
    """Ceiling integer division for non-negative *a* and positive *b*."""
    if b <= 0:
        raise ValueError(f"divisor must be positive, got {b}")
    return -(-a // b)


def strides_for(extent: Sequence[int]) -> Tuple[int, ...]:
    """Linear strides with axis 1 (index 0) fastest varying."""
    strides = []
    acc = 1
    for e in extent:
        strides.append(acc)
        acc *= e
    return tuple(strides)


def ravel_coord(coord: Sequence[int], extent: Sequence[int]) -> int:
    """Linear index of *coord* within a box of *extent* (axis 1 fastest)."""
    if len(coord) != len(extent):
        raise ValueError("coord and extent dimensionality differ")
    idx = 0
    acc = 1
    for c, e in zip(coord, extent):
        if not 0 <= c < e:
            raise IndexError(f"coordinate {tuple(coord)} outside extent {tuple(extent)}")
        idx += c * acc
        acc *= e
    return idx


def unravel_index(index: int, extent: Sequence[int]) -> Tuple[int, ...]:
    """Inverse of :func:`ravel_coord`."""
    total = 1
    for e in extent:
        total *= e
    if not 0 <= index < total:
        raise IndexError(f"index {index} outside extent {tuple(extent)}")
    coord = []
    for e in extent:
        coord.append(index % e)
        index //= e
    return tuple(coord)


def lexicographic_coords(extent: Sequence[int]) -> Iterator[Tuple[int, ...]]:
    """All coordinates of a box in linear-index order (axis 1 fastest)."""
    # itertools.product varies the *last* factor fastest, so feed axes
    # reversed and flip each produced tuple.
    for rev in product(*(range(e) for e in reversed(extent))):
        yield tuple(reversed(rev))
