"""Checkpoint overhead benchmark: snapshot bytes and save/restore time.

Backs the committed ``BENCH_ckpt.json`` baseline (see
``benchmarks/compare_bench.py``).  All byte and chunk counts are
deterministic -- the store's change detection is content-addressed, the
workloads are seeded -- so CI compares them exactly; only the ``_s``
keys are wall-clock and get the timing tolerance band.
"""

from __future__ import annotations

import tempfile
import time
from typing import Any, Callable, Dict

import numpy as np

__all__ = ["measure_ckpt_stats"]


def _best_of(fn: Callable[[], Any], repeat: int, warmup: int) -> float:
    for _ in range(warmup):
        fn()
    best = float("inf")
    for _ in range(repeat):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _measure_store(quick: bool) -> Dict[str, Any]:
    """Store-level costs on a realistic section-granular chunk layout.

    The incremental scenario is the surface-only-change workload from
    the paper's exchange cadence: between two snapshots only surface
    bricks were recomputed, so an incremental snapshot must write
    strictly fewer bytes than a full one.
    """
    from repro.brick.decomp import BrickDecomp
    from repro.ckpt import CheckpointStore, storage_chunks

    warmup, repeat = (1, 3) if quick else (2, 10)
    decomp = BrickDecomp((16, 16, 16), (8, 8, 8), 8)
    storage, asn = decomp.allocate()
    rng = np.random.default_rng(0)
    storage.data[:] = rng.random(storage.data.shape)
    specs = storage_chunks(asn)
    surface = [s for s in specs if s.name.startswith("surface:")]

    def chunks():
        return [
            (s.name, storage.slot_bytes(s.start_slot, s.nslots))
            for s in specs
        ]

    out: Dict[str, Any] = {
        "nslots": int(storage.nslots),
        "brick_bytes": int(storage.brick_bytes),
        "chunks": len(specs),
        "surface_chunks": len(surface),
    }
    with tempfile.TemporaryDirectory(prefix="repro-ckpt-bench-") as root:
        store = CheckpointStore(root)
        parent = store.save(0, 0, chunks(), problem_key="bench")
        out["full_bytes"] = int(parent["data_bytes"])

        for s in surface:
            storage.data[s.start_slot : s.start_slot + s.nslots] += 1.0
        man = store.save(
            0, 1, chunks(), mode="incr", problem_key="bench", parent=parent,
            dirty_names=[s.name for s in surface],
        )
        out["incr_surface_bytes"] = int(man["data_bytes"])
        out["incr_chunks_written"] = sum(
            1 for c in man["chunks"] if c["epoch"] == 1
        )

        epoch = [2]

        def save_full():
            store.save(0, epoch[0], chunks(), problem_key="bench")
            epoch[0] += 1

        def save_incr():
            store.save(
                0, epoch[0], chunks(), mode="incr", problem_key="bench",
                parent=parent, dirty_names=[s.name for s in surface],
            )
            epoch[0] += 1

        out["save_full_s"] = _best_of(save_full, repeat, warmup)
        out["save_incr_s"] = _best_of(save_incr, repeat, warmup)
        out["restore_s"] = _best_of(
            lambda: store.read_state(0, man), repeat, warmup
        )
    return out


def _measure_run(quick: bool) -> Dict[str, Any]:
    """End-to-end checkpointed run: per-mode snapshot bytes.

    Ghost expansion with exchange period 2 leaves outer ghost sections
    untouched on the skipped-exchange cycle position, which is what the
    dirty tracker exploits -- incremental runs must write strictly fewer
    bytes than full ones on the identical workload.
    """
    from repro.core.driver import run_executed
    from repro.core.problem import StencilProblem
    from repro.stencil.spec import SEVEN_POINT

    del quick  # deterministic counts; nothing to trim
    problem = StencilProblem(
        global_extent=(32, 32, 32),
        rank_dims=(2, 2, 2),
        stencil=SEVEN_POINT,
        brick_dim=(4, 4, 4),
        ghost=8,
    )
    out: Dict[str, Any] = {
        "steps": 4,
        "exchange_period": 2,
        "method": "layout",
    }
    for mode in ("full", "incr"):
        with tempfile.TemporaryDirectory(prefix="repro-ckpt-bench-") as root:
            run = run_executed(
                problem, "layout", timesteps=4, seed=0, exchange_period=2,
                checkpoint_dir=root, checkpoint_period=1,
                checkpoint_mode=mode,
            )
        out[f"{mode}_bytes"] = int(run.checkpoint_bytes)
        out[f"{mode}_saves"] = int(run.checkpoint_saves)
    return out


def measure_ckpt_stats(quick: bool = False) -> Dict[str, Any]:
    """The ``BENCH_ckpt.json`` document: store + run checkpoint costs."""
    return {"store": _measure_store(quick), "run": _measure_run(quick)}
