"""Checkpoint/restart subsystem: content-verified incremental snapshots
of brick storage plus the consistency protocol for elastic SPMD restart.

Layering:

* :mod:`repro.ckpt.store` -- the on-disk format: per-rank manifests with
  per-chunk CRC32, atomic rename commits, full/incremental snapshots.
* :mod:`repro.ckpt.snapshot` -- run semantics: section-granular chunk
  layout over a :class:`~repro.brick.decomp.SlotAssignment`, dirty-slot
  tracking, the epoch-negotiation allreduce, problem fingerprinting.
* :mod:`repro.ckpt.bench` -- the overhead benchmark behind
  ``BENCH_ckpt.json``.

The driver-side wiring (checkpoint period inside the timestep loop,
restartable launch after an injected crash) lives in
:mod:`repro.core.driver` and :mod:`repro.simmpi.launcher`.
"""

from repro.ckpt.snapshot import (
    CheckpointConfig,
    ChunkSpec,
    DirtyTracker,
    NoCommonEpochError,
    RankCheckpointer,
    negotiate_epoch,
    problem_key,
    storage_chunks,
)
from repro.ckpt.store import (
    CheckpointCorruptionError,
    CheckpointError,
    CheckpointStore,
)

__all__ = [
    "CheckpointStore",
    "CheckpointError",
    "CheckpointCorruptionError",
    "CheckpointConfig",
    "ChunkSpec",
    "DirtyTracker",
    "NoCommonEpochError",
    "RankCheckpointer",
    "negotiate_epoch",
    "problem_key",
    "storage_chunks",
]
