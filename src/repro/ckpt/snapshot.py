"""Snapshot semantics on top of the raw :class:`CheckpointStore`.

This module knows what a *rank's* checkpoint means for an executed SPMD
stencil run:

* :func:`storage_chunks` names one chunk per non-empty
  :class:`~repro.brick.decomp.Section` of the slot assignment, so a
  snapshot is section-granular -- alignment padding slots are never
  written, and dirty tracking can skip whole regions the workload did
  not touch.
* :class:`DirtyTracker` accumulates touched slots between checkpoints;
  :class:`RankCheckpointer` turns that into the ``dirty_names`` hint the
  store uses to write incremental snapshots.
* :func:`negotiate_epoch` is the restart-consistency protocol: an
  iterative allreduce that finds the newest epoch *every* rank holds a
  verified snapshot of (gaps per rank are fine -- pruning and mid-write
  crashes make them normal).
* :func:`problem_key` fingerprints the run configuration, so a restore
  refuses snapshots written by a different problem/layout/dtype.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Callable, Iterable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.ckpt.store import CheckpointError, CheckpointStore
from repro.obs import METRICS as _METRICS
from repro.obs import TRACER as _TRACER

__all__ = [
    "ChunkSpec",
    "storage_chunks",
    "DirtyTracker",
    "NoCommonEpochError",
    "negotiate_epoch",
    "problem_key",
    "CheckpointConfig",
    "RankCheckpointer",
]


class NoCommonEpochError(CheckpointError):
    """No epoch is verified on *every* rank.

    Carries ``newest_by_rank`` -- each rank's newest verified epoch (-1
    for a rank with no verified snapshots at all) -- so the operator can
    see exactly which rank is the odd one out instead of an opaque
    failure.  Raised only when the caller opts in with
    ``negotiate_epoch(..., required=True)``; the default contract keeps
    returning -1 (the driver's cold-start path depends on it).
    """

    def __init__(self, newest_by_rank: Sequence[int]) -> None:
        self.newest_by_rank = [int(e) for e in newest_by_rank]
        detail = ", ".join(
            f"rank {r}: {'none' if e < 0 else f'epoch {e}'}"
            for r, e in enumerate(self.newest_by_rank)
        )
        super().__init__(
            f"no common verified snapshot epoch; newest per rank: {detail}"
        )


@dataclass(frozen=True)
class ChunkSpec:
    """One named contiguous slot range of the brick storage."""

    name: str
    start_slot: int
    nslots: int


def storage_chunks(assignment) -> List[ChunkSpec]:
    """Section-granular chunk layout for one slot assignment.

    Chunk names are stable across runs of the same layout (derived from
    region/neighbor set notation, not slot numbers), which is what lets
    an incremental manifest reference its parent's chunks by name.
    Padding slots hold no data and are excluded.
    """
    specs: List[ChunkSpec] = []
    for sec in assignment.sections:
        if sec.nbricks == 0:
            continue
        if sec.kind == "interior":
            name = "interior"
        elif sec.kind == "surface":
            name = f"surface:{sec.region.notation()}"
        else:
            name = f"ghost:{sec.neighbor.notation()}:{sec.region.notation()}"
        specs.append(ChunkSpec(name, sec.start, sec.nbricks))
    return specs


class DirtyTracker:
    """Which slots were written since the last checkpoint, as a bitmap.

    The driver marks ghost sections after each exchange and computed
    slots after each stencil application; :meth:`names` projects the
    bitmap onto the chunk layout so the store can skip clean sections
    without hashing them.
    """

    def __init__(self, nslots: int) -> None:
        self._dirty = np.zeros(int(nslots), dtype=bool)

    def mark_range(self, start: int, nslots: int) -> None:
        self._dirty[start : start + nslots] = True

    def mark_slots(self, slots) -> None:
        self._dirty[np.asarray(slots, dtype=np.int64)] = True

    def mark_all(self) -> None:
        self._dirty[:] = True

    def clear(self) -> None:
        self._dirty[:] = False

    def names(self, specs: Sequence[ChunkSpec]) -> List[str]:
        """Chunk names containing at least one dirty slot."""
        return [
            spec.name
            for spec in specs
            if bool(self._dirty[spec.start_slot : spec.start_slot + spec.nslots].any())
        ]


def negotiate_epoch(
    comm, epochs: Iterable[int], allreduce: Callable, *, required: bool = False
) -> int:
    """Agree on the newest epoch every rank can restore, or -1.

    Each rank contributes the set of epochs it holds *verified*
    snapshots for.  Ranks may have gaps (pruned epochs, a crash between
    one rank's commit and another's), so a single ``min`` of per-rank
    maxima is not enough: the minimum might be an epoch some other rank
    pruned.  Instead the protocol descends: propose the global minimum
    of current candidates, check that everyone holds it exactly, and if
    not, retry from each rank's newest epoch at or below the failed
    proposal.  Candidates strictly decrease each round, so the loop
    terminates in at most ``len(epochs)`` + 1 rounds.

    With ``required=True`` the no-common-epoch outcome raises
    :class:`NoCommonEpochError` naming every rank's newest verified
    epoch (collectively -- all ranks raise) instead of returning -1,
    for callers that cannot proceed without a snapshot.  The default
    keeps the -1 contract the driver's cold-start path relies on.

    *allreduce* is injected (the simmpi collective) so this module does
    not import the fabric.
    """
    mine = sorted(set(int(e) for e in epochs))
    cand = mine[-1] if mine else -1
    while True:
        agreed_cand = int(allreduce(comm, np.asarray(cand, np.int64), np.minimum))
        if agreed_cand < 0:
            if not required:
                return -1
            # Collect each rank's newest epoch positionally: a vector
            # with my newest in my slot, reduced with max, lands the
            # full per-rank picture on every rank using only allreduce.
            newest = np.full(comm.size, -2, dtype=np.int64)
            newest[comm.rank] = mine[-1] if mine else -1
            newest = allreduce(comm, newest, np.maximum)
            raise NoCommonEpochError(newest.tolist())
        cand = agreed_cand
        have = max((e for e in mine if e <= cand), default=-1)
        agreed = int(
            allreduce(comm, np.asarray(int(have == cand), np.int64), np.minimum)
        )
        if agreed:
            return cand
        cand = have


def problem_key(
    problem,
    seed: int,
    method: str,
    alignment: int,
    total_slots: int,
    exchange_period: int,
) -> str:
    """Fingerprint of everything a snapshot's bytes implicitly assume.

    Two runs share a key iff a snapshot from one is byte-meaningful to
    the other: same global problem, decomposition, physical slot layout
    (alignment and slot count pin the permutation), dtype, initial seed,
    and ghost-exchange period.  The exchanger *implementation* is free
    to differ -- that is the point of elastic restart -- but the method
    is included for basic-vs-brick storage shape (array methods store a
    dense array, brick methods store sections).
    """
    uses_bricks = method not in ("basic",)
    parts = [
        "format=1",
        f"extent={tuple(problem.global_extent)}",
        f"ranks={tuple(problem.rank_dims)}",
        f"brick={tuple(problem.brick_dim)}",
        f"ghost={int(problem.ghost)}",
        f"stencil={problem.stencil!r}",
        f"layout={[r.notation() for r in problem.layout]}",
        f"dtype={np.dtype(problem.dtype).str}",
        f"seed={int(seed)}",
        f"bricks={uses_bricks}",
        f"alignment={int(alignment)}",
        f"slots={int(total_slots)}",
        f"period={int(exchange_period)}",
    ]
    return hashlib.sha256("|".join(parts).encode()).hexdigest()[:32]


@dataclass
class CheckpointConfig:
    """Per-run checkpoint settings handed to every rank function.

    ``resume`` is deliberately mutable: the restartable launcher flips
    it to True between attempts so relaunched ranks restore instead of
    reinitialising.
    """

    store: CheckpointStore
    period: int = 1
    mode: str = "incr"
    resume: bool = False

    def due(self, step: int, start_step: int) -> bool:
        """Checkpoint at *step*?  Never at the step we just restored to
        (that snapshot already exists) and never at step 0 (the initial
        condition is recomputable from the seed)."""
        if self.period <= 0:
            return False
        if step == start_step:
            return False
        return step % self.period == 0


class RankCheckpointer:
    """One rank's save/restore engine, bound to a chunk layout.

    Keeps the parent manifest between saves so every checkpoint after
    the first can be incremental, and owns the rank's
    :class:`DirtyTracker`.
    """

    def __init__(
        self,
        config: CheckpointConfig,
        rank: int,
        specs: Sequence[ChunkSpec],
        key: str,
        nslots: int,
    ) -> None:
        self.config = config
        self.rank = int(rank)
        self.specs = list(specs)
        self.key = key
        self.dirty = DirtyTracker(nslots)
        self._parent: Optional[dict] = None
        self.saves = 0
        self.saved_bytes = 0

    # ------------------------------------------------------------------
    def chunk_views(self, storage) -> List[Tuple[str, np.ndarray]]:
        """Zero-copy ``(name, uint8 view)`` pairs over *storage*'s arena."""
        return [
            (spec.name, storage.slot_bytes(spec.start_slot, spec.nslots))
            for spec in self.specs
        ]

    def save(
        self,
        epoch: int,
        chunks: Sequence[Tuple[str, np.ndarray]],
        meta: Mapping,
    ) -> dict:
        """Commit one snapshot; returns its manifest.

        Mode is the configured one, except the first save of a run (or
        after a restore) which is necessarily full.  The dirty bitmap is
        consumed: it is cleared only after the store commits, so a save
        that raises leaves the dirt in place for the next attempt.
        """
        mode = self.config.mode if self._parent is not None else "full"
        dirty_names = None
        if mode == "incr":
            dirty_names = self.dirty.names(self.specs)
        with _TRACER.span(
            "ckpt.save", rank=self.rank, epoch=epoch, mode=mode
        ):
            manifest = self.config.store.save(
                self.rank,
                epoch,
                chunks,
                meta=meta,
                mode=mode,
                problem_key=self.key,
                parent=self._parent,
                dirty_names=dirty_names,
            )
        self._parent = manifest
        self.dirty.clear()
        self.saves += 1
        self.saved_bytes += int(manifest["data_bytes"])
        if _METRICS.enabled:
            _METRICS.count("ckpt.saves", 1, rank=self.rank)
            _METRICS.count(
                "ckpt.saved_bytes", int(manifest["data_bytes"]), rank=self.rank
            )
        return manifest

    # ------------------------------------------------------------------
    def verified_epochs(self) -> List[int]:
        return self.config.store.verified_epochs(self.rank, self.key)

    def restore(self, epoch: int, chunks: Sequence[Tuple[str, np.ndarray]]) -> dict:
        """Load *epoch* into the given chunk views; returns the meta doc.

        The chunk views must be the same layout the snapshot was written
        with (names and byte sizes are checked); writing through them
        re-fills the live arena, so MemMap stitched views built over the
        arena afterwards see the restored bytes with no extra copy.
        """
        with _TRACER.span("ckpt.restore", rank=self.rank, epoch=epoch):
            manifest = self.config.store.manifest(self.rank, epoch)
            if manifest["problem_key"] != self.key:
                raise CheckpointError(
                    f"rank {self.rank} epoch {epoch} was written by a"
                    " different run configuration"
                )
            state = self.config.store.read_state(self.rank, manifest, verify=True)
            names = set(state)
            for name, view in chunks:
                if name not in state:
                    raise CheckpointError(
                        f"snapshot rank {self.rank} epoch {epoch} is missing"
                        f" chunk {name!r}"
                    )
                data = state[name]
                flat = view.reshape(-1).view(np.uint8)
                if flat.nbytes != len(data):
                    raise CheckpointError(
                        f"chunk {name!r} is {len(data)} bytes on disk but"
                        f" {flat.nbytes} bytes live"
                    )
                flat[:] = np.frombuffer(data, dtype=np.uint8)
                names.discard(name)
            if names:
                raise CheckpointError(
                    f"snapshot rank {self.rank} epoch {epoch} has extra"
                    f" chunks {sorted(names)}"
                )
        # Future incrementals hang off the restored snapshot.
        self._parent = manifest
        self.dirty.clear()
        if _METRICS.enabled:
            _METRICS.count("ckpt.restores", 1, rank=self.rank)
        return manifest["meta"]
