"""Content-verified checkpoint store: per-rank snapshot files on disk.

One store is a directory tree::

    <root>/rank0000/ep00000002.bin    chunk payloads, concatenated
    <root>/rank0000/ep00000002.json   manifest (the commit record)

A *snapshot* is a set of named byte chunks (one per brick-storage
section, plus whatever metadata the driver attaches).  Every chunk
carries a CRC32 in the manifest, and the manifest itself is the commit
point of a write: payloads are written to a temp file, fsynced and
renamed first, then the manifest -- so a crash mid-write can never leave
a manifest that refers to missing or half-written data.  A manifest that
exists is, by construction, a complete snapshot (modulo later disk
corruption, which :meth:`CheckpointStore.verify` detects chunk by
chunk).

Incremental snapshots write only the chunks that changed since their
*parent* snapshot; an unchanged chunk is recorded as a reference to the
epoch whose ``.bin`` file physically holds its bytes (references always
point at the writing epoch, never at another reference, so restore
touches at most one file per source epoch and pruning needs no chain
walk).  Change detection is per-chunk CRC32 against the parent manifest;
callers that track dirty bricks can pass ``dirty_names`` to skip even
hashing chunks the run provably never touched.
"""

from __future__ import annotations

import json
import os
import zlib
from pathlib import Path
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = [
    "CheckpointStore",
    "CheckpointError",
    "CheckpointCorruptionError",
    "FORMAT_VERSION",
]

#: manifest schema version; bump on incompatible layout changes
FORMAT_VERSION = 1

_MODES = ("full", "incr")


class CheckpointError(RuntimeError):
    """A checkpoint could not be written, found, or understood."""


class CheckpointCorruptionError(CheckpointError):
    """Stored bytes fail their manifest CRC32 (or are missing/truncated)."""


def _rank_dirname(rank: int) -> str:
    return f"rank{rank:04d}"


def _manifest_name(epoch: int) -> str:
    return f"ep{epoch:08d}.json"


def _data_name(epoch: int) -> str:
    return f"ep{epoch:08d}.bin"


def _jsonable(value):
    """Coerce numpy scalars (and nested containers) to plain JSON types."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if hasattr(value, "item") and not isinstance(value, (str, bytes)):
        return value.item()
    return value


class CheckpointStore:
    """Filesystem-backed snapshot store for one run (all ranks, one dir).

    The store is format-agnostic about what the chunks *mean*: it maps
    ``(rank, epoch)`` to named verified byte blobs plus a JSON ``meta``
    document.  The driver decides what goes in (see
    :mod:`repro.ckpt.snapshot`).
    """

    def __init__(self, root) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    # ------------------------------------------------------------------
    # paths
    # ------------------------------------------------------------------
    def _rank_dir(self, rank: int) -> Path:
        return self.root / _rank_dirname(rank)

    def data_path(self, rank: int, epoch: int) -> Path:
        return self._rank_dir(rank) / _data_name(epoch)

    def manifest_path(self, rank: int, epoch: int) -> Path:
        return self._rank_dir(rank) / _manifest_name(epoch)

    # ------------------------------------------------------------------
    # write path
    # ------------------------------------------------------------------
    def save(
        self,
        rank: int,
        epoch: int,
        chunks: Sequence[Tuple[str, object]],
        meta: Optional[Mapping] = None,
        *,
        mode: str = "full",
        problem_key: str = "",
        parent: Optional[Mapping] = None,
        dirty_names: Optional[Iterable[str]] = None,
    ) -> dict:
        """Commit one rank snapshot; returns the manifest dict.

        *chunks* is a sequence of ``(name, buffer)`` pairs; each buffer
        must be C-contiguous and support the buffer protocol (a NumPy
        view is written zero-copy).  *parent* is the rank's previous
        manifest and is required for ``mode="incr"`` (a parentless
        incremental silently degrades to a full snapshot).  When
        *dirty_names* is given, chunks **not** named in it are assumed
        byte-identical to the parent and recorded as references without
        being hashed; chunks named in it are still CRC-deduplicated.
        """
        if mode not in _MODES:
            raise CheckpointError(f"unknown snapshot mode {mode!r}")
        if epoch < 0:
            raise CheckpointError(f"epoch must be >= 0, got {epoch}")
        if mode == "incr" and parent is None:
            mode = "full"
        parent_entries: Dict[str, dict] = {}
        if mode == "incr":
            if parent.get("problem_key") != problem_key:
                raise CheckpointError(
                    "incremental parent belongs to a different run"
                    f" (problem key {parent.get('problem_key')!r} !="
                    f" {problem_key!r})"
                )
            parent_entries = {c["name"]: c for c in parent["chunks"]}
        dirty = None if dirty_names is None else set(dirty_names)

        entries: List[dict] = []
        blobs: List[memoryview] = []
        offset = 0
        for name, buf in chunks:
            view = memoryview(buf)
            if not view.contiguous:
                raise CheckpointError(
                    f"chunk {name!r} is not contiguous; cannot snapshot"
                    " zero-copy"
                )
            view = view.cast("B")
            nbytes = view.nbytes
            prev = parent_entries.get(name)
            if prev is not None and prev["nbytes"] == nbytes:
                if dirty is not None and name not in dirty:
                    # Provably untouched since the parent: reference the
                    # epoch that physically wrote it, skip hashing.
                    entries.append(dict(prev, name=name))
                    continue
                crc = zlib.crc32(view)
                if crc == prev["crc32"]:
                    entries.append(dict(prev, name=name))
                    continue
            else:
                crc = zlib.crc32(view)
            entries.append(
                {
                    "name": name,
                    "nbytes": nbytes,
                    "crc32": crc,
                    "epoch": epoch,
                    "offset": offset,
                }
            )
            blobs.append(view)
            offset += nbytes

        manifest = {
            "format": FORMAT_VERSION,
            "rank": int(rank),
            "epoch": int(epoch),
            "mode": mode,
            "parent": int(parent["epoch"]) if mode == "incr" else None,
            "problem_key": problem_key,
            "data_bytes": offset,
            "meta": _jsonable(dict(meta or {})),
            "chunks": entries,
        }

        rank_dir = self._rank_dir(rank)
        rank_dir.mkdir(parents=True, exist_ok=True)
        # Atomic commit: payload first (write temp, fsync, rename), then
        # the manifest the same way.  The manifest rename is the commit
        # point; readers that find a manifest always find its bytes.
        data_path = rank_dir / _data_name(epoch)
        tmp = rank_dir / (_data_name(epoch) + ".tmp")
        with open(tmp, "wb") as fh:
            for blob in blobs:
                fh.write(blob)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, data_path)
        man_path = rank_dir / _manifest_name(epoch)
        tmp = rank_dir / (_manifest_name(epoch) + ".tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(manifest, fh, indent=1)
            fh.write("\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, man_path)
        self._fsync_dir(rank_dir)
        return manifest

    @staticmethod
    def _fsync_dir(path: Path) -> None:
        """Make the renames themselves durable (POSIX dirs need fsync)."""
        try:
            fd = os.open(path, os.O_RDONLY)
        except OSError:  # pragma: no cover - exotic filesystems
            return
        try:
            os.fsync(fd)
        except OSError:  # pragma: no cover - not all FSs support it
            pass
        finally:
            os.close(fd)

    # ------------------------------------------------------------------
    # read path
    # ------------------------------------------------------------------
    def manifest(self, rank: int, epoch: int) -> dict:
        """Load and structurally validate one manifest."""
        path = self.manifest_path(rank, epoch)
        try:
            doc = json.loads(path.read_text(encoding="utf-8"))
        except OSError as exc:
            raise CheckpointError(
                f"no manifest for rank {rank} epoch {epoch}: {exc}"
            ) from exc
        except json.JSONDecodeError as exc:
            raise CheckpointCorruptionError(
                f"manifest {path} is not valid JSON: {exc}"
            ) from exc
        if doc.get("format") != FORMAT_VERSION:
            raise CheckpointError(
                f"manifest {path} has format {doc.get('format')!r},"
                f" expected {FORMAT_VERSION}"
            )
        if doc.get("rank") != rank or doc.get("epoch") != epoch:
            raise CheckpointCorruptionError(
                f"manifest {path} identifies as rank {doc.get('rank')}"
                f" epoch {doc.get('epoch')}"
            )
        if not isinstance(doc.get("chunks"), list):
            raise CheckpointCorruptionError(f"manifest {path} has no chunks")
        return doc

    def read_state(
        self, rank: int, manifest: Mapping, verify: bool = True
    ) -> Dict[str, bytes]:
        """Read every chunk of *manifest*, following references.

        Returns ``{chunk name: bytes}``.  With *verify* (the default)
        every chunk is CRC32-checked; a single flipped byte anywhere in
        the closure raises :class:`CheckpointCorruptionError`.
        """
        by_epoch: Dict[int, List[Mapping]] = {}
        for entry in manifest["chunks"]:
            by_epoch.setdefault(int(entry["epoch"]), []).append(entry)
        out: Dict[str, bytes] = {}
        for src_epoch, entries in sorted(by_epoch.items()):
            path = self.data_path(rank, src_epoch)
            try:
                fh = open(path, "rb")
            except OSError as exc:
                raise CheckpointCorruptionError(
                    f"rank {rank} epoch {manifest['epoch']}: missing data"
                    f" file {path} (referenced for"
                    f" {[e['name'] for e in entries]})"
                ) from exc
            with fh:
                for entry in sorted(entries, key=lambda e: e["offset"]):
                    fh.seek(entry["offset"])
                    data = fh.read(entry["nbytes"])
                    if len(data) != entry["nbytes"]:
                        raise CheckpointCorruptionError(
                            f"chunk {entry['name']!r} truncated in {path}:"
                            f" wanted {entry['nbytes']} bytes,"
                            f" got {len(data)}"
                        )
                    if verify and zlib.crc32(data) != entry["crc32"]:
                        raise CheckpointCorruptionError(
                            f"chunk {entry['name']!r} of rank {rank} epoch"
                            f" {manifest['epoch']} fails CRC32"
                            f" (stored in {path.name})"
                        )
                    out[entry["name"]] = data
        return out

    # ------------------------------------------------------------------
    # enumeration
    # ------------------------------------------------------------------
    def ranks(self) -> List[int]:
        out = []
        for child in sorted(self.root.glob("rank[0-9]*")):
            if child.is_dir():
                try:
                    out.append(int(child.name[4:]))
                except ValueError:  # pragma: no cover - stray dirs
                    continue
        return out

    def epochs(self, rank: int) -> List[int]:
        """Epochs with a committed manifest, ascending (not yet verified)."""
        out = []
        for path in self._rank_dir(rank).glob("ep[0-9]*.json"):
            try:
                out.append(int(path.stem[2:]))
            except ValueError:  # pragma: no cover - stray files
                continue
        return sorted(out)

    def verified_epochs(
        self, rank: int, problem_key: Optional[str] = None
    ) -> List[int]:
        """Epochs whose full chunk closure reads back CRC-clean.

        This is what a restarting rank feeds into the epoch negotiation:
        a snapshot that fails verification is as good as absent.
        """
        out = []
        for epoch in self.epochs(rank):
            try:
                man = self.manifest(rank, epoch)
                if problem_key is not None and man["problem_key"] != problem_key:
                    continue
                self.read_state(rank, man, verify=True)
            except CheckpointError:
                continue
            out.append(epoch)
        return out

    def consistent_epochs(
        self, nranks: Optional[int] = None, verified: bool = False
    ) -> List[int]:
        """Epochs present for *every* rank (world size *nranks*, or the
        set of rank directories found)."""
        ranks = list(range(nranks)) if nranks else self.ranks()
        if not ranks:
            return []
        lister = self.verified_epochs if verified else self.epochs
        common = set(lister(ranks[0]))
        for rank in ranks[1:]:
            common &= set(lister(rank))
            if not common:
                break
        return sorted(common)

    def latest_consistent(
        self, nranks: Optional[int] = None, verified: bool = False
    ) -> int:
        """Newest globally consistent epoch, or -1 when there is none."""
        epochs = self.consistent_epochs(nranks, verified=verified)
        return epochs[-1] if epochs else -1

    # ------------------------------------------------------------------
    # maintenance
    # ------------------------------------------------------------------
    def verify(self) -> List[dict]:
        """CRC-verify every snapshot; one report row per (rank, epoch)."""
        rows = []
        for rank in self.ranks():
            for epoch in self.epochs(rank):
                row = {
                    "rank": rank,
                    "epoch": epoch,
                    "ok": True,
                    "mode": "",
                    "data_bytes": 0,
                    "error": "",
                }
                try:
                    man = self.manifest(rank, epoch)
                    row["mode"] = man.get("mode", "")
                    row["data_bytes"] = int(man.get("data_bytes", 0))
                    self.read_state(rank, man, verify=True)
                except CheckpointError as exc:
                    row["ok"] = False
                    row["error"] = str(exc)
                rows.append(row)
        return rows

    def prune(self, keep: int = 1) -> List[Path]:
        """Delete all but the newest *keep* epochs per rank.

        Epochs outside the kept set survive if a kept incremental still
        references their bytes (references point directly at the writing
        epoch, so the closure is one hop).  Returns the deleted paths.
        If any kept manifest is unreadable the rank is skipped -- pruning
        must never guess about liveness.
        """
        if keep < 1:
            raise CheckpointError("prune must keep at least one epoch")
        removed: List[Path] = []
        for rank in self.ranks():
            epochs = self.epochs(rank)
            kept = epochs[-keep:]
            closure = set(kept)
            try:
                for epoch in kept:
                    man = self.manifest(rank, epoch)
                    closure.update(
                        int(c["epoch"]) for c in man["chunks"]
                    )
            except CheckpointError:
                continue
            rank_dir = self._rank_dir(rank)
            for epoch in epochs:
                if epoch in closure:
                    continue
                for path in (
                    self.manifest_path(rank, epoch),
                    self.data_path(rank, epoch),
                ):
                    # Manifest first so a partial prune can't leave a
                    # manifest whose bytes are gone.
                    if path.exists():
                        path.unlink()
                        removed.append(path)
            for stray in rank_dir.glob("*.tmp"):
                stray.unlink()
                removed.append(stray)
        return removed

    def ls_rows(self, nranks: Optional[int] = None) -> List[dict]:
        """Per-epoch summary rows for the ``repro ckpt ls`` listing."""
        ranks = self.ranks()
        world = nranks or (len(ranks) or None)
        per_epoch: Dict[int, dict] = {}
        for rank in ranks:
            for epoch in self.epochs(rank):
                row = per_epoch.setdefault(
                    epoch,
                    {"epoch": epoch, "ranks": 0, "bytes": 0, "modes": set()},
                )
                row["ranks"] += 1
                try:
                    man = self.manifest(rank, epoch)
                except CheckpointError:
                    row["modes"].add("corrupt")
                    continue
                row["bytes"] += int(man.get("data_bytes", 0))
                row["modes"].add(man.get("mode", "?"))
        out = []
        for epoch in sorted(per_epoch):
            row = per_epoch[epoch]
            row["modes"] = "+".join(sorted(row["modes"]))
            row["consistent"] = bool(world and row["ranks"] == world)
            out.append(row)
        return out
