"""Roofline compute model plus parallelization overhead.

Stencil time per rank is ``max(flops / peak, bytes / bandwidth)`` -- the
Roofline model the paper itself uses to frame arithmetic intensity
(Section 7: the 7-point stencil at AI 8/16 flop/byte is bandwidth-bound; the
125-point stencil at 139/16 approaches compute-bound).

Figure 10 additionally shows that YASK's *two-level* OpenMP schedule is
"inefficient for small subdomains" while the brick code uses a cheaper
one-level schedule that is slightly worse on large boxes; we model that as a
fixed per-timestep parallelization overhead plus an efficiency factor.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["ComputeModel"]


@dataclass(frozen=True)
class ComputeModel:
    """Node-level compute capability.

    Parameters
    ----------
    peak_flops:
        Sustained double-precision flop/s of the node (or device).
    mem_bw:
        Bandwidth (bytes/s) feeding the compute -- MCDRAM or HBM.
    parallel_overhead:
        Fixed seconds per parallel region launch (per timestep).
    efficiency:
        Fraction of the roofline actually achieved by the kernel.
    """

    peak_flops: float
    mem_bw: float
    parallel_overhead: float = 0.0
    efficiency: float = 1.0

    def __post_init__(self) -> None:
        if self.peak_flops <= 0 or self.mem_bw <= 0:
            raise ValueError("peak_flops and mem_bw must be positive")
        if not 0 < self.efficiency <= 1:
            raise ValueError("efficiency must be in (0, 1]")

    def stencil_time(
        self, points: int, flops_per_point: float, bytes_per_point: float
    ) -> float:
        """Roofline time for applying a stencil to *points* grid points."""
        if points < 0:
            raise ValueError("points cannot be negative")
        if points == 0:
            return self.parallel_overhead
        flop_time = points * flops_per_point / self.peak_flops
        mem_time = points * bytes_per_point / self.mem_bw
        return self.parallel_overhead + max(flop_time, mem_time) / self.efficiency

    def with_overhead(self, parallel_overhead: float) -> "ComputeModel":
        """Copy of this model with a different per-timestep launch cost."""
        return ComputeModel(
            self.peak_flops, self.mem_bw, parallel_overhead, self.efficiency
        )

    def with_efficiency(self, efficiency: float) -> "ComputeModel":
        return ComputeModel(
            self.peak_flops, self.mem_bw, self.parallel_overhead, efficiency
        )
