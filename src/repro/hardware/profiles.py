"""Machine profiles: Theta (KNL), Summit (V100) and a generic host.

Each profile bundles the network, memory, compute and (optionally) GPU
models with a handful of engine-specific calibration constants.  Absolute
constants were calibrated so the *shape* of the paper's figures is
reproduced (see EXPERIMENTS.md); the provenance of each number is noted
inline.  None of them is used by the correctness paths -- only by the
modelled-time benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

from repro.hardware.compute import ComputeModel
from repro.hardware.gpu import GpuModel
from repro.hardware.memory import AccessPattern, MemoryModel
from repro.hardware.network import NetworkModel

__all__ = ["MachineProfile", "theta_knl", "summit_v100", "generic_host"]


@dataclass(frozen=True)
class MachineProfile:
    """Everything the modelled-time driver needs to know about a machine.

    Parameters beyond the four sub-models:

    page_size:
        Host base page size in bytes (Theta/x86: 4 KiB; Summit/Power9:
        64 KiB) -- controls MemMap padding.
    mmap_limit:
        Default ``vm.max_map_count`` (65530 on Linux) -- MemMap must stay
        under this many mappings per process.
    type_msg_overhead / type_engine_bw:
        MPI derived-datatype engine: fixed per-message datatype-processing
        cost, and the (interpretive, non-vectorized) streaming bandwidth of
        the pack loop inside the MPI library.  Calibrated so MPI_Types sits
        ~2 orders of magnitude above MemMap at small subdomains on KNL
        (paper: up to 460x) and ~10x at 512^3 (Fig. 9).
    pack_launch_overhead:
        Per pack/unpack phase parallel-region launch cost for the
        application-level packing baseline (YASK-like).
    yask_compute / brick_compute:
        Separate compute models: YASK's autotuned two-level schedule is a
        little more efficient on large boxes but pays a larger per-timestep
        launch overhead (Fig. 10 discussion).
    """

    name: str
    network: NetworkModel
    memory: MemoryModel
    compute: ComputeModel
    page_size: int
    mmap_limit: int = 65530
    gpu: Optional[GpuModel] = None
    type_msg_overhead: float = 0.0
    type_engine_bw: float = 1e9
    pack_launch_overhead: float = 0.0
    yask_compute: Optional[ComputeModel] = None
    brick_compute: Optional[ComputeModel] = None

    def __post_init__(self) -> None:
        if self.page_size <= 0 or self.mmap_limit <= 0:
            raise ValueError("page_size and mmap_limit must be positive")
        if self.type_engine_bw <= 0:
            raise ValueError("type_engine_bw must be positive")
        # Fall back to the generic compute model where a specialised one
        # was not supplied.
        if self.yask_compute is None:
            object.__setattr__(self, "yask_compute", self.compute)
        if self.brick_compute is None:
            object.__setattr__(self, "brick_compute", self.compute)

    def with_page_size(self, page_size: int) -> "MachineProfile":
        """Copy of this profile with a different base page size (Fig. 18)."""
        return replace(self, page_size=page_size)


def theta_knl() -> MachineProfile:
    """Cray XC40 node: KNL 7230, MCDRAM flat mode, Aries dragonfly.

    Provenance of constants:

    * compute 2.2 Tflop/s sustained, MCDRAM STREAM 467 GB/s: paper Section 2.
    * Aries: ~3 us small-message latency, ~8 GB/s practical per-node
      injection (11.7 GB/s peak), half-bandwidth near 16 KiB: public Aries
      microbenchmarks; reproduces the Fig. 9 startup-time knee.
    * 2 us per posted operation: KNL's slow serial core; 26 sends + 26
      recvs then give MemMap its ~0.1 ms floor, matching Fig. 9.
    * datatype engine 1.5 GB/s + 1.2 ms/message: interpretive per-element
      processing on a 1.1-1.5 GHz core; yields MPI_Types ~30 ms flat at
      small N (~2.5 orders above MemMap, cf. the paper's 460x) and
      ~200 ms at 512^3.
    * pack pattern bandwidths (unit 0.35 / stanza 0.14 / strided 0.045 of
      STREAM): aggregate read+write throughput of OpenMP pack loops with
      8-element stanzas on KNL; puts YASK ~4x over MemMap at 512^3 and
      ~14x at 16^3 (Figs. 1, 9).
    """
    memory = MemoryModel(
        stream_bw=467e9,
        seg_overhead=25e-9,  # KNL per gather-loop trip (short strided runs)
        latency=150e-9,
        derate={
            AccessPattern.UNIT: 0.35,
            AccessPattern.STANZA: 0.14,
            AccessPattern.STRIDED: 0.045,
        },
    )
    network = NetworkModel(
        alpha=3e-6,
        bw_peak=8e9,
        n_half=16 * 1024,
        overhead_send=0.75e-6,
        overhead_recv=0.75e-6,
    )
    compute = ComputeModel(peak_flops=2.2e12, mem_bw=467e9, efficiency=0.8)
    return MachineProfile(
        name="theta-knl",
        network=network,
        memory=memory,
        compute=compute,
        page_size=4 * 1024,
        type_msg_overhead=1.2e-3,
        type_engine_bw=1.5e9,
        pack_launch_overhead=300e-6,
        yask_compute=compute.with_efficiency(0.9).with_overhead(150e-6),
        brick_compute=compute.with_efficiency(0.8).with_overhead(20e-6),
    )


def summit_v100() -> MachineProfile:
    """IBM AC922 node: 6x V100, Power9 hosts, dual-rail EDR InfiniBand.

    Provenance:

    * V100 HBM 828.8 GB/s / 7.8 Tflop/s: paper Section 2.
    * NIC: LayoutCA tops out near 21 GB/s in Table 2 -> 23 GB/s peak with a
      64 KiB half-bandwidth point reproduces the 16->4.7 GB/s droop for
      small subdomains.
    * Power9 page size 64 KiB: paper Sections 4/7.3.
    * UM fault ~0.5 us/page (batched), migration 60 GB/s: NVLink2 + ATS; gives
      MemMapUM its flat ~17 GB/s achieved bandwidth (Table 2).
    * datatype engine 5 GB/s + 0.1 ms/message on the Power9 host gives
      MPI_TypesUM ~10x LayoutCA at 512^3 (Fig. 14) and ~10x at the V2
      strong-scaling limit (paper: 5.8x).
    """
    memory = MemoryModel(
        stream_bw=135e9,  # Power9 host STREAM (per socket) -- staging path
        seg_overhead=25e-9,
        latency=110e-9,
        derate={
            AccessPattern.UNIT: 0.5,
            AccessPattern.STANZA: 0.25,
            AccessPattern.STRIDED: 0.08,
        },
    )
    network = NetworkModel(
        alpha=1.5e-6,
        bw_peak=23e9,
        n_half=64 * 1024,
        overhead_send=1e-6,
        overhead_recv=1e-6,
    )
    gpu = GpuModel(
        hbm_bw=828.8e9,
        peak_flops=7.8e12,
        host_link_bw=50e9,
        host_link_latency=10e-6,
        rdma_efficiency=0.95,
        page_size=64 * 1024,
        fault_overhead=0.5e-6,
        um_bw=60e9,
    )
    compute = ComputeModel(peak_flops=7.8e12, mem_bw=828.8e9, efficiency=0.75)
    return MachineProfile(
        name="summit-v100",
        network=network,
        memory=memory,
        compute=compute,
        page_size=64 * 1024,
        gpu=gpu,
        type_msg_overhead=0.1e-3,
        type_engine_bw=5e9,
        pack_launch_overhead=30e-6,
        yask_compute=compute,
        brick_compute=compute,
    )


def generic_host() -> MachineProfile:
    """A contemporary x86 server; used by examples and quick tests."""
    memory = MemoryModel(
        stream_bw=100e9,
        seg_overhead=20e-9,
        latency=90e-9,
        derate={
            AccessPattern.UNIT: 0.6,
            AccessPattern.STANZA: 0.3,
            AccessPattern.STRIDED: 0.1,
        },
    )
    network = NetworkModel(
        alpha=1.5e-6,
        bw_peak=12e9,
        n_half=32 * 1024,
        overhead_send=0.5e-6,
        overhead_recv=0.5e-6,
    )
    compute = ComputeModel(peak_flops=1.5e12, mem_bw=100e9, efficiency=0.8)
    return MachineProfile(
        name="generic-host",
        network=network,
        memory=memory,
        compute=compute,
        page_size=4 * 1024,
        type_msg_overhead=0.2e-3,
        type_engine_bw=4e9,
        pack_launch_overhead=10e-6,
    )
