"""On-node memory model: STREAM bandwidth with access-pattern penalties.

Packing a surface region touches memory in one of three patterns (paper,
Section 1): **unit-stride** (a face normal to the slowest axis), **stanza**
(short contiguous runs separated by jumps -- faces normal to middle axes),
and **strided** (single elements separated by a full row -- faces normal to
the unit-stride axis).  These patterns "fight against the hardware trends in
SIMD", so each carries a bandwidth-derating factor.

A pack or unpack of ``nbytes`` split into ``nsegments`` contiguous runs costs

``seg_overhead * nsegments + nbytes * 2 / (stream_bw * derate(pattern))``

(the factor 2: packing reads the source and writes the buffer).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Mapping

__all__ = ["AccessPattern", "MemoryModel"]


class AccessPattern(enum.Enum):
    """Memory access shape of a pack/unpack loop."""

    UNIT = "unit"        # one long contiguous run
    STANZA = "stanza"    # runs of tens-to-hundreds of elements
    STRIDED = "strided"  # runs of a handful of elements

    @classmethod
    def classify(cls, run_elems: int) -> "AccessPattern":
        """Pick a pattern from the length of contiguous runs, in elements."""
        if run_elems >= 4096:
            return cls.UNIT
        if run_elems >= 32:
            return cls.STANZA
        return cls.STRIDED


_DEFAULT_DERATE: Dict[AccessPattern, float] = {
    AccessPattern.UNIT: 1.0,
    AccessPattern.STANZA: 0.45,
    AccessPattern.STRIDED: 0.12,
}


@dataclass(frozen=True)
class MemoryModel:
    """Host memory subsystem.

    Parameters
    ----------
    stream_bw:
        Sustainable copy bandwidth in bytes/second (e.g. 467 GB/s MCDRAM).
    seg_overhead:
        Fixed cost per contiguous segment of a pack loop (loop/TLB startup).
    latency:
        Single-access memory latency (used for pointer-chasing estimates).
    derate:
        Bandwidth fraction achieved per access pattern.
    """

    stream_bw: float
    seg_overhead: float = 20e-9
    latency: float = 120e-9
    derate: Mapping[AccessPattern, float] = field(
        default_factory=lambda: dict(_DEFAULT_DERATE)
    )

    def __post_init__(self) -> None:
        if self.stream_bw <= 0:
            raise ValueError("stream_bw must be positive")
        for p, f in self.derate.items():
            if not 0 < f <= 1:
                raise ValueError(f"derate for {p} must be in (0, 1], got {f}")

    # ------------------------------------------------------------------
    def copy_time(self, nbytes: int, pattern: AccessPattern = AccessPattern.UNIT) -> float:
        """Time to move *nbytes* once (read + write) at the pattern's bw."""
        if nbytes < 0:
            raise ValueError("nbytes cannot be negative")
        bw = self.stream_bw * self.derate[pattern]
        return 2.0 * nbytes / bw

    def pack_time(self, nbytes: int, nsegments: int, run_elems: int, itemsize: int = 8) -> float:
        """Cost of packing *nbytes* arranged as *nsegments* runs.

        ``run_elems`` is the typical contiguous run length in elements and
        selects the access pattern; *itemsize* converts it for sanity checks
        only.
        """
        if nsegments < 0:
            raise ValueError("nsegments cannot be negative")
        if nbytes == 0 or nsegments == 0:
            return 0.0
        pattern = AccessPattern.classify(run_elems)
        return self.seg_overhead * nsegments + self.copy_time(nbytes, pattern)
