"""LogGP-style network cost model.

A point-to-point message of ``n`` bytes costs

``alpha + n / bw_eff(n)``        (wire time)

where the effective bandwidth ramps up with message size following the
classic half-bandwidth-point rule ``bw_eff(n) = bw_peak * n / (n + n_half)``.
Posting the operation additionally costs CPU *overhead* seconds (charged to
the artifact's ``call`` phase); wire time is charged to ``wait``.

Rationale (DESIGN.md Section 2): the paper's Figure 9 shows communication
time flattening for small subdomains -- "constrained more by communication
startup time than network bandwidth".  An alpha term per message plus a
bandwidth term per byte reproduces exactly that knee, and the per-message
``alpha``/``overhead`` split is why Layout (42 messages) trails MemMap (26)
slightly at small sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

__all__ = ["NetworkModel"]


@dataclass(frozen=True)
class NetworkModel:
    """Analytic point-to-point network.

    Parameters
    ----------
    alpha:
        Per-message wire latency in seconds.
    bw_peak:
        Asymptotic injection bandwidth per rank, bytes/second.
    n_half:
        Message size (bytes) at which half of ``bw_peak`` is achieved.
    overhead_send, overhead_recv:
        CPU cost (seconds) of posting one Isend / Irecv (``call`` phase).
    injection_serial:
        If True, wire times of concurrent messages from one rank serialize
        on the NIC (bandwidth shared); latency still overlaps.
    """

    alpha: float
    bw_peak: float
    n_half: float
    overhead_send: float
    overhead_recv: float
    injection_serial: bool = True

    def __post_init__(self) -> None:
        if self.alpha < 0 or self.bw_peak <= 0 or self.n_half < 0:
            raise ValueError("network parameters must be positive")

    # ------------------------------------------------------------------
    def effective_bandwidth(self, nbytes: int) -> float:
        """Achieved bandwidth (bytes/s) for an *nbytes* message."""
        if nbytes <= 0:
            return self.bw_peak
        return self.bw_peak * nbytes / (nbytes + self.n_half)

    def wire_time(self, nbytes: int) -> float:
        """Latency + serialization time of one message."""
        if nbytes < 0:
            raise ValueError("message size cannot be negative")
        if nbytes == 0:
            return self.alpha
        return self.alpha + nbytes / self.effective_bandwidth(nbytes)

    # ------------------------------------------------------------------
    def call_time(self, n_sends: int, n_recvs: int) -> float:
        """CPU time to post a batch of nonblocking operations."""
        return n_sends * self.overhead_send + n_recvs * self.overhead_recv

    def wait_time(self, send_sizes: Iterable[int], recv_sizes: Iterable[int]) -> float:
        """Time until all messages of one bulk-synchronous exchange complete.

        Under ``injection_serial`` the per-byte terms of all sends serialize
        on the sender NIC; receives are assumed to arrive concurrently from
        distinct peers and overlap with the sends (full duplex), so the
        exchange completes at ``max(send stream, recv stream)`` plus one
        latency.  This matches how the paper measures ``wait``: a single
        ``MPI_Waitall`` after posting everything.
        """
        sends = [int(s) for s in send_sizes]
        recvs = [int(s) for s in recv_sizes]
        if not sends and not recvs:
            return 0.0
        if self.injection_serial:
            send_stream = sum(
                s / self.effective_bandwidth(s) for s in sends if s > 0
            )
            recv_stream = sum(
                s / self.effective_bandwidth(s) for s in recvs if s > 0
            )
            return self.alpha + max(send_stream, recv_stream)
        # Fully concurrent: the slowest single message gates completion.
        return max(self.wire_time(s) for s in sends + recvs)

    def exchange_time(
        self, send_sizes: Iterable[int], recv_sizes: Iterable[int]
    ) -> float:
        """call + wait for one full ghost-zone exchange (convenience)."""
        sends = list(send_sizes)
        recvs = list(recv_sizes)
        return self.call_time(len(sends), len(recvs)) + self.wait_time(sends, recvs)
