"""GPU data-movement model: HBM, host link, GPUDirect RDMA, Unified Memory.

Section 5 of the paper distinguishes three ways MPI data reaches the NIC on
a GPU node:

* **manual staging** -- cudaMemcpy to the host, MPI from host buffers;
* **CUDA-aware MPI + GPUDirect (CA)** -- the NIC DMAs device memory
  directly (no staging, works with ``cudaMalloc`` memory, no MemMap);
* **Unified Memory / ATS (UM)** -- host-allocated, page-fault-migrated
  memory usable by both CPU and GPU; MemMap works here because the mapping
  lives in the host page tables.

The model charges each path exactly the bytes it moves over each link, plus
a per-page fault cost for UM (64 KiB pages on Summit's Power9 hosts).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.indexing import ceil_div

__all__ = ["GpuModel"]


@dataclass(frozen=True)
class GpuModel:
    """Single-GPU data movement capability.

    Parameters
    ----------
    hbm_bw:
        Device memory bandwidth, bytes/s (V100: 828.8 GB/s).
    peak_flops:
        Device double-precision peak, flop/s (V100: 7.8 Tflop/s).
    host_link_bw:
        CPU<->GPU transfer bandwidth per direction, bytes/s (NVLink2 on
        Summit: ~50 GB/s).
    host_link_latency:
        Fixed cost per explicit cudaMemcpy call.
    rdma_efficiency:
        Fraction of the network's peak bandwidth GPUDirect RDMA achieves
        (reading HBM over PCIe/NVLink from the NIC loses a little).
    page_size:
        Unified-Memory page granularity in bytes (Summit: 64 KiB).
    fault_overhead:
        Fixed cost of servicing one UM page fault (GPU or CPU side);
        ATS/NVLink2 fault batching makes this sub-microsecond in the
        steady state (calibrated so MemMap_UM's achieved bandwidth stays
        near-flat, Table 2).
    um_bw:
        Migration bandwidth for batched faulted pages, bytes/s.
    """

    hbm_bw: float = 828.8e9
    peak_flops: float = 7.8e12
    host_link_bw: float = 50e9
    host_link_latency: float = 10e-6
    rdma_efficiency: float = 0.95
    page_size: int = 64 * 1024
    fault_overhead: float = 0.5e-6
    um_bw: float = 60e9

    def __post_init__(self) -> None:
        if min(self.hbm_bw, self.peak_flops, self.host_link_bw, self.um_bw) <= 0:
            raise ValueError("bandwidths and peak flops must be positive")
        if self.page_size <= 0:
            raise ValueError("page_size must be positive")
        if not 0 < self.rdma_efficiency <= 1:
            raise ValueError("rdma_efficiency must be in (0, 1]")

    # ------------------------------------------------------------------
    def staged_copy_time(self, nbytes: int, ncopies: int = 1) -> float:
        """Explicit cudaMemcpy of *nbytes* split over *ncopies* calls."""
        if nbytes < 0 or ncopies < 0:
            raise ValueError("sizes must be non-negative")
        if nbytes == 0 or ncopies == 0:
            return 0.0
        return ncopies * self.host_link_latency + nbytes / self.host_link_bw

    def um_touch_time(self, nbytes: int, resident: bool = False) -> float:
        """Cost of the first touch of *nbytes* of UM data on the other side.

        Pages already resident cost nothing; otherwise each page pays a
        fault plus migration at ``um_bw``.
        """
        if nbytes < 0:
            raise ValueError("nbytes cannot be negative")
        if resident or nbytes == 0:
            return 0.0
        npages = ceil_div(nbytes, self.page_size)
        # Migration is page-granular: a partial page still moves whole.
        return npages * self.fault_overhead + npages * self.page_size / self.um_bw

    def padded_bytes(self, nbytes: int) -> int:
        """Size of *nbytes* after padding up to the UM page size."""
        if nbytes < 0:
            raise ValueError("nbytes cannot be negative")
        if nbytes == 0:
            return 0
        return ceil_div(nbytes, self.page_size) * self.page_size
