"""Hardware cost models and machine profiles.

Every figure in the paper was produced on one of two machines (Section 2):

* **Theta**: Cray XC40, Intel Xeon Phi KNL 7230 per node, Aries dragonfly.
* **Summit**: IBM AC922, 6x NVIDIA V100 per node, EDR InfiniBand fat-tree.

Neither is available here, so the benchmark harness charges all data
movement to the analytic models in this package (DESIGN.md Section 2).  The
models are deliberately simple -- LogGP-style networks, STREAM-with-penalty
memories, roofline compute -- because the paper's claims are about *which
data-movement terms each scheme pays*, not about micro-architecture.
"""

from repro.hardware.compute import ComputeModel
from repro.hardware.gpu import GpuModel
from repro.hardware.memory import AccessPattern, MemoryModel
from repro.hardware.network import NetworkModel
from repro.hardware.profiles import (
    MachineProfile,
    generic_host,
    summit_v100,
    theta_knl,
)

__all__ = [
    "AccessPattern",
    "ComputeModel",
    "GpuModel",
    "MachineProfile",
    "MemoryModel",
    "NetworkModel",
    "generic_host",
    "summit_v100",
    "theta_knl",
]
