"""The real MemMap mechanism: ``memfd_create`` + ``mmap(MAP_FIXED)``.

This is not a simulation.  Exactly as in the paper's Figure 5, the arena's
"physical resources" are the contents of an anonymous in-memory file
(created with :func:`os.memfd_create`); a stitched view reserves a
contiguous span of virtual addresses (an anonymous ``PROT_NONE`` mapping)
and then ``mmap``\\ s each requested file range over it with
``MAP_SHARED | MAP_FIXED``.  The resulting NumPy array *aliases* the brick
storage: writing a brick changes what every view containing it sees, with
no data movement whatsoever.

Caveats handled here mirror the paper's Section 4 concerns: every range
must be page-aligned (callers pad regions to page multiples -- the Table 2
bandwidth waste), and each live view consumes ``len(chunks)`` entries of
the kernel's ``vm.max_map_count`` budget (default 65530), which is exactly
why Layout optimization is used to minimise the number of mappings.
"""

from __future__ import annotations

import ctypes
import mmap as _pymmap
import os
import sys
from typing import List, Sequence, Tuple

import numpy as np

from repro.faults.runtime import VMEM_FAULTS
from repro.vmem.arena import Arena
from repro.vmem.view import StitchedViewBase

__all__ = ["MemfdArena", "RealStitchedView", "realmap_available"]

_PROT_NONE = 0
_PROT_READ = 1
_PROT_WRITE = 2
_MAP_SHARED = 0x01
_MAP_PRIVATE = 0x02
_MAP_FIXED = 0x10
_MAP_ANONYMOUS = 0x20
_MAP_FAILED = ctypes.c_void_p(-1).value


def _load_libc():
    libc = ctypes.CDLL(None, use_errno=True)
    libc.mmap.restype = ctypes.c_void_p
    libc.mmap.argtypes = [
        ctypes.c_void_p,
        ctypes.c_size_t,
        ctypes.c_int,
        ctypes.c_int,
        ctypes.c_int,
        ctypes.c_long,
    ]
    libc.munmap.restype = ctypes.c_int
    libc.munmap.argtypes = [ctypes.c_void_p, ctypes.c_size_t]
    return libc


_LIBC = None
_AVAILABLE = None


def realmap_available() -> bool:
    """True when this platform supports the real mapping path."""
    global _AVAILABLE, _LIBC
    if _AVAILABLE is None:
        _AVAILABLE = False
        if sys.platform.startswith("linux") and hasattr(os, "memfd_create"):
            try:
                _LIBC = _load_libc()
                fd = os.memfd_create("repro-probe")
                os.close(fd)
                _AVAILABLE = True
            except (OSError, AttributeError):  # pragma: no cover
                _AVAILABLE = False
    return _AVAILABLE


class MemfdArena(Arena):
    """Brick storage backed by an anonymous in-memory file."""

    def __init__(self, nbytes: int, page_size: int | None = None) -> None:
        sys_page = os.sysconf("SC_PAGE_SIZE")
        if page_size is None:
            page_size = sys_page
        if page_size % sys_page:
            raise ValueError(
                f"arena page size {page_size} must be a multiple of the"
                f" system page size {sys_page} for real mappings"
            )
        # Round the file up to the arena page size so the last section can
        # be mapped whole.
        nbytes = -(-nbytes // page_size) * page_size
        super().__init__(nbytes, page_size)
        if not realmap_available():  # pragma: no cover - platform dependent
            raise OSError("memfd_create/mmap(MAP_FIXED) not available here")
        self._fd = -1
        self._base = None
        self._buf = None
        VMEM_FAULTS.check("memfd_create")
        fd = os.memfd_create("repro-brick-storage")
        try:
            os.ftruncate(fd, nbytes)
            VMEM_FAULTS.check("arena_mmap")
            self._base = _pymmap.mmap(fd, nbytes, _pymmap.MAP_SHARED)
        except BaseException:
            # Don't leak the memfd when sizing or the base mapping fails:
            # nothing references it yet, so close it here.
            os.close(fd)
            raise
        self._fd = fd
        self._buf = np.frombuffer(memoryview(self._base), dtype=np.uint8)
        self._views: List[RealStitchedView] = []

    @property
    def buffer(self) -> np.ndarray:
        return self._buf

    @property
    def fd(self) -> int:
        return self._fd

    def make_view(self, chunks: Sequence[Tuple[int, int]]) -> "RealStitchedView":
        view = RealStitchedView(self, self.check_chunks(chunks))
        self._views.append(view)
        return view

    @property
    def mapping_count(self) -> int:
        """Live kernel VMAs consumed by this arena's views (plus 1 base)."""
        return 1 + sum(len(v.chunks) for v in self._views if not v.closed)

    def close(self) -> None:
        for v in self._views:
            v.close()
        self._views.clear()
        if getattr(self, "_buf", None) is not None:
            self._buf = None  # release the exported buffer first
        if getattr(self, "_base", None) is not None:
            try:
                self._base.close()
                self._base = None
            except BufferError:
                # A numpy view of the base mapping is still alive somewhere;
                # leave the mapping to the garbage collector.
                pass
        if getattr(self, "_fd", -1) >= 0:
            os.close(self._fd)
            self._fd = -1

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass


class RealStitchedView(StitchedViewBase):
    """Aliased contiguous window over selected pages of a :class:`MemfdArena`."""

    def __init__(self, arena: MemfdArena, chunks: List[Tuple[int, int]]) -> None:
        super().__init__(chunks)
        self._arena = arena
        self.closed = False
        libc = _LIBC
        total = self.nbytes
        # Reserve a contiguous virtual span, then overlay each file range.
        VMEM_FAULTS.check("view_reserve")
        base = libc.mmap(
            None, total, _PROT_NONE, _MAP_PRIVATE | _MAP_ANONYMOUS, -1, 0
        )
        if base in (None, _MAP_FAILED):  # pragma: no cover - OOM only
            raise OSError(ctypes.get_errno(), "mmap reservation failed")
        self._base_addr = base
        # A mid-stitch failure must not leak the reserved span (or the
        # file pages already overlaid onto it): one munmap of the whole
        # reservation unmaps every chunk mapped so far in a single call.
        try:
            pos = 0
            for off, length in chunks:
                VMEM_FAULTS.check("view_map_chunk")
                addr = libc.mmap(
                    base + pos,
                    length,
                    _PROT_READ | _PROT_WRITE,
                    _MAP_SHARED | _MAP_FIXED,
                    arena.fd,
                    off,
                )
                if addr != base + pos:  # pragma: no cover - kernel failure
                    raise OSError(ctypes.get_errno(), "mmap MAP_FIXED failed")
                pos += length
            ctype_buf = (ctypes.c_byte * total).from_address(base)
            self._array = np.frombuffer(ctype_buf, dtype=np.uint8)
        except BaseException:
            self.closed = True
            self._array = None
            libc.munmap(base, total)
            raise

    @property
    def zero_copy(self) -> bool:
        return True

    def array(self, dtype=np.uint8) -> np.ndarray:
        if self.closed:
            raise ValueError("view is closed")
        return self._array.view(dtype)

    def refresh(self) -> None:
        """No-op: the view aliases the arena pages."""

    def flush(self, up_to_bytes: int = None) -> None:
        """No-op: the view aliases the arena pages."""

    def close(self) -> None:
        if not self.closed:
            self.closed = True
            self._array = None
            _LIBC.munmap(self._base_addr, self.nbytes)

    def __del__(self):  # pragma: no cover - GC timing dependent
        try:
            self.close()
        except Exception:
            pass
