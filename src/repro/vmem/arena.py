"""Arena abstraction: a chunk of "physical" memory views are built over.

An arena owns one flat byte buffer (exposed as a NumPy array) and knows its
page size.  Concrete arenas differ in what backs the buffer:

* :class:`NumpyArena` -- plain ``numpy`` allocation; cannot build views
  (used by the non-MemMap storage paths).
* :class:`~repro.vmem.simmap.SimArena` -- plain allocation plus a simulated
  page table; builds copy-based views.
* :class:`~repro.vmem.realmap.MemfdArena` -- ``memfd_create`` file mapping;
  builds genuinely aliased views.
"""

from __future__ import annotations

import abc
from typing import List, Sequence, Tuple

import numpy as np

__all__ = ["Arena", "NumpyArena"]


class Arena(abc.ABC):
    """A page-granular byte buffer from which stitched views are carved."""

    def __init__(self, nbytes: int, page_size: int) -> None:
        if nbytes <= 0:
            raise ValueError("arena size must be positive")
        if page_size <= 0:
            raise ValueError("page size must be positive")
        if nbytes % page_size:
            raise ValueError(
                f"arena size {nbytes} must be a multiple of the page size {page_size}"
            )
        self.nbytes = int(nbytes)
        self.page_size = int(page_size)

    @property
    @abc.abstractmethod
    def buffer(self) -> np.ndarray:
        """The whole arena as a flat ``uint8`` array (the file content)."""

    @abc.abstractmethod
    def make_view(self, chunks: Sequence[Tuple[int, int]]):
        """Stitch page-aligned ``(offset, length)`` byte ranges into a view.

        Every offset and length must be page-multiples; ranges may repeat
        and may overlap (that is the point).  Returns an object with the
        :class:`~repro.vmem.view.StitchedViewBase` interface.
        """

    def check_chunks(self, chunks: Sequence[Tuple[int, int]]) -> List[Tuple[int, int]]:
        """Validate chunk alignment/bounds; returns normalised int pairs."""
        out = []
        for off, length in chunks:
            off, length = int(off), int(length)
            if length <= 0:
                raise ValueError(f"chunk length must be positive, got {length}")
            if off % self.page_size or length % self.page_size:
                raise ValueError(
                    f"chunk ({off}, {length}) not aligned to page size"
                    f" {self.page_size}"
                )
            if off < 0 or off + length > self.nbytes:
                raise ValueError(
                    f"chunk ({off}, {length}) outside arena of {self.nbytes} bytes"
                )
            out.append((off, length))
        if not out:
            raise ValueError("a view needs at least one chunk")
        return out

    def read_bytes(self, offset: int, nbytes: int) -> np.ndarray:
        """Zero-copy ``uint8`` view of an arbitrary byte range.

        Unlike :meth:`make_view` this needs no page alignment -- it is
        the checkpoint path's window onto the arena content, valid for
        every concrete arena because all of them expose ``buffer``.
        """
        offset, nbytes = int(offset), int(nbytes)
        if offset < 0 or nbytes < 0 or offset + nbytes > self.nbytes:
            raise ValueError(
                f"byte range ({offset}, {nbytes}) outside arena of"
                f" {self.nbytes} bytes"
            )
        return self.buffer[offset : offset + nbytes]

    def write_bytes(self, offset: int, data) -> None:
        """Re-attach bytes into the arena at *offset* (checkpoint restore).

        Writing through ``buffer`` means mapping-capable arenas update
        the *backing* pages: stitched views built before or after the
        write alias the restored content with no further copies.
        """
        view = np.frombuffer(data, dtype=np.uint8)
        self.read_bytes(offset, view.nbytes)[:] = view

    def close(self) -> None:  # pragma: no cover - trivial default
        """Release resources; the default has none."""

    def __enter__(self) -> "Arena":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class NumpyArena(Arena):
    """Plain in-process allocation without mapping capability.

    ``make_view`` is unsupported: storage allocated this way corresponds to
    the paper's ``BrickInfo::allocate`` (Layout mode), where communication
    sends brick ranges directly and no views exist.
    """

    def __init__(self, nbytes: int, page_size: int) -> None:
        super().__init__(nbytes, page_size)
        self._buf = np.zeros(nbytes, dtype=np.uint8)

    @property
    def buffer(self) -> np.ndarray:
        return self._buf

    def make_view(self, chunks: Sequence[Tuple[int, int]]):
        raise NotImplementedError(
            "NumpyArena cannot build stitched views; allocate the storage"
            " with mmap_alloc (SimArena/MemfdArena) for MemMap"
        )
