"""Common interface of stitched views.

A *stitched view* presents a sequence of page-aligned byte ranges of an
arena as one contiguous NumPy array.  The real implementation aliases the
underlying pages, so writes through either side are immediately visible to
the other; the simulated implementation must be told when to move data with
:meth:`refresh` / :meth:`flush` (no-ops for the real one).  Code written
against this interface works identically over both.
"""

from __future__ import annotations

import abc
from typing import List, Tuple

import numpy as np

__all__ = ["StitchedViewBase"]


class StitchedViewBase(abc.ABC):
    """A contiguous array windowing selected pages of an arena."""

    def __init__(self, chunks: List[Tuple[int, int]]) -> None:
        self.chunks = list(chunks)
        self.nbytes = sum(length for _, length in self.chunks)

    # -- data access ----------------------------------------------------
    @abc.abstractmethod
    def array(self, dtype=np.uint8) -> np.ndarray:
        """The view contents as one flat contiguous array of *dtype*."""

    @abc.abstractmethod
    def refresh(self) -> None:
        """Make arena-side writes visible in :meth:`array` (sim only)."""

    @abc.abstractmethod
    def flush(self, up_to_bytes: int = None) -> None:
        """Make view-side writes visible in the arena (sim only).

        *up_to_bytes* restricts the write-back to the leading portion of
        the view (page-granular); callers use it when the tail of a view
        merely aliases data owned elsewhere (e.g. ghost sections aliasing
        a neighbor's surface) and must not be written back.
        """

    @property
    @abc.abstractmethod
    def zero_copy(self) -> bool:
        """True if the view aliases the arena (no data movement ever)."""

    # -- lifecycle -------------------------------------------------------
    def close(self) -> None:  # pragma: no cover - trivial default
        """Release any OS resources held by the view."""

    def __enter__(self) -> "StitchedViewBase":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __len__(self) -> int:
        return self.nbytes
