"""View planning: byte ranges, padding accounting and mapping budgets.

Helpers that turn "send these brick sections to that neighbor" into the
page-aligned ``(offset, length)`` chunk lists an arena can map, and report
the two costs the paper attributes to MemMap: padded (wasted) bytes and the
number of kernel mappings consumed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

__all__ = ["ViewPlan", "plan_view", "align_up"]


def align_up(nbytes: int, page_size: int) -> int:
    """Smallest page multiple >= *nbytes*."""
    if nbytes < 0:
        raise ValueError("nbytes cannot be negative")
    if page_size <= 0:
        raise ValueError("page_size must be positive")
    return -(-nbytes // page_size) * page_size


@dataclass(frozen=True)
class ViewPlan:
    """A planned stitched view plus its cost accounting.

    ``chunks`` are page-aligned ``(offset, length)`` byte ranges into the
    arena.  ``payload_bytes`` is the useful data; ``mapped_bytes`` the
    total mapped (and hence transmitted) size; their difference is the
    padding waste Table 2 quantifies.
    """

    chunks: Tuple[Tuple[int, int], ...]
    payload_bytes: int
    mapped_bytes: int

    @property
    def padding_bytes(self) -> int:
        return self.mapped_bytes - self.payload_bytes

    @property
    def padding_fraction(self) -> float:
        """Padding as a fraction of the payload (Table 2's "increased
        network transfer from padding")."""
        if self.payload_bytes == 0:
            return 0.0
        return self.padding_bytes / self.payload_bytes

    @property
    def mapping_count(self) -> int:
        return len(self.chunks)


def plan_view(
    ranges: Sequence[Tuple[int, int]], page_size: int, coalesce: bool = True
) -> ViewPlan:
    """Plan a stitched view over byte ``(offset, payload_length)`` ranges.

    Each range is expanded to page granularity (its offset must already be
    page-aligned -- the storage allocator guarantees that by padding
    section starts).  Adjacent expanded ranges are merged into single
    chunks when *coalesce* is set, which is how Layout optimization reduces
    MemMap's mapping count (Section 4, last paragraph).
    """
    if page_size <= 0:
        raise ValueError("page_size must be positive")
    expanded: List[Tuple[int, int]] = []
    payload = 0
    for off, length in ranges:
        off, length = int(off), int(length)
        if length <= 0:
            raise ValueError(f"range length must be positive, got {length}")
        if off % page_size:
            raise ValueError(
                f"range offset {off} not aligned to page size {page_size};"
                " allocate the storage with mmap_alloc"
            )
        payload += length
        expanded.append((off, align_up(length, page_size)))

    chunks: List[Tuple[int, int]] = []
    for off, length in expanded:
        if coalesce and chunks and chunks[-1][0] + chunks[-1][1] == off:
            prev_off, prev_len = chunks.pop()
            chunks.append((prev_off, prev_len + length))
        else:
            chunks.append((off, length))
    mapped = sum(length for _, length in chunks)
    return ViewPlan(tuple(chunks), payload, mapped)
