"""Simulated virtual-memory mapping: a page table plus gather/scatter.

Portable stand-in for :mod:`repro.vmem.realmap` with the same interface.
A :class:`SimArena` keeps an explicit page table per view -- a vector of
physical page numbers -- exactly the logical structure the hardware MMU
walks in the real implementation.  Because Python cannot alias
non-contiguous buffers, :meth:`SimStitchedView.array` materializes the view
by gathering pages (and :meth:`flush` scatters them back).

The copies are *bookkeeping, not modelled cost*: they emulate work the MMU
does for free, so the modelled-time exchangers charge zero seconds for
them.  The test suite runs every MemMap scenario over both arenas and
asserts bit-identical results.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

import numpy as np

from repro.faults.runtime import VMEM_FAULTS
from repro.vmem.arena import Arena
from repro.vmem.view import StitchedViewBase

__all__ = ["SimArena", "SimStitchedView"]


class SimArena(Arena):
    """Plain-numpy arena with a simulated page-mapping facility."""

    def __init__(self, nbytes: int, page_size: int) -> None:
        nbytes = -(-nbytes // page_size) * page_size
        super().__init__(nbytes, page_size)
        self._buf = np.zeros(nbytes, dtype=np.uint8)
        self._views: List[SimStitchedView] = []

    @property
    def buffer(self) -> np.ndarray:
        return self._buf

    def make_view(self, chunks: Sequence[Tuple[int, int]]) -> "SimStitchedView":
        view = SimStitchedView(self, self.check_chunks(chunks))
        self._views.append(view)
        return view

    @property
    def mapping_count(self) -> int:
        """Simulated VMA count, mirroring :class:`MemfdArena`."""
        return 1 + sum(len(v.chunks) for v in self._views if not v.closed)

    def close(self) -> None:
        for v in self._views:
            v.close()
        self._views.clear()


class SimStitchedView(StitchedViewBase):
    """Copy-based stand-in for a stitched mapping.

    The page table maps each virtual page of the view to a physical page
    of the arena.  ``array()`` returns a cached materialization;
    ``refresh``/``flush`` move data between the materialization and the
    arena along the page table.
    """

    def __init__(self, arena: SimArena, chunks: List[Tuple[int, int]]) -> None:
        super().__init__(chunks)
        self._arena = arena
        self.closed = False
        # Same armable failure site as the real mapping path, so the
        # degradation machinery behaves identically over both arenas.
        VMEM_FAULTS.check("view_map_chunk")
        page = arena.page_size
        table = []
        for off, length in chunks:
            first = off // page
            table.extend(range(first, first + length // page))
        #: physical page number backing each virtual page of the view.
        self.page_table = np.asarray(table, dtype=np.int64)
        self._mat = np.empty(self.nbytes, dtype=np.uint8)
        self.refresh()

    @property
    def zero_copy(self) -> bool:
        return False

    def _phys_pages(self) -> np.ndarray:
        """Arena reshaped as (npages, page_size)."""
        page = self._arena.page_size
        return self._arena.buffer.reshape(-1, page)

    def array(self, dtype=np.uint8) -> np.ndarray:
        if self.closed:
            raise ValueError("view is closed")
        return self._mat.view(dtype)

    def refresh(self) -> None:
        """Gather arena pages into the materialized view (MMU emulation)."""
        if self.closed:
            raise ValueError("view is closed")
        page = self._arena.page_size
        self._mat.reshape(-1, page)[:] = self._phys_pages()[self.page_table]

    def flush(self, up_to_bytes: int = None) -> None:
        """Scatter the materialized view back into the arena.

        When the view maps the same physical page more than once (legal --
        overlapping surface regions), the *last* virtual occurrence wins
        here.  Writing different values through two aliases of one page is
        a data race whose order is unspecified even on the real mapping;
        the exchange never does it (recv views map disjoint ghost pages,
        send views only read).

        *up_to_bytes* (page-multiple) limits write-back to the leading
        pages -- used when the view's tail aliases foreign data.
        """
        if self.closed:
            raise ValueError("view is closed")
        page = self._arena.page_size
        if up_to_bytes is None:
            npages = len(self.page_table)
        else:
            if up_to_bytes % page:
                raise ValueError(
                    f"up_to_bytes {up_to_bytes} must be a page multiple"
                )
            npages = min(up_to_bytes // page, len(self.page_table))
        table = self.page_table[:npages]
        self._phys_pages()[table] = self._mat.reshape(-1, page)[:npages]

    def close(self) -> None:
        self.closed = True
        self._mat = None
