"""Virtual-memory substrate for MemMap (paper Section 4).

The paper backs brick storage with a ``memfd_create`` file and ``mmap``\\ s
(``MAP_SHARED``) selected page ranges of it, multiple times, into
consecutive virtual addresses -- so the surface regions bound for one
neighbor *appear* contiguous and a single ``MPI_Send`` covers them with
zero copies.

Two interchangeable implementations:

* :mod:`repro.vmem.realmap` -- the genuine mechanism: ``os.memfd_create``
  plus ``libc.mmap(MAP_FIXED | MAP_SHARED)`` through :mod:`ctypes`, giving
  truly aliased NumPy views.  Linux-only; selected automatically when
  available.
* :mod:`repro.vmem.simmap` -- a pure-Python page-table model whose views
  materialize by gather/scatter copies.  Functionally identical (the test
  suite asserts so); used for cost accounting and as a portable fallback.
"""

from repro.vmem.arena import Arena, NumpyArena
from repro.vmem.layout_plan import ViewPlan, plan_view
from repro.vmem.simmap import SimArena, SimStitchedView
from repro.vmem.view import StitchedViewBase

try:  # pragma: no cover - platform dependent
    from repro.vmem.realmap import MemfdArena, RealStitchedView, realmap_available
except (ImportError, OSError):  # pragma: no cover
    MemfdArena = None  # type: ignore[assignment]
    RealStitchedView = None  # type: ignore[assignment]

    def realmap_available() -> bool:
        return False


def default_arena(nbytes: int, page_size: int):
    """Best available arena: memfd-backed if the platform supports it."""
    if realmap_available():
        return MemfdArena(nbytes, page_size)
    return SimArena(nbytes, page_size)


__all__ = [
    "Arena",
    "MemfdArena",
    "NumpyArena",
    "RealStitchedView",
    "SimArena",
    "SimStitchedView",
    "StitchedViewBase",
    "ViewPlan",
    "default_arena",
    "plan_view",
    "realmap_available",
]
