"""Collective operations over the simulated fabric.

Krylov-subspace solvers -- the other application family the paper's
introduction names -- interleave ghost-zone exchanges with reductions
(dot products, norms).  These collectives are implemented on top of the
fabric's point-to-point layer using classic recursive-doubling /
hypercube algorithms, so they work for any rank count (non-powers of two
fall back to a gather-at-root + broadcast tree).

All operate on NumPy arrays (buffer semantics, like the upper-case
mpi4py calls).
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from repro.simmpi.comm import SimComm

__all__ = ["allreduce", "reduce_to_root", "broadcast", "allgather", "barrier_all"]

_TAG_BASE = 1 << 20  # clear of the exchange tag space


def reduce_to_root(
    comm: SimComm,
    value: np.ndarray,
    op: Callable[[np.ndarray, np.ndarray], np.ndarray] = np.add,
    root: int = 0,
) -> Optional[np.ndarray]:
    """Binary-tree reduction; returns the result on *root*, None elsewhere."""
    value = np.array(value, copy=True)
    size, rank = comm.size, comm.rank
    rel = (rank - root) % size
    step = 1
    while step < size:
        if rel % (2 * step) == 0:
            partner = rel + step
            if partner < size:
                buf = np.empty_like(value)
                comm.Recv(buf, (partner + root) % size, _TAG_BASE + step)
                value = op(value, buf)
        elif rel % step == 0:
            comm.Send(value, (rel - step + root) % size, _TAG_BASE + step)
            return None
        step *= 2
    return value if rank == root else None


def broadcast(comm: SimComm, value: np.ndarray, root: int = 0) -> np.ndarray:
    """Binary-tree broadcast of *value* from *root*; returns it everywhere."""
    size, rank = comm.size, comm.rank
    rel = (rank - root) % size
    buf = np.array(value, copy=True)
    # highest power of two <= size
    top = 1
    while top * 2 <= size:
        top *= 2
    step = top
    while step >= 1:
        if rel % (2 * step) == 0:
            partner = rel + step
            if partner < size:
                comm.Send(buf, (partner + root) % size, _TAG_BASE * 2 + step)
        elif rel % step == 0:
            comm.Recv(buf, (rel - step + root) % size, _TAG_BASE * 2 + step)
        step //= 2
    return buf


def allreduce(
    comm: SimComm,
    value: np.ndarray,
    op: Callable[[np.ndarray, np.ndarray], np.ndarray] = np.add,
) -> np.ndarray:
    """Reduce-then-broadcast allreduce (deterministic reduction order)."""
    reduced = reduce_to_root(comm, np.asarray(value), op, root=0)
    if comm.rank == 0:
        result = reduced
    else:
        result = np.empty_like(np.asarray(value))
    return broadcast(comm, result, root=0)


def allgather(comm: SimComm, value: np.ndarray) -> np.ndarray:
    """Gather equal-size contributions from every rank, on every rank.

    Returns an array of shape ``(size,) + value.shape``.
    """
    value = np.asarray(value)
    size, rank = comm.size, comm.rank
    out = np.empty((size,) + value.shape, dtype=value.dtype)
    out[rank] = value
    # Ring algorithm: size-1 steps, each forwarding the newest block.
    right = (rank + 1) % size
    left = (rank - 1) % size
    for step in range(size - 1):
        src_block = (rank - step) % size
        reqs = [
            comm.Irecv(out[(rank - step - 1) % size], left, _TAG_BASE * 3 + step),
            comm.Isend(np.ascontiguousarray(out[src_block]), right,
                       _TAG_BASE * 3 + step),
        ]
        comm.Waitall(reqs)
    return out


def barrier_all(comm: SimComm) -> None:
    """Alias of the fabric barrier, for API symmetry."""
    comm.Barrier()
