"""In-process MPI substitute (DESIGN.md Section 2).

No MPI implementation is available in this environment, so the exchange
engines run over this simulator: each rank is a Python thread executing the
same SPMD function, communicating through a shared :class:`SimFabric` that
matches messages by ``(source, dest, tag)`` and really copies NumPy
buffers.  Semantics follow mpi4py's buffer-protocol interface
(``Isend``/``Irecv``/``Waitall``/``Barrier``/Cartesian communicators) so
the exchange code reads like real MPI code.

Send completion is synchronous-mode (a send completes when the receiver
has copied the data); since all exchangers post every receive before any
send, this is deadlock-free and makes buffer reuse safe without an extra
copy -- matching the zero-copy claim being reproduced.
"""

from repro.simmpi.collectives import allgather, allreduce, broadcast, reduce_to_root
from repro.simmpi.comm import CartComm, SimComm
from repro.simmpi.datatypes import ContiguousType, SubarrayType, VectorType
from repro.simmpi.fabric import (
    AbortedError,
    DeadlockError,
    ExchangeConfigError,
    ExchangeIntegrityError,
    ExchangeTimeoutError,
    FabricStats,
    ProtocolError,
    RankDeadError,
    SimFabric,
    SplitMismatchError,
    UnsupportedFabricError,
    partition_bounds,
    partition_tag,
)
from repro.simmpi.launcher import run_spmd
from repro.simmpi.request import SimRequest

__all__ = [
    "AbortedError",
    "CartComm",
    "ContiguousType",
    "DeadlockError",
    "ExchangeIntegrityError",
    "ExchangeTimeoutError",
    "FabricStats",
    "RankDeadError",
    "ExchangeConfigError",
    "ProtocolError",
    "SplitMismatchError",
    "SimComm",
    "SimFabric",
    "SimRequest",
    "UnsupportedFabricError",
    "SubarrayType",
    "partition_bounds",
    "partition_tag",
    "VectorType",
    "allgather",
    "allreduce",
    "broadcast",
    "reduce_to_root",
    "run_spmd",
]
