"""Communicators: point-to-point plus Cartesian topology.

Follows mpi4py's upper-case buffer interface: ``Isend``/``Irecv`` take
NumPy arrays (any shape, contiguous) and return :class:`SimRequest`
handles; ``Waitall`` completes a batch; ``Barrier`` synchronises; and
:class:`CartComm` adds the periodic rank grid the paper's experiments use
(a ``2^3`` cube for K1/V1, larger grids for strong scaling).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.obs import TRACER as _TRACER
from repro.faults.errors import ExchangeConfigError
from repro.simmpi.fabric import SimFabric
from repro.simmpi.request import SimRequest

__all__ = ["SimComm", "CartComm"]


class SimComm:
    """One rank's endpoint on a :class:`SimFabric`."""

    def __init__(self, fabric: SimFabric, rank: int) -> None:
        if not 0 <= rank < fabric.nranks:
            raise ExchangeConfigError(
                f"rank {rank} outside fabric of {fabric.nranks}"
            )
        self.fabric = fabric
        self.rank = rank

    @property
    def size(self) -> int:
        return self.fabric.nranks

    # -- point to point --------------------------------------------------
    def Isend(self, buf: np.ndarray, dest: int, tag: int = 0) -> SimRequest:
        entry = self.fabric.post_send(self.rank, dest, tag, buf)
        fabric = self.fabric
        return SimRequest(lambda: fabric.wait_send(entry), "send")

    def Irecv(self, buf: np.ndarray, source: int, tag: int = 0) -> SimRequest:
        if not isinstance(buf, np.ndarray):
            raise TypeError("Irecv needs a NumPy buffer to receive into")
        if not buf.flags.c_contiguous:
            raise ExchangeConfigError("receive buffers must be C-contiguous")
        fabric, rank = self.fabric, self.rank

        def complete() -> None:
            fabric.complete_recv(source, rank, tag, buf)

        return SimRequest(complete, "recv")

    def Send(self, buf: np.ndarray, dest: int, tag: int = 0) -> None:
        self.Isend(buf, dest, tag).wait()

    def Recv(self, buf: np.ndarray, source: int, tag: int = 0) -> None:
        self.Irecv(buf, source, tag).wait()

    def Waitall(self, requests: Sequence[SimRequest]) -> None:
        with _TRACER.span("comm.waitall", rank=self.rank,
                          n=len(requests)):
            SimRequest.waitall(requests)

    def Barrier(self) -> None:
        self.fabric.barrier.wait()

    def set_epoch(self, epoch: Optional[int]) -> None:
        """Mark this rank's exchange epoch on the fabric (verified mode).

        The driver brackets each halo exchange with ``set_epoch(step)`` /
        ``set_epoch(None)`` so retried exchanges stay idempotent; a no-op
        concept on an unverified fabric (the epoch is simply unused).
        """
        self.fabric.set_epoch(self.rank, epoch)

    # -- topology helpers -------------------------------------------------
    def Create_cart(
        self, dims: Sequence[int], periods: Optional[Sequence[bool]] = None
    ) -> "CartComm":
        return CartComm(self.fabric, self.rank, dims, periods)


class CartComm(SimComm):
    """Cartesian communicator over the full fabric.

    Rank order follows MPI convention: the *last* dimension varies
    fastest.  ``dims`` is given in axis order ``(axis_1, ..., axis_D)`` to
    match the rest of the library; internally we map accordingly.
    """

    def __init__(
        self,
        fabric: SimFabric,
        rank: int,
        dims: Sequence[int],
        periods: Optional[Sequence[bool]] = None,
    ) -> None:
        super().__init__(fabric, rank)
        self.dims = tuple(int(d) for d in dims)
        if any(d <= 0 for d in self.dims):
            raise ExchangeConfigError("cartesian dims must be positive")
        total = 1
        for d in self.dims:
            total *= d
        if total != fabric.nranks:
            raise ExchangeConfigError(
                f"cartesian grid {self.dims} needs {total} ranks,"
                f" fabric has {fabric.nranks}"
            )
        if periods is None:
            periods = [True] * len(self.dims)
        self.periods = tuple(bool(p) for p in periods)
        if len(self.periods) != len(self.dims):
            raise ExchangeConfigError("periods length must match dims")
        self.coords = self.rank_to_coords(rank)

    # ------------------------------------------------------------------
    def rank_to_coords(self, rank: int) -> Tuple[int, ...]:
        """Coordinates (axis 1 first) of *rank*."""
        coords = []
        for d in self.dims:  # axis 1 fastest
            coords.append(rank % d)
            rank //= d
        return tuple(coords)

    def coords_to_rank(self, coords: Sequence[int]) -> int:
        rank = 0
        stride = 1
        for c, d, p in zip(coords, self.dims, self.periods):
            c = int(c)
            if p:
                c %= d
            elif not 0 <= c < d:
                raise ExchangeConfigError(
                    f"coordinate {coords} outside non-periodic grid"
                )
            rank += c * stride
            stride *= d
        return rank

    def neighbor_rank(self, direction: Sequence[int]) -> Optional[int]:
        """Rank one step along *direction* (axis 1 first); None if off-grid."""
        if len(direction) != len(self.dims):
            raise ExchangeConfigError("direction dimensionality mismatch")
        coords = []
        for c, d, p, step in zip(self.coords, self.dims, self.periods, direction):
            nc = c + int(step)
            if p:
                nc %= d
            elif not 0 <= nc < d:
                return None
            coords.append(nc)
        return self.coords_to_rank(coords)
