"""Message-matching fabric shared by all simulated ranks.

The fabric is a thread-safe mailbox keyed ``(source, dest, tag)``.  An
``Isend`` deposits a :class:`_SendEntry` holding a *reference* to the send
buffer (no copy -- the wire copy happens exactly once, at match time, into
the receive buffer).  A receive blocks until a matching entry exists, then
copies and signals the sender's completion event.

Statistics (message and byte counts) are recorded per rank; the modelled
clocks use them and the tests assert on them.
"""

from __future__ import annotations

import threading
from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Tuple

import numpy as np

from repro.obs import METRICS as _METRICS
from repro.obs import TRACER as _TRACER

__all__ = ["SimFabric", "FabricStats", "DeadlockError", "AbortedError"]

#: Seconds an unmatched operation waits before declaring a deadlock.
_DEADLOCK_TIMEOUT = 30.0


class DeadlockError(RuntimeError):
    """A receive found no matching send within the timeout."""


@dataclass
class FabricStats:
    """Per-rank communication counters."""

    sends: int = 0
    recvs: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0


class _SendEntry:
    __slots__ = ("buf", "done", "src")

    def __init__(self, buf: np.ndarray, src: int = -1) -> None:
        self.buf = buf
        self.done = threading.Event()
        self.src = src


class AbortedError(RuntimeError):
    """Another rank failed; this operation was abandoned."""


class SimFabric:
    """The shared network of one SPMD run."""

    def __init__(self, nranks: int) -> None:
        if nranks <= 0:
            raise ValueError("nranks must be positive")
        self.nranks = nranks
        self._lock = threading.Condition()
        self._mailboxes: Dict[Tuple[int, int, int], Deque[_SendEntry]] = defaultdict(
            deque
        )
        self.stats: List[FabricStats] = [FabricStats() for _ in range(nranks)]
        self.barrier = threading.Barrier(nranks)
        self._failed = False

    # ------------------------------------------------------------------
    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.nranks:
            raise ValueError(f"rank {rank} outside communicator of {self.nranks}")

    def post_send(self, src: int, dst: int, tag: int, buf: np.ndarray) -> _SendEntry:
        """Deposit a send; returns the entry whose event marks completion."""
        self._check_rank(src)
        self._check_rank(dst)
        buf = np.ascontiguousarray(buf)
        entry = _SendEntry(buf, src)
        with self._lock:
            self._mailboxes[(src, dst, tag)].append(entry)
            self.stats[src].sends += 1
            self.stats[src].bytes_sent += buf.nbytes
            self._lock.notify_all()
        if _METRICS.enabled:
            _METRICS.count("fabric.messages", 1, rank=src)
            _METRICS.count("fabric.wire_bytes", buf.nbytes, rank=src)
        return entry

    def wait_send(self, entry: _SendEntry) -> None:
        """Block until *entry* is consumed by its receiver.

        Polls with a short timeout so an aborted run (another rank
        raised) fails fast instead of hanging forever, and declares a
        deadlock after the same timeout as receives.
        """
        rank = entry.src if entry.src >= 0 else None
        with _TRACER.span("fabric.send_wait", rank=rank):
            waited = 0.0
            while not entry.done.wait(timeout=0.1):
                waited += 0.1
                with self._lock:
                    if self._failed:
                        raise AbortedError(
                            "another rank failed; abandoning send"
                        )
                if waited >= _DEADLOCK_TIMEOUT:
                    self.abort()
                    raise DeadlockError(
                        f"send unmatched after {_DEADLOCK_TIMEOUT}s"
                    )

    def complete_recv(self, src: int, dst: int, tag: int, buf: np.ndarray) -> None:
        """Block until a matching send exists, then copy it into *buf*."""
        self._check_rank(src)
        self._check_rank(dst)
        key = (src, dst, tag)
        with _TRACER.span("fabric.recv", rank=dst, src=src):
            with self._lock:
                deadline = _DEADLOCK_TIMEOUT
                while not self._mailboxes.get(key):
                    if self._failed:
                        raise AbortedError(
                            "another rank failed; aborting receive"
                        )
                    if not self._lock.wait(timeout=deadline):
                        self._failed = True
                        self._lock.notify_all()
                        raise DeadlockError(
                            f"rank {dst} waited {_DEADLOCK_TIMEOUT}s for"
                            f" message (src={src}, tag={tag})"
                        )
                entry = self._mailboxes[key].popleft()
            flat = buf.reshape(-1)
            src_flat = entry.buf.reshape(-1).view(flat.dtype)
            if src_flat.size != flat.size:
                self.abort()
                raise ValueError(
                    f"message size mismatch on (src={src}, dst={dst},"
                    f" tag={tag}): sent {src_flat.size} elements, receiving"
                    f" {flat.size}"
                )
            flat[:] = src_flat  # the single wire copy
            self.stats[dst].recvs += 1
            self.stats[dst].bytes_received += buf.nbytes
            entry.done.set()
        if _METRICS.enabled:
            _METRICS.count("fabric.bytes_received", buf.nbytes, rank=dst)

    def abort(self) -> None:
        """Wake every waiter with a failure (used when one rank raises)."""
        with self._lock:
            self._failed = True
            self._lock.notify_all()
        self.barrier.abort()

    @property
    def pending_messages(self) -> int:
        with self._lock:
            return sum(len(q) for q in self._mailboxes.values())

    def total_stats(self) -> FabricStats:
        agg = FabricStats()
        for s in self.stats:
            agg.sends += s.sends
            agg.recvs += s.recvs
            agg.bytes_sent += s.bytes_sent
            agg.bytes_received += s.bytes_received
        return agg
