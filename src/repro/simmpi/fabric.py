"""Message-matching fabric shared by all simulated ranks.

The fabric is a thread-safe mailbox keyed ``(source, dest, tag)``.  An
``Isend`` deposits a :class:`_SendEntry` holding a *reference* to the send
buffer (no copy -- the wire copy happens exactly once, at match time, into
the receive buffer).  A receive blocks until a matching entry exists, then
copies and signals the sender's completion event.

Statistics (message and byte counts) are recorded per rank; the modelled
clocks use them and the tests assert on them.

Verified mode (the chaos fabric)
--------------------------------
``enable_envelope()`` switches every message onto the envelope protocol of
:mod:`repro.exchange.envelope`: payloads are frozen (copied) at post time,
stamped with a per-edge sequence number and CRC32, and validated by the
receiver.  Detected faults raise the typed errors from
:mod:`repro.faults.errors` *after* a pristine retransmit has been queued,
so a bounded retry of the exchange heals them.  Three auxiliary structures
make whole-exchange retries idempotent:

* **post suppression** -- within one exchange *epoch* (set per rank by the
  driver), a second post on the same edge is a retransmit of data already
  on the wire and is silently absorbed;
* **duplicate discard** -- deliveries with ``seq <= delivered`` are wire
  duplicates and are dropped;
* **delivery replay** -- a re-posted receive for an edge already delivered
  in the current epoch is served from the cached payload.

With the envelope disabled (the default) the original zero-overhead path
runs, bit-identical to the unverified fabric.
"""

from __future__ import annotations

import os
import threading
import time
from collections import defaultdict, deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.faults.errors import (
    ExchangeConfigError,
    ExchangeIntegrityError,
    ExchangeTimeoutError,
    ProtocolError,
    RankDeadError,
    SplitMismatchError,
)
from repro.obs import METRICS as _METRICS
from repro.obs import TRACER as _TRACER

__all__ = [
    "SimFabric",
    "FabricStats",
    "PartitionedSendRequest",
    "PartitionedRecvRequest",
    "partition_tag",
    "partition_bounds",
    "DeadlockError",
    "AbortedError",
    "UnsupportedFabricError",
    "ExchangeIntegrityError",
    "ExchangeTimeoutError",
    "RankDeadError",
    "ProtocolError",
    "SplitMismatchError",
    "ExchangeConfigError",
]

#: Default seconds an unmatched operation waits before declaring a
#: deadlock.  Per-fabric overrides: constructor arg, then the
#: ``REPRO_FABRIC_TIMEOUT`` environment variable, then this module global
#: (kept for monkeypatch-style test overrides).
_DEADLOCK_TIMEOUT = 30.0

_TIMEOUT_ENV = "REPRO_FABRIC_TIMEOUT"


class DeadlockError(RuntimeError):
    """A receive found no matching send within the timeout."""


class UnsupportedFabricError(RuntimeError):
    """The requested operation is not available on this fabric mode.

    Raised when the batch / partitioned fast paths are requested on a
    verified (envelope) fabric, whose protocol is strictly per-message.
    This is a *capability refusal*, not a bug: callers (the channel
    layer) catch it and fall back to the per-message protocol.  Subclass
    of ``RuntimeError`` so pre-existing blanket handlers keep working.
    """


@dataclass
class FabricStats:
    """Per-rank communication counters."""

    sends: int = 0
    recvs: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0


class _SendEntry:
    __slots__ = ("buf", "wire", "done", "src", "seq", "crc", "epoch", "lost")

    def __init__(self, buf: np.ndarray, src: int = -1) -> None:
        self.buf = buf          # pristine payload (frozen copy when verified)
        self.wire = buf         # what the receiver sees (may be corrupted)
        self.done = threading.Event()
        self.src = src
        self.seq = 0            # envelope sequence number (verified mode)
        self.crc = 0            # envelope checksum of the pristine payload
        self.epoch = None       # sender's exchange epoch at post time
        self.lost = False       # first transmission dropped on the wire


class AbortedError(RuntimeError):
    """Another rank failed; this operation was abandoned."""


#: Partition tags live above every plain exchange tag: exchange_tag() values
#: are bounded by 3^ndim * 4096 (< 2^20), so shifting the partition index to
#: bit 20 keeps the two tag spaces disjoint on the same mailbox.
_PARTITION_TAG_BASE = 1 << 20


def partition_tag(tag: int, part: int) -> int:
    """Wire tag of partition *part* of a message with base tag *tag*."""
    if not 0 <= tag < _PARTITION_TAG_BASE:
        raise ExchangeConfigError(
            f"base tag {tag} collides with the partition tag space"
        )
    if part < 0:
        raise ExchangeConfigError("partition index cannot be negative")
    return (part + 1) * _PARTITION_TAG_BASE + tag


def partition_bounds(nbytes: int, partitions: int) -> Tuple[Tuple[int, int], ...]:
    """Equal byte-count partition intervals ``(lo, hi)`` of a message.

    The single source of truth for the byte split: both wire endpoints
    (:func:`_partition_views`), the channel negotiation
    (:meth:`SimFabric.negotiate_channel`) and the static schedule
    verifier (:mod:`repro.check`) derive their split from this helper,
    so "checker says the split matches" and "the wire splits match" are
    the same statement.  The partition count is clamped to the byte
    count (every partition carries at least one byte; a zero-byte
    message has exactly one empty partition).
    """
    n = int(nbytes)
    if n < 0:
        raise ExchangeConfigError("message byte count cannot be negative")
    k = max(1, min(int(partitions), n)) if n else 1
    cuts = [(n * p) // k for p in range(k + 1)]
    return tuple((cuts[p], cuts[p + 1]) for p in range(k))


def _partition_views(buf: np.ndarray, partitions: int) -> List[np.ndarray]:
    """Equal byte-count partitions of a flattened contiguous buffer.

    Both endpoints compute the split independently from their own buffer
    via :func:`partition_bounds`; the totals match (message sizes are
    negotiated), so splitting by bytes keeps the two sides consistent
    even across dtype views.
    """
    flat = np.ascontiguousarray(buf).reshape(-1).view(np.uint8)
    return [flat[lo:hi] for lo, hi in partition_bounds(flat.size, partitions)]


class PartitionedSendRequest:
    """Persistent partitioned send (the ``MPI_Psend_init`` analogue).

    Built once from a message plan by :meth:`SimFabric.send_init`; each
    epoch is ``start()`` -> ``pready(msg, part)``/``pready_all()`` ->
    ``wait()``.  ``start`` arms the epoch without touching the wire; a
    partition hits the mailbox only when it is marked ready, so a producer
    (e.g. the surface pack of a phased timestep) can release sub-regions
    of each flattened channel buffer independently.
    """

    __slots__ = ("_fabric", "_src", "_msgs", "_entries", "_ready", "_started")

    def __init__(self, fabric: "SimFabric", src: int, posts,
                 partitions: int) -> None:
        self._fabric = fabric
        self._src = src
        # _msgs[i] = list of (dst, wire tag, byte view) per partition.
        self._msgs: List[List[Tuple[int, int, np.ndarray]]] = []
        for dst, tag, buf in posts:
            fabric._check_rank(dst)
            views = _partition_views(buf, partitions)
            self._msgs.append(
                [(dst, partition_tag(tag, p), v) for p, v in enumerate(views)]
            )
        self._entries: List[_SendEntry] = []
        self._ready: set = set()
        self._started = False

    @property
    def partitions(self) -> List[int]:
        """Partition count per message (clamped to the message's bytes)."""
        return [len(parts) for parts in self._msgs]

    def start(self) -> None:
        """Arm a new epoch; every partition becomes not-ready."""
        if self._started:
            raise ProtocolError(
                "partitioned send already started; wait() the previous"
                " epoch first"
            )
        self._ready.clear()
        self._entries = []
        self._started = True

    def _deposit(self, items: List[Tuple[int, int, np.ndarray]]) -> None:
        fabric = self._fabric
        src = self._src
        entries = [(dst, tag, _SendEntry(view, src)) for dst, tag, view in items]
        nbytes = sum(view.nbytes for _, _, view in items)
        with fabric._lock:
            boxes = fabric._mailboxes
            for dst, tag, entry in entries:
                boxes[(src, dst, tag)].append(entry)
            st = fabric.stats[src]
            st.sends += len(entries)
            st.bytes_sent += nbytes
            fabric._lock.notify_all()
        if _METRICS.enabled:
            _METRICS.count("fabric.messages", len(entries), rank=src)
            _METRICS.count("fabric.wire_bytes", nbytes, rank=src)
        self._entries.extend(e for _, _, e in entries)

    def pready(self, msg: int, part: int) -> None:
        """Mark one partition ready: its bytes go on the wire now."""
        if not self._started:
            raise ProtocolError("pready before start on a partitioned send")
        dst, tag, view = self._msgs[msg][part]
        if (msg, part) in self._ready:
            raise ProtocolError(
                f"partition ({msg}, {part}) already marked ready this epoch"
            )
        self._ready.add((msg, part))
        self._deposit([(dst, tag, view)])

    def pready_all(self) -> None:
        """Mark every not-yet-ready partition ready in one lock round."""
        if not self._started:
            raise ProtocolError("pready before start on a partitioned send")
        items = []
        for m, parts in enumerate(self._msgs):
            for p, item in enumerate(parts):
                if (m, p) not in self._ready:
                    self._ready.add((m, p))
                    items.append(item)
        if items:
            self._deposit(items)

    def wait(self) -> None:
        """Complete the epoch: every ready partition consumed by its peer."""
        if not self._started:
            raise ProtocolError("wait before start on a partitioned send")
        self._fabric.wait_send_batch(self._entries, self._src)
        self._entries = []
        self._started = False


class PartitionedRecvRequest:
    """Persistent partitioned receive (the ``MPI_Precv_init`` analogue).

    Each epoch is ``start()`` -> optional ``parrived(msg, part)`` probes ->
    ``complete()``, which drains every partition of every message in one
    condition loop (copies outside the lock, like the batch path).
    """

    __slots__ = ("_fabric", "_dst", "_msgs", "_flat", "_drained", "_started")

    def __init__(self, fabric: "SimFabric", dst: int, recvs,
                 partitions: int) -> None:
        self._fabric = fabric
        self._dst = dst
        self._msgs: List[List[Tuple[int, int, np.ndarray]]] = []
        for src, tag, buf in recvs:
            fabric._check_rank(src)
            views = _partition_views(buf, partitions)
            self._msgs.append(
                [(src, partition_tag(tag, p), v) for p, v in enumerate(views)]
            )
        self._flat = [
            (src, tag, view) for parts in self._msgs for src, tag, view in parts
        ]
        self._drained: set = set()
        self._started = False

    @property
    def partitions(self) -> List[int]:
        return [len(parts) for parts in self._msgs]

    def start(self) -> None:
        if self._started:
            raise ProtocolError(
                "partitioned receive already started; complete() the"
                " previous epoch first"
            )
        self._drained.clear()
        self._started = True

    def parrived(self, msg: int, part: int) -> bool:
        """Non-blocking: has this partition's transmission arrived?"""
        if not self._started:
            raise ProtocolError("parrived before start on a partitioned recv")
        if (msg, part) in self._drained:
            return True
        src, tag, _view = self._msgs[msg][part]
        fabric = self._fabric
        with fabric._lock:
            q = fabric._mailboxes.get((src, self._dst, tag))
            return bool(q)

    def complete(self) -> None:
        """Block until every partition is delivered into its sub-view."""
        if not self._started:
            raise ProtocolError("complete before start on a partitioned recv")
        self._fabric.complete_recv_batch(self._dst, self._flat)
        self._drained.update(
            (m, p)
            for m, parts in enumerate(self._msgs)
            for p in range(len(parts))
        )
        self._started = False


class SimFabric:
    """The shared network of one SPMD run."""

    def __init__(self, nranks: int, timeout: Optional[float] = None) -> None:
        if nranks <= 0:
            raise ExchangeConfigError("nranks must be positive")
        self.nranks = nranks
        if timeout is None:
            env = os.environ.get(_TIMEOUT_ENV)
            if env:
                try:
                    timeout = float(env)
                except ValueError:
                    raise ExchangeConfigError(
                        f"{_TIMEOUT_ENV}={env!r} is not a valid number"
                    ) from None
        if timeout is not None and timeout <= 0:
            raise ExchangeConfigError("fabric timeout must be positive")
        self._timeout = timeout
        self._lock = threading.Condition()
        self._mailboxes: Dict[Tuple[int, int, int], Deque[_SendEntry]] = defaultdict(
            deque
        )
        self.stats: List[FabricStats] = [FabricStats() for _ in range(nranks)]
        self.barrier = threading.Barrier(nranks)
        self._failed = False
        # -- rank-liveness state (elastic restart) -----------------------
        self._dead: set = set()
        self._heartbeats: Dict[int, float] = {}
        self._heartbeat_deadline: Optional[float] = None
        # -- verified-mode state (inert while _envelope is False) --------
        self._envelope = False
        self._injector = None
        self._epochs: List[Optional[int]] = [None] * nranks
        self._send_seq: Dict[Tuple[int, int, int], int] = {}
        self._delivered: Dict[Tuple[int, int, int], int] = {}
        self._posted_epoch: Dict[Tuple[int, int, int], int] = {}
        self._replay: Dict[Tuple[int, int, int], Tuple[int, np.ndarray]] = {}
        # -- negotiated byte splits, per edge and side -------------------
        # (src, dst, tag) -> {"send"/"recv": partition_bounds(...)}.  Both
        # endpoints of every persistent channel / partitioned request
        # register their half; a disagreement surfaces here, at
        # negotiation time, as a typed SplitMismatchError instead of a
        # DeadlockError at wait time.
        self._splits: Dict[
            Tuple[int, int, int], Dict[str, Tuple[Tuple[int, int], ...]]
        ] = {}

    # ------------------------------------------------------------------
    @property
    def timeout(self) -> float:
        """Active deadlock timeout in seconds."""
        return self._timeout if self._timeout is not None else _DEADLOCK_TIMEOUT

    def set_timeout(self, timeout: Optional[float]) -> None:
        if timeout is not None and timeout <= 0:
            raise ExchangeConfigError("fabric timeout must be positive")
        self._timeout = timeout

    # ------------------------------------------------------------------
    def enable_envelope(self, injector=None) -> None:
        """Switch to verified (sequence + checksum) delivery.

        *injector* is an optional :class:`~repro.faults.FaultInjector`
        whose plan decides which transmissions to drop/corrupt/duplicate/
        delay.  Verification works without one.
        """
        self._envelope = True
        self._injector = injector

    @property
    def envelope_enabled(self) -> bool:
        return self._envelope

    def set_epoch(self, rank: int, epoch: Optional[int]) -> None:
        """Mark *rank*'s current exchange epoch (None between exchanges).

        Epochs scope the idempotency machinery: only posts carrying an
        epoch are subject to injection, suppression, and replay, so
        collective/control traffic stays on plain verified delivery.
        """
        self._check_rank(rank)
        self._epochs[rank] = epoch

    # ------------------------------------------------------------------
    # Rank liveness (elastic restart)
    #
    # A dead rank is *permanently* gone -- node loss, not a survivable
    # crash.  Marking it wakes every waiter so operations touching the
    # dead rank fail fast with a typed RankDeadError instead of burning
    # the full deadlock timeout.  An optional heartbeat deadline lets
    # receivers classify a silent peer as dead (stale heartbeat) rather
    # than deadlocked.
    # ------------------------------------------------------------------
    def mark_dead(self, rank: int) -> None:
        """Declare *rank* permanently dead and wake every waiter."""
        self._check_rank(rank)
        with self._lock:
            self._dead.add(rank)
            self._lock.notify_all()

    def is_dead(self, rank: int) -> bool:
        with self._lock:
            return rank in self._dead

    def dead_ranks(self) -> List[int]:
        """Ranks declared dead so far, sorted."""
        with self._lock:
            return sorted(self._dead)

    def heartbeat(self, rank: int) -> None:
        """Record a liveness beat for *rank* (driver step boundaries)."""
        self._check_rank(rank)
        with self._lock:
            self._heartbeats[rank] = time.monotonic()

    def set_heartbeat_deadline(self, seconds: Optional[float]) -> None:
        """Enable heartbeat-based death detection.

        With a deadline set, a receive that times out on a peer whose
        last heartbeat is older than *seconds* classifies the peer as
        dead (:class:`RankDeadError`) instead of deadlocked.  ``None``
        (the default) disables the classification.
        """
        if seconds is not None and seconds <= 0:
            raise ExchangeConfigError("heartbeat deadline must be positive")
        with self._lock:
            self._heartbeat_deadline = seconds

    def _check_dst_alive(self, src: int, dst: int) -> None:
        """Refuse to post toward a dead rank (called outside the lock)."""
        with self._lock:
            if dst in self._dead:
                raise RankDeadError(
                    f"rank {src} cannot send to rank {dst}: rank {dst}"
                    " is permanently dead"
                )

    def _raise_if_src_dead(self, src: int, dst: int, tag: int) -> None:
        """Under the lock: a drained edge from a dead peer never fills."""
        if src in self._dead and not self._mailboxes.get((src, dst, tag)):
            raise RankDeadError(
                f"rank {dst} cannot receive from rank {src}"
                f" (tag={tag}): rank {src} is permanently dead"
            )

    def _stale_heartbeat(self, rank: int) -> bool:
        """Under the lock: has *rank* missed its heartbeat deadline?"""
        deadline = self._heartbeat_deadline
        if deadline is None:
            return False
        last = self._heartbeats.get(rank)
        if last is None:
            return False
        return (time.monotonic() - last) > deadline

    # ------------------------------------------------------------------
    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.nranks:
            raise ExchangeConfigError(
                f"rank {rank} outside communicator of {self.nranks}"
            )

    def post_send(self, src: int, dst: int, tag: int, buf: np.ndarray) -> _SendEntry:
        """Deposit a send; returns the entry whose event marks completion."""
        self._check_rank(src)
        self._check_rank(dst)
        self._check_dst_alive(src, dst)
        buf = np.ascontiguousarray(buf)
        if self._envelope:
            return self._post_verified(src, dst, tag, buf)
        entry = _SendEntry(buf, src)
        with self._lock:
            self._mailboxes[(src, dst, tag)].append(entry)
            self.stats[src].sends += 1
            self.stats[src].bytes_sent += buf.nbytes
            self._lock.notify_all()
        if _METRICS.enabled:
            _METRICS.count("fabric.messages", 1, rank=src)
            _METRICS.count("fabric.wire_bytes", buf.nbytes, rank=src)
        return entry

    def _post_verified(self, src: int, dst: int, tag: int,
                       buf: np.ndarray) -> _SendEntry:
        from repro.exchange.envelope import checksum

        edge = (src, dst, tag)
        epoch = self._epochs[src]
        with self._lock:
            if epoch is not None and self._posted_epoch.get(edge) == epoch:
                # Retransmit within one exchange epoch: the payload is
                # already on the wire (or delivered); absorb the re-post.
                entry = _SendEntry(buf, src)
                entry.done.set()
                suppressed = True
            else:
                suppressed = False
                seq = self._send_seq.get(edge, 0) + 1
                self._send_seq[edge] = seq
                if epoch is not None:
                    self._posted_epoch[edge] = epoch
        if suppressed:
            if self._injector is not None:
                self._injector.record("resend_suppressed", src=src, dst=dst,
                                      tag=tag)
            return entry

        # Freeze the payload: the wire carries this epoch's data even if
        # brick storage mutates before delivery, and the checksum stays
        # valid.  (Header + copy are wall-clock-only: modelled bytes and
        # times never include them.)
        payload = buf.copy()
        entry = _SendEntry(payload, src)
        entry.seq = seq
        entry.crc = checksum(payload)
        entry.epoch = epoch

        duplicate = False
        if self._injector is not None and epoch is not None:
            action = self._injector.on_post(src, dst, tag, seq)
            if action == "delay":
                time.sleep(self._injector.plan.delay_s)
            elif action == "corrupt":
                entry.wire = self._injector.corrupt(payload, src, dst, tag, seq)
            elif action == "drop":
                entry.lost = True
            elif action == "duplicate":
                duplicate = True

        with self._lock:
            q = self._mailboxes[edge]
            q.append(entry)
            if duplicate:
                dup = _SendEntry(payload, src)
                dup.seq, dup.crc, dup.epoch = entry.seq, entry.crc, epoch
                q.append(dup)
            self.stats[src].sends += 1
            self.stats[src].bytes_sent += buf.nbytes
            self._lock.notify_all()
        if _METRICS.enabled:
            _METRICS.count("fabric.messages", 1, rank=src)
            _METRICS.count("fabric.wire_bytes", buf.nbytes, rank=src)
        return entry

    # ------------------------------------------------------------------
    # Batched posting (run-plan fast path)
    #
    # One fabric call per exchange instead of one per message: a whole
    # step's sends are deposited under a single lock acquisition, the
    # matching receives drain in one condition loop (copies run outside
    # the lock, so peers' wire copies overlap), and send completion is
    # awaited in one sweep.  Persistent-channel style: the (dst, tag,
    # buffer) tuples are negotiated once per run by the exchange channels
    # and re-fired every step.  Verified (envelope) fabrics refuse the
    # batch path -- the channel layer falls back to the per-message
    # protocol, which carries the sequence/CRC machinery.
    # ------------------------------------------------------------------
    def post_send_batch(self, src: int, posts) -> List[_SendEntry]:
        """Deposit a whole step's sends in one lock acquisition.

        *posts* is a sequence of ``(dst, tag, buf)`` with contiguous
        NumPy buffers (the channel layer guarantees this at build time).
        Returns the entries whose events mark per-message completion.
        """
        if self._envelope:
            raise UnsupportedFabricError(
                "batched posting is not available on a verified fabric;"
                " use the per-message protocol"
            )
        entries = []
        nbytes = 0
        for dst, tag, buf in posts:
            self._check_dst_alive(src, dst)
            entries.append((dst, tag, _SendEntry(buf, src)))
            nbytes += buf.nbytes
        with self._lock:
            boxes = self._mailboxes
            for dst, tag, entry in entries:
                boxes[(src, dst, tag)].append(entry)
            st = self.stats[src]
            st.sends += len(entries)
            st.bytes_sent += nbytes
            self._lock.notify_all()
        if _METRICS.enabled:
            _METRICS.count("fabric.messages", len(entries), rank=src)
            _METRICS.count("fabric.wire_bytes", nbytes, rank=src)
        return [e for _, _, e in entries]

    def complete_recv_batch(self, dst: int, recvs) -> None:
        """Complete a whole step's receives in one condition loop.

        *recvs* is a sequence of ``(src, tag, buf)``.  Matching entries
        are popped under the lock but copied outside it, so concurrent
        ranks' wire copies (which release the GIL) overlap instead of
        serializing on the fabric lock.  Buffers are disjoint by
        construction (each targets its own ghost region), so arrival
        order cannot change the result.
        """
        if self._envelope:
            raise UnsupportedFabricError(
                "batched receives are not available on a verified fabric;"
                " use the per-message protocol"
            )
        n = len(recvs)
        if n == 0:
            return
        timeout = self.timeout
        pending = list(range(n))
        nbytes = 0
        with _TRACER.span("fabric.recv", rank=dst, n=n):
            deadline = time.monotonic() + timeout
            while pending:
                ready = []
                with self._lock:
                    while True:
                        if self._failed:
                            raise AbortedError(
                                "another rank failed; aborting receive"
                            )
                        still = []
                        boxes = self._mailboxes
                        for i in pending:
                            src, tag, _buf = recvs[i]
                            q = boxes.get((src, dst, tag))
                            if q:
                                ready.append((i, q.popleft()))
                            else:
                                self._raise_if_src_dead(src, dst, tag)
                                still.append(i)
                        pending = still
                        if ready or not pending:
                            break
                        remaining = deadline - time.monotonic()
                        if remaining <= 0 or not self._lock.wait(
                            timeout=remaining
                        ):
                            self._failed = True
                            self._lock.notify_all()
                            for i in pending:
                                src, _tag, _buf = recvs[i]
                                if self._stale_heartbeat(src):
                                    self._dead.add(src)
                                    raise RankDeadError(
                                        f"rank {src} missed its heartbeat"
                                        f" deadline; declaring it dead"
                                    )
                            src, tag, _buf = recvs[pending[0]]
                            raise DeadlockError(
                                f"rank {dst} waited {timeout}s for"
                                f" message (src={src}, tag={tag})"
                            )
                for i, entry in ready:
                    src, tag, buf = recvs[i]
                    self._copy_into(entry.buf, buf, (src, dst, tag))
                    nbytes += buf.nbytes
                    entry.done.set()
            with self._lock:
                st = self.stats[dst]
                st.recvs += n
                st.bytes_received += nbytes
        if _METRICS.enabled:
            _METRICS.count("fabric.bytes_received", nbytes, rank=dst)

    def wait_send_batch(self, entries: List[_SendEntry], rank: int) -> None:
        """Await a batch of posted sends in one sweep.

        Entries whose receives already drained cost one flag check each;
        stragglers fall back to the polling wait of :meth:`wait_send`.
        """
        slow = [e for e in entries if not e.done.is_set()]
        if not slow and not _TRACER.enabled:
            return
        timeout = self.timeout
        poll = min(0.1, timeout / 10.0)
        with _TRACER.span("fabric.send_wait", rank=rank, n=len(slow)):
            deadline = time.monotonic() + timeout
            for entry in slow:
                while not entry.done.wait(timeout=poll):
                    with self._lock:
                        if self._failed:
                            raise AbortedError(
                                "another rank failed; abandoning send"
                            )
                    if time.monotonic() >= deadline:
                        self.abort()
                        raise DeadlockError(
                            f"send unmatched after {timeout}s"
                        )

    # ------------------------------------------------------------------
    # Partitioned persistent channels (MPI-4 ``Psend_init`` analogue)
    #
    # A request is negotiated once from a message plan and re-armed every
    # exchange epoch; each flattened buffer is split into equal byte-count
    # partitions that are marked ready -- and hit the wire -- independently.
    # Partition traffic shares the mailbox with plain messages via a
    # disjoint tag space (see ``partition_tag``).  Like the batch ops,
    # partitioned requests refuse verified fabrics: the envelope protocol
    # is strictly per-message.
    # ------------------------------------------------------------------
    def register_split(self, src: int, dst: int, tag: int, nbytes: int,
                       partitions: int, side: str) -> None:
        """Record one endpoint's byte split of edge ``(src, dst, tag)``.

        *side* is ``"send"`` (registered by *src*) or ``"recv"``
        (registered by *dst*).  The first endpoint to negotiate records
        its :func:`partition_bounds`; the second is compared against it
        and a disagreement raises :class:`SplitMismatchError`
        immediately -- the same split the static schedule verifier
        computes, so this is the runtime backstop of the
        ``partition-split-mismatch`` check.  Re-registering a *changed*
        split (a rebuilt channel, e.g. after ladder demotion) drops the
        peer's stale half so the peer's own re-negotiation re-arms the
        comparison instead of tripping on outdated state.
        """
        bounds = partition_bounds(nbytes, partitions)
        edge = (src, dst, tag)
        other = "recv" if side == "send" else "send"
        with self._lock:
            sides = self._splits.setdefault(edge, {})
            prev = sides.get(side)
            if prev is not None and prev != bounds:
                sides.pop(other, None)
            sides[side] = bounds
            peer = sides.get(other)
        if peer is not None and peer != bounds:
            raise SplitMismatchError(
                f"byte split disagreement on (src={src}, dst={dst},"
                f" tag={tag}): {side} side splits {nbytes} bytes into"
                f" {len(bounds)} partition(s), {other} side negotiated"
                f" {peer[-1][1]} bytes in {len(peer)} partition(s)"
            )

    def negotiate_channel(self, rank: int, posts, recvs,
                          partitions: int = 1) -> None:
        """Register a channel's whole message plan with the split registry.

        Called once per :class:`~repro.exchange.base.ExchangeChannel` at
        construction: *posts* are ``(dst, tag, buf)`` and *recvs* are
        ``(src, tag, buf)`` exactly as the channel will fire them, so a
        byte-count or partition-split disagreement between two ranks'
        channels surfaces at negotiation, before any message is posted.
        """
        self._check_rank(rank)
        if partitions < 1:
            raise ExchangeConfigError("partitions must be >= 1")
        for dst, tag, buf in posts:
            self._check_rank(dst)
            self.register_split(rank, dst, tag, buf.nbytes, partitions, "send")
        for src, tag, buf in recvs:
            self._check_rank(src)
            self.register_split(src, rank, tag, buf.nbytes, partitions, "recv")

    def send_init(self, src: int, posts,
                  partitions: int = 1) -> PartitionedSendRequest:
        """Build a persistent partitioned send over ``(dst, tag, buf)``."""
        self._check_rank(src)
        if self._envelope:
            raise UnsupportedFabricError(
                "partitioned persistent sends are not available on a"
                " verified fabric; use the per-message protocol"
            )
        if partitions < 1:
            raise ExchangeConfigError("partitions must be >= 1")
        posts = list(posts)
        for dst, tag, buf in posts:
            self._check_dst_alive(src, dst)
            self.register_split(src, dst, tag, buf.nbytes, partitions, "send")
        return PartitionedSendRequest(self, src, posts, partitions)

    def recv_init(self, dst: int, recvs,
                  partitions: int = 1) -> PartitionedRecvRequest:
        """Build a persistent partitioned receive over ``(src, tag, buf)``."""
        self._check_rank(dst)
        if self._envelope:
            raise UnsupportedFabricError(
                "partitioned persistent receives are not available on a"
                " verified fabric; use the per-message protocol"
            )
        if partitions < 1:
            raise ExchangeConfigError("partitions must be >= 1")
        recvs = list(recvs)
        for src, tag, buf in recvs:
            self.register_split(src, dst, tag, buf.nbytes, partitions, "recv")
        return PartitionedRecvRequest(self, dst, recvs, partitions)

    def wait_send(self, entry: _SendEntry) -> None:
        """Block until *entry* is consumed by its receiver.

        Polls with a short timeout so an aborted run (another rank
        raised) fails fast instead of hanging forever, and declares a
        deadlock after the same timeout as receives.
        """
        rank = entry.src if entry.src >= 0 else None
        timeout = self.timeout
        poll = min(0.1, timeout / 10.0)
        with _TRACER.span("fabric.send_wait", rank=rank):
            deadline = time.monotonic() + timeout
            while not entry.done.wait(timeout=poll):
                with self._lock:
                    if self._failed:
                        raise AbortedError(
                            "another rank failed; abandoning send"
                        )
                if time.monotonic() >= deadline:
                    self.abort()
                    raise DeadlockError(
                        f"send unmatched after {timeout}s"
                    )

    def complete_recv(self, src: int, dst: int, tag: int, buf: np.ndarray) -> None:
        """Block until a matching send exists, then copy it into *buf*."""
        self._check_rank(src)
        self._check_rank(dst)
        if self._envelope:
            return self._recv_verified(src, dst, tag, buf)
        key = (src, dst, tag)
        timeout = self.timeout
        with _TRACER.span("fabric.recv", rank=dst, src=src):
            with self._lock:
                deadline = time.monotonic() + timeout
                while not self._mailboxes.get(key):
                    if self._failed:
                        raise AbortedError(
                            "another rank failed; aborting receive"
                        )
                    self._raise_if_src_dead(src, dst, tag)
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self._lock.wait(timeout=remaining):
                        self._failed = True
                        self._lock.notify_all()
                        if self._stale_heartbeat(src):
                            self._dead.add(src)
                            raise RankDeadError(
                                f"rank {src} missed its heartbeat deadline;"
                                f" declaring it dead"
                            )
                        raise DeadlockError(
                            f"rank {dst} waited {timeout}s for"
                            f" message (src={src}, tag={tag})"
                        )
                entry = self._mailboxes[key].popleft()
            flat = buf.reshape(-1)
            src_flat = entry.buf.reshape(-1).view(flat.dtype)
            if src_flat.size != flat.size:
                self.abort()
                raise SplitMismatchError(
                    f"message size mismatch on (src={src}, dst={dst},"
                    f" tag={tag}): sent {src_flat.size} elements, receiving"
                    f" {flat.size}"
                )
            flat[:] = src_flat  # the single wire copy
            self.stats[dst].recvs += 1
            self.stats[dst].bytes_received += buf.nbytes
            entry.done.set()
        if _METRICS.enabled:
            _METRICS.count("fabric.bytes_received", buf.nbytes, rank=dst)

    # ------------------------------------------------------------------
    def _copy_into(self, src_buf: np.ndarray, buf: np.ndarray,
                   edge: Tuple[int, int, int]) -> np.ndarray:
        """The single wire copy, with the size guard; returns buf flat."""
        flat = buf.reshape(-1)
        src_flat = src_buf.reshape(-1).view(flat.dtype)
        if src_flat.size != flat.size:
            self.abort()
            raise SplitMismatchError(
                f"message size mismatch on (src={edge[0]}, dst={edge[1]},"
                f" tag={edge[2]}): sent {src_flat.size} elements, receiving"
                f" {flat.size}"
            )
        flat[:] = src_flat
        return flat

    def _requeue_pristine(self, key: Tuple[int, int, int],
                          entry: _SendEntry) -> None:
        """Queue a clean retransmit of *entry* at the front of its edge."""
        entry.wire = entry.buf
        entry.lost = False
        with self._lock:
            self._mailboxes[key].appendleft(entry)
            self._lock.notify_all()

    def _recv_verified(self, src: int, dst: int, tag: int,
                       buf: np.ndarray) -> None:
        from repro.exchange.envelope import checksum

        key = (src, dst, tag)
        timeout = self.timeout
        injector = self._injector
        with _TRACER.span("fabric.recv", rank=dst, src=src):
            epoch = self._epochs[dst]
            entry = None
            replay = None
            with self._lock:
                deadline = time.monotonic() + timeout
                while True:
                    if self._failed:
                        raise AbortedError(
                            "another rank failed; aborting receive"
                        )
                    # A re-posted receive for an edge already delivered in
                    # this epoch is served from the delivery cache -- any
                    # mailbox entry on the edge is future traffic.
                    if epoch is not None:
                        cached = self._replay.get(key)
                        if cached is not None and cached[0] == epoch:
                            replay = cached[1]
                            break
                    q = self._mailboxes.get(key)
                    if q:
                        candidate = q.popleft()
                        if candidate.seq <= self._delivered.get(key, 0):
                            # Wire duplicate (injected or stale retransmit).
                            candidate.done.set()
                            if injector is not None:
                                injector.record("duplicate_discarded",
                                                src=src, dst=dst, tag=tag,
                                                seq=candidate.seq)
                            continue
                        entry = candidate
                        break
                    self._raise_if_src_dead(src, dst, tag)
                    remaining = deadline - time.monotonic()
                    if remaining <= 0 or not self._lock.wait(timeout=remaining):
                        self._failed = True
                        self._lock.notify_all()
                        if self._stale_heartbeat(src):
                            self._dead.add(src)
                            raise RankDeadError(
                                f"rank {src} missed its heartbeat deadline;"
                                f" declaring it dead"
                            )
                        raise DeadlockError(
                            f"rank {dst} waited {timeout}s for"
                            f" message (src={src}, tag={tag})"
                        )

            if replay is not None:
                self._copy_into(replay, buf, key)
                if injector is not None:
                    injector.record("replayed", src=src, dst=dst, tag=tag)
                return

            if entry.lost:
                # The envelope sequence numbers expose the loss; model the
                # sender's retransmission (reads straight from the frozen
                # payload), then report the timeout to the caller.
                self._requeue_pristine(key, entry)
                if injector is not None:
                    injector.record("retransmit", src=src, dst=dst, tag=tag,
                                    seq=entry.seq)
                raise ExchangeTimeoutError(
                    f"message (src={src}, dst={dst}, tag={tag},"
                    f" seq={entry.seq}) lost on the wire; retransmit queued"
                )

            flat = self._copy_into(entry.wire, buf, key)
            expected = self._delivered.get(key, 0) + 1
            crc = checksum(flat)
            if entry.seq != expected or crc != entry.crc:
                self._requeue_pristine(key, entry)
                if injector is not None:
                    injector.record("retransmit", src=src, dst=dst, tag=tag,
                                    seq=entry.seq)
                if entry.seq != expected:
                    raise ExchangeIntegrityError(
                        f"sequence gap on (src={src}, dst={dst}, tag={tag}):"
                        f" got seq {entry.seq}, expected {expected}"
                    )
                raise ExchangeIntegrityError(
                    f"checksum mismatch on (src={src}, dst={dst}, tag={tag},"
                    f" seq={entry.seq}): wire crc {crc:#010x} !="
                    f" sent {entry.crc:#010x}"
                )

            with self._lock:
                self._delivered[key] = entry.seq
                if epoch is not None:
                    # entry.buf is the frozen pristine payload: cache it by
                    # reference for idempotent replays, no extra copy.
                    self._replay[key] = (epoch, entry.buf)
            self.stats[dst].recvs += 1
            self.stats[dst].bytes_received += buf.nbytes
            entry.done.set()
        if _METRICS.enabled:
            _METRICS.count("fabric.bytes_received", buf.nbytes, rank=dst)

    def abort(self) -> None:
        """Wake every waiter with a failure (used when one rank raises)."""
        with self._lock:
            self._failed = True
            self._lock.notify_all()
        self.barrier.abort()

    @property
    def pending_messages(self) -> int:
        with self._lock:
            return sum(len(q) for q in self._mailboxes.values())

    def total_stats(self) -> FabricStats:
        agg = FabricStats()
        for s in self.stats:
            agg.sends += s.sends
            agg.recvs += s.recvs
            agg.bytes_sent += s.bytes_sent
            agg.bytes_received += s.bytes_received
        return agg
