"""MPI derived datatypes (for the MPI_Types baseline).

MPI derived datatypes describe non-contiguous regions so the *library*
packs them internally (paper Section 7: "supports Packing internally
within MPI").  We implement the three types a ghost-zone exchange needs --
contiguous, vector, subarray -- with two faces:

* **executed**: ``extract``/``insert`` really move the data via NumPy
  slicing, standing in for the MPI library's internal pack loop;
* **modelled**: ``segment_profile`` reports the number of contiguous
  segments and their run length, which the cost model multiplies by the
  profile's interpretive datatype-engine constants.
"""

from __future__ import annotations

import abc
import math
from typing import Tuple

import numpy as np

from repro.faults.errors import ExchangeConfigError

__all__ = ["Datatype", "ContiguousType", "VectorType", "SubarrayType"]


class Datatype(abc.ABC):
    """Description of a (possibly non-contiguous) element selection."""

    @property
    @abc.abstractmethod
    def count(self) -> int:
        """Total number of elements selected."""

    @abc.abstractmethod
    def segment_profile(self) -> Tuple[int, int]:
        """``(nsegments, run_elems)``: contiguous segment count and the
        typical segment length in elements."""

    @abc.abstractmethod
    def extract(self, arr: np.ndarray) -> np.ndarray:
        """Pack the selection of *arr* into a fresh contiguous buffer."""

    def extract_into(self, arr: np.ndarray, out: np.ndarray) -> None:
        """Pack the selection of *arr* into caller-owned contiguous *out*.

        Persistent-request form of :meth:`extract`: exchange channels
        keep one wire buffer per message and re-fill it every step, so
        the per-step datatype processing allocates nothing.
        """
        out.reshape(-1)[:] = self.extract(arr)

    @abc.abstractmethod
    def insert(self, arr: np.ndarray, buf: np.ndarray) -> None:
        """Unpack contiguous *buf* into the selection of *arr*."""


class ContiguousType(Datatype):
    """``count`` consecutive elements starting at ``offset``."""

    def __init__(self, count: int, offset: int = 0) -> None:
        if count <= 0 or offset < 0:
            raise ExchangeConfigError(
                "count must be positive and offset non-negative"
            )
        self._count = int(count)
        self.offset = int(offset)

    @property
    def count(self) -> int:
        return self._count

    def segment_profile(self) -> Tuple[int, int]:
        return 1, self._count

    def extract(self, arr: np.ndarray) -> np.ndarray:
        flat = arr.reshape(-1)
        return flat[self.offset : self.offset + self._count].copy()

    def insert(self, arr: np.ndarray, buf: np.ndarray) -> None:
        flat = arr.reshape(-1)
        flat[self.offset : self.offset + self._count] = buf.reshape(-1)


class VectorType(Datatype):
    """``nblocks`` runs of ``blocklength`` elements, ``stride`` apart."""

    def __init__(
        self, nblocks: int, blocklength: int, stride: int, offset: int = 0
    ) -> None:
        if nblocks <= 0 or blocklength <= 0:
            raise ExchangeConfigError("nblocks and blocklength must be positive")
        if stride < blocklength:
            raise ExchangeConfigError("stride must be at least blocklength")
        self.nblocks = int(nblocks)
        self.blocklength = int(blocklength)
        self.stride = int(stride)
        self.offset = int(offset)

    @property
    def count(self) -> int:
        return self.nblocks * self.blocklength

    def segment_profile(self) -> Tuple[int, int]:
        if self.stride == self.blocklength:
            return 1, self.count
        return self.nblocks, self.blocklength

    def _index(self) -> np.ndarray:
        starts = self.offset + np.arange(self.nblocks) * self.stride
        return (starts[:, None] + np.arange(self.blocklength)[None, :]).reshape(-1)

    def extract(self, arr: np.ndarray) -> np.ndarray:
        return arr.reshape(-1)[self._index()].copy()

    def insert(self, arr: np.ndarray, buf: np.ndarray) -> None:
        arr.reshape(-1)[self._index()] = buf.reshape(-1)


class SubarrayType(Datatype):
    """An axis-aligned box of a larger array (MPI_Type_create_subarray).

    Shapes are in numpy axis order (last axis fastest).  This is the type
    the MPI_Types exchanger builds for every surface/ghost box.
    """

    def __init__(
        self,
        shape: Tuple[int, ...],
        subshape: Tuple[int, ...],
        start: Tuple[int, ...],
    ) -> None:
        if not (len(shape) == len(subshape) == len(start)):
            raise ExchangeConfigError(
                "shape/subshape/start dimensionality mismatch"
            )
        for full, sub, s in zip(shape, subshape, start):
            if sub <= 0 or s < 0 or s + sub > full:
                raise ExchangeConfigError(
                    f"subarray {subshape}@{start} does not fit in {shape}"
                )
        self.shape = tuple(int(x) for x in shape)
        self.subshape = tuple(int(x) for x in subshape)
        self.start = tuple(int(x) for x in start)

    @property
    def count(self) -> int:
        return math.prod(self.subshape)

    def segment_profile(self) -> Tuple[int, int]:
        # Trailing axes where the subarray spans the full array stay
        # contiguous; the first non-full axis (from the end) breaks runs.
        run = 1
        for full, sub in zip(reversed(self.shape), reversed(self.subshape)):
            run *= sub
            if sub != full:
                break
        nseg = max(1, self.count // run)
        return nseg, run

    def _slices(self) -> Tuple[slice, ...]:
        return tuple(slice(s, s + sub) for s, sub in zip(self.start, self.subshape))

    def extract(self, arr: np.ndarray) -> np.ndarray:
        if arr.shape != self.shape:
            raise ExchangeConfigError(
                f"expected array of shape {self.shape}, got {arr.shape}"
            )
        return np.ascontiguousarray(arr[self._slices()]).reshape(-1)

    def extract_into(self, arr: np.ndarray, out: np.ndarray) -> None:
        if arr.shape != self.shape:
            raise ExchangeConfigError(
                f"expected array of shape {self.shape}, got {arr.shape}"
            )
        np.copyto(out.reshape(self.subshape), arr[self._slices()])

    def insert(self, arr: np.ndarray, buf: np.ndarray) -> None:
        if arr.shape != self.shape:
            raise ExchangeConfigError(
                f"expected array of shape {self.shape}, got {arr.shape}"
            )
        arr[self._slices()] = buf.reshape(self.subshape)
