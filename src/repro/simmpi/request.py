"""Nonblocking request objects (mpi4py-style)."""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from repro.faults.errors import ExchangeConfigError

__all__ = ["SimRequest"]


class SimRequest:
    """Handle for one nonblocking operation.

    A *send* request completes when the matching receive has copied the
    data (synchronous-mode semantics); its ``wait`` blocks on the fabric
    entry's event.  A *recv* request performs the blocking match-and-copy
    inside ``wait`` (receives are lazy: posting only records intent).
    """

    def __init__(self, complete: Callable[[], None], kind: str) -> None:
        if kind not in ("send", "recv"):
            raise ExchangeConfigError(
                f"kind must be 'send' or 'recv', got {kind!r}"
            )
        self._complete = complete
        self.kind = kind
        self.done = False

    def wait(self) -> None:
        """Block until the operation has completed."""
        if not self.done:
            self._complete()
            self.done = True

    def test(self) -> bool:
        """Non-standard convenience: completed yet? (no progress made)."""
        return self.done

    def __repr__(self) -> str:
        state = "done" if self.done else "pending"
        return f"<SimRequest {self.kind} {state}>"

    @staticmethod
    def waitall(requests: Iterable["SimRequest"]) -> None:
        """Complete a batch.

        Receives are drained first: they perform the actual data movement
        and thereby release the senders, so completing them first cannot
        deadlock as long as every rank posts its receives before waiting.
        """
        reqs = list(requests)
        for r in reqs:
            if r.kind == "recv":
                r.wait()
        for r in reqs:
            if r.kind == "send":
                r.wait()
