"""SPMD launcher: run one function on N simulated ranks.

Each rank runs in its own thread (the GIL is irrelevant to correctness;
NumPy copies release it anyway).  If any rank raises, the fabric is
aborted so blocked peers fail fast instead of deadlocking, and the first
exception is re-raised in the caller.
"""

from __future__ import annotations

import threading
from threading import BrokenBarrierError
from typing import Any, Callable, List, Optional

from repro.faults.errors import ExchangeConfigError
from repro.simmpi.comm import SimComm
from repro.simmpi.fabric import AbortedError, SimFabric

__all__ = ["run_spmd", "run_spmd_restartable", "RankFailedError"]


class RankFailedError(RuntimeError):
    """One SPMD rank raised; the root cause is ``__cause__``.

    Kept a ``RuntimeError`` subclass: the elastic/restart drivers catch
    the launcher's wrapper as ``RuntimeError`` and classify on the
    chained cause (e.g. :class:`~repro.faults.errors.RankDeadError`).
    """


def run_spmd(
    nranks: int,
    fn: Callable[..., Any],
    *args: Any,
    fabric: Optional[SimFabric] = None,
    timeout: Optional[float] = None,
    **kwargs: Any,
) -> List[Any]:
    """Run ``fn(comm, *args, **kwargs)`` on every rank; return results.

    The returned list is indexed by rank.  *fabric* may be supplied to
    inspect statistics afterwards.  *timeout* (seconds) overrides the
    fabric deadlock timeout for a fabric created here; resolution order
    is this argument, then ``REPRO_FABRIC_TIMEOUT`` in the environment,
    then the module default (30 s).
    """
    if nranks <= 0:
        raise ExchangeConfigError("nranks must be positive")
    if fabric is not None and timeout is not None:
        fabric.set_timeout(timeout)
    fab = fabric or SimFabric(nranks, timeout=timeout)
    if fab.nranks != nranks:
        raise ExchangeConfigError("supplied fabric has the wrong size")
    results: List[Any] = [None] * nranks
    errors: List[Optional[BaseException]] = [None] * nranks

    def worker(rank: int) -> None:
        comm = SimComm(fab, rank)
        try:
            results[rank] = fn(comm, *args, **kwargs)
        except BaseException as exc:  # noqa: BLE001 - reported to caller
            errors[rank] = exc
            fab.abort()

    threads = [
        threading.Thread(target=worker, args=(r,), name=f"simmpi-rank-{r}")
        for r in range(nranks)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    # Prefer the root cause: a rank's own exception, not the secondary
    # BrokenBarrier/Aborted fallout other ranks see once the fabric dies.
    primary = [
        (rank, err)
        for rank, err in enumerate(errors)
        if err is not None
        and not isinstance(err, (BrokenBarrierError, AbortedError))
    ]
    secondary = [
        (rank, err) for rank, err in enumerate(errors) if err is not None
    ]
    for rank, err in primary or secondary:
        raise RankFailedError(f"rank {rank} failed: {err!r}") from err
    return results


def run_spmd_restartable(
    nranks: int,
    fn: Callable[..., Any],
    *args: Any,
    make_fabric: Callable[[], SimFabric],
    max_restarts: int = 0,
    should_restart: Optional[Callable[[Optional[BaseException]], bool]] = None,
    on_restart: Optional[Callable[[int, Optional[BaseException]], None]] = None,
    timeout: Optional[float] = None,
    **kwargs: Any,
):
    """Elastic :func:`run_spmd`: relaunch the whole world after a rank death.

    A failed attempt aborts its fabric (every rank thread exits), so a
    restart needs a *fresh* fabric -- *make_fabric* builds one per
    attempt.  *should_restart* inspects the failing rank's root-cause
    exception (``err.__cause__`` of the launcher's RuntimeError) and
    decides whether the failure is survivable; *on_restart* runs before
    each relaunch (the checkpoint driver uses it to flip ranks into
    resume mode).  Returns ``(results, fabric, restarts)`` where
    *fabric* is the one that completed.
    """
    restarts = 0
    while True:
        fabric = make_fabric()
        try:
            results = run_spmd(
                nranks, fn, *args, fabric=fabric, timeout=timeout, **kwargs
            )
            return results, fabric, restarts
        except RuntimeError as err:
            cause = err.__cause__
            if (
                restarts >= max_restarts
                or should_restart is None
                or not should_restart(cause)
            ):
                raise
            restarts += 1
            if on_restart is not None:
                on_restart(restarts, cause)
