"""repro: pack-free ghost-zone exchange via data layout and memory mapping.

A Python reproduction of Zhao, Hall, Johansen & Williams, *Improving
Communication by Optimizing On-Node Data Movement with Data Layout*
(PPoPP 2021): the brick library's fine-grained data blocking, layout
optimization for communication, memfd/mmap-based zero-copy exchange views,
simulated-GPU transports, and the full benchmark harness regenerating
every table and figure of the paper's evaluation.  See DESIGN.md for the
system inventory and EXPERIMENTS.md for paper-vs-measured results.
"""

from repro.core import (
    StencilProblem,
    model_timestep,
    run_executed,
)
from repro.hardware import generic_host, summit_v100, theta_knl
from repro.layout import SURFACE2D, SURFACE3D
from repro.stencil import CUBE125, SEVEN_POINT

__version__ = "1.0.0"

__all__ = [
    "CUBE125",
    "SEVEN_POINT",
    "SURFACE2D",
    "SURFACE3D",
    "StencilProblem",
    "__version__",
    "generic_host",
    "model_timestep",
    "run_executed",
    "summit_v100",
    "theta_knl",
]
