"""Failed-node-aware placement for the reshaped world.

After a permanent rank loss the survivors must agree on a new, smaller
Cartesian decomposition.  Two concerns meet here:

* **Node topology** -- ranks live on nodes; losing a rank loses its whole
  node, so every co-located rank is excluded from the reshaped world
  (:class:`ClusterTopology`), mirroring the ``--failed`` placement CLIs
  of process-mapping tools.
* **Decomposition quality** -- among the rank counts that still fit, pick
  the factorization whose modelled ghost-exchange cost is lowest under
  the machine's :class:`~repro.hardware.network.NetworkModel`; the same
  LogGP terms that price the paper's figures also score the reshape.

Everything is deterministic: candidate enumeration order, validity
checks, and tie-breaking are pure functions of the problem and the
survivor count, so every surviving rank (and every rerun of a seeded
chaos trial) computes the identical plan without communicating.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from itertools import product
from typing import Iterable, List, Sequence, Tuple

__all__ = ["ClusterTopology", "choose_rank_dims", "candidate_dims"]


@dataclass(frozen=True)
class ClusterTopology:
    """Block mapping of ranks onto nodes.

    Rank ``r`` lives on node ``r // ranks_per_node``.  The default used
    by the driver is one rank per node (every rank is its own failure
    domain); pass ``ranks_per_node > 1`` to model multi-rank nodes where
    one death takes out the whole node's worth of ranks.
    """

    ranks_per_node: int = 1

    def __post_init__(self) -> None:
        if self.ranks_per_node <= 0:
            raise ValueError("ranks_per_node must be positive")

    def node_of(self, rank: int) -> int:
        return int(rank) // self.ranks_per_node

    def failed_nodes(self, dead_ranks: Iterable[int]) -> List[int]:
        """Nodes hosting at least one dead rank, sorted."""
        return sorted({self.node_of(r) for r in dead_ranks})

    def surviving_ranks(
        self, nranks: int, dead_ranks: Iterable[int]
    ) -> List[int]:
        """Ranks of the old world on nodes with no death, sorted."""
        bad = set(self.failed_nodes(dead_ranks))
        return [r for r in range(int(nranks)) if self.node_of(r) not in bad]


def candidate_dims(n: int, ndim: int) -> List[Tuple[int, ...]]:
    """Every ordered factorization of *n* into *ndim* positive factors."""
    if ndim == 1:
        return [(n,)]
    out: List[Tuple[int, ...]] = []
    divisors = [d for d in range(1, n + 1) if n % d == 0]
    for head in product(divisors, repeat=ndim - 1):
        rest = math.prod(head)
        if n % rest == 0:
            out.append(head + (n // rest,))
    return out


def _dims_valid(problem, dims: Sequence[int]) -> bool:
    """Can the global problem actually run on *dims* ranks?

    Validity is delegated to the real constructors: the problem's
    divisibility rules plus the brick decomposition's
    ``grid >= 2 * width`` surface constraint, so this predicate can
    never drift from what the driver will accept.
    """
    from repro.brick.decomp import BrickDecomp
    from repro.core.problem import StencilProblem

    try:
        trial = StencilProblem(
            global_extent=problem.global_extent,
            rank_dims=tuple(dims),
            stencil=problem.stencil,
            brick_dim=problem.brick_dim,
            ghost=problem.ghost,
            layout=problem.layout,
            dtype=problem.dtype,
            periodic=problem.periodic,
        )
        BrickDecomp(
            trial.subdomain_extent,
            trial.brick_dim,
            trial.ghost,
            trial.layout,
            trial.dtype,
        )
    except ValueError:
        return False
    return True


def _exchange_score(problem, dims: Sequence[int], network) -> float:
    """Modelled per-rank ghost-exchange time for one candidate.

    Prices one message per neighbor direction (the full ``3^D - 1``
    region set): each direction moves ``prod(ghost if moving else
    subdomain)`` elements.  This is the face/edge/corner surface-volume
    term every exchange method pays, which is what should steer the
    reshape -- per-method constants cancel across candidates.
    """
    ndim = len(dims)
    sub = [e // d for e, d in zip(problem.global_extent, dims)]
    g = int(problem.ghost)
    item = problem.dtype.itemsize
    sizes = []
    for direction in product((-1, 0, 1), repeat=ndim):
        if all(d == 0 for d in direction):
            continue
        elems = math.prod(
            g if d != 0 else s for d, s in zip(direction, sub)
        )
        sizes.append(elems * item)
    return network.exchange_time(sizes, sizes)


def choose_rank_dims(problem, max_ranks: int, network) -> Tuple[int, ...]:
    """Best valid decomposition using at most *max_ranks* ranks.

    Prefers the largest feasible rank count (keep the parallelism), then
    the lowest modelled exchange time, then the lexicographically
    smallest dims for a deterministic tie-break.  Raises ``ValueError``
    when not even a single-rank run fits (cannot happen for problems the
    old world already ran, but the contract is explicit).
    """
    if max_ranks < 1:
        raise ValueError("need at least one surviving rank to reshape onto")
    ndim = problem.ndim
    for n in range(int(max_ranks), 0, -1):
        valid = [
            dims for dims in candidate_dims(n, ndim) if _dims_valid(problem, dims)
        ]
        if valid:
            return min(
                valid, key=lambda d: (_exchange_score(problem, d, network), d)
            )
    raise ValueError(
        f"no valid decomposition of {tuple(problem.global_extent)} onto"
        f" <= {max_ranks} ranks"
    )
