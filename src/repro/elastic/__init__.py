"""Elastic restart: survive permanent rank loss by re-bricking snapshots
onto a new decomposition.

Where checkpoint/restart (:mod:`repro.ckpt`) relaunches the *same* world
after a survivable crash, this package handles ranks that are gone for
good -- a node loss.  The recovery protocol (DESIGN.md Section 10):

1. **Detection** -- the fabric's rank-liveness state
   (:meth:`~repro.simmpi.SimFabric.mark_dead`, heartbeat deadlines)
   turns sends and collectives targeting a dead rank into a fast typed
   :class:`~repro.faults.RankDeadError` instead of a timeout.
2. **Membership agreement** -- :func:`plan_recovery` maps deaths to
   failed nodes (:class:`ClusterTopology`) and picks the best surviving
   decomposition under the machine's network model
   (:func:`choose_rank_dims`).
3. **Epoch negotiation** -- :func:`negotiate_recovery_epoch` finds the
   newest epoch verified on *every* old rank via the real allreduce
   protocol over a survivor-sized world.
4. **Re-brick** -- :func:`rebrick` re-slices that epoch's N-rank
   snapshots into an M-rank snapshot set the ordinary restore path
   accepts.
5. **Rebuild** -- the driver relaunches on the new decomposition
   (``run_executed(..., elastic=True)``); exchangers and channels are
   rebuilt from scratch by the normal rank setup.
"""

from repro.elastic.placement import (
    ClusterTopology,
    candidate_dims,
    choose_rank_dims,
)
from repro.elastic.rebrick import (
    rebrick,
    resolved_period,
    restore_global,
    snapshot_key,
)
from repro.elastic.recovery import (
    RecoveryPlan,
    negotiate_recovery_epoch,
    plan_recovery,
)

__all__ = [
    "ClusterTopology",
    "RecoveryPlan",
    "candidate_dims",
    "choose_rank_dims",
    "negotiate_recovery_epoch",
    "plan_recovery",
    "rebrick",
    "resolved_period",
    "restore_global",
    "snapshot_key",
]
