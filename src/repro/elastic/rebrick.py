"""Re-brick a consistent snapshot epoch onto a new decomposition.

The elastic pivot: an N-rank world's per-rank snapshots are read back
chunk by chunk, assembled into the global field through each old rank's
owned region, and re-sliced, re-bricked and re-saved as an M-rank
snapshot of the *same epoch* under the new decomposition's problem key.
The relaunched M-rank world then restores it through the ordinary
checkpoint path -- restart-after-reshape is just restart.

Correctness rests on two invariants of the snapshot format:

* The **owned region is always current**: every cycle position computes
  all interior and surface bricks, so the src storage at epoch ``t``
  holds timestep-``t`` values for every owned element regardless of the
  exchange period.  The global field is therefore exactly recoverable
  from owned regions alone.
* **Ghost margins are reconstructible by periodic wrap**: the redundant
  computation of ghost-cell expansion is bit-identical to the owning
  neighbor's computation of the same cells, so filling the new ranks'
  ghost shells from the global field with periodic indexing reproduces
  every byte a resumed mid-cycle step may read.  (This is why elastic
  restart requires a periodic problem.)

Data moves through the same zero-copy paths the checkpointer uses:
chunks load into a scratch arena via ``BrickStorage.load_slot_bytes``
(an ``Arena.write_bytes`` under the hood), and the new chunks are saved
straight from ``BrickStorage.slot_bytes`` arena views.
"""

from __future__ import annotations

import zlib
from typing import Optional, Tuple

import numpy as np

from repro.brick.convert import bricks_to_extended, extended_to_bricks
from repro.brick.decomp import BrickDecomp
from repro.ckpt import (
    CheckpointError,
    CheckpointStore,
    problem_key,
    storage_chunks,
)
from repro.core.methods import method_info
from repro.core.problem import StencilProblem
from repro.obs import TRACER as _TRACER
from repro.stencil.kernels import owned_slices

__all__ = ["rebrick", "resolved_period", "snapshot_key", "restore_global"]


def resolved_period(problem: StencilProblem, method: str, exchange_period) -> int:
    """The exchange period the driver would resolve for this run.

    Mirrors ``core.driver._resolve_period`` without importing the driver
    (the driver imports this package): ``None``/1 exchange every step,
    ``"auto"`` uses everything the ghost width supports -- brick
    granularity for brick methods, element granularity otherwise.
    """
    info = method_info(method)
    if info.uses_bricks:
        available = problem.ghost // problem.brick_dim[0]
    else:
        available = problem.ghost // problem.stencil.radius
    if exchange_period in (None, 1):
        return 1
    if exchange_period == "auto":
        return available
    period = int(exchange_period)
    if not 1 <= period <= available:
        raise ValueError(
            f"exchange_period {period} outside what ghost width"
            f" {problem.ghost} supports (max {available})"
        )
    return period


def _brick_layout(problem: StencilProblem, method: str, page: Optional[int]):
    """(decomp, assignment) exactly as the driver builds them."""
    decomp = BrickDecomp(
        problem.subdomain_extent,
        problem.brick_dim,
        problem.ghost,
        problem.layout,
        problem.dtype,
    )
    info = method_info(method)
    if info.base == "memmap":
        if page is None:
            raise ValueError("memmap re-bricking needs the run's page size")
        asn = decomp.assignment(decomp.alignment_for_page(page))
    else:
        asn = decomp.assignment(1)
    return decomp, asn


def snapshot_key(
    problem: StencilProblem,
    method: str,
    seed: int,
    period: int,
    page: Optional[int] = None,
) -> str:
    """The problem key the driver stamps on this configuration's snapshots."""
    info = method_info(method)
    if not info.uses_bricks:
        return problem_key(problem, seed, method, 1, 1, period)
    _, asn = _brick_layout(problem, method, page)
    return problem_key(
        problem, seed, method, asn.alignment, asn.total_slots, period
    )


def _rank_coords(rank: int, dims: Tuple[int, ...]) -> Tuple[int, ...]:
    """Cartesian coordinates in axis order 1..D (axis 1 fastest),
    matching ``CartComm.rank_to_coords``."""
    coords = []
    for d in dims:
        coords.append(rank % d)
        rank //= d
    return tuple(coords)


def restore_global(
    store: CheckpointStore,
    problem: StencilProblem,
    epoch: int,
    method: str,
    seed: int,
    *,
    exchange_period=None,
    page: Optional[int] = None,
) -> Tuple[np.ndarray, dict]:
    """Assemble the global field of *epoch* from an N-rank snapshot set.

    Returns ``(global array, rank-0 meta)``.  Every rank's chunks are
    CRC-verified on read and checked against the configuration's problem
    key, so a snapshot from a different run shape is refused, not
    misinterpreted.
    """
    info = method_info(method)
    period = resolved_period(problem, method, exchange_period)
    key = snapshot_key(problem, method, seed, period, page)
    g = problem.ghost
    own_slc = owned_slices(problem.subdomain_extent, g)
    global_arr = np.empty(
        tuple(reversed(problem.global_extent)), dtype=problem.dtype
    )
    meta0: dict = {}
    if info.uses_bricks:
        decomp, asn = _brick_layout(problem, method, page)
        specs = storage_chunks(asn)
        from repro.brick.storage import BrickStorage

        scratch = BrickStorage.allocate(
            asn.total_slots, decomp.brick_elems, decomp.dtype
        )
        try:
            for rank in range(problem.nranks):
                manifest = store.manifest(rank, epoch)
                if manifest["problem_key"] != key:
                    raise CheckpointError(
                        f"rank {rank} epoch {epoch} was written by a"
                        " different run configuration; cannot re-brick"
                    )
                state = store.read_state(rank, manifest, verify=True)
                for spec in specs:
                    scratch.load_slot_bytes(
                        spec.start_slot, spec.nslots, state[spec.name]
                    )
                ext_arr = bricks_to_extended(decomp, scratch, asn)
                coords = _rank_coords(rank, problem.rank_dims)
                global_arr[problem.owned_slices(coords)] = ext_arr[own_slc]
                if rank == 0:
                    meta0 = dict(manifest["meta"])
        finally:
            scratch.close()
    else:
        ext_shape = extended_shape_of(problem)
        for rank in range(problem.nranks):
            manifest = store.manifest(rank, epoch)
            if manifest["problem_key"] != key:
                raise CheckpointError(
                    f"rank {rank} epoch {epoch} was written by a"
                    " different run configuration; cannot re-brick"
                )
            state = store.read_state(rank, manifest, verify=True)
            ext_arr = np.frombuffer(
                state["array"], dtype=problem.dtype
            ).reshape(ext_shape)
            coords = _rank_coords(rank, problem.rank_dims)
            global_arr[problem.owned_slices(coords)] = ext_arr[own_slc]
            if rank == 0:
                meta0 = dict(manifest["meta"])
    return global_arr, meta0


def extended_shape_of(problem: StencilProblem) -> Tuple[int, ...]:
    """Numpy shape of one rank's subdomain-plus-ghost array."""
    return tuple(
        e + 2 * problem.ghost for e in reversed(problem.subdomain_extent)
    )


def _wrapped_extended(
    global_arr: np.ndarray, problem: StencilProblem, coords: Tuple[int, ...]
) -> np.ndarray:
    """One rank's extended subdomain cut from the global field, ghost
    shell filled by periodic wrap (bit-identical to redundant
    computation -- see the module docstring)."""
    sub = problem.subdomain_extent
    g = problem.ghost
    lo = [c * s for c, s in zip(coords, sub)]
    index = []
    for np_axis in range(problem.ndim):
        axis = problem.ndim - 1 - np_axis
        extent = problem.global_extent[axis]
        index.append(
            np.arange(lo[axis] - g, lo[axis] + sub[axis] + g) % extent
        )
    return np.ascontiguousarray(global_arr[np.ix_(*index)])


def rebrick(
    src_store: CheckpointStore,
    old_problem: StencilProblem,
    epoch: int,
    dst_store: CheckpointStore,
    new_problem: StencilProblem,
    *,
    method: str,
    seed: int,
    exchange_period=None,
    page: Optional[int] = None,
    carry_meta: Optional[dict] = None,
) -> dict:
    """Re-slice epoch *epoch* from N old ranks onto M new ranks.

    Writes one full-mode snapshot per new rank into *dst_store*, stamped
    with the new decomposition's problem key and a meta doc the resumed
    driver accepts (step, zeroed counters/timings, the new layout's
    adjacency CRC, and the carried-forward ``fired_crashes`` so already-
    fired fault sites do not refire).  Returns a summary dict.
    """
    if not (old_problem.periodic and new_problem.periodic):
        raise ValueError(
            "elastic re-bricking requires a periodic problem: ghost"
            " shells are reconstructed by periodic wrap"
        )
    if tuple(old_problem.global_extent) != tuple(new_problem.global_extent):
        raise ValueError("old and new problems must share the global extent")
    info = method_info(method)
    period = resolved_period(new_problem, method, exchange_period)
    with _TRACER.span("elastic.rebrick", epoch=epoch):
        global_arr, old_meta = restore_global(
            src_store, old_problem, epoch, method, seed,
            exchange_period=exchange_period, page=page,
        )
        carried = dict(carry_meta or {})
        fired = carried.get(
            "fired_crashes", old_meta.get("fired_crashes") or []
        )
        bytes_written = 0
        if info.uses_bricks:
            decomp, asn = _brick_layout(new_problem, method, page)
            key = problem_key(
                new_problem, seed, method, asn.alignment, asn.total_slots,
                period,
            )
            binfo = decomp.brick_info(asn)
            adjacency_crc = zlib.crc32(
                np.ascontiguousarray(binfo.adjacency).tobytes()
            )
            specs = storage_chunks(asn)
            from repro.brick.storage import BrickStorage

            scratch = BrickStorage.allocate(
                asn.total_slots, decomp.brick_elems, decomp.dtype
            )
            try:
                for rank in range(new_problem.nranks):
                    coords = _rank_coords(rank, new_problem.rank_dims)
                    ext_arr = _wrapped_extended(
                        global_arr, new_problem, coords
                    )
                    extended_to_bricks(ext_arr, decomp, scratch, asn)
                    chunks = [
                        (
                            spec.name,
                            scratch.slot_bytes(spec.start_slot, spec.nslots),
                        )
                        for spec in specs
                    ]
                    manifest = dst_store.save(
                        rank, epoch, chunks,
                        meta=_rebrick_meta(
                            epoch, period, adjacency_crc, fired
                        ),
                        mode="full", problem_key=key,
                    )
                    bytes_written += int(manifest["data_bytes"])
            finally:
                scratch.close()
        else:
            key = problem_key(new_problem, seed, method, 1, 1, period)
            for rank in range(new_problem.nranks):
                coords = _rank_coords(rank, new_problem.rank_dims)
                ext_arr = _wrapped_extended(global_arr, new_problem, coords)
                manifest = dst_store.save(
                    rank, epoch,
                    [("array", ext_arr.reshape(-1).view(np.uint8))],
                    meta=_rebrick_meta(epoch, period, 0, fired),
                    mode="full", problem_key=key,
                )
                bytes_written += int(manifest["data_bytes"])
    return {
        "epoch": int(epoch),
        "old_ranks": old_problem.nranks,
        "new_ranks": new_problem.nranks,
        "new_rank_dims": tuple(new_problem.rank_dims),
        "bytes_written": bytes_written,
    }


def _rebrick_meta(
    epoch: int, period: int, adjacency_crc: int, fired_crashes
) -> dict:
    """Meta doc for a re-bricked snapshot.

    Counters and measured timings restart at zero: they described the
    old decomposition's traffic and mean nothing under the new one.
    ``step`` makes the resumed loop continue at *epoch*.
    """
    return {
        "step": int(epoch),
        "counters": {
            "msgs": 0, "wire": 0, "payload": 0, "maps": 0, "demotions": 0
        },
        "measured": {},
        "ladder_level": None,
        "period": int(period),
        "adjacency_crc": int(adjacency_crc),
        "fired_crashes": [list(c) for c in fired_crashes],
    }
