"""Elastic-restart benchmark: re-brick cost and end-to-end recovery.

Backs the committed ``BENCH_elastic.json`` baseline (see
``benchmarks/compare_bench.py``).  Counts are deterministic -- the
workloads are seeded, the reshape plan is a pure function, and the
recovered field is compared bit-for-bit against the serial reference --
so CI compares them exactly; only the ``_s`` keys are wall-clock and
get the timing tolerance band.
"""

from __future__ import annotations

import tempfile
import time
from pathlib import Path
from typing import Any, Callable, Dict

import numpy as np

__all__ = ["measure_elastic_stats"]

#: The 8 -> 6 scenario: (48, 32, 32) supports both (2, 2, 2) and the
#: shrunken factorizations of six, unlike the cubical chaos problem.
_EXTENT = (48, 32, 32)
_STEPS = 4
_DEATH = (3, 3)  # rank 3 dies permanently at step 3


def _best_of(fn: Callable[[], Any], repeat: int, warmup: int) -> float:
    for _ in range(warmup):
        fn()
    best = float("inf")
    for _ in range(repeat):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _problem():
    from repro.core.problem import StencilProblem
    from repro.stencil.spec import SEVEN_POINT

    return StencilProblem(
        global_extent=_EXTENT,
        rank_dims=(2, 2, 2),
        stencil=SEVEN_POINT,
        brick_dim=(8, 8, 8),
        ghost=8,
    )


def _measure_rebrick(quick: bool) -> Dict[str, Any]:
    """Re-brick one verified epoch from 8 ranks onto the best 6-rank
    decomposition; bytes written and the reshape plan are exact."""
    from repro.ckpt import CheckpointStore
    from repro.core.driver import run_executed
    from repro.elastic import plan_recovery, rebrick
    from repro.hardware.profiles import generic_host

    warmup, repeat = (0, 1) if quick else (1, 3)
    problem = _problem()
    profile = generic_host()
    plan = plan_recovery(problem, [_DEATH[0]], None, profile.network)
    out: Dict[str, Any] = {
        "old_ranks": problem.nranks,
        "new_ranks": plan.new_nranks,
        "new_rank_dims": list(plan.new_rank_dims),
        "survivors": len(plan.survivors),
    }
    with tempfile.TemporaryDirectory(prefix="repro-elastic-bench-") as root:
        run_executed(
            problem, "layout", timesteps=_STEPS, seed=0,
            checkpoint_dir=root, checkpoint_period=1,
        )
        src = CheckpointStore(root)
        epoch = _STEPS - 1  # newest epoch a period-1 run commits
        counter = [0]

        def do_rebrick() -> dict:
            counter[0] += 1
            dst = CheckpointStore(Path(root) / f"bench{counter[0]}")
            return rebrick(
                src, problem, epoch, dst, plan.new_problem,
                method="layout", seed=0,
            )
        summary = do_rebrick()
        out["epoch"] = int(summary["epoch"])
        out["bytes_written"] = int(summary["bytes_written"])
        out["rebrick_s"] = _best_of(do_rebrick, repeat, warmup)
    return out


def _measure_run(quick: bool) -> Dict[str, Any]:
    """End-to-end elastic recovery: a scheduled permanent death at 8
    ranks, reshape to 6, finish bit-exact against the serial reference."""
    from repro.core.driver import run_executed
    from repro.faults.plan import FaultPlan
    from repro.stencil.reference import apply_periodic_reference
    from repro.stencil.spec import SEVEN_POINT

    del quick  # deterministic counts; nothing to trim
    problem = _problem()
    reference = apply_periodic_reference(
        problem.initial_global(0), SEVEN_POINT, _STEPS
    )
    plan = FaultPlan(seed=0, deaths=(_DEATH,))
    with tempfile.TemporaryDirectory(prefix="repro-elastic-bench-") as root:
        run = run_executed(
            problem, "layout", timesteps=_STEPS, seed=0, fault_plan=plan,
            checkpoint_dir=root, checkpoint_period=1, elastic=True,
        )
    return {
        "steps": _STEPS,
        "method": "layout",
        "reshapes": int(run.reshapes),
        "final_nranks": int(np.prod(run.final_rank_dims)),
        "dead_ranks": len(run.dead_ranks),
        "resumed_epoch": int(run.resumed_epoch),
        "exact": int(np.array_equal(run.global_result, reference)),
    }


def measure_elastic_stats(quick: bool = False) -> Dict[str, Any]:
    """The ``BENCH_elastic.json`` document: re-brick + recovery costs."""
    return {"rebrick": _measure_rebrick(quick), "run": _measure_run(quick)}
