"""Recovery coordination: from detected rank death to a relaunchable world.

The protocol (DESIGN.md Section 10) runs in four deterministic stages:

1. **Detection** -- the fabric's liveness state plus the fault injector's
   fired-death log identify exactly which ranks are permanently gone.
2. **Membership agreement** -- :func:`plan_recovery` maps dead ranks to
   failed nodes through the :class:`~repro.elastic.placement.ClusterTopology`,
   drops every co-located rank, and picks the best new decomposition for
   the survivor count under the machine's network model.  Pure function
   of (dead set, topology, problem), so every survivor agrees without a
   vote.
3. **Epoch negotiation** -- :func:`negotiate_recovery_epoch` runs the
   *real* :func:`~repro.ckpt.negotiate_epoch` allreduce protocol over a
   survivor-sized SPMD world: the old ranks' verified-epoch sets are
   sharded across survivors, each contributing the intersection of its
   shard, so the agreed epoch is verified on **all** N old ranks (the
   re-brick needs every shard of the global field).
4. **Re-brick** -- :func:`~repro.elastic.rebrick.rebrick` materializes
   the agreed epoch for the new decomposition; the relaunched world
   resumes through the ordinary checkpoint restore.

No common epoch is not fatal: the plan degrades to a from-scratch
reshape (the new world recomputes from the seeded initial condition),
which is still bit-exact -- just slower.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.ckpt import CheckpointStore, NoCommonEpochError, negotiate_epoch
from repro.core.problem import StencilProblem
from repro.elastic.placement import ClusterTopology, choose_rank_dims
from repro.simmpi.collectives import allreduce
from repro.simmpi.launcher import run_spmd

__all__ = ["RecoveryPlan", "plan_recovery", "negotiate_recovery_epoch"]


@dataclass(frozen=True)
class RecoveryPlan:
    """The agreed shape of the world after a permanent rank loss."""

    dead_ranks: Tuple[int, ...]
    failed_nodes: Tuple[int, ...]
    survivors: Tuple[int, ...]  # old-world ranks still usable
    new_rank_dims: Tuple[int, ...]
    new_problem: StencilProblem

    @property
    def new_nranks(self) -> int:
        return self.new_problem.nranks


def plan_recovery(
    problem: StencilProblem,
    dead_ranks,
    topology: Optional[ClusterTopology],
    network,
) -> RecoveryPlan:
    """Agree on the reshaped world; deterministic, communication-free."""
    dead = tuple(sorted({int(r) for r in dead_ranks}))
    if not dead:
        raise ValueError("recovery planning needs at least one dead rank")
    topo = topology or ClusterTopology()
    survivors = tuple(topo.surviving_ranks(problem.nranks, dead))
    if not survivors:
        raise ValueError(
            f"no survivors: deaths {dead} took out every node"
        )
    new_dims = choose_rank_dims(problem, len(survivors), network)
    new_problem = StencilProblem(
        global_extent=problem.global_extent,
        rank_dims=new_dims,
        stencil=problem.stencil,
        brick_dim=problem.brick_dim,
        ghost=problem.ghost,
        layout=problem.layout,
        dtype=problem.dtype,
        periodic=problem.periodic,
    )
    return RecoveryPlan(
        dead_ranks=dead,
        failed_nodes=tuple(topo.failed_nodes(dead)),
        survivors=survivors,
        new_rank_dims=tuple(new_dims),
        new_problem=new_problem,
    )


def negotiate_recovery_epoch(
    store: CheckpointStore,
    old_nranks: int,
    n_survivors: int,
    problem_key: str,
    *,
    required: bool = False,
) -> int:
    """Newest epoch verified on every old rank, agreed by the survivors.

    Shards the old ranks round-robin across an ``n_survivors``-rank SPMD
    world; each survivor contributes the *intersection* of its shard's
    verified-epoch sets, and the standard
    :func:`~repro.ckpt.negotiate_epoch` descent finds the newest epoch
    common to all shards -- hence to all N old ranks.  Returns -1 when
    no such epoch exists (``required=True`` raises
    :class:`~repro.ckpt.NoCommonEpochError` instead, with the shard
    maxima standing in per survivor).
    """
    if old_nranks <= 0 or n_survivors <= 0:
        raise ValueError("rank counts must be positive")
    n_survivors = min(n_survivors, old_nranks)
    shards: List[List[int]] = [[] for _ in range(n_survivors)]
    for old_rank in range(old_nranks):
        shards[old_rank % n_survivors].append(old_rank)

    def _rank_fn(comm):
        sets = [
            set(store.verified_epochs(r, problem_key))
            for r in shards[comm.rank]
        ]
        mine = sorted(set.intersection(*sets)) if sets else []
        return negotiate_epoch(comm, mine, allreduce, required=required)

    try:
        return int(run_spmd(n_survivors, _rank_fn)[0])
    except RuntimeError as err:
        # Every survivor raises collectively; surface the typed error,
        # not the launcher's per-rank wrapper.
        if isinstance(err.__cause__, NoCommonEpochError):
            raise err.__cause__ from None
        raise
