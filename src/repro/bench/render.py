"""Rendered (text) versions of every paper artifact.

The single registry behind ``examples/paper_figures.py``, the ``repro
figures`` CLI and parts of the benchmark suite: each entry returns the
artifact as an aligned text table.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.bench import experiments as E
from repro.bench.harness import format_series, format_table

__all__ = ["ARTIFACTS", "render"]


def _fig1() -> str:
    d = E.fig1_breakdown()
    rows = [
        [n, d["yask"]["compute"][i], d["yask"]["mpi"][i],
         d["yask"]["packing"][i], d["proposed"]["compute"][i],
         d["proposed"]["mpi"][i]]
        for i, n in enumerate(d["sizes"])
    ]
    return format_table(
        "FIG1  Time breakdown, % of YASK total (8 KNL nodes)",
        ["N", "yask:comp", "yask:mpi", "yask:pack", "prop:comp", "prop:mpi"],
        rows, spec=".1f",
    )


def _fig4() -> str:
    d = E.fig4_layout_vs_basic()
    return format_series(
        "FIG4  Communication time (ms): YASK vs Basic(98) vs Layout(42)",
        "N", d["sizes"], d["comm_ms"],
    )


def _tab1() -> str:
    d = E.table1_messages()
    rows = list(zip(*(d[k] for k in d)))
    return format_table("TAB1  Messages vs dimensionality", list(d), rows)


def _fig8() -> str:
    d = E.k1_scaling()
    return format_series(
        "FIG8  (K1) 7-pt GStencil/s, 8 KNL nodes", "N", d["sizes"],
        d["gstencils"],
    )


def _fig9() -> str:
    d = E.k1_comm_time()
    series = dict(d["comm_ms"], **{"comp(memmap)": d["comp_ms"]})
    return format_series(
        "FIG9  (K1) Communication time (ms), 8 KNL nodes", "N", d["sizes"],
        series,
    )


def _fig10() -> str:
    d = E.k1_compute_time()
    return format_series(
        "FIG10  (K1) Compute time (ms), 8 KNL nodes", "N", d["sizes"],
        d["comp_ms"],
    )


def _fig11() -> str:
    d = E.k2_strong_scaling()
    return format_series(
        "FIG11  (K2) Strong scaling 1024^3, GStencil/s", "nodes", d["nodes"],
        d["gstencils"],
    )


def _fig12() -> str:
    d = E.k2_strong_scaling()
    return format_series(
        "FIG12  (K2) comm vs comp per timestep (ms), 7-pt", "nodes",
        d["nodes"],
        {
            "yask:comm": d["comm_ms"]["yask:7pt"],
            "yask:comp": d["comp_ms"]["yask:7pt"],
            "memmap:comm": d["comm_ms"]["memmap:7pt"],
            "memmap:comp": d["comp_ms"]["memmap:7pt"],
        },
    )


def _fig13() -> str:
    d = E.v1_scaling()
    return format_series(
        "FIG13  (V1) 7-pt GStencil/s, 8 V100s", "N", d["sizes"],
        d["gstencils"],
    )


def _fig14() -> str:
    d = E.v1_comm_time()
    series = dict(d["comm_ms"], **{"comp(memmap_um)": d["comp_ms"]})
    return format_series(
        "FIG14  (V1) Communication time (ms), 8 V100s", "N", d["sizes"],
        series,
    )


def _fig15() -> str:
    d = E.v1_compute_time()
    return format_series(
        "FIG15  (V1) Compute time (ms), 8 V100s", "N", d["sizes"],
        d["comp_ms"],
    )


def _tab2() -> str:
    d = E.table2_padding()
    rows = [
        [n, d["padding_pct"]["layout"][i], d["padding_pct"]["memmap"][i],
         d["bandwidth_gbs"]["layout_ca"][i], d["bandwidth_gbs"]["layout_um"][i],
         d["bandwidth_gbs"]["memmap_um"][i]]
        for i, n in enumerate(d["sizes"])
    ]
    return format_table(
        "TAB2  (V1) Padding (%) and achieved bandwidth (GB/s)",
        ["N", "pad%:layout", "pad%:memmap", "bw:CA", "bw:L_UM", "bw:MM_UM"],
        rows, spec=".1f",
    )


def _fig16() -> str:
    d = E.v2_strong_scaling()
    return format_series(
        "FIG16  (V2) Strong scaling 2048^3, GStencil/s", "nodes", d["nodes"],
        d["gstencils"],
    )


def _fig17() -> str:
    d = E.v2_strong_scaling()
    return format_series(
        "FIG17  (V2) comm vs comp per timestep (ms), 7-pt", "nodes",
        d["nodes"],
        {
            "types:comm": d["comm_ms"]["mpi_types_um:7pt"],
            "memmap:comm": d["comm_ms"]["memmap_um:7pt"],
            "layout_ca:comm": d["comm_ms"]["layout_ca:7pt"],
            "layout_ca:comp": d["comp_ms"]["layout_ca:7pt"],
        },
    )


def _fig18() -> str:
    d = E.fig18_pagesize()
    return format_series(
        "FIG18  Page-size effect on MemMap comm (ms), 8 KNL nodes", "N",
        d["sizes"], d["comm_ms"],
    )


def _tab3() -> str:
    d = E.table3_costs()
    rows = [
        [name, d["Array"][i], d["Layout"][i], d["MemMap"][i]]
        for i, name in enumerate(d["rows"])
    ]
    body = format_table(
        "TAB3  Cost comparison", ["Cost Type", "Array", "Layout", "MemMap"],
        rows,
    )
    notes = "\n".join(f"{k} {v}" for k, v in d["notes"].items())
    return body + notes + "\n"


ARTIFACTS: Dict[str, Callable[[], str]] = {
    "fig1": _fig1, "fig4": _fig4, "tab1": _tab1,
    "fig8": _fig8, "fig9": _fig9, "fig10": _fig10,
    "fig11": _fig11, "fig12": _fig12,
    "fig13": _fig13, "fig14": _fig14, "fig15": _fig15,
    "tab2": _tab2, "fig16": _fig16, "fig17": _fig17,
    "fig18": _fig18, "tab3": _tab3,
}


def render(name: str) -> str:
    """Render one artifact by name (see :data:`ARTIFACTS`)."""
    try:
        fn = ARTIFACTS[name]
    except KeyError:
        raise ValueError(
            f"unknown artifact {name!r}; available: {' '.join(ARTIFACTS)}"
        ) from None
    return fn()
