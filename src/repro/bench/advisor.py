"""Strong-scaling advisor: sweep node counts, pick the best scheme.

Library core behind ``examples/strong_scaling_advisor.py`` and the
``repro advise`` CLI.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.bench.harness import dims_create, format_table
from repro.core.model import model_timestep
from repro.hardware.profiles import MachineProfile, summit_v100, theta_knl
from repro.stencil.spec import CUBE125, SEVEN_POINT, StencilSpec

__all__ = ["AdviceRow", "MACHINES", "STENCILS", "advise", "render_advice"]

#: machine name -> (profile factory, candidate methods, ranks per node)
MACHINES = {
    "theta": (theta_knl, ("yask", "mpi_types", "layout", "memmap"), 1),
    "summit": (
        summit_v100,
        ("mpi_types_um", "layout_um", "memmap_um", "layout_ca"),
        6,
    ),
}

STENCILS = {"7pt": SEVEN_POINT, "125pt": CUBE125}


@dataclass(frozen=True)
class AdviceRow:
    """One node count of the sweep."""

    nodes: int
    subdomain: Tuple[int, int, int]
    timestep_s: Dict[str, float]  # per method
    best: str
    efficiency: float  # parallel efficiency vs the 8-node best


def advise(
    domain: int,
    machine: str = "theta",
    stencil: str = "7pt",
    max_nodes: int = 1024,
    min_subdomain: int = 16,
) -> List[AdviceRow]:
    """Sweep 8..max_nodes (powers of two) and score each method."""
    if machine not in MACHINES:
        raise ValueError(f"unknown machine {machine!r}: {sorted(MACHINES)}")
    if stencil not in STENCILS:
        raise ValueError(f"unknown stencil {stencil!r}: {sorted(STENCILS)}")
    make_profile, methods, ranks_per_node = MACHINES[machine]
    profile = make_profile()
    spec = STENCILS[stencil]

    rows: List[AdviceRow] = []
    base = None
    nodes = 8
    while nodes <= max_nodes:
        dims = dims_create(nodes * ranks_per_node, 3)
        if any(domain % d for d in dims):
            break
        sub = tuple(domain // d for d in dims)
        if min(sub) < min_subdomain:
            break
        times = {}
        for m in methods:
            try:
                times[m] = model_timestep(profile, m, sub, spec).total
            except ValueError:
                continue
        if not times:
            break
        best = min(times, key=times.get)
        if base is None:
            base = times[best] * nodes
        rows.append(
            AdviceRow(
                nodes=nodes,
                subdomain=sub,
                timestep_s=times,
                best=best,
                efficiency=base / (times[best] * nodes),
            )
        )
        nodes *= 2
    return rows


def render_advice(
    rows: Sequence[AdviceRow], domain: int, machine: str, stencil: str
) -> str:
    if not rows:
        return "no feasible configuration in the requested range\n"
    methods = list(rows[0].timestep_s)
    table_rows = [
        [r.nodes, "x".join(map(str, r.subdomain))]
        + [r.timestep_s.get(m, float("nan")) * 1e3 for m in methods]
        + [r.best, 100 * r.efficiency]
        for r in rows
    ]
    _, _, rpn = MACHINES[machine]
    return format_table(
        f"Strong scaling of a {domain}^3 {stencil} stencil on {machine}"
        f" ({rpn} rank(s)/node) -- timestep ms",
        ["nodes", "subdomain"] + methods + ["best", "eff%"],
        table_rows,
        spec=".3g",
    )
