"""Overlap-efficiency benchmark: phased interior/surface execution.

The committed ``BENCH_overlap.json`` baseline gates the phased exchange
layer (partitioned persistent channels + interior/surface split plans)
along two axes:

* **Executed arm** -- ``run_executed`` with ``overlap=True`` against the
  unphased run on a configuration with a genuine interior (64^3 global
  over 2^3 ranks of 8^3 bricks, ghost 8: 64 bricks per rank of which
  2^3 = 8 are interior).  The phased result must be bit-identical, the
  run must actually take the phased path (``phased`` true), and the
  modelled hidden-communication seconds must be positive.
* **Modelled arm** -- the strong-scaling regime the overlap-efficiency
  figure family studies: a 512^3 global domain split over 8..512 ranks.
  At each scale the modelled exchange wait is overlapped with the
  modelled interior sweep (:func:`repro.exchange.costs.overlap_times`);
  the per-scale and aggregate hidden fractions are deterministic pure
  arithmetic, so CI compares them exactly.  The gate is the aggregate
  hidden fraction staying above 0.5: at small scale the interior sweep
  hides the whole wait, at 512 ranks the subdomain is all surface and
  almost nothing hides, and the committed aggregate (~0.68) captures
  that curve.

Measurement discipline matches :mod:`repro.bench.e2ebench`: one untimed
warmup run per arm doubles as the bit-identity check, then the arms are
sampled interleaved and reported as per-arm medians.  No ``speedup`` key
is emitted for the executed arm -- the simulated fabric delivers
messages instantly, so phasing is about protocol correctness and the
modelled overlap economics, not in-process wall clock.
"""

from __future__ import annotations

import math
import statistics
import time
from typing import Any, Dict, List, Tuple

__all__ = [
    "DEFAULT_OVERLAP_CONFIG",
    "STRONG_SCALING_RANK_DIMS",
    "measure_overlap_stats",
]

#: Executed-arm configuration: the smallest geometry whose per-rank
#: brick grid (4^3) has a non-empty interior (2^3) at ghost 8.
DEFAULT_OVERLAP_CONFIG: Dict[str, Any] = {
    "method": "layout",
    "global_extent": (64, 64, 64),
    "rank_dims": (2, 2, 2),
    "brick_dim": (8, 8, 8),
    "ghost": 8,
    "timesteps": 8,
}

#: Modelled-arm rank grids: 512^3 strong scaling, doubling one axis at a
#: time from 8 to 512 ranks (the paper's Figure 9 regime).
STRONG_SCALING_RANK_DIMS: Tuple[Tuple[int, int, int], ...] = (
    (2, 2, 2),
    (2, 2, 4),
    (2, 4, 4),
    (4, 4, 4),
    (4, 4, 8),
    (4, 8, 8),
    (8, 8, 8),
)

#: Modelled-arm global domain.
STRONG_SCALING_EXTENT: Tuple[int, int, int] = (512, 512, 512)


def _interior_points(
    extent: Tuple[int, ...], brick_dim: Tuple[int, ...], ghost: int
) -> int:
    """Points in bricks with no ghost-adjacent face at brick width
    ``ghost // brick_dim`` (the phased interior sweep's workload)."""
    width = ghost // brick_dim[0]
    per_dim = [max(0, e // b - 2 * width) for e, b in zip(extent, brick_dim)]
    return math.prod(per_dim) * math.prod(brick_dim)


def _modelled_scales(quick: bool = False) -> Tuple[List[Dict[str, Any]], float]:
    """(per-scale rows, aggregate hidden fraction) of the modelled arm."""
    from repro.core.methods import method_info
    from repro.core.model import compute_time, exchange_breakdown
    from repro.exchange.costs import overlap_times
    from repro.hardware.profiles import generic_host
    from repro.stencil.spec import SEVEN_POINT

    del quick  # pure arithmetic; nothing to trim
    profile = generic_host()
    info = method_info("layout")
    brick_dim = (8, 8, 8)
    ghost = 8
    rows: List[Dict[str, Any]] = []
    total_wait = 0.0
    total_hidden = 0.0
    for dims in STRONG_SCALING_RANK_DIMS:
        extent = tuple(
            g // d for g, d in zip(STRONG_SCALING_EXTENT, dims)
        )
        bd = exchange_breakdown(
            profile, "layout", extent, brick_dim, ghost,
            itemsize=SEVEN_POINT.itemsize,
        )
        pts = _interior_points(extent, brick_dim, ghost)
        icalc = compute_time(profile, info, pts, SEVEN_POINT)
        visible, hidden = overlap_times(bd.wait, icalc)
        total_wait += bd.wait
        total_hidden += hidden
        rows.append({
            "ranks": math.prod(dims),
            "rank_dims": list(dims),
            "extent_per_rank": list(extent),
            "interior_points": pts,
            "wait_s": bd.wait,
            "interior_calc_s": icalc,
            "visible_wait_s": visible,
            "hidden_fraction": round(hidden / bd.wait, 6) if bd.wait else 0.0,
        })
    aggregate = round(total_hidden / total_wait, 6) if total_wait else 0.0
    return rows, aggregate


def measure_overlap_stats(quick: bool = False) -> Dict[str, Any]:
    """Measure the phased-overlap benchmark document."""
    import numpy as np

    from repro.core.driver import run_executed
    from repro.core.problem import StencilProblem
    from repro.hardware.profiles import generic_host
    from repro.stencil.spec import SEVEN_POINT

    cfg = DEFAULT_OVERLAP_CONFIG
    problem = StencilProblem(
        global_extent=cfg["global_extent"],
        rank_dims=cfg["rank_dims"],
        stencil=SEVEN_POINT,
        brick_dim=cfg["brick_dim"],
        ghost=cfg["ghost"],
    )
    host = generic_host()
    steps = cfg["timesteps"]  # exact-compared configuration key

    def run(overlap: bool):
        t0 = time.perf_counter()
        out = run_executed(
            problem, cfg["method"], host, timesteps=steps, overlap=overlap,
        )
        return time.perf_counter() - t0, out

    # Warmup + bit-identity check in one pass per arm.
    _, r_on = run(True)
    _, r_off = run(False)
    bit_identical = bool(
        np.array_equal(r_on.global_result, r_off.global_result)
    )

    reps = 3 if quick else 5
    on_s, off_s = [], []
    for _ in range(reps):  # interleaved so machine drift hits both arms
        on_s.append(run(True)[0])
        off_s.append(run(False)[0])

    extent_per_rank = tuple(
        g // d for g, d in zip(cfg["global_extent"], cfg["rank_dims"])
    )
    bricks = math.prod(
        e // b for e, b in zip(extent_per_rank, cfg["brick_dim"])
    )
    interior = _interior_points(
        extent_per_rank, cfg["brick_dim"], cfg["ghost"]
    ) // math.prod(cfg["brick_dim"])

    scales, aggregate = _modelled_scales(quick)
    return {
        "phased_layout": {
            "method": cfg["method"],
            "global_extent": list(cfg["global_extent"]),
            "rank_dims": list(cfg["rank_dims"]),
            "brick_dim": list(cfg["brick_dim"]),
            "ghost": cfg["ghost"],
            "timesteps": steps,
            "bricks_per_rank": int(bricks),
            "interior_bricks_per_rank": int(interior),
            "surface_bricks_per_rank": int(bricks - interior),
            "phased": bool(r_on.overlap),
            "bit_identical": bit_identical,
            "messages_per_rank": int(r_on.messages_per_rank),
            "wire_bytes_per_rank": int(r_on.wire_bytes_per_rank),
            "hidden_comm_positive": bool(r_on.hidden_comm_s > 0.0),
            "phased_run_s": statistics.median(on_s),
            "unphased_run_s": statistics.median(off_s),
        },
        "modelled_strong_scaling": {
            "method": "layout",
            "global_extent": list(STRONG_SCALING_EXTENT),
            "brick_dim": [8, 8, 8],
            "ghost": 8,
            "profile": host.name,
            "scales": scales,
            "aggregate_hidden_fraction": aggregate,
            "hidden_fraction_gate": bool(aggregate > 0.5),
        },
    }
