"""Benchmark harness: regenerate every table and figure of the paper.

:mod:`repro.bench.experiments` defines one function per paper artifact
(Fig. 1/4/8/9/10/11/12/13/14/15/16/17/18, Tables 1/2/3), each returning a
plain data structure; :mod:`repro.bench.harness` renders them as aligned
text tables.  The ``benchmarks/`` pytest suite calls these, asserts the
paper's qualitative shapes, and writes the rendered tables under
``benchmarks/results/``.
"""

from repro.bench.harness import dims_create, format_series, format_table
from repro.bench import experiments

__all__ = ["dims_create", "experiments", "format_series", "format_table"]
