"""Rendering and decomposition helpers for the benchmark harness."""

from __future__ import annotations

import math
from typing import Dict, List, Mapping, Sequence, Tuple, Union

__all__ = ["dims_create", "format_table", "format_series"]

Number = Union[int, float]


def dims_create(nranks: int, ndim: int) -> Tuple[int, ...]:
    """Factor *nranks* into *ndim* near-equal factors (MPI_Dims_create).

    Largest factors first; the product is exactly *nranks*.
    """
    if nranks <= 0 or ndim <= 0:
        raise ValueError("nranks and ndim must be positive")
    dims = [1] * ndim
    remaining = nranks
    # Repeatedly peel the smallest prime factor onto the smallest dim.
    factors: List[int] = []
    n = remaining
    p = 2
    while p * p <= n:
        while n % p == 0:
            factors.append(p)
            n //= p
        p += 1
    if n > 1:
        factors.append(n)
    for f in sorted(factors, reverse=True):
        dims[dims.index(min(dims))] *= f
    dims.sort(reverse=True)
    assert math.prod(dims) == nranks
    return tuple(dims)


def _fmt(value, spec: str = ".4g") -> str:
    if isinstance(value, (bool, int, str)) or not isinstance(value, float):
        return str(value)
    return format(value, spec)


def format_table(
    title: str,
    columns: Sequence[str],
    rows: Sequence[Sequence[Number]],
    spec: str = ".4g",
) -> str:
    """Render an aligned text table with a title rule."""
    cells = [[str(c) for c in columns]] + [
        [_fmt(v, spec) for v in row] for row in rows
    ]
    widths = [max(len(r[i]) for r in cells) for i in range(len(columns))]
    lines = [title, "-" * max(len(title), sum(widths) + 2 * len(widths))]
    for r, rendered in enumerate(cells):
        lines.append("  ".join(c.rjust(w) for c, w in zip(rendered, widths)))
        if r == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines) + "\n"


def format_series(
    title: str,
    x_name: str,
    xs: Sequence[Number],
    series: Mapping[str, Sequence[Number]],
    spec: str = ".4g",
) -> str:
    """Render {name: values} series against a shared x axis."""
    columns = [x_name] + list(series)
    rows = [
        [x] + [series[name][i] for name in series] for i, x in enumerate(xs)
    ]
    return format_table(title, columns, rows, spec)
