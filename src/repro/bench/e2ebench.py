"""End-to-end executed-run speedup: plans on vs plans off.

The committed ``BENCH_e2e.json`` baseline is the whole-run gate for the
run-plan layer (:mod:`repro.core.runplan`): the compiled brick kernel was
5.7x in micro-benchmarks long before it showed up on executed wall clock,
so CI gates the end-to-end number itself.  One function,
:func:`measure_e2e_stats`, times ``run_executed`` with plans on and off
on the strong-scaling regime (16^3 subdomains of 8^3 bricks, ghost 8 --
the halo-dominated configuration the paper's Figure 9 studies), checks
the two results are bit-identical, and returns the JSON document both
``python -m repro bench e2e`` and ``benchmarks/compare_bench.py``
consume.

Measurement discipline (the per-run timings on shared runners are noisy;
the gate must not be): one untimed warmup run per arm primes kernel
compilation and allocator pools, then the arms are sampled interleaved
(on, off, on, off, ...) so drift hits both equally, and the reported
seconds are the per-arm medians.  ``speedup`` is the ratio of medians.
"""

from __future__ import annotations

import statistics
import time
from typing import Any, Dict

__all__ = ["DEFAULT_E2E_CONFIG", "measure_e2e_stats"]

#: Configuration of the committed ``BENCH_e2e.json`` baseline.  32 steps:
#: long enough that per-run compile/setup amortizes and the loop's
#: steady state dominates (the regime run plans exist for), short enough
#: that the full suite stays a few seconds.
DEFAULT_E2E_CONFIG: Dict[str, Any] = {
    "method": "layout",
    "global_extent": (32, 32, 32),
    "rank_dims": (2, 2, 2),
    "brick_dim": (8, 8, 8),
    "ghost": 8,
    "timesteps": 32,
}


def measure_e2e_stats(quick: bool = False) -> Dict[str, Any]:
    """Measure the plans-on vs plans-off whole-run speedup document."""
    import numpy as np

    from repro.core.driver import run_executed
    from repro.core.problem import StencilProblem
    from repro.hardware.profiles import generic_host
    from repro.stencil.cbackend import batch_step_kernel
    from repro.stencil.spec import SEVEN_POINT

    cfg = DEFAULT_E2E_CONFIG
    problem = StencilProblem(
        global_extent=cfg["global_extent"],
        rank_dims=cfg["rank_dims"],
        stencil=SEVEN_POINT,
        brick_dim=cfg["brick_dim"],
        ghost=cfg["ghost"],
    )
    host = generic_host()
    steps = cfg["timesteps"]  # exact-compared configuration key

    def run(use_plans: bool):
        t0 = time.perf_counter()
        out = run_executed(
            problem, cfg["method"], host, timesteps=steps,
            use_plans=use_plans,
        )
        return time.perf_counter() - t0, out

    # Warmup + bit-identity check in one: the first run per arm also
    # primes compiled kernels, plan templates and allocator pools.
    _, r_on = run(True)
    _, r_off = run(False)
    bit_identical = bool(
        np.array_equal(r_on.global_result, r_off.global_result)
    )

    reps = 3 if quick else 7
    on_s, off_s = [], []
    for _ in range(reps):  # interleaved so machine drift hits both arms
        on_s.append(run(True)[0])
        off_s.append(run(False)[0])
    t_on = statistics.median(on_s)
    t_off = statistics.median(off_s)

    # Which kernel backend actually served the plans-on arm.
    probe = batch_step_kernel(
        SEVEN_POINT.taps,
        tuple(reversed(cfg["brick_dim"])),
        SEVEN_POINT.radius,
        0,
        int(np.prod(cfg["brick_dim"])),
        np.float64,
    )
    backend = "cffi" if probe is not None else "numpy"

    return {
        "run_executed_layout": {
            "method": cfg["method"],
            "global_extent": list(cfg["global_extent"]),
            "rank_dims": list(cfg["rank_dims"]),
            "brick_dim": list(cfg["brick_dim"]),
            "ghost": cfg["ghost"],
            "timesteps": steps,
            "messages_per_rank": int(r_on.messages_per_rank),
            "wire_bytes_per_rank": int(r_on.wire_bytes_per_rank),
            "bit_identical": bit_identical,
            "kernel_backend": backend,
            "plans_on_s": t_on,
            "plans_off_s": t_off,
            "speedup": t_off / t_on,
        }
    }
