"""Traced executed runs as a measurable artifact.

One function, :func:`traced_run_stats`, runs the executed driver with the
observability layer enabled and returns the machine-readable summary that
both the ``python -m repro trace`` CLI and the CI perf-regression gate
(``benchmarks/compare_bench.py``) consume:

* deterministic ``counts`` (spans per name, messages, bytes) that CI
  compares exactly,
* wall-clock ``span_s`` totals and the traced run's ``wall_s``, compared
  with a tolerance band, and
* optionally an ``overhead`` section -- the same run untraced vs traced
  -- substantiating the observability layer's <5 % overhead budget.

The modelled :class:`~repro.core.metrics.RunMetrics` are untouched by any
of this; tracing only ever watches the wall clock.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Optional, Sequence, Tuple

from repro import obs

__all__ = ["DEFAULT_TRACE_CONFIG", "traced_run_stats"]

#: The configuration the committed ``BENCH_trace.json`` baseline uses.
DEFAULT_TRACE_CONFIG: Dict[str, Any] = {
    "method": "layout",
    "domain": (32, 32, 32),
    "ranks": (2, 2, 2),
    "steps": 4,
    "brick": 8,
    "ghost": 8,
    "stencil": "7pt",
    "machine": "theta",
}


def _problem(domain, ranks, brick, ghost, stencil_name):
    from repro.core.problem import StencilProblem
    from repro.stencil.spec import CUBE125, SEVEN_POINT

    stencil = {"7pt": SEVEN_POINT, "125pt": CUBE125}[stencil_name]
    return StencilProblem(
        global_extent=tuple(domain),
        rank_dims=tuple(ranks),
        stencil=stencil,
        brick_dim=(brick,) * 3,
        ghost=ghost,
    )


def _machine(name: str):
    from repro.hardware.profiles import generic_host, summit_v100, theta_knl

    return {
        "theta": theta_knl, "summit": summit_v100, "generic": generic_host
    }[name]()


def traced_run_stats(
    method: str = "layout",
    domain: Sequence[int] = (32, 32, 32),
    ranks: Sequence[int] = (2, 2, 2),
    steps: int = 4,
    brick: int = 8,
    ghost: int = 8,
    stencil: str = "7pt",
    machine: str = "theta",
    exchange_period=None,
    overhead: bool = False,
) -> Tuple[Dict[str, Any], Any]:
    """Run the executed driver traced; return ``(stats, run)``.

    After the call, :data:`repro.obs.TRACER` / :data:`~repro.obs.METRICS`
    still hold the recorded trace (disabled but readable), so callers can
    export the Chrome timeline or flame summary of the same run.
    """
    from repro.core.driver import run_executed

    problem = _problem(domain, ranks, brick, ghost, stencil)
    profile = _machine(machine)
    config = {
        "method": method,
        "domain": list(domain),
        "ranks": list(ranks),
        "steps": steps,
        "brick": brick,
        "ghost": ghost,
        "stencil": stencil,
        "machine": machine,
    }

    def one_run():
        t0 = time.perf_counter()
        result = run_executed(
            problem, method, profile, timesteps=steps,
            exchange_period=exchange_period,
        )
        return time.perf_counter() - t0, result

    untraced_s = None
    if overhead:
        # Warm numpy/codegen caches, then interleave untraced/traced
        # pairs and take the best of each, so the ratio measures the
        # hooks rather than cold start or scheduler drift.  The trace
        # exported afterwards is the final traced run's.
        one_run()
        untraced_s = traced_s = None
        for _ in range(3):
            untraced = one_run()[0]
            obs.enable()
            try:
                traced, run = one_run()
            finally:
                obs.disable()
            untraced_s = untraced if untraced_s is None \
                else min(untraced_s, untraced)
            traced_s = traced if traced_s is None else min(traced_s, traced)
    else:
        obs.enable()
        try:
            traced_s, run = one_run()
        finally:
            obs.disable()

    stats = obs.trace_stats(obs.TRACER, obs.METRICS, config=config)
    stats["wall_s"] = traced_s
    if overhead:
        stats["overhead"] = {
            "traced_s": traced_s,
            "untraced_s": untraced_s,
            "overhead_ratio": traced_s / untraced_s if untraced_s else 1.0,
        }
    return stats, run
