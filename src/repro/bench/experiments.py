"""One function per paper artifact (DESIGN.md Section 4).

Every function evaluates the modelled cost of each scheme through the
*same* machinery the executed driver uses (``repro.core.model``), at the
paper's exact experimental configurations: 8-node K1/V1 sweeps over
subdomain sizes 512^3 .. 16^3, strong scaling to 1024 nodes, page-size
sweeps, and the padding/bandwidth table.  Results come back as plain
dicts ready for :func:`repro.bench.harness.format_series`.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.harness import dims_create
from repro.core.model import exchange_breakdown, model_timestep
from repro.exchange.schedule import memmap_schedule
from repro.hardware.profiles import (
    MachineProfile,
    summit_v100,
    theta_knl,
)
from repro.layout.analysis import table1 as _table1
from repro.layout.messages import messages_for_order
from repro.layout.order import SURFACE3D, lexicographic_order
from repro.stencil.spec import CUBE125, SEVEN_POINT, StencilSpec

__all__ = [
    "K1_SIZES",
    "SCALING_NODES",
    "fig1_breakdown",
    "fig4_layout_vs_basic",
    "table1_messages",
    "k1_scaling",
    "k1_comm_time",
    "k1_compute_time",
    "k2_strong_scaling",
    "v1_scaling",
    "v1_comm_time",
    "v1_compute_time",
    "table2_padding",
    "v2_strong_scaling",
    "fig18_pagesize",
    "table3_costs",
]

#: Subdomain dimensions of the 8-node sweeps (K1, V1, Figs. 1/4/18).
K1_SIZES: Tuple[int, ...] = (512, 256, 128, 64, 32, 16)

#: Node counts of the strong-scaling experiments (K2, V2): 2^3 .. 2^10.
SCALING_NODES: Tuple[int, ...] = (8, 16, 32, 64, 128, 256, 512, 1024)


def _step(profile, method, n, stencil=SEVEN_POINT, **kw):
    return model_timestep(profile, method, (n, n, n), stencil, **kw)


def _gstencil(points: int, seconds: float) -> float:
    return points / seconds / 1e9


# ---------------------------------------------------------------------------
# Figure 1 -- time breakdown, YASK vs proposed (MemMap), 8 KNL nodes
# ---------------------------------------------------------------------------

def fig1_breakdown(profile: Optional[MachineProfile] = None) -> Dict:
    """Per-timestep time split (% of the YASK total) per subdomain size."""
    profile = profile or theta_knl()
    out = {
        "sizes": list(K1_SIZES),
        "yask": {"compute": [], "mpi": [], "packing": []},
        "proposed": {"compute": [], "mpi": [], "packing": []},
    }
    for n in K1_SIZES:
        yask = _step(profile, "yask", n)
        prop = _step(profile, "memmap", n)
        total = yask.total  # both bars normalised to the YASK total
        out["yask"]["compute"].append(100 * yask.calc / total)
        out["yask"]["mpi"].append(100 * (yask.call + yask.wait) / total)
        out["yask"]["packing"].append(100 * yask.pack / total)
        out["proposed"]["compute"].append(100 * prop.calc / total)
        out["proposed"]["mpi"].append(100 * (prop.call + prop.wait) / total)
        out["proposed"]["packing"].append(100 * prop.pack / total)
    return out


# ---------------------------------------------------------------------------
# Figure 4 -- communication time: YASK vs Basic vs Layout
# ---------------------------------------------------------------------------

def fig4_layout_vs_basic(profile: Optional[MachineProfile] = None) -> Dict:
    profile = profile or theta_knl()
    out = {
        "sizes": list(K1_SIZES),
        "comm_ms": {"yask": [], "basic": [], "layout": []},
        "messages": {
            "basic": 98,
            "layout": messages_for_order(SURFACE3D, 3),
        },
    }
    for n in K1_SIZES:
        for method in ("yask", "basic", "layout"):
            out["comm_ms"][method].append(
                exchange_breakdown(profile, method, (n, n, n)).comm * 1e3
            )
    return out


# ---------------------------------------------------------------------------
# Table 1 -- message counts vs dimension
# ---------------------------------------------------------------------------

def table1_messages(max_dim: int = 5) -> Dict[str, List[int]]:
    return _table1(max_dim)


# ---------------------------------------------------------------------------
# K1 (Figures 8, 9, 10) -- 8 KNL nodes, subdomain sweep
# ---------------------------------------------------------------------------

K1_METHODS = ("memmap", "layout", "yask", "yask_ol", "mpi_types")


def k1_scaling(
    profile: Optional[MachineProfile] = None,
    stencil: StencilSpec = SEVEN_POINT,
) -> Dict:
    """Fig. 8: throughput (GStencil/s, 8 ranks) per method and size."""
    profile = profile or theta_knl()
    out = {"sizes": list(K1_SIZES), "gstencils": {m: [] for m in K1_METHODS}}
    for n in K1_SIZES:
        for method in K1_METHODS:
            bd = _step(profile, method, n, stencil)
            out["gstencils"][method].append(_gstencil(8 * n**3, bd.total))
    return out


def k1_comm_time(profile: Optional[MachineProfile] = None) -> Dict:
    """Fig. 9: per-timestep communication time (ms) plus Network floor
    and MemMap's compute time for reference."""
    profile = profile or theta_knl()
    methods = ("mpi_types", "yask", "layout", "memmap", "network")
    out = {"sizes": list(K1_SIZES), "comm_ms": {m: [] for m in methods}}
    out["comp_ms"] = []
    for n in K1_SIZES:
        for method in methods:
            out["comm_ms"][method].append(
                exchange_breakdown(profile, method, (n, n, n)).comm * 1e3
            )
        out["comp_ms"].append(_step(profile, "memmap", n).calc * 1e3)
    return out


def k1_compute_time(profile: Optional[MachineProfile] = None) -> Dict:
    """Fig. 10: compute time per method; brick-based methods are
    identical regardless of layout (including the No-Layout ordering)."""
    profile = profile or theta_knl()
    methods = ("mpi_types", "yask", "layout", "memmap", "no_layout")
    out = {"sizes": list(K1_SIZES), "comp_ms": {m: [] for m in methods}}
    for n in K1_SIZES:
        for method in methods:
            # No-Layout is fine-grained blocking with lexicographic brick
            # order -- same compute model as any other brick order.
            real = "layout" if method == "no_layout" else method
            out["comp_ms"][method].append(_step(profile, real, n).calc * 1e3)
    return out


# ---------------------------------------------------------------------------
# K2 (Figures 11, 12) -- strong scaling of 1024^3 on 8..1024 KNL nodes
# ---------------------------------------------------------------------------

def _strong_scaling(
    profile: MachineProfile,
    global_extent: Tuple[int, int, int],
    nodes: Sequence[int],
    ranks_per_node: int,
    methods: Sequence[str],
    stencils: Sequence[StencilSpec],
) -> Dict:
    points = math.prod(global_extent)
    out = {
        "nodes": list(nodes),
        "gstencils": {},
        "comm_ms": {},
        "comp_ms": {},
        "subdomains": [],
    }
    for m in methods:
        for s in stencils:
            key = f"{m}:{s.name}"
            out["gstencils"][key] = []
            out["comm_ms"][key] = []
            out["comp_ms"][key] = []
    for nn in nodes:
        nranks = nn * ranks_per_node
        dims = dims_create(nranks, 3)
        sub = tuple(e // d for e, d in zip(global_extent, dims))
        out["subdomains"].append(sub)
        for m in methods:
            for s in stencils:
                key = f"{m}:{s.name}"
                bd = model_timestep(profile, m, sub, s)
                out["gstencils"][key].append(_gstencil(points, bd.total))
                out["comm_ms"][key].append(bd.comm * 1e3)
                out["comp_ms"][key].append(bd.calc * 1e3)
    return out


def k2_strong_scaling(profile: Optional[MachineProfile] = None) -> Dict:
    profile = profile or theta_knl()
    return _strong_scaling(
        profile,
        (1024, 1024, 1024),
        SCALING_NODES,
        ranks_per_node=1,
        methods=("memmap", "yask"),
        stencils=(SEVEN_POINT, CUBE125),
    )


# ---------------------------------------------------------------------------
# V1 (Figures 13, 14, 15) -- 8 Summit nodes, 1 V100 per rank
# ---------------------------------------------------------------------------

V1_METHODS = ("layout_ca", "layout_um", "memmap_um", "mpi_types_um")


def v1_scaling(
    profile: Optional[MachineProfile] = None,
    stencil: StencilSpec = SEVEN_POINT,
) -> Dict:
    profile = profile or summit_v100()
    out = {"sizes": list(K1_SIZES), "gstencils": {m: [] for m in V1_METHODS}}
    for n in K1_SIZES:
        for method in V1_METHODS:
            bd = _step(profile, method, n, stencil)
            out["gstencils"][method].append(_gstencil(8 * n**3, bd.total))
    return out


def v1_comm_time(profile: Optional[MachineProfile] = None) -> Dict:
    profile = profile or summit_v100()
    methods = V1_METHODS + ("network_ca",)
    out = {"sizes": list(K1_SIZES), "comm_ms": {m: [] for m in methods}}
    out["comp_ms"] = []
    for n in K1_SIZES:
        for method in methods:
            out["comm_ms"][method].append(
                exchange_breakdown(profile, method, (n, n, n)).comm * 1e3
            )
        out["comp_ms"].append(_step(profile, "memmap_um", n).calc * 1e3)
    return out


def v1_compute_time(profile: Optional[MachineProfile] = None) -> Dict:
    """Fig. 15: UM page-alignment effects on compute time."""
    profile = profile or summit_v100()
    out = {"sizes": list(K1_SIZES), "comp_ms": {m: [] for m in V1_METHODS}}
    for n in K1_SIZES:
        for method in V1_METHODS:
            out["comp_ms"][method].append(_step(profile, method, n).calc * 1e3)
    return out


# ---------------------------------------------------------------------------
# Table 2 -- padding overhead and achieved bandwidth (V1)
# ---------------------------------------------------------------------------

def table2_padding(profile: Optional[MachineProfile] = None) -> Dict:
    profile = profile or summit_v100()
    page = profile.page_size
    out = {
        "sizes": list(K1_SIZES),
        "padding_pct": {"layout": [], "memmap": []},
        "bandwidth_gbs": {"layout_ca": [], "layout_um": [], "memmap_um": []},
    }
    for n in K1_SIZES:
        grid = (n // 8,) * 3
        # Padding: Layout transmits exactly the payload; MemMap pads each
        # region to page multiples.
        mm = memmap_schedule(grid, 1, SURFACE3D, 4096, page)
        payload = sum(m.payload_bytes for m in mm)
        wire = sum(m.wire_bytes for m in mm)
        out["padding_pct"]["layout"].append(0.0)
        out["padding_pct"]["memmap"].append(100.0 * (wire - payload) / payload)
        # Achieved bandwidth: wire bytes / (call + wait).
        for method in ("layout_ca", "layout_um", "memmap_um"):
            bd = exchange_breakdown(profile, method, (n, n, n))
            sent = wire if method.startswith("memmap") else payload
            out["bandwidth_gbs"][method].append(sent / (bd.call + bd.wait) / 1e9)
    return out


# ---------------------------------------------------------------------------
# V2 (Figures 16, 17) -- strong scaling of 2048^3 on 8..1024 Summit nodes
# ---------------------------------------------------------------------------

def v2_strong_scaling(profile: Optional[MachineProfile] = None) -> Dict:
    profile = profile or summit_v100()
    return _strong_scaling(
        profile,
        (2048, 2048, 2048),
        SCALING_NODES,
        ranks_per_node=6,
        methods=("layout_ca", "memmap_um", "mpi_types_um"),
        stencils=(SEVEN_POINT, CUBE125),
    )


# ---------------------------------------------------------------------------
# Figure 18 -- page-size impact on MemMap (estimated on the K1 setup)
# ---------------------------------------------------------------------------

def fig18_pagesize(profile: Optional[MachineProfile] = None) -> Dict:
    profile = profile or theta_knl()
    pages = (4 * 1024, 16 * 1024, 64 * 1024)
    out = {
        "sizes": list(K1_SIZES),
        "comm_ms": {f"memmap_{p // 1024}KiB": [] for p in pages},
    }
    out["comm_ms"]["yask"] = []
    out["comm_ms"]["mpi_types"] = []
    for n in K1_SIZES:
        for p in pages:
            out["comm_ms"][f"memmap_{p // 1024}KiB"].append(
                exchange_breakdown(profile, "memmap", (n, n, n), page_size=p).comm
                * 1e3
            )
        out["comm_ms"]["yask"].append(
            exchange_breakdown(profile, "yask", (n, n, n)).comm * 1e3
        )
        out["comm_ms"]["mpi_types"].append(
            exchange_breakdown(profile, "mpi_types", (n, n, n)).comm * 1e3
        )
    return out


# ---------------------------------------------------------------------------
# Table 3 -- qualitative cost comparison, derived from measured quantities
# ---------------------------------------------------------------------------

def table3_costs(profile: Optional[MachineProfile] = None) -> Dict:
    """Reproduce Table 3 from the model rather than by assertion: each
    cell is derived from the corresponding measured/modelled quantity at
    the 64^3 working point."""
    profile = profile or theta_knl()
    n = 64
    yask = exchange_breakdown(profile, "yask", (n, n, n))
    layout = exchange_breakdown(profile, "layout", (n, n, n))
    memmap = exchange_breakdown(profile, "memmap", (n, n, n), page_size=65536)

    def level(x: float, lo: float, hi: float) -> str:
        if x <= lo:
            return "-"
        return "Low" if x <= hi else "High"

    mm_schedule = memmap_schedule((n // 8,) * 3, 1, SURFACE3D, 4096, 65536)
    pad = sum(m.wire_bytes - m.payload_bytes for m in mm_schedule)
    payload = sum(m.payload_bytes for m in mm_schedule)
    extra_msgs_layout = 42 - 26
    return {
        "rows": ["Strided Packing", "Extra Msgs", "Manual CPU-GPU", "Large Page"],
        "Array": ["High", "-", "High", "-"],
        "Layout": [
            level(layout.pack, 0.0, 1e-5),
            "Low*" if extra_msgs_layout else "-",
            "-",
            "-",
        ],
        "MemMap": [
            level(memmap.pack, 0.0, 1e-5),
            "-",
            "-",
            "Low**" if pad / payload < 3 else "High",
        ],
        "notes": {
            "*": f"{extra_msgs_layout} extra messages (42 vs 26) -- Section 3.3",
            "**": f"padding {100 * pad / payload:.1f}% of payload at 64^3 with"
                  " 64 KiB pages -- Section 7.3",
        },
    }
