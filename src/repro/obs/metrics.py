"""Counter/gauge registry for the executed data-movement path.

Counters accumulate (bytes packed, messages sent, halo cells gathered,
plan cache hits); gauges record a last-written value (mmap regions held
by an exchanger).  Both are tracked per rank where the caller knows its
rank, with ``rank=None`` sums kept separately under the ``"-"`` key.

Hot-path discipline: recording writes to a *per-thread shard* (a plain
dict, no lock -- simulated ranks are threads, so shards double as
per-rank buckets); the registry lock is taken only when a thread first
registers its shard and when a reader merges them.  Disabled cost is one
attribute test, and every instrumented call site additionally guards on
:attr:`MetricsRegistry.enabled` where building the arguments has a cost.

Like the tracer, the registry is an observer: it never feeds the modelled
:class:`~repro.util.timing.TimeBreakdown` clocks.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Tuple, Union

__all__ = ["MetricsRegistry"]

Number = Union[int, float]

#: per-rank key used when the caller did not identify its rank
_NO_RANK = "-"


class MetricsRegistry:
    """Named counters and gauges, bucketed per rank, thread-sharded."""

    def __init__(self) -> None:
        self.enabled = False
        self._lock = threading.Lock()
        # (counter shard, gauge shard) per thread; keys are (name, rank).
        self._shards: List[Tuple[dict, dict]] = []
        self._tls = threading.local()

    # -- lifecycle -------------------------------------------------------
    def enable(self) -> None:
        self.clear()
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def clear(self) -> None:
        with self._lock:
            self._shards = []
        self._tls = threading.local()

    def _shard(self) -> Tuple[dict, dict]:
        shard = getattr(self._tls, "shard", None)
        if shard is None:
            shard = ({}, {})
            self._tls.shard = shard
            with self._lock:
                self._shards.append(shard)
        return shard

    # -- recording -------------------------------------------------------
    def count(self, name: str, value: Number = 1,
              rank: Optional[int] = None) -> None:
        """Add *value* to counter *name* (no-op while disabled)."""
        if not self.enabled:
            return
        counters = self._shard()[0]
        key = (name, _NO_RANK if rank is None else rank)
        counters[key] = counters.get(key, 0) + value

    def gauge(self, name: str, value: Number,
              rank: Optional[int] = None) -> None:
        """Set gauge *name* to *value*.

        Last write wins per (name, rank) within a thread; across threads
        writing the *same* (name, rank) -- which the per-rank-thread
        layout avoids -- the merge order is unspecified.
        """
        if not self.enabled:
            return
        gauges = self._shard()[1]
        gauges[(name, _NO_RANK if rank is None else rank)] = value

    # -- reading ---------------------------------------------------------
    def _merged(self) -> Tuple[Dict[str, dict], Dict[str, dict]]:
        with self._lock:
            shards = list(self._shards)
        counters: Dict[str, dict] = {}
        gauges: Dict[str, dict] = {}
        for counter_shard, gauge_shard in shards:
            for (name, rank), value in counter_shard.items():
                per = counters.setdefault(name, {})
                per[rank] = per.get(rank, 0) + value
            for (name, rank), value in gauge_shard.items():
                gauges.setdefault(name, {})[rank] = value
        return counters, gauges

    def counter_total(self, name: str) -> Number:
        return sum(self._merged()[0].get(name, {}).values())

    def counter_by_rank(self, name: str) -> Dict[str, Number]:
        return dict(self._merged()[0].get(name, {}))

    def snapshot(self) -> Dict[str, Dict[str, Dict[str, Number]]]:
        """Everything recorded, as plain JSON-ready dicts.

        Shape: ``{"counters": {name: {"total": x, "per_rank": {...}}},
        "gauges": {name: {"total": x, "per_rank": {...}}}}`` with
        per-rank keys stringified for JSON friendliness.
        """
        counters, gauges = self._merged()

        def render(table: Dict[str, dict]) -> dict:
            return {
                name: {
                    "total": sum(per.values()),
                    "per_rank": {
                        str(k): v
                        for k, v in sorted(
                            per.items(), key=lambda kv: str(kv[0])
                        )
                    },
                }
                for name, per in sorted(table.items())
            }

        return {"counters": render(counters), "gauges": render(gauges)}
