"""Trace exporters: Chrome trace-event JSON, flame summary, bench stats.

Three views of one recorded trace:

* :func:`chrome_trace` -- the Trace Event Format dict that
  ``chrome://tracing`` / Perfetto load directly, one timeline row per
  simulated rank (complete ``"X"`` events, microsecond timestamps);
* :func:`flame_summary` -- a text flame view aggregated by span path,
  with total and self time (total minus child spans);
* :func:`trace_stats` -- the machine-readable summary written to
  ``BENCH_trace.json`` and diffed by ``benchmarks/compare_bench.py``:
  deterministic span/counter counts (exact-compared in CI) plus timing
  totals (tolerance-compared).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional

from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import SpanEvent, Tracer

__all__ = [
    "chrome_trace",
    "write_chrome_trace",
    "flame_summary",
    "trace_stats",
]

#: Synthetic Chrome "thread id" for spans recorded outside any rank.
_NO_RANK_TID = 999


def _rank_by_thread(events: List[SpanEvent]) -> Dict[int, int]:
    """Map OS thread idents to simulated ranks, from spans that know both.

    Spans recorded without an explicit ``rank`` (converters, plan
    compilation) then land on the timeline row of the rank whose thread
    ran them.
    """
    mapping: Dict[int, int] = {}
    for ev in events:
        if ev.rank is not None:
            mapping.setdefault(ev.tid, ev.rank)
    return mapping


def chrome_trace(
    tracer: Tracer, metrics: Optional[MetricsRegistry] = None
) -> Dict[str, Any]:
    """Trace Event Format dict (load in ``chrome://tracing`` / Perfetto)."""
    events: List[Dict[str, Any]] = []
    tids = set()
    all_events = tracer.events()
    thread_ranks = _rank_by_thread(all_events)
    for ev in all_events:
        tid = (
            ev.rank if ev.rank is not None
            else thread_ranks.get(ev.tid, _NO_RANK_TID)
        )
        tids.add(tid)
        args: Dict[str, Any] = {"depth": ev.depth, "path": ev.path}
        if ev.rank is not None:
            args["rank"] = ev.rank
        if ev.step is not None:
            args["step"] = ev.step
        args.update(ev.attrs)
        events.append(
            {
                "name": ev.name,
                "cat": ev.name.partition(".")[0],
                "ph": "X",
                "ts": ev.start_ns / 1000.0,  # microseconds
                "dur": max(ev.dur_ns, 1) / 1000.0,
                "pid": 0,
                "tid": tid,
                "args": args,
            }
        )
    meta = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": "repro executed run"},
        }
    ]
    for tid in sorted(tids):
        label = f"rank {tid}" if tid != _NO_RANK_TID else "unattributed"
        meta.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 0,
                "tid": tid,
                "args": {"name": label},
            }
        )
    doc: Dict[str, Any] = {
        "traceEvents": meta + events,
        "displayTimeUnit": "ms",
    }
    if metrics is not None:
        doc["otherData"] = metrics.snapshot()
    return doc


def write_chrome_trace(
    path, tracer: Tracer, metrics: Optional[MetricsRegistry] = None
) -> None:
    with open(path, "w") as fh:
        json.dump(chrome_trace(tracer, metrics), fh, indent=1)


def flame_summary(tracer: Tracer, top: int = 40) -> str:
    """Text flame view: spans aggregated by path across all ranks.

    Self time is total minus the time of directly nested spans, so a hot
    wrapper and a hot leaf are distinguishable at a glance.
    """
    totals: Dict[str, int] = {}
    counts: Dict[str, int] = {}
    child_time: Dict[str, int] = {}
    for ev in tracer.events():
        totals[ev.path] = totals.get(ev.path, 0) + ev.dur_ns
        counts[ev.path] = counts.get(ev.path, 0) + 1
        head, _, _ = ev.path.rpartition(";")
        if head:
            child_time[head] = child_time.get(head, 0) + ev.dur_ns
    if not totals:
        return "flame summary: no spans recorded"
    lines = [
        "flame summary (all ranks, total / self / count)",
    ]
    # Depth-first over the path hierarchy, hottest total first.
    roots = sorted(
        (p for p in totals if ";" not in p),
        key=lambda p: -totals[p],
    )

    def emit(path: str, depth: int) -> None:
        total_ms = totals[path] / 1e6
        self_ms = (totals[path] - child_time.get(path, 0)) / 1e6
        name = path.rsplit(";", 1)[-1]
        lines.append(
            f"  {'  ' * depth}{name:<{max(1, 36 - 2 * depth)}}"
            f" {total_ms:10.3f}ms {self_ms:10.3f}ms {counts[path]:7d}x"
        )
        kids = sorted(
            (p for p in totals
             if p.startswith(path + ";") and ";" not in p[len(path) + 1:]),
            key=lambda p: -totals[p],
        )
        for kid in kids:
            emit(kid, depth + 1)

    for root in roots:
        emit(root, 0)
    if len(lines) - 1 > top:
        lines = lines[: top + 1] + [f"  ... {len(lines) - 1 - top} more rows"]
    return "\n".join(lines)


def trace_stats(
    tracer: Tracer,
    metrics: Optional[MetricsRegistry] = None,
    config: Optional[Dict[str, Any]] = None,
) -> Dict[str, Any]:
    """Machine-readable trace summary (the ``BENCH_trace.json`` payload).

    ``counts`` are deterministic for a fixed configuration and compared
    exactly by ``compare_bench.py``; ``span_s`` totals are wall-clock and
    compared with a tolerance band.
    """
    events = tracer.events()
    span_counts: Dict[str, int] = {}
    span_totals: Dict[str, float] = {}
    ranks = set()
    for ev in events:
        span_counts[ev.name] = span_counts.get(ev.name, 0) + 1
        span_totals[ev.name] = span_totals.get(ev.name, 0.0) + ev.dur_ns / 1e9
        if ev.rank is not None:
            ranks.add(ev.rank)
    stats: Dict[str, Any] = {
        "config": dict(config or {}),
        "counts": {
            "spans_total": len(events),
            "ranks_traced": len(ranks),
            "spans_by_name": dict(sorted(span_counts.items())),
        },
        "span_s": {k: span_totals[k] for k in sorted(span_totals)},
    }
    if metrics is not None:
        snap = metrics.snapshot()
        stats["counts"]["counters"] = {
            name: rec["total"] for name, rec in snap["counters"].items()
        }
        stats["counts"]["gauges"] = {
            name: rec["total"] for name, rec in snap["gauges"].items()
        }
    return stats
