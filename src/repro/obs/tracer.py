"""Low-overhead span tracer for the executed data-movement path.

The tracer answers the question the modelled clocks cannot: *where does
the reproduction's own wall-clock go* as a run moves through driver ->
exchanger -> fabric -> kernel plan.  It is strictly an observer -- spans
wrap the real code but never feed the modelled
:class:`~repro.util.timing.TimeBreakdown` totals, which remain the
figures' single source of truth (DESIGN.md Section 6).

Design constraints, in order:

1. **~Zero cost disabled.**  ``Tracer.span(...)`` on a disabled tracer
   returns a shared, stateless null context manager without touching the
   clock or allocating span state, so hooks can stay threaded through hot
   code permanently.
2. **Low cost enabled.**  Spans use the monotonic ``perf_counter_ns``
   clock and append to per-thread buffers (no lock on the span path; the
   registry lock is taken once per thread, at first use).
3. **Nesting-aware.**  Each thread keeps a span stack; every finished
   span records its depth and full ``a;b;c`` path, which the flame
   summary and Chrome export consume directly.
4. **Exception-transparent.**  A span whose body raises still records its
   elapsed time, then re-raises (the same record-and-reraise contract as
   :class:`~repro.util.timing.PhaseTimer` phases).

Simulated ranks are threads (:mod:`repro.simmpi.launcher`), so per-thread
buffers double as per-rank timelines; spans additionally carry an
explicit ``rank`` attribute wherever the caller knows it.

For long executed runs, ``Tracer(sample_every=k)`` (or
``enable(sample_every=k)``) keeps only every *k*-th **top-level** span per
thread, suppressing the whole subtree of the dropped spans, so per-step
instrumentation cost scales down by ~k while every kept step still
records its complete driver -> exchange -> fabric path.  Sampling is
decided at the top of each tree, never inside it: a kept step is kept
whole (measured overheads are documented in EXPERIMENTS.md).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

__all__ = ["SpanEvent", "Tracer"]

# Bound once: the span hot path calls this twice per span.
_now_ns = time.perf_counter_ns


@dataclass(frozen=True)
class SpanEvent:
    """One finished span: what ran, where, and for how long."""

    name: str
    start_ns: int  # monotonic ns, relative to the tracer's enable() origin
    dur_ns: int
    depth: int  # 0 = top-level within its thread
    path: str  # ';'-joined ancestor names, ending with this span's name
    tid: int  # OS thread ident (one simulated rank = one thread)
    rank: Optional[int] = None
    step: Optional[int] = None
    attrs: Dict[str, Any] = field(default_factory=dict)

    @property
    def parent(self) -> Optional[str]:
        head, _, _ = self.path.rpartition(";")
        if not head:
            return None
        return head.rsplit(";", 1)[-1]


class _NullSpan:
    """Shared no-op context manager returned while tracing is disabled."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _Span:
    """Live span: appends a raw record tuple on exit.

    The hot path avoids everything it can -- records are plain tuples
    (``SpanEvent`` objects are materialized lazily by
    :meth:`Tracer.events`), the path string is deferred to export (only
    the ancestor tuple is captured), and the thread ident is cached in
    the per-thread state.
    """

    __slots__ = ("_tracer", "_name", "_rank", "_step", "_attrs", "_state",
                 "_start", "_suppressed")

    def __init__(self, tracer: "Tracer", name, rank, step, attrs) -> None:
        self._tracer = tracer
        self._name = name
        self._rank = rank
        self._step = step
        self._attrs = attrs

    def __enter__(self) -> "_Span":
        state = self._tracer._thread_state()
        samp = state[3]
        if samp is not None:
            # Sampling: the top-level span of each tree decides; a
            # suppressed tree tracks its depth so every descendant (which
            # sees an empty stack, since suppressed spans never push) is
            # suppressed with it and no clock is read.
            if samp[1] > 0:
                samp[1] += 1
                self._suppressed = True
                self._state = state
                return self
            if not state[1]:
                count = samp[0]
                samp[0] = count + 1
                if count % self._tracer.sample_every:
                    samp[1] = 1
                    self._suppressed = True
                    self._state = state
                    return self
        self._suppressed = False
        state[1].append(self._name)
        self._state = state
        self._start = _now_ns()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._suppressed:
            self._state[3][1] -= 1
            return False  # re-raise
        # Record even when the body raised: the elapsed wall-clock is
        # real, and dropping it would hide exactly the spans one debugs.
        end = _now_ns()
        records, stack, tid = self._state[0], self._state[1], self._state[2]
        stack.pop()
        records.append(
            (self._name, self._start, end - self._start, tuple(stack),
             tid, self._rank, self._step, self._attrs)
        )
        return False  # re-raise


class Tracer:
    """Collects :class:`SpanEvent` records from any number of threads.

    One module-level instance (:data:`repro.obs.TRACER`) is shared by all
    instrumented modules; they bind it at import time, so enabling and
    disabling must mutate this object in place rather than replacing it.
    """

    def __init__(self, sample_every: int = 1) -> None:
        self.enabled = False
        self.sample_every = self._check_rate(sample_every)
        self._origin_ns = 0
        self._lock = threading.Lock()
        self._buffers: List[List[tuple]] = []  # raw records, per thread
        self._tls = threading.local()

    @staticmethod
    def _check_rate(sample_every) -> int:
        rate = int(sample_every)
        if rate < 1:
            raise ValueError("sample_every must be >= 1")
        return rate

    # -- lifecycle -------------------------------------------------------
    def enable(self, sample_every: Optional[int] = None) -> None:
        """Clear any previous trace and start recording.

        *sample_every*, when given, sets the top-level span sampling rate
        for this recording (1 = keep everything); omitted, the tracer's
        current rate is kept.
        """
        if sample_every is not None:
            self.sample_every = self._check_rate(sample_every)
        self.clear()
        self._origin_ns = time.perf_counter_ns()
        self.enabled = True

    def disable(self) -> None:
        """Stop recording; collected events stay readable."""
        self.enabled = False

    def clear(self) -> None:
        with self._lock:
            for buf in self._buffers:
                del buf[:]
            self._buffers = []
        # Thread-local state in other threads still references its old
        # (now unregistered) buffer; drop ours so it re-registers.
        self._tls = threading.local()

    # -- recording -------------------------------------------------------
    def span(self, name: str, rank: Optional[int] = None,
             step: Optional[int] = None, **attrs):
        """Context manager timing one named region.

        ``rank`` and ``step`` are first-class (they index the per-rank
        timelines); anything else lands in the span's ``attrs`` dict.
        No-op (shared null object, nothing allocated) while disabled.
        """
        if not self.enabled:
            return _NULL_SPAN
        return _Span(self, name, rank, step, attrs)

    def _thread_state(self):
        state = getattr(self._tls, "state", None)
        if state is None:
            # (raw records, span-name stack, cached thread ident,
            #  sampling state) -- sampling state is [top-level span
            #  count, live suppression depth], or None at rate 1 so the
            #  unsampled hot path stays two tuple reads.
            samp = [0, 0] if self.sample_every > 1 else None
            state = ([], [], threading.get_ident(), samp)
            self._tls.state = state
            with self._lock:
                self._buffers.append(state[0])
        return state

    # -- reading ---------------------------------------------------------
    def events(self) -> List[SpanEvent]:
        """All finished spans, across threads, in start order."""
        with self._lock:
            raw = [rec for buf in self._buffers for rec in buf]
        origin = self._origin_ns
        merged = [
            SpanEvent(
                name=name,
                start_ns=start - origin,
                dur_ns=dur,
                depth=len(ancestors),
                path=";".join(ancestors + (name,)),
                tid=tid,
                rank=rank,
                step=step,
                attrs=attrs,
            )
            for name, start, dur, ancestors, tid, rank, step, attrs in raw
        ]
        merged.sort(key=lambda ev: ev.start_ns)
        return merged

    def __len__(self) -> int:
        with self._lock:
            return sum(len(buf) for buf in self._buffers)
