"""Observability layer: span tracing and metrics for the executed path.

Usage (library)::

    from repro import obs

    with obs.observed():                     # enable tracer + metrics
        run = run_executed(problem, "layout", timesteps=4)
    doc = obs.chrome_trace(obs.TRACER, obs.METRICS)

Usage (CLI)::

    python -m repro trace --method layout --steps 4   # writes trace.json
    python -m repro run --trace ...

Two module-level singletons, :data:`TRACER` and :data:`METRICS`, are
bound by the instrumented modules (driver, exchangers, simmpi fabric,
stencil plans, brick converters) at import time.  Both are disabled by
default and near-free in that state, so the hooks stay in permanently.

Everything here is *observational*: spans and counters wrap the real
data movement but never touch the modelled virtual-second accounting
(``RankMetrics.totals``), which stays bit-identical whether tracing is
on, off, or absent (DESIGN.md Section 6).
"""

from __future__ import annotations

from contextlib import contextmanager

from repro.obs.export import (
    chrome_trace,
    flame_summary,
    trace_stats,
    write_chrome_trace,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import SpanEvent, Tracer

__all__ = [
    "TRACER",
    "METRICS",
    "Tracer",
    "MetricsRegistry",
    "SpanEvent",
    "enable",
    "disable",
    "observed",
    "chrome_trace",
    "write_chrome_trace",
    "flame_summary",
    "trace_stats",
]

#: Process-wide tracer; instrumented modules bind this exact object.
TRACER = Tracer()

#: Process-wide metrics registry, same sharing discipline as TRACER.
METRICS = MetricsRegistry()


def enable(
    trace: bool = True, metrics: bool = True, sample_every: int = None
) -> None:
    """Turn observability on (clearing anything previously recorded).

    *sample_every* keeps every k-th top-level span per thread (see
    :class:`~repro.obs.tracer.Tracer`); the default keeps the tracer's
    current rate (1 = everything).
    """
    if trace:
        TRACER.enable(sample_every=sample_every)
    if metrics:
        METRICS.enable()


def disable() -> None:
    """Stop recording; collected spans/counters stay readable."""
    TRACER.disable()
    METRICS.disable()


@contextmanager
def observed(
    trace: bool = True, metrics: bool = True, sample_every: int = None
):
    """Enable observability for the duration of a ``with`` block."""
    enable(trace=trace, metrics=metrics, sample_every=sample_every)
    try:
        yield TRACER
    finally:
        disable()
