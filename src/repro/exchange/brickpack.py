"""Brick-storage packing exchange: the degradation ladder's last rung.

Functionally this is the classic pack -> send -> recv -> unpack scheme of
:class:`~repro.exchange.pack.PackExchanger`, but it runs over *brick*
storage (any alignment, padded or not) instead of a lexicographic array:
for each neighbor, the surface sections are gathered slot-range by
slot-range into one persistent staging buffer, sent as a single message,
and the neighbor's payload is scattered into the ghost sections.

It exists so a rank whose MemMap machinery fails mid-run (mapping budget
exhausted, mmap refusal) can keep computing on the same brick storage with
zero re-allocation: MemMap -> Layout -> BrickPack demotion only swaps the
exchange engine.  The modelled cost honestly re-acquires the packing tax
the pack-free schemes eliminate.
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from repro.brick.decomp import BrickDecomp, SlotAssignment
from repro.brick.info import direction_index
from repro.brick.storage import BrickStorage
from repro.exchange.base import (
    ExchangeChannel,
    ExchangeResult,
    Exchanger,
    PlannedMessage,
    RankMessagePlan,
    exchange_tag,
)
from repro.exchange.schedule import MessageSpec
from repro.faults.errors import ExchangeConfigError
from repro.hardware.profiles import MachineProfile
from repro.layout.messages import message_runs
from repro.obs import METRICS as _METRICS
from repro.obs import TRACER as _TRACER
from repro.simmpi.comm import CartComm
from repro.util.timing import TimeBreakdown

__all__ = ["BrickPackExchanger"]


class BrickPackExchanger(Exchanger):
    """One staged message per neighbor over brick slot sections."""

    method = "brickpack"

    def __init__(
        self,
        comm: CartComm,
        decomp: BrickDecomp,
        storage: Optional[BrickStorage],  # None = plan-only
        assignment: Optional[SlotAssignment] = None,
        profile: Optional[MachineProfile] = None,
    ) -> None:
        from repro.hardware.profiles import generic_host

        super().__init__(comm, profile or generic_host())
        self.decomp = decomp
        self.storage = storage
        self.assignment = assignment or decomp.assignment(1)
        ndim = decomp.ndim
        dtype = storage.dtype if storage is not None else decomp.dtype
        be = decomp.brick_bytes // dtype.itemsize  # elems per brick

        self._plan: List[dict] = []
        for neighbor in decomp.layout:
            vec = neighbor.to_vector(ndim)
            rank = comm.neighbor_rank(vec)
            if rank is None:
                continue  # non-periodic boundary: no partner
            # Surface sections bound for this neighbor, in layout order --
            # the same payload order as the pack-free schemes, so the
            # peer's unpack order matches regardless of its own method.
            send_secs = []
            for start, length in message_runs(decomp.layout, neighbor):
                for i in range(start, start + length):
                    sec = self.assignment.surface[decomp.layout[i]]
                    if sec.nbricks:
                        send_secs.append(sec)
            opp = neighbor.opposite()
            recv_secs = []
            for start, length in message_runs(decomp.layout, opp):
                for i in range(start, start + length):
                    sec = self.assignment.ghost[(neighbor, decomp.layout[i])]
                    if sec.nbricks:
                        recv_secs.append(sec)
            n_send = sum(s.nbricks for s in send_secs)
            n_recv = sum(s.nbricks for s in recv_secs)
            if n_send != n_recv:
                raise AssertionError(
                    f"send/recv brick count mismatch for {neighbor.notation()}:"
                    f" {n_send} vs {n_recv}"
                )
            if n_send == 0:
                continue
            payload = n_send * decomp.brick_bytes
            self._plan.append(
                {
                    "rank": rank,
                    "send_tag": exchange_tag(
                        direction_index(opp.to_vector(ndim)), 0
                    ),
                    "recv_tag": exchange_tag(direction_index(vec), 0),
                    "send_secs": send_secs,
                    "recv_secs": recv_secs,
                    # Persistent staging, reused every timestep.
                    "send_buf": (
                        np.empty(n_send * be, dtype=dtype)
                        if storage is not None
                        else None
                    ),
                    "recv_buf": (
                        np.empty(n_recv * be, dtype=dtype)
                        if storage is not None
                        else None
                    ),
                    "spec": MessageSpec(
                        neighbor,
                        payload_bytes=payload,
                        wire_bytes=payload,
                        nsegments=len(send_secs),
                        run_elems=n_send * be // len(send_secs),
                    ),
                }
            )

    # ------------------------------------------------------------------
    def send_specs(self) -> List[MessageSpec]:
        return [p["spec"] for p in self._plan]

    def recv_specs(self) -> List[MessageSpec]:
        return [p["spec"] for p in self._plan]

    def message_plan(self) -> RankMessagePlan:
        """Static per-rank schedule with storage byte ranges per section.

        The ranges describe where the *payload lives in brick storage*
        (gather sources for sends, scatter targets for recvs), even
        though the wire message itself is a staged contiguous buffer.
        """
        bb = self.decomp.brick_bytes
        sends, recvs = [], []
        for p in self._plan:
            sends.append(
                PlannedMessage(
                    p["rank"],
                    p["send_tag"],
                    sum(s.nbricks for s in p["send_secs"]) * bb,
                    ranges=tuple(
                        (s.start * bb, s.nbricks * bb) for s in p["send_secs"]
                    ),
                )
            )
            recvs.append(
                PlannedMessage(
                    p["rank"],
                    p["recv_tag"],
                    sum(s.nbricks for s in p["recv_secs"]) * bb,
                    ranges=tuple(
                        (s.start * bb, s.nbricks * bb) for s in p["recv_secs"]
                    ),
                )
            )
        return RankMessagePlan(
            self.comm.rank, self.method, tuple(sends), tuple(recvs)
        )

    def _require_storage(self) -> BrickStorage:
        if self.storage is None:
            raise ExchangeConfigError(
                "BrickPackExchanger was built plan-only (storage=None); it"
                " can describe its schedule but not execute an exchange"
            )
        return self.storage

    def _pack_sends(self) -> None:
        """Gather every neighbor's surface sections into its staging buffer."""
        st = self._require_storage()
        be = st.brick_elems
        for p in self._plan:
            buf, pos = p["send_buf"], 0
            for sec in p["send_secs"]:
                n = sec.nbricks * be
                buf[pos : pos + n] = st.slot_view(sec.start, sec.nbricks)
                pos += n

    def _unpack_recvs(self) -> None:
        """Scatter every received payload into its ghost sections."""
        st = self._require_storage()
        be = st.brick_elems
        for p in self._plan:
            buf, pos = p["recv_buf"], 0
            for sec in p["recv_secs"]:
                n = sec.nbricks * be
                st.slot_view(sec.start, sec.nbricks)[:] = buf[pos : pos + n]
                pos += n

    def exchange(self) -> ExchangeResult:
        self._require_storage()
        rank = self.comm.rank
        reqs = []
        with _TRACER.span("exchange.post", rank=rank, method=self.method):
            for p in self._plan:
                reqs.append(
                    self.comm.Irecv(p["recv_buf"], p["rank"], p["recv_tag"])
                )
        with _TRACER.span("exchange.pack", rank=rank, method=self.method):
            self._pack_sends()
            for p in self._plan:
                reqs.append(
                    self.comm.Isend(p["send_buf"], p["rank"], p["send_tag"])
                )
        with _TRACER.span("exchange.wait", rank=rank, method=self.method):
            self.comm.Waitall(reqs)
        with _TRACER.span("exchange.unpack", rank=rank, method=self.method):
            self._unpack_recvs()
        if _METRICS.enabled:
            staged = sum(
                p["send_buf"].nbytes + p["recv_buf"].nbytes for p in self._plan
            )
            _METRICS.count("exchange.bytes_packed", staged, rank=rank)
            _METRICS.count("exchange.messages", len(self._plan), rank=rank)
        return self._model_result()

    def _model_result(self) -> ExchangeResult:
        """Modelled outcome of one exchange (static per message plan)."""
        specs = self.send_specs()
        breakdown = TimeBreakdown()
        breakdown.charge("pack", self._pack_cost(specs) * 2)  # pack+unpack
        call, wait = self._network_times(specs, specs)
        breakdown.charge("call", call)
        breakdown.charge("wait", wait)
        return ExchangeResult(
            breakdown,
            messages_sent=len(specs),
            messages_received=len(specs),
            payload_bytes_sent=sum(m.payload_bytes for m in specs),
            wire_bytes_sent=sum(m.wire_bytes for m in specs),
        )

    def _build_channel(self, partitions):
        self._require_storage()
        plan = self._plan
        return ExchangeChannel(
            self.comm,
            self.method,
            posts=[(p["rank"], p["send_tag"], p["send_buf"]) for p in plan],
            recvs=[(p["rank"], p["recv_tag"], p["recv_buf"]) for p in plan],
            result=self._model_result(),
            packed_bytes=sum(
                p["send_buf"].nbytes + p["recv_buf"].nbytes for p in plan
            ),
            pre=self._pack_sends,
            post=self._unpack_recvs,
            partitions=partitions,
        )
