"""MemMap exchange: stitched views, one message per neighbor (Section 4).

For every neighbor, two stitched views are built once and reused every
timestep (the paper: "these views can be reused throughout the application
until the communication pattern changes"):

* the **send view** maps the padded surface regions bound for that
  neighbor, run by run, into one virtually contiguous window;
* the **recv view** maps the matching ghost subsections identically.

With the real memfd arena the views alias brick storage, so
``MPI_Send(view)`` / ``MPI_Recv(view)`` are genuinely zero-copy; with the
simulated arena, refresh/flush copies stand in for the MMU (charged zero
modelled time).  Costs relative to Layout: page padding inflates wire
bytes (Table 2), and every chunk consumes one entry of the kernel's
``vm.max_map_count`` budget -- which the layout optimization keeps small
by coalescing runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.brick.decomp import BrickDecomp, SlotAssignment
from repro.brick.info import direction_index
from repro.brick.storage import BrickStorage
from repro.exchange.base import (
    ExchangeChannel,
    ExchangeResult,
    Exchanger,
    PlannedMessage,
    RankMessagePlan,
    exchange_tag,
)
from repro.faults.errors import ExchangeConfigError
from repro.exchange.schedule import MessageSpec
from repro.hardware.profiles import MachineProfile
from repro.layout.messages import message_runs
from repro.obs import METRICS as _METRICS
from repro.obs import TRACER as _TRACER
from repro.simmpi.comm import CartComm
from repro.util.bitset import BitSet
from repro.util.timing import TimeBreakdown
from repro.vmem.layout_plan import ViewPlan, plan_view
from repro.vmem.view import StitchedViewBase

__all__ = ["MemMapExchanger", "ExchangeView"]


@dataclass
class ExchangeView:
    """Paired send/recv views for one neighbor.

    The views are ``None`` on a plan-only exchanger (static
    verification), which computes the :class:`ViewPlan` pair without
    materializing any mapping.
    """

    neighbor: BitSet
    rank: int
    send_tag: int
    recv_tag: int
    send_plan: ViewPlan
    recv_plan: ViewPlan
    send_view: Optional[StitchedViewBase] = None
    recv_view: Optional[StitchedViewBase] = None

    def close(self) -> None:
        if self.send_view is not None:
            self.send_view.close()
        if self.recv_view is not None:
            self.recv_view.close()


class MemMapExchanger(Exchanger):
    """One-message-per-neighbor pack-free exchange through mapped views."""

    method = "memmap"

    def __init__(
        self,
        comm: CartComm,
        decomp: BrickDecomp,
        storage: Optional[BrickStorage],
        assignment: SlotAssignment,
        profile: Optional[MachineProfile] = None,
        page_size: Optional[int] = None,
    ) -> None:
        from repro.hardware.profiles import generic_host

        super().__init__(comm, profile or generic_host())
        if storage is not None and not storage.can_map:
            raise ExchangeConfigError(
                "MemMapExchanger needs mapping-capable storage; allocate it"
                " with BrickDecomp.mmap_alloc"
            )
        self.decomp = decomp
        self.storage = storage  # None = plan-only (static verification)
        self.assignment = assignment
        if page_size is None and storage is not None:
            page_size = storage.arena.page_size
        if page_size is None:
            raise ExchangeConfigError(
                "plan-only MemMapExchanger needs an explicit page_size"
            )
        self.page_size = page_size
        expected_align = decomp.alignment_for_page(self.page_size)
        if assignment.alignment % expected_align:
            raise ExchangeConfigError(
                f"storage alignment {assignment.alignment} is not page-"
                f"aligned for {self.page_size}-byte pages"
            )
        ndim = decomp.ndim
        bb = decomp.brick_bytes

        self.views: List[ExchangeView] = []
        for neighbor in decomp.layout:
            vec = neighbor.to_vector(ndim)
            rank = comm.neighbor_rank(vec)
            if rank is None:
                continue  # non-periodic boundary: no partner, no views
            send_ranges = []
            for start, length in message_runs(decomp.layout, neighbor):
                for i in range(start, start + length):
                    sec = assignment.surface[decomp.layout[i]]
                    if sec.nbricks:
                        send_ranges.append((sec.start * bb, sec.nbricks * bb))
            opp = neighbor.opposite()
            recv_ranges = []
            for start, length in message_runs(decomp.layout, opp):
                for i in range(start, start + length):
                    sec = assignment.ghost[(neighbor, decomp.layout[i])]
                    if sec.nbricks:
                        recv_ranges.append((sec.start * bb, sec.nbricks * bb))
            if not send_ranges and not recv_ranges:
                continue
            send_plan = plan_view(send_ranges, self.page_size)
            recv_plan = plan_view(recv_ranges, self.page_size)
            if send_plan.mapped_bytes != recv_plan.mapped_bytes:
                raise AssertionError(
                    "send/recv view size mismatch for"
                    f" {neighbor.notation()}: {send_plan.mapped_bytes} vs"
                    f" {recv_plan.mapped_bytes}"
                )
            self.views.append(
                ExchangeView(
                    neighbor=neighbor,
                    rank=rank,
                    send_tag=exchange_tag(
                        direction_index(opp.to_vector(ndim)), 0
                    ),
                    recv_tag=exchange_tag(direction_index(vec), 0),
                    send_plan=send_plan,
                    recv_plan=recv_plan,
                    send_view=(
                        storage.make_view(send_plan.chunks)
                        if storage is not None else None
                    ),
                    recv_view=(
                        storage.make_view(recv_plan.chunks)
                        if storage is not None else None
                    ),
                )
            )
        self._check_mapping_budget()

    # ------------------------------------------------------------------
    def _check_mapping_budget(self) -> None:
        total = self.mapping_count
        limit = self.profile.mmap_limit
        if total > limit:
            raise ExchangeConfigError(
                f"exchange needs {total} mappings, over the per-process"
                f" limit of {limit} (vm.max_map_count); use a coarser"
                " layout or fewer fields"
            )

    @property
    def mapping_count(self) -> int:
        """Kernel mappings consumed by all live exchange views."""
        return sum(
            v.send_plan.mapping_count + v.recv_plan.mapping_count
            for v in self.views
        )

    def send_specs(self) -> List[MessageSpec]:
        return [
            MessageSpec(
                v.neighbor,
                payload_bytes=v.send_plan.payload_bytes,
                wire_bytes=v.send_plan.mapped_bytes,
                nsegments=1,
                run_elems=v.send_plan.payload_bytes // 8,
                nmappings=v.send_plan.mapping_count,
            )
            for v in self.views
        ]

    def recv_specs(self) -> List[MessageSpec]:
        return [
            MessageSpec(
                v.neighbor,
                payload_bytes=v.recv_plan.payload_bytes,
                wire_bytes=v.recv_plan.mapped_bytes,
                nmappings=v.recv_plan.mapping_count,
            )
            for v in self.views
        ]

    def message_plan(self) -> RankMessagePlan:
        return RankMessagePlan(
            rank=self.comm.rank,
            method=self.method,
            sends=tuple(
                PlannedMessage(
                    peer=v.rank, tag=v.send_tag,
                    nbytes=v.send_plan.mapped_bytes,
                    ranges=tuple(v.send_plan.chunks),
                )
                for v in self.views
            ),
            recvs=tuple(
                PlannedMessage(
                    peer=v.rank, tag=v.recv_tag,
                    nbytes=v.recv_plan.mapped_bytes,
                    ranges=tuple(v.recv_plan.chunks),
                )
                for v in self.views
            ),
        )

    def _require_views(self) -> None:
        if self.storage is None:
            raise ExchangeConfigError(
                "MemMapExchanger was built plan-only (no storage); it can"
                " be introspected but not exchanged"
            )

    def exchange(self) -> ExchangeResult:
        self._require_views()
        rank = self.comm.rank
        reqs = []
        with _TRACER.span("exchange.post", rank=rank, method=self.method):
            for v in self.views:
                reqs.append(
                    self.comm.Irecv(v.recv_view.array(), v.rank, v.recv_tag)
                )
            for v in self.views:
                v.send_view.refresh()  # no-op on real mappings
                reqs.append(
                    self.comm.Isend(v.send_view.array(), v.rank, v.send_tag)
                )
        with _TRACER.span("exchange.wait", rank=rank, method=self.method):
            self.comm.Waitall(reqs)
        with _TRACER.span("exchange.sync", rank=rank, method=self.method):
            for v in self.views:
                v.recv_view.flush()  # no-op on real mappings
        if _METRICS.enabled:
            # Pack-free through the MMU: no staged bytes, but each view
            # burns kernel mappings (the vm.max_map_count budget).
            _METRICS.count("exchange.bytes_packed", 0, rank=rank)
            _METRICS.count("exchange.messages", len(self.views), rank=rank)
            _METRICS.gauge("memmap.regions", self.mapping_count, rank=rank)
        return self._model_result()

    def _model_result(self) -> ExchangeResult:
        """Modelled outcome of one exchange (static per view plan)."""
        send_specs = self.send_specs()
        recv_specs = self.recv_specs()
        breakdown = TimeBreakdown()  # pack-free and copy-free
        call, wait = self._network_times(send_specs, recv_specs)
        breakdown.charge("call", call)
        breakdown.charge("wait", wait)
        return ExchangeResult(
            breakdown,
            messages_sent=len(send_specs),
            messages_received=len(recv_specs),
            payload_bytes_sent=sum(m.payload_bytes for m in send_specs),
            wire_bytes_sent=sum(m.wire_bytes for m in send_specs),
        )

    def _build_channel(self, partitions):
        self._require_views()
        views = self.views

        def refresh() -> None:
            for v in views:
                v.send_view.refresh()  # no-op on real mappings

        def flush() -> None:
            for v in views:
                v.recv_view.flush()  # no-op on real mappings

        return ExchangeChannel(
            self.comm,
            self.method,
            posts=[(v.rank, v.send_tag, v.send_view.array()) for v in views],
            recvs=[(v.rank, v.recv_tag, v.recv_view.array()) for v in views],
            result=self._model_result(),
            pre=refresh,
            post=flush,
            pre_span="exchange.sync",
            post_span="exchange.sync",
            partitions=partitions,
        )

    def close(self) -> None:
        for v in self.views:
            v.close()
