"""MPI derived-datatype baseline: the library packs internally.

Functionally identical to :class:`~repro.exchange.pack.PackExchanger` --
one box per neighbor -- but the application never copies anything: it
hands MPI a :class:`~repro.simmpi.datatypes.SubarrayType` describing each
box, and the datatype engine does the gathering/scattering inside the
``call``/``wait`` phases.  The paper finds this engine catastrophically
slow on KNL (MemMap is "460x faster than MPI_Types"), which the profile's
``type_msg_overhead``/``type_engine_bw`` constants model.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.brick.info import direction_index
from repro.exchange.base import (
    ExchangeChannel,
    ExchangeResult,
    Exchanger,
    PlannedMessage,
    RankMessagePlan,
    exchange_tag,
)
from repro.faults.errors import ExchangeConfigError
from repro.exchange.boxes import neighbor_recv_box, neighbor_send_box
from repro.exchange.schedule import MessageSpec, array_schedule
from repro.hardware.profiles import MachineProfile
from repro.layout.regions import all_regions
from repro.obs import METRICS as _METRICS
from repro.obs import TRACER as _TRACER
from repro.simmpi.comm import CartComm
from repro.simmpi.datatypes import SubarrayType
from repro.util.timing import TimeBreakdown

__all__ = ["MPITypesExchanger"]


class MPITypesExchanger(Exchanger):
    """Derived-datatype exchange over a lexicographic extended array."""

    method = "mpi_types"

    def __init__(
        self,
        comm: CartComm,
        array: Optional[np.ndarray],
        extent: Sequence[int],
        ghost: int,
        profile: MachineProfile,
        dtype=np.float64,
    ) -> None:
        super().__init__(comm, profile)
        self.extent = tuple(int(e) for e in extent)
        self.ghost = int(ghost)
        ndim = len(self.extent)
        expected = tuple(e + 2 * self.ghost for e in reversed(self.extent))
        if array is not None:
            if array.shape != expected:
                raise ExchangeConfigError(
                    f"extended array shape {array.shape}, expected {expected}"
                )
            dtype = array.dtype
        self.array = array  # None = plan-only (static verification)
        self.dtype = np.dtype(dtype)
        self._specs = array_schedule(
            self.extent, self.ghost, self.dtype.itemsize
        )

        def subarray(box):
            lo, ext = box
            return SubarrayType(
                shape=expected,
                subshape=tuple(reversed(ext)),
                start=tuple(reversed(lo)),
            )

        self._plan = []
        for neighbor in all_regions(ndim):
            rank = comm.neighbor_rank(neighbor.to_vector(ndim))
            if rank is None:
                continue  # non-periodic boundary: no partner, no message
            send_t = subarray(neighbor_send_box(neighbor, self.extent, self.ghost))
            recv_t = subarray(neighbor_recv_box(neighbor, self.extent, self.ghost))
            self._plan.append(
                {
                    "neighbor": neighbor,
                    "rank": rank,
                    "send_type": send_t,
                    "recv_type": recv_t,
                    "send_tag": exchange_tag(
                        direction_index(neighbor.opposite().to_vector(ndim)), 0
                    ),
                    "recv_tag": exchange_tag(
                        direction_index(neighbor.to_vector(ndim)), 0
                    ),
                    "recv_buf": (
                        np.empty(recv_t.count, dtype=array.dtype)
                        if array is not None else None
                    ),
                }
            )
        planned = {p["neighbor"] for p in self._plan}
        self._specs = [m for m in self._specs if m.neighbor in planned]

    # ------------------------------------------------------------------
    def send_specs(self) -> List[MessageSpec]:
        return list(self._specs)

    def message_plan(self) -> RankMessagePlan:
        itemsize = self.dtype.itemsize
        return RankMessagePlan(
            rank=self.comm.rank,
            method=self.method,
            sends=tuple(
                PlannedMessage(
                    peer=p["rank"], tag=p["send_tag"],
                    nbytes=p["send_type"].count * itemsize,
                )
                for p in self._plan
            ),
            recvs=tuple(
                PlannedMessage(
                    peer=p["rank"], tag=p["recv_tag"],
                    nbytes=p["recv_type"].count * itemsize,
                )
                for p in self._plan
            ),
        )

    def _require_array(self) -> np.ndarray:
        if self.array is None:
            raise ExchangeConfigError(
                f"{type(self).__name__} was built plan-only (no array);"
                " it can be introspected but not exchanged"
            )
        return self.array

    def exchange(self) -> ExchangeResult:
        arr = self._require_array()
        rank = self.comm.rank
        reqs = []
        with _TRACER.span("exchange.post", rank=rank, method=self.method):
            for p in self._plan:
                reqs.append(
                    self.comm.Irecv(p["recv_buf"], p["rank"], p["recv_tag"])
                )
            for p in self._plan:
                # "Inside MPI": the datatype engine extracts the selection.
                wire = p["send_type"].extract(arr)
                reqs.append(self.comm.Isend(wire, p["rank"], p["send_tag"]))
        with _TRACER.span("exchange.wait", rank=rank, method=self.method):
            self.comm.Waitall(reqs)
        with _TRACER.span("exchange.unpack", rank=rank, method=self.method):
            for p in self._plan:
                p["recv_type"].insert(arr, p["recv_buf"])
        if _METRICS.enabled:
            # The datatype engine's gathers/scatters are on-node movement
            # too, just hidden inside the library.
            moved = sum(p["recv_buf"].nbytes for p in self._plan) * 2
            _METRICS.count("exchange.bytes_packed", moved, rank=rank)
            _METRICS.count("exchange.messages", len(self._plan), rank=rank)
        return self._model_result()

    def _model_result(self) -> ExchangeResult:
        """Modelled outcome of one exchange (static per message plan)."""
        breakdown = TimeBreakdown()
        call, wait = self._network_times(self._specs, self._specs)
        # Datatype processing happens on both the send and receive side,
        # serialized on this rank's core, inside the MPI library.
        wait += 2 * self._datatype_cost(self._specs)
        breakdown.charge("call", call)
        breakdown.charge("wait", wait)
        sent = sum(m.wire_bytes for m in self._specs)
        return ExchangeResult(
            breakdown,
            messages_sent=len(self._specs),
            messages_received=len(self._specs),
            payload_bytes_sent=sum(m.payload_bytes for m in self._specs),
            wire_bytes_sent=sent,
        )

    def _build_channel(self, partitions):
        arr = self._require_array()
        plan = self._plan
        # Persistent wire buffers: the per-step path allocates a fresh
        # extraction per message, the channel re-fills these instead.
        for p in plan:
            if "send_buf" not in p:
                p["send_buf"] = np.empty(p["send_type"].count, dtype=arr.dtype)

        def pack() -> None:
            for p in plan:
                p["send_type"].extract_into(arr, p["send_buf"])

        def unpack() -> None:
            for p in plan:
                p["recv_type"].insert(arr, p["recv_buf"])

        return ExchangeChannel(
            self.comm,
            self.method,
            posts=[(p["rank"], p["send_tag"], p["send_buf"]) for p in plan],
            recvs=[(p["rank"], p["recv_tag"], p["recv_buf"]) for p in plan],
            result=self._model_result(),
            packed_bytes=sum(p["recv_buf"].nbytes for p in plan) * 2,
            pre=pack,
            post=unpack,
            partitions=partitions,
        )
