"""Layout-mode pack-free exchange (paper Section 3).

Brick storage is laid out so every surface region -- and every run of
regions consecutive in the layout -- is one contiguous slot range, and the
ghost sections mirror the *sender's* ordering.  Each message is therefore
a plain ``Isend`` of a storage view on one end and an ``Irecv`` straight
into storage on the other: zero on-node copies, at the price of more
messages (42 instead of 26 in 3-D under the optimal ``surface3d`` order).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.brick.decomp import BrickDecomp, SlotAssignment
from repro.brick.info import direction_index
from repro.brick.storage import BrickStorage
from repro.exchange.base import (
    ExchangeChannel,
    ExchangeResult,
    Exchanger,
    PlannedMessage,
    RankMessagePlan,
    exchange_tag,
)
from repro.faults.errors import ExchangeConfigError
from repro.exchange.schedule import MessageSpec
from repro.hardware.profiles import MachineProfile
from repro.layout.messages import message_runs
from repro.obs import METRICS as _METRICS
from repro.obs import TRACER as _TRACER
from repro.simmpi.comm import CartComm
from repro.util.bitset import BitSet
from repro.util.timing import TimeBreakdown

__all__ = ["LayoutExchanger"]


class LayoutExchanger(Exchanger):
    """Pack-free brick exchange using contiguous region runs."""

    method = "layout"

    def __init__(
        self,
        comm: CartComm,
        decomp: BrickDecomp,
        storage: Optional[BrickStorage],
        assignment: Optional[SlotAssignment] = None,
        profile: Optional[MachineProfile] = None,
        merge_runs: bool = True,
    ) -> None:
        from repro.hardware.profiles import generic_host

        super().__init__(comm, profile or generic_host())
        self.decomp = decomp
        self.storage = storage  # None = plan-only (static verification)
        self.merge_runs = bool(merge_runs)
        if not self.merge_runs:
            # One message per (region, neighbor) pair: the paper's Basic
            # scheme (5^D - 3^D sends), used as the Fig. 4 baseline.
            self.method = "basic"
        self.assignment = assignment or decomp.assignment(1)
        if self.merge_runs and self.assignment.alignment != 1:
            # Padding slots between sections break *run* contiguity, so
            # merged messages pair with plain allocation (paper Figure 7
            # left column).  Basic mode (one message per region) only
            # needs each section contiguous, which holds at any
            # alignment -- that is what lets a degraded MemMap rank fall
            # back to Layout exchange over its padded storage.
            raise ExchangeConfigError(
                "LayoutExchanger with merge_runs requires unpadded storage"
                " (alignment 1); use MemMapExchanger for mmap_alloc"
                " storage, or merge_runs=False"
            )
        ndim = decomp.ndim
        bb = decomp.brick_bytes

        def groups(target: BitSet) -> List[List[int]]:
            """Region-position groups, each becoming one message."""
            if self.merge_runs:
                return [
                    list(range(start, start + length))
                    for start, length in message_runs(decomp.layout, target)
                ]
            return [
                [i]
                for i, region in enumerate(decomp.layout)
                if target.issubset(region)
            ]

        self._sends: List[dict] = []
        self._recvs: List[dict] = []
        for neighbor in decomp.layout:
            vec = neighbor.to_vector(ndim)
            rank = comm.neighbor_rank(vec)
            if rank is None:
                continue  # non-periodic boundary: no partner, no messages
            # Sends: groups of regions (supersets of neighbor).
            for k, grp in enumerate(groups(neighbor)):
                secs = [self.assignment.surface[decomp.layout[i]] for i in grp]
                nb = sum(s.nbricks for s in secs)
                if nb == 0:
                    continue
                assert secs[-1].end - secs[0].start == nb, "run is not contiguous"
                self._sends.append(
                    {
                        "rank": rank,
                        "tag": exchange_tag(
                            direction_index(neighbor.opposite().to_vector(ndim)), k
                        ),
                        "slot_start": secs[0].start,
                        "nbricks": nb,
                        "spec": MessageSpec(
                            neighbor, nb * bb, nb * bb, 1, nb * bb // 8
                        ),
                    }
                )
            # Receives: our ghost slab g(neighbor), partitioned exactly as
            # the sender partitioned its sends (their groups for *their*
            # neighbor -neighbor).
            opp = neighbor.opposite()
            for k, grp in enumerate(groups(opp)):
                secs = [
                    self.assignment.ghost[(neighbor, decomp.layout[i])] for i in grp
                ]
                nb = sum(s.nbricks for s in secs)
                if nb == 0:
                    continue
                assert secs[-1].end - secs[0].start == nb, "ghost run not contiguous"
                self._recvs.append(
                    {
                        "rank": rank,
                        "tag": exchange_tag(direction_index(vec), k),
                        "slot_start": secs[0].start,
                        "nbricks": nb,
                        "spec": MessageSpec(neighbor, nb * bb, nb * bb),
                    }
                )

    # ------------------------------------------------------------------
    def send_specs(self) -> List[MessageSpec]:
        return [s["spec"] for s in self._sends]

    def recv_specs(self) -> List[MessageSpec]:
        return [r["spec"] for r in self._recvs]

    def message_plan(self) -> RankMessagePlan:
        bb = self.decomp.brick_bytes
        return RankMessagePlan(
            rank=self.comm.rank,
            method=self.method,
            sends=tuple(
                PlannedMessage(
                    peer=s["rank"], tag=s["tag"], nbytes=s["nbricks"] * bb,
                    ranges=((s["slot_start"] * bb, s["nbricks"] * bb),),
                )
                for s in self._sends
            ),
            recvs=tuple(
                PlannedMessage(
                    peer=r["rank"], tag=r["tag"], nbytes=r["nbricks"] * bb,
                    ranges=((r["slot_start"] * bb, r["nbricks"] * bb),),
                )
                for r in self._recvs
            ),
        )

    def _require_storage(self) -> BrickStorage:
        if self.storage is None:
            raise ExchangeConfigError(
                f"{type(self).__name__} was built plan-only (no storage);"
                " it can be introspected but not exchanged"
            )
        return self.storage

    def exchange(self) -> ExchangeResult:
        st = self._require_storage()
        rank = self.comm.rank
        reqs = []
        with _TRACER.span("exchange.post", rank=rank, method=self.method):
            for r in self._recvs:
                buf = st.slot_view(r["slot_start"], r["nbricks"])
                reqs.append(self.comm.Irecv(buf, r["rank"], r["tag"]))
            for s in self._sends:
                buf = st.slot_view(s["slot_start"], s["nbricks"])
                reqs.append(self.comm.Isend(buf, s["rank"], s["tag"]))
        with _TRACER.span("exchange.wait", rank=rank, method=self.method):
            self.comm.Waitall(reqs)
        if _METRICS.enabled:
            # Pack-free by construction: zero bytes staged on-node.
            _METRICS.count("exchange.bytes_packed", 0, rank=rank)
            _METRICS.count("exchange.messages", len(self._sends), rank=rank)
        return self._model_result()

    def _model_result(self) -> ExchangeResult:
        """Modelled outcome of one exchange (static per message plan)."""
        send_specs = self.send_specs()
        recv_specs = self.recv_specs()
        breakdown = TimeBreakdown()  # pack stays exactly zero
        call, wait = self._network_times(send_specs, recv_specs)
        breakdown.charge("call", call)
        breakdown.charge("wait", wait)
        return ExchangeResult(
            breakdown,
            messages_sent=len(send_specs),
            messages_received=len(recv_specs),
            payload_bytes_sent=sum(m.payload_bytes for m in send_specs),
            wire_bytes_sent=sum(m.wire_bytes for m in send_specs),
        )

    def _build_channel(self, partitions):
        st = self._require_storage()
        return ExchangeChannel(
            self.comm,
            self.method,
            posts=[
                (s["rank"], s["tag"],
                 st.slot_view(s["slot_start"], s["nbricks"]))
                for s in self._sends
            ],
            recvs=[
                (r["rank"], r["tag"],
                 st.slot_view(r["slot_start"], r["nbricks"]))
                for r in self._recvs
            ],
            result=self._model_result(),
            partitions=partitions,
        )
