"""Shared modelled-cost functions over message schedules.

Used by both the executed exchangers (to report per-exchange breakdowns)
and the pure-modelled driver (to price arbitrary scales without
allocating data), guaranteeing the two agree.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.exchange.schedule import MessageSpec
from repro.hardware.network import NetworkModel
from repro.hardware.profiles import MachineProfile

__all__ = ["network_times", "pack_cost", "datatype_cost", "overlap_times"]


def overlap_times(wait: float, interior_calc: float) -> Tuple[float, float]:
    """``(visible_wait, hidden)`` when interior compute overlaps the wire.

    A phased exchange hides at most *interior_calc* seconds of the
    modelled *wait* behind the interior stencil sweep (posting, packing
    and unpacking stay on the critical path); whatever wait remains is
    still visible.  ``visible_wait + hidden == wait`` always.
    """
    hidden = min(max(wait, 0.0), max(interior_calc, 0.0))
    return wait - hidden, hidden


def network_times(
    net: NetworkModel,
    sends: Sequence[MessageSpec],
    recvs: Sequence[MessageSpec],
) -> Tuple[float, float]:
    """``(call, wait)`` seconds for one bulk-synchronous exchange."""
    call = net.call_time(len(sends), len(recvs))
    wait = net.wait_time(
        [m.wire_bytes for m in sends], [m.wire_bytes for m in recvs]
    )
    return call, wait


def pack_cost(profile: MachineProfile, specs: Sequence[MessageSpec]) -> float:
    """Application-level pack (or unpack) cost of one message batch."""
    mem = profile.memory
    total = profile.pack_launch_overhead if specs else 0.0
    for m in specs:
        total += mem.pack_time(m.payload_bytes, m.nsegments, m.run_elems)
    return total


def datatype_cost(profile: MachineProfile, specs: Sequence[MessageSpec]) -> float:
    """In-library derived-datatype processing cost of one batch."""
    total = 0.0
    for m in specs:
        total += profile.type_msg_overhead
        total += m.payload_bytes / profile.type_engine_bw
        total += m.nsegments * profile.memory.seg_overhead
    return total
