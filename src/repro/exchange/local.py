"""Intra-node halo sharing: ghost zones that *are* the neighbor's surface.

The paper notes (Sections 2 and 4) that memory mapping also optimizes
data movement "between subdomains on the same rank".  This module takes
that idea to its endpoint: when several subdomains live in one process,
back them all with a single memfd arena and build each subdomain's
storage as a stitched view in which the *ghost sections are mappings of
the neighboring subdomain's surface sections*.

Consequences:

* intra-node halo exchange is a **no-op** -- a neighbor's surface write
  is instantly visible through this subdomain's ghost bricks, with zero
  copies and zero messages;
* ghost zones consume **no physical memory** (they are aliases), cutting
  the footprint of small-subdomain decompositions;
* with a fully periodic in-process domain grid, an entire simulation runs
  with *no communication code at all* -- which this module's tests verify
  bit-for-bit against the serial reference.

On the simulated (page-table) arena the same structure works, but the MMU
emulation must be told when to move data: ``flush_owned`` after writing a
step's results, ``sync`` before reading ghosts.  Both are no-ops on the
real arena.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.brick.decomp import BrickDecomp, SlotAssignment
from repro.brick.info import BrickInfo
from repro.brick.storage import BrickStorage
from repro.util.bitset import BitSet
from repro.vmem import default_arena
from repro.faults.errors import ExchangeConfigError

__all__ = ["LocalDomainGrid"]


class LocalDomainGrid:
    """A periodic grid of subdomains in one process with aliased halos.

    Parameters
    ----------
    domain_dims:
        Number of subdomains per axis (axis 1 first); the grid wraps
        periodically (a dimension of 1 aliases a subdomain to itself,
        which implements single-domain periodic boundaries for free).
    sub_extent, brick_dim, ghost, layout, dtype, nfields:
        Per-subdomain decomposition parameters, as for
        :class:`~repro.brick.decomp.BrickDecomp`.
    page_size:
        Mapping granularity; sections are padded to it.
    """

    def __init__(
        self,
        domain_dims: Sequence[int],
        sub_extent: Sequence[int],
        brick_dim: Sequence[int],
        ghost: int,
        layout=None,
        page_size: int = 4096,
        dtype=np.float64,
        nfields: int = 1,
    ) -> None:
        self.domain_dims = tuple(int(d) for d in domain_dims)
        if any(d <= 0 for d in self.domain_dims):
            raise ExchangeConfigError("domain_dims must be positive")
        self.decomp = BrickDecomp(
            sub_extent, brick_dim, ghost, layout, dtype, nfields
        )
        if len(self.domain_dims) != self.decomp.ndim:
            raise ExchangeConfigError("domain_dims dimensionality mismatch")
        self.page_size = int(page_size)
        align = self.decomp.alignment_for_page(self.page_size)
        self.assignment: SlotAssignment = self.decomp.assignment(align)
        asn = self.assignment
        bb = self.decomp.brick_bytes

        ghost_starts = [s.start for s in asn.sections if s.kind == "ghost"]
        #: slots up to the first ghost section: the physically-owned part.
        self.owned_slots = min(ghost_starts) if ghost_starts else asn.total_slots
        self.owned_bytes = self.owned_slots * bb
        if self.owned_bytes % self.page_size:
            raise AssertionError("owned region is not page aligned")

        self.ndomains = math.prod(self.domain_dims)
        arena_bytes = self.ndomains * self.owned_bytes
        self.arena = default_arena(arena_bytes, self.page_size)

        self._views = []
        self.storages: List[BrickStorage] = []
        for idx in range(self.ndomains):
            chunks = self._domain_chunks(idx)
            view = self.arena.make_view(chunks)
            self._views.append(view)
            self.storages.append(
                BrickStorage.from_view(
                    view, asn.total_slots, self.decomp.brick_elems, dtype
                )
            )

        self.info: BrickInfo = self.decomp.brick_info(asn)
        self.compute_slots = self.decomp.compute_slots(asn)

    # ------------------------------------------------------------------
    # Domain indexing (axis 1 fastest, periodic)
    # ------------------------------------------------------------------
    def coords_to_index(self, coords: Sequence[int]) -> int:
        idx = 0
        stride = 1
        for c, d in zip(coords, self.domain_dims):
            idx += (int(c) % d) * stride
            stride *= d
        return idx

    def index_to_coords(self, idx: int) -> Tuple[int, ...]:
        coords = []
        for d in self.domain_dims:
            coords.append(idx % d)
            idx //= d
        return tuple(coords)

    def neighbor_index(self, idx: int, direction: BitSet) -> int:
        coords = self.index_to_coords(idx)
        vec = direction.to_vector(self.decomp.ndim)
        return self.coords_to_index(
            tuple(c + v for c, v in zip(coords, vec))
        )

    def storage(self, coords: Sequence[int]) -> BrickStorage:
        return self.storages[self.coords_to_index(coords)]

    # ------------------------------------------------------------------
    def _domain_chunks(self, idx: int) -> List[Tuple[int, int]]:
        """Stitched-view chunks for one subdomain, in slot order."""
        asn = self.assignment
        bb = self.decomp.brick_bytes
        base = idx * self.owned_bytes
        chunks: List[Tuple[int, int]] = [(base, self.owned_bytes)]
        for sec in asn.sections:
            if sec.kind != "ghost" or sec.padded_nbricks == 0:
                continue
            nbr_idx = self.neighbor_index(idx, sec.neighbor)
            src = asn.surface[sec.region]
            if src.padded_nbricks != sec.padded_nbricks:
                raise AssertionError(
                    "ghost subsection and source surface region disagree"
                )
            chunks.append(
                (
                    nbr_idx * self.owned_bytes + src.start * bb,
                    sec.padded_nbricks * bb,
                )
            )
        total = sum(length for _, length in chunks)
        if total != asn.total_slots * bb:
            raise AssertionError("view chunks do not tile the slot space")
        return chunks

    # ------------------------------------------------------------------
    # MMU emulation hooks (no-ops over the real memfd arena)
    # ------------------------------------------------------------------
    @property
    def zero_copy(self) -> bool:
        return bool(self._views) and self._views[0].zero_copy

    def flush_owned(self) -> None:
        """Write each domain's owned slots back to the arena (sim only).

        Only the owned prefix is flushed: the ghost tail of every view
        aliases *other* domains' surfaces and must never be written back.
        """
        for view in self._views:
            view.flush(up_to_bytes=self.owned_bytes)

    def sync(self) -> None:
        """Re-read every view from the arena (sim only)."""
        for view in self._views:
            view.refresh()

    # ------------------------------------------------------------------
    def load_global(self, global_arr: np.ndarray, fld: int = 0) -> None:
        """Scatter a global (numpy-ordered) array into all subdomains.

        Only the *owned* element region of each subdomain is written:
        ghost slots are aliases of other domains' surfaces, and writing
        them would write through onto that foreign data.
        """
        from repro.brick.convert import element_permutation
        from repro.stencil.kernels import owned_slices

        sub = self.decomp.extent
        g = self.decomp.ghost_elems
        expected = tuple(
            s * d for s, d in zip(reversed(sub), reversed(self.domain_dims))
        )
        if global_arr.shape != expected:
            raise ExchangeConfigError(
                f"global array shape {global_arr.shape}, expected {expected}"
            )
        own = owned_slices(sub, g)
        owned_perm = element_permutation(self.decomp, self.assignment, fld)[
            own
        ].reshape(-1)
        for idx in range(self.ndomains):
            coords = self.index_to_coords(idx)
            lo = [c * s for c, s in zip(coords, sub)]
            slc = tuple(
                slice(l, l + s) for l, s in zip(reversed(lo), reversed(sub))
            )
            self.storages[idx].data.reshape(-1)[owned_perm] = (
                global_arr[slc].astype(self.decomp.dtype).reshape(-1)
            )
        self.flush_owned()
        self.sync()

    def extract_global(self, fld: int = 0) -> np.ndarray:
        """Gather every subdomain's owned region into a global array."""
        from repro.brick.convert import bricks_to_extended
        from repro.stencil.kernels import owned_slices

        sub = self.decomp.extent
        g = self.decomp.ghost_elems
        shape = tuple(
            s * d for s, d in zip(reversed(sub), reversed(self.domain_dims))
        )
        out = np.empty(shape, dtype=self.decomp.dtype)
        own = owned_slices(sub, g)
        for idx in range(self.ndomains):
            coords = self.index_to_coords(idx)
            lo = [c * s for c, s in zip(coords, sub)]
            slc = tuple(
                slice(l, l + s) for l, s in zip(reversed(lo), reversed(sub))
            )
            out[slc] = bricks_to_extended(
                self.decomp, self.storages[idx], self.assignment, fld
            )[own]
        return out

    def close(self) -> None:
        for view in self._views:
            view.close()
        self._views.clear()
        self.storages.clear()
        self.arena.close()

    def __enter__(self) -> "LocalDomainGrid":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
