"""Surface/ghost boxes of a lexicographic extended array.

The array-based baselines (Pack, MPI_Types, Shift) exchange one
axis-aligned box per neighbor.  In an extended array of shape
``(E_D + 2g, ..., E_1 + 2g)`` (numpy order), for neighbor direction ``T``:

* the **send** box is the surface band of width ``g`` on side ``T_i`` for
  constrained axes and the full owned span for free axes;
* the **recv** box is the ghost band on side ``T_i`` for constrained axes
  and the owned span for free axes.

Send and recv boxes of opposite directions have equal shapes, which is
what makes the one-box-per-neighbor exchange well-formed.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.faults.errors import ExchangeConfigError
from repro.util.bitset import BitSet

__all__ = ["neighbor_send_box", "neighbor_recv_box", "box_slices"]

Box = Tuple[Tuple[int, ...], Tuple[int, ...]]  # (lo, extent), axis order 1..D


def neighbor_send_box(
    neighbor: BitSet, extent: Sequence[int], ghost: int
) -> Box:
    """Surface box (axis order 1..D, offsets into the extended array)."""
    _check(neighbor, extent, ghost)
    lo, ext = [], []
    for axis, e in enumerate(extent):
        d = neighbor.direction(axis + 1)
        if d < 0:
            lo.append(ghost)
            ext.append(ghost)
        elif d > 0:
            lo.append(e)  # last g owned elements: [g + e - g, g + e)
            ext.append(ghost)
        else:
            lo.append(ghost)
            ext.append(e)
    return tuple(lo), tuple(ext)


def neighbor_recv_box(
    neighbor: BitSet, extent: Sequence[int], ghost: int
) -> Box:
    """Ghost box receiving from ``N(neighbor)`` (axis order 1..D)."""
    _check(neighbor, extent, ghost)
    lo, ext = [], []
    for axis, e in enumerate(extent):
        d = neighbor.direction(axis + 1)
        if d < 0:
            lo.append(0)
            ext.append(ghost)
        elif d > 0:
            lo.append(ghost + e)
            ext.append(ghost)
        else:
            lo.append(ghost)
            ext.append(e)
    return tuple(lo), tuple(ext)


def box_slices(box: Box) -> Tuple[slice, ...]:
    """Numpy slices (axis D first) selecting *box* in an extended array."""
    lo, ext = box
    return tuple(
        slice(l, l + e) for l, e in zip(reversed(lo), reversed(ext))
    )


def _check(neighbor: BitSet, extent: Sequence[int], ghost: int) -> None:
    if not neighbor:
        raise ExchangeConfigError("the empty set is not a neighbor")
    if ghost <= 0:
        raise ExchangeConfigError("ghost width must be positive")
    if any(e < ghost for e in extent):
        raise ExchangeConfigError(
            f"extent {tuple(extent)} smaller than the ghost width {ghost}"
        )
