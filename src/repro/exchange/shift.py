"""Shift exchange (related work, Section 8).

The Shift algorithm exchanges ghost zones one dimension at a time with
only the two face neighbors per dimension -- ``2 * D`` messages instead of
``3^D - 1`` -- forwarding corner data implicitly: after axis 1 has been
exchanged, the axis-2 faces *include* the already-received axis-1 ghost
bands, so diagonal data arrives in two hops.  The cost is synchronization:
axis ``d+1`` cannot start until axis ``d`` has completed, so wire
latencies serialize across dimensions.

Included as an ablation baseline; it still packs (the faces are
non-contiguous boxes of a lexicographic array).
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

import numpy as np

from repro.exchange.base import (
    ExchangeResult,
    Exchanger,
    PlannedMessage,
    RankMessagePlan,
)
from repro.exchange.schedule import MessageSpec
from repro.faults.errors import ExchangeConfigError
from repro.hardware.profiles import MachineProfile
from repro.obs import METRICS as _METRICS
from repro.obs import TRACER as _TRACER
from repro.simmpi.comm import CartComm
from repro.util.bitset import BitSet
from repro.util.timing import TimeBreakdown

__all__ = ["ShiftExchanger"]


class ShiftExchanger(Exchanger):
    """Dimension-by-dimension face exchange with corner forwarding."""

    method = "shift"

    def __init__(
        self,
        comm: CartComm,
        array: Optional[np.ndarray],
        extent: Sequence[int],
        ghost: int,
        profile: MachineProfile,
        dtype: np.dtype = np.float64,
    ) -> None:
        super().__init__(comm, profile)
        self.extent = tuple(int(e) for e in extent)
        self.ghost = int(ghost)
        ndim = len(self.extent)
        expected = tuple(e + 2 * self.ghost for e in reversed(self.extent))
        if array is not None:
            if array.shape != expected:
                raise ExchangeConfigError(
                    f"extended array shape {array.shape}, expected {expected}"
                )
            dtype = array.dtype
        self.array = array
        self.dtype = np.dtype(dtype)
        self._phases = []  # one phase per axis, two directions each
        g = self.ghost
        for axis in range(ndim):  # axis order 1..D
            phase = []
            for sign in (-1, 1):
                vec = [0] * ndim
                vec[axis] = sign
                rank = comm.neighbor_rank(vec)
                if rank is None:
                    continue  # non-periodic boundary: skip this face
                # Box extents: axes < axis use the FULL extended span
                # (forwarding corners already received), axis uses the g-
                # wide band, axes > axis use the owned span.
                lo, ext = [], []
                for a, e in enumerate(self.extent):
                    if a < axis:
                        lo.append(0)
                        ext.append(e + 2 * g)
                    elif a == axis:
                        if sign < 0:
                            lo.append(g)  # send low surface band
                        else:
                            lo.append(e)
                        ext.append(g)
                    else:
                        lo.append(g)
                        ext.append(e)
                send_lo = list(lo)
                recv_lo = list(lo)
                recv_lo[axis] = 0 if sign < 0 else g + self.extent[axis]
                np_send = tuple(
                    slice(l, l + x) for l, x in zip(reversed(send_lo), reversed(ext))
                )
                np_recv = tuple(
                    slice(l, l + x) for l, x in zip(reversed(recv_lo), reversed(ext))
                )
                count = math.prod(ext)
                run = 1
                ext_shape = tuple(e + 2 * g for e in self.extent)
                for a in range(ndim):
                    run *= ext[a]
                    if ext[a] != ext_shape[a]:
                        break
                phase.append(
                    {
                        "rank": rank,
                        "send_slices": np_send,
                        "recv_slices": np_recv,
                        "tag": 1000 + axis * 4 + (0 if sign < 0 else 1),
                        "rtag": 1000 + axis * 4 + (1 if sign < 0 else 0),
                        "count": count,
                        "axis": axis,
                        "send_buf": (
                            np.empty(count, dtype=self.dtype)
                            if array is not None
                            else None
                        ),
                        "recv_buf": (
                            np.empty(count, dtype=self.dtype)
                            if array is not None
                            else None
                        ),
                        "spec": MessageSpec(
                            BitSet.from_vector(vec),
                            count * self.dtype.itemsize,
                            count * self.dtype.itemsize,
                            nsegments=max(1, count // run),
                            run_elems=run,
                        ),
                    }
                )
            self._phases.append(phase)

    # ------------------------------------------------------------------
    def send_specs(self) -> List[MessageSpec]:
        return [p["spec"] for phase in self._phases for p in phase]

    def message_plan(self) -> RankMessagePlan:
        """Static per-rank schedule: one phase per axis, serialized."""
        itemsize = self.dtype.itemsize
        sends, recvs = [], []
        for axis, phase in enumerate(self._phases):
            for p in phase:
                nbytes = p["count"] * itemsize
                sends.append(
                    PlannedMessage(p["rank"], p["tag"], nbytes, phase=axis)
                )
                recvs.append(
                    PlannedMessage(p["rank"], p["rtag"], nbytes, phase=axis)
                )
        return RankMessagePlan(
            self.comm.rank,
            self.method,
            tuple(sends),
            tuple(recvs),
            channelable=False,
            nphases=len(self._phases),
        )

    def _require_array(self) -> np.ndarray:
        if self.array is None:
            raise ExchangeConfigError(
                "ShiftExchanger was built plan-only (array=None); it can"
                " describe its schedule but not execute an exchange"
            )
        return self.array

    def exchange(self) -> ExchangeResult:
        arr = self._require_array()
        rank = self.comm.rank
        breakdown = TimeBreakdown()
        for axis, phase in enumerate(self._phases):
            with _TRACER.span("exchange.shift_axis", rank=rank,
                              method=self.method, axis=axis):
                reqs = []
                with _TRACER.span("exchange.pack", rank=rank):
                    for p in phase:
                        reqs.append(
                            self.comm.Irecv(p["recv_buf"], p["rank"], p["rtag"])
                        )
                    for p in phase:
                        p["send_buf"][:] = arr[p["send_slices"]].reshape(-1)
                        reqs.append(
                            self.comm.Isend(p["send_buf"], p["rank"], p["tag"])
                        )
                with _TRACER.span("exchange.wait", rank=rank):
                    self.comm.Waitall(reqs)
                with _TRACER.span("exchange.unpack", rank=rank):
                    for p in phase:
                        arr[p["recv_slices"]] = p["recv_buf"].reshape(
                            arr[p["recv_slices"]].shape
                        )
                if _METRICS.enabled:
                    moved = sum(
                        p["send_buf"].nbytes + p["recv_buf"].nbytes
                        for p in phase
                    )
                    _METRICS.count("exchange.bytes_packed", moved, rank=rank)
                    _METRICS.count("exchange.messages", len(phase), rank=rank)
                # Phases serialize: each pays its own pack + network round.
                specs = [p["spec"] for p in phase]
                breakdown.charge("pack", self._pack_cost(specs) * 2)
                call, wait = self._network_times(specs, specs)
                breakdown.charge("call", call)
                breakdown.charge("wait", wait)
                self.comm.Barrier()

        all_specs = self.send_specs()
        return ExchangeResult(
            breakdown,
            messages_sent=len(all_specs),
            messages_received=len(all_specs),
            payload_bytes_sent=sum(m.payload_bytes for m in all_specs),
            wire_bytes_sent=sum(m.wire_bytes for m in all_specs),
        )
