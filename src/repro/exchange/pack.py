"""The packing baseline: explicit pack -> send -> recv -> unpack.

This is the classic ghost-zone exchange the paper's Figure 1 profiles
(YASK operates this way): for each of the ``3^D - 1`` neighbors, gather
the surface box into a contiguous staging buffer, send it, receive the
neighbor's buffer, and scatter it into the ghost box.  Both the gather
and the scatter are pure on-node data movement -- the red "Packing" bars
the optimized schemes eliminate.

The staging buffers are allocated once and reused every timestep (as any
competent implementation would), so the measured cost is the copies
themselves, not allocation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.brick.info import direction_index
from repro.exchange.base import (
    ExchangeChannel,
    ExchangeResult,
    Exchanger,
    PlannedMessage,
    RankMessagePlan,
    exchange_tag,
)
from repro.faults.errors import ExchangeConfigError
from repro.exchange.boxes import box_slices, neighbor_recv_box, neighbor_send_box
from repro.exchange.schedule import MessageSpec, array_schedule
from repro.hardware.profiles import MachineProfile
from repro.layout.regions import all_regions
from repro.obs import METRICS as _METRICS
from repro.obs import TRACER as _TRACER
from repro.simmpi.comm import CartComm
from repro.util.bitset import BitSet
from repro.util.timing import TimeBreakdown

__all__ = ["PackExchanger"]


class PackExchanger(Exchanger):
    """Explicit-packing exchange over a lexicographic extended array."""

    method = "pack"

    def __init__(
        self,
        comm: CartComm,
        array: Optional[np.ndarray],
        extent: Sequence[int],
        ghost: int,
        profile: MachineProfile,
        dtype=np.float64,
    ) -> None:
        super().__init__(comm, profile)
        self.extent = tuple(int(e) for e in extent)
        self.ghost = int(ghost)
        ndim = len(self.extent)
        expected = tuple(e + 2 * self.ghost for e in reversed(self.extent))
        if array is not None:
            if array.shape != expected:
                raise ExchangeConfigError(
                    f"extended array shape {array.shape}, expected {expected}"
                )
            dtype = array.dtype
        self.array = array  # None = plan-only (static verification)
        self.dtype = np.dtype(dtype)
        self._specs = array_schedule(
            self.extent, self.ghost, self.dtype.itemsize
        )

        self._plan = []
        for neighbor in all_regions(ndim):
            send_box = neighbor_send_box(neighbor, self.extent, self.ghost)
            send_slc = box_slices(send_box)
            recv_slc = box_slices(neighbor_recv_box(neighbor, self.extent, self.ghost))
            box_shape = tuple(reversed(send_box[1]))
            count = int(np.prod(box_shape))
            rank = comm.neighbor_rank(neighbor.to_vector(ndim))
            if rank is None:
                # Non-periodic boundary: nothing to exchange with this
                # neighbor; the ghost box keeps whatever boundary
                # condition the application wrote there.
                continue
            # Persistent staging: the flat buffers go on the wire; the
            # box-shaped reshapes of the same memory let pack/unpack run
            # as one strided copy each, with no per-step temporaries.
            # Plan-only exchangers skip the allocation entirely.
            entry = {
                "neighbor": neighbor,
                "rank": rank,
                "send_slices": send_slc,
                "recv_slices": recv_slc,
                "count": count,
                "send_tag": exchange_tag(
                    direction_index(neighbor.opposite().to_vector(ndim)), 0
                ),
                "recv_tag": exchange_tag(
                    direction_index(neighbor.to_vector(ndim)), 0
                ),
            }
            if array is not None:
                send_buf = np.empty(count, dtype=array.dtype)
                recv_buf = np.empty(count, dtype=array.dtype)
                entry.update(
                    send_buf=send_buf,
                    recv_buf=recv_buf,
                    send_view=send_buf.reshape(box_shape),
                    recv_view=recv_buf.reshape(box_shape),
                )
            self._plan.append(entry)
        planned = {p["neighbor"] for p in self._plan}
        self._specs = [m for m in self._specs if m.neighbor in planned]

    # ------------------------------------------------------------------
    def send_specs(self) -> List[MessageSpec]:
        return list(self._specs)

    def message_plan(self) -> RankMessagePlan:
        itemsize = self.dtype.itemsize
        return RankMessagePlan(
            rank=self.comm.rank,
            method=self.method,
            sends=tuple(
                PlannedMessage(
                    peer=p["rank"], tag=p["send_tag"],
                    nbytes=p["count"] * itemsize,
                )
                for p in self._plan
            ),
            recvs=tuple(
                PlannedMessage(
                    peer=p["rank"], tag=p["recv_tag"],
                    nbytes=p["count"] * itemsize,
                )
                for p in self._plan
            ),
        )

    def _require_array(self) -> np.ndarray:
        if self.array is None:
            raise ExchangeConfigError(
                f"{type(self).__name__} was built plan-only (no array);"
                " it can be introspected but not exchanged"
            )
        return self.array

    def exchange(self) -> ExchangeResult:
        arr = self._require_array()
        rank = self.comm.rank
        # Phase 1: post every receive before any send (deadlock-free).
        reqs = []
        with _TRACER.span("exchange.post", rank=rank, method=self.method):
            for p in self._plan:
                reqs.append(
                    self.comm.Irecv(p["recv_buf"], p["rank"], p["recv_tag"])
                )
        # Phase 2: pack and send.
        with _TRACER.span("exchange.pack", rank=rank, method=self.method):
            for p in self._plan:
                np.copyto(p["send_view"], arr[p["send_slices"]])  # the pack
                reqs.append(
                    self.comm.Isend(p["send_buf"], p["rank"], p["send_tag"])
                )
        with _TRACER.span("exchange.wait", rank=rank, method=self.method):
            self.comm.Waitall(reqs)
        # Phase 3: unpack.
        with _TRACER.span("exchange.unpack", rank=rank, method=self.method):
            for p in self._plan:
                arr[p["recv_slices"]] = p["recv_view"]
        if _METRICS.enabled:
            packed = sum(p["send_buf"].nbytes for p in self._plan)
            unpacked = sum(p["recv_buf"].nbytes for p in self._plan)
            _METRICS.count("exchange.bytes_packed", packed + unpacked,
                           rank=rank)
            _METRICS.count("exchange.messages", len(self._plan), rank=rank)
        return self._model_result()

    def _model_result(self) -> ExchangeResult:
        """Modelled outcome of one exchange (static per message plan)."""
        breakdown = TimeBreakdown()
        breakdown.charge("pack", self._pack_cost(self._specs) * 2)  # pack+unpack
        call, wait = self._network_times(self._specs, self._specs)
        breakdown.charge("call", call)
        breakdown.charge("wait", wait)
        sent = sum(m.wire_bytes for m in self._specs)
        return ExchangeResult(
            breakdown,
            messages_sent=len(self._specs),
            messages_received=len(self._specs),
            payload_bytes_sent=sum(m.payload_bytes for m in self._specs),
            wire_bytes_sent=sent,
        )

    def _build_channel(self, partitions):
        arr = self._require_array()
        plan = self._plan

        def pack() -> None:
            for p in plan:
                np.copyto(p["send_view"], arr[p["send_slices"]])

        def unpack() -> None:
            for p in plan:
                arr[p["recv_slices"]] = p["recv_view"]

        return ExchangeChannel(
            self.comm,
            self.method,
            posts=[(p["rank"], p["send_tag"], p["send_buf"]) for p in plan],
            recvs=[(p["rank"], p["recv_tag"], p["recv_buf"]) for p in plan],
            result=self._model_result(),
            packed_bytes=sum(
                p["send_buf"].nbytes + p["recv_buf"].nbytes for p in plan
            ),
            pre=pack,
            post=unpack,
            partitions=partitions,
        )
