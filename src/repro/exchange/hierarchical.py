"""Hierarchical exchange: many subdomains per rank, aliased where possible.

Real deployments place several subdomains on one node (Summit runs 6
ranks/GPUs per node).  Combining the paper's two ideas at both levels:

* **intra-rank** neighbor halos are mmap *aliases* of the co-resident
  neighbor's surface (zero copies, zero messages, zero physical ghost
  memory -- :mod:`repro.exchange.local` taken across a whole machine);
* **inter-rank** halos are exchanged MemMap-style: one message per
  (subdomain, off-rank neighbor direction), sent straight out of the
  shared arena through stitched views.

Each rank owns a :class:`RankDomainGrid`: a block of ``local_dims``
subdomains inside the global (periodic) grid of
``rank_dims * local_dims`` subdomains.  Only the ghost subsections whose
source subdomain lives on another rank get physical backing; the rest are
aliases.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.brick.decomp import BrickDecomp, Section, SlotAssignment
from repro.brick.info import direction_index
from repro.brick.storage import BrickStorage
from repro.hardware.profiles import MachineProfile, generic_host
from repro.layout.messages import message_runs
from repro.simmpi.comm import CartComm
from repro.util.bitset import BitSet
from repro.vmem import default_arena
from repro.vmem.layout_plan import plan_view
from repro.faults.errors import ExchangeConfigError

__all__ = ["RankDomainGrid"]

_NDIR_TAG = 64


def _tag(recv_local_index: int, slab_dir: int, run: int = 0) -> int:
    return (recv_local_index * _NDIR_TAG + slab_dir) * 8 + run


class RankDomainGrid:
    """One rank's block of subdomains with two-level halo handling.

    Parameters
    ----------
    cart:
        Periodic Cartesian communicator over the ranks.
    local_dims:
        Subdomains per rank per axis (axis 1 first).
    sub_extent, brick_dim, ghost, layout, dtype:
        Per-subdomain decomposition, as for :class:`BrickDecomp`.
    page_size, profile:
        Mapping granularity and cost profile.
    """

    def __init__(
        self,
        cart: CartComm,
        local_dims: Sequence[int],
        sub_extent: Sequence[int],
        brick_dim: Sequence[int],
        ghost: int,
        layout=None,
        page_size: int = 4096,
        dtype=np.float64,
        profile: Optional[MachineProfile] = None,
    ) -> None:
        self.cart = cart
        self.profile = profile or generic_host()
        self.local_dims = tuple(int(d) for d in local_dims)
        self.decomp = BrickDecomp(sub_extent, brick_dim, ghost, layout, dtype)
        ndim = self.decomp.ndim
        if len(self.local_dims) != ndim or len(cart.dims) != ndim:
            raise ExchangeConfigError("dimensionality mismatch")
        self.page_size = int(page_size)
        align = self.decomp.alignment_for_page(self.page_size)
        self.assignment: SlotAssignment = self.decomp.assignment(align)
        asn = self.assignment
        bb = self.decomp.brick_bytes

        self.nlocal = math.prod(self.local_dims)
        ghost_starts = [s.start for s in asn.sections if s.kind == "ghost"]
        self.owned_slots = min(ghost_starts) if ghost_starts else asn.total_slots
        self.owned_bytes = self.owned_slots * bb

        # ------------------------------------------------------------------
        # Physical layout: per local domain, owned bytes followed by the
        # padded ghost subsections whose source is OFF this rank.
        # ------------------------------------------------------------------
        #: per local domain: section -> physical byte offset (ghosts only)
        self._phys_ghost: List[Dict[Tuple[BitSet, BitSet], int]] = []
        self._domain_bytes: List[int] = []
        self._domain_base: List[int] = []
        cursor = 0
        for idx in range(self.nlocal):
            self._domain_base.append(cursor)
            offset = self.owned_bytes
            phys: Dict[Tuple[BitSet, BitSet], int] = {}
            for sec in asn.sections:
                if sec.kind != "ghost" or sec.padded_nbricks == 0:
                    continue
                rank, _ = self._neighbor_rank_local(idx, sec.neighbor)
                if rank is not None:  # off-rank source: needs real backing
                    phys[(sec.neighbor, sec.region)] = offset
                    offset += sec.padded_nbricks * bb
            self._phys_ghost.append(phys)
            self._domain_bytes.append(offset)
            cursor += offset

        self.arena = default_arena(max(cursor, self.page_size), self.page_size)

        # ------------------------------------------------------------------
        # Stitched storage views: alias intra-rank, physical otherwise.
        # ------------------------------------------------------------------
        self._views = []
        self.storages: List[BrickStorage] = []
        for idx in range(self.nlocal):
            chunks: List[Tuple[int, int]] = [
                (self._domain_base[idx], self.owned_bytes)
            ]
            for sec in asn.sections:
                if sec.kind != "ghost" or sec.padded_nbricks == 0:
                    continue
                length = sec.padded_nbricks * bb
                rank, local = self._neighbor_rank_local(idx, sec.neighbor)
                if rank is None:  # co-resident: alias the neighbor's surface
                    src = asn.surface[sec.region]
                    chunks.append(
                        (self._domain_base[local] + src.start * bb, length)
                    )
                else:
                    off = self._phys_ghost[idx][(sec.neighbor, sec.region)]
                    chunks.append((self._domain_base[idx] + off, length))
            view = self.arena.make_view(chunks)
            self._views.append(view)
            self.storages.append(
                BrickStorage.from_view(
                    view, asn.total_slots, self.decomp.brick_elems, dtype
                )
            )

        self.info = self.decomp.brick_info(asn)
        self.compute_slots = self.decomp.compute_slots(asn)
        self._build_message_plan()

    # ------------------------------------------------------------------
    # Coordinates
    # ------------------------------------------------------------------
    def _local_coords(self, idx: int) -> Tuple[int, ...]:
        out = []
        for d in self.local_dims:
            out.append(idx % d)
            idx //= d
        return tuple(out)

    def _local_index(self, coords: Sequence[int]) -> int:
        idx, stride = 0, 1
        for c, d in zip(coords, self.local_dims):
            idx += int(c) * stride
            stride *= d
        return idx

    def _neighbor_rank_local(
        self, idx: int, direction: BitSet
    ) -> Tuple[Optional[int], Optional[int]]:
        """(rank, local_index) of the subdomain one step from *idx*.

        Returns ``(None, local)`` when the neighbor is on this rank, and
        ``(rank, local)`` when it lives on the returned other rank.  The
        global subdomain grid is periodic via the rank communicator.
        """
        ndim = self.decomp.ndim
        vec = direction.to_vector(ndim)
        lc = self._local_coords(idx)
        rank_step = []
        nlc = []
        for c, v, d in zip(lc, vec, self.local_dims):
            n = c + v
            rank_step.append(n // d)  # floor: -1, 0, or +1
            nlc.append(n % d)
        local = self._local_index(nlc)
        if not any(rank_step):
            return None, local
        rank = self.cart.neighbor_rank(rank_step)
        if rank is None:  # pragma: no cover - periodic cart in practice
            raise ExchangeConfigError("open rank boundaries are not supported here")
        return rank, local

    # ------------------------------------------------------------------
    # Inter-rank message plan (built once, reused every exchange)
    # ------------------------------------------------------------------
    def _build_message_plan(self) -> None:
        asn = self.assignment
        bb = self.decomp.brick_bytes
        ndim = self.decomp.ndim
        self._sends: List[dict] = []
        self._recvs: List[dict] = []
        for idx in range(self.nlocal):
            for neighbor in self.decomp.layout:
                rank, remote_local = self._neighbor_rank_local(idx, neighbor)
                if rank is None:
                    continue  # aliased intra-rank: no message
                # Send: our surface regions covering this neighbor, padded.
                send_ranges = []
                for start, length in message_runs(self.decomp.layout, neighbor):
                    for i in range(start, start + length):
                        sec = asn.surface[self.decomp.layout[i]]
                        if sec.nbricks:
                            send_ranges.append(
                                (
                                    self._domain_base[idx] + sec.start * bb,
                                    sec.nbricks * bb,
                                )
                            )
                # Recv: our ghost slab facing this neighbor, physical chunks.
                recv_ranges = []
                opp = neighbor.opposite()
                for start, length in message_runs(self.decomp.layout, opp):
                    for i in range(start, start + length):
                        sec = asn.ghost[(neighbor, self.decomp.layout[i])]
                        if sec.nbricks:
                            off = self._phys_ghost[idx][(neighbor, sec.region)]
                            recv_ranges.append(
                                (
                                    self._domain_base[idx] + off,
                                    sec.nbricks * bb,
                                )
                            )
                if not send_ranges:
                    continue
                send_plan = plan_view(send_ranges, self.page_size)
                recv_plan = plan_view(recv_ranges, self.page_size)
                dir_idx = direction_index(neighbor.to_vector(ndim))
                opp_idx = direction_index(opp.to_vector(ndim))
                self._sends.append(
                    {
                        "rank": rank,
                        # the receiver names the slab by the direction it
                        # sees us in, and by ITS local domain index
                        "tag": _tag(remote_local, opp_idx),
                        "view": self.arena.make_view(send_plan.chunks),
                    }
                )
                self._recvs.append(
                    {
                        "rank": rank,
                        "tag": _tag(idx, dir_idx),
                        "view": self.arena.make_view(recv_plan.chunks),
                    }
                )

    # ------------------------------------------------------------------
    @property
    def messages_per_exchange(self) -> int:
        return len(self._sends)

    @property
    def zero_copy(self) -> bool:
        return bool(self._views) and self._views[0].zero_copy

    def exchange(self) -> None:
        """Inter-rank ghost exchange (intra-rank halos are always live)."""
        reqs = []
        for r in self._recvs:
            reqs.append(self.cart.Irecv(r["view"].array(), r["rank"], r["tag"]))
        for s in self._sends:
            s["view"].refresh()
            reqs.append(self.cart.Isend(s["view"].array(), s["rank"], s["tag"]))
        self.cart.Waitall(reqs)
        for r in self._recvs:
            r["view"].flush()
        self.sync()

    def flush_owned(self) -> None:
        """Write each domain's owned slots back to the arena (sim only)."""
        for view in self._views:
            view.flush(up_to_bytes=self.owned_bytes)

    def sync(self) -> None:
        """Re-read every domain view from the arena (sim only)."""
        for view in self._views:
            view.refresh()

    # ------------------------------------------------------------------
    def load_owned(self, idx: int, owned_block: np.ndarray, fld: int = 0) -> None:
        """Write one subdomain's owned elements (numpy-ordered block)."""
        from repro.brick.convert import element_permutation
        from repro.stencil.kernels import owned_slices

        sub = self.decomp.extent
        own = owned_slices(sub, self.decomp.ghost_elems)
        perm = element_permutation(self.decomp, self.assignment, fld)[own]
        self.storages[idx].data.reshape(-1)[perm.reshape(-1)] = (
            owned_block.astype(self.decomp.dtype).reshape(-1)
        )

    def extract_owned(self, idx: int, fld: int = 0) -> np.ndarray:
        """Read one subdomain's owned elements (numpy-ordered block)."""
        from repro.brick.convert import element_permutation
        from repro.stencil.kernels import owned_slices

        sub = self.decomp.extent
        own = owned_slices(sub, self.decomp.ghost_elems)
        perm = element_permutation(self.decomp, self.assignment, fld)[own]
        return self.storages[idx].data.reshape(-1)[perm]

    def close(self) -> None:
        for coll in (self._sends, self._recvs):
            for entry in coll:
                entry["view"].close()
        for view in self._views:
            view.close()
        self._views.clear()
        self.storages.clear()
        self.arena.close()
