"""Combinatorial message schedules.

Everything a cost model needs to price one rank's ghost-zone exchange --
message count, payload and wire sizes, contiguous-segment structure --
follows from pure arithmetic on the decomposition parameters; no storage
has to be allocated.  The modelled-scale driver (strong-scaling figures up
to 1024 nodes) uses these schedules directly, and the executed exchangers'
plans are asserted equal to them in the test suite.

All schedules describe *sends*; by symmetry a rank's receives in a
periodic cubical decomposition have identical sizes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.layout.messages import message_runs
from repro.layout.regions import all_regions, region_brick_extent
from repro.util.bitset import BitSet
from repro.util.indexing import ceil_div
from repro.faults.errors import ExchangeConfigError

__all__ = [
    "MessageSpec",
    "brick_send_schedule",
    "brick_recv_schedule",
    "basic_brick_schedule",
    "memmap_schedule",
    "array_schedule",
    "shift_schedule",
]


@dataclass(frozen=True)
class MessageSpec:
    """One message of an exchange, as the cost models see it.

    ``payload_bytes`` is useful data; ``wire_bytes`` includes MemMap page
    padding.  ``nsegments``/``run_elems`` describe the memory layout of
    the *source* region (for pack and datatype-engine costs).
    ``nmappings`` counts the stitched-view chunks behind the message
    (MemMap only; 1 otherwise -- a plain pointer).
    """

    neighbor: BitSet
    payload_bytes: int
    wire_bytes: int
    nsegments: int = 1
    run_elems: int = 0
    nmappings: int = 1

    def __post_init__(self) -> None:
        if self.payload_bytes < 0 or self.wire_bytes < self.payload_bytes:
            raise ExchangeConfigError("wire size must be at least the payload size")


def _region_bricks(region: BitSet, grid: Sequence[int], width: int) -> int:
    return math.prod(region_brick_extent(region, tuple(grid), width))


def brick_send_schedule(
    grid: Sequence[int],
    width: int,
    layout: Sequence[BitSet],
    brick_bytes: int,
) -> List[MessageSpec]:
    """Layout-mode sends: one message per contiguous run per neighbor.

    Empty runs (possible when the subdomain has no interior span on some
    axis) are dropped, matching the executed exchanger.
    """
    ndim = len(tuple(grid))
    out: List[MessageSpec] = []
    for neighbor in all_regions(ndim):
        for start, length in message_runs(layout, neighbor):
            nb = sum(
                _region_bricks(layout[i], grid, width)
                for i in range(start, start + length)
            )
            if nb == 0:
                continue
            nbytes = nb * brick_bytes
            out.append(
                MessageSpec(
                    neighbor,
                    payload_bytes=nbytes,
                    wire_bytes=nbytes,
                    nsegments=1,
                    run_elems=nbytes // 8,
                )
            )
    return out


def brick_recv_schedule(
    grid: Sequence[int],
    width: int,
    layout: Sequence[BitSet],
    brick_bytes: int,
) -> List[MessageSpec]:
    """Receive sizes mirror sends in a periodic uniform decomposition."""
    return [
        MessageSpec(
            m.neighbor.opposite(),
            m.payload_bytes,
            m.wire_bytes,
            m.nsegments,
            m.run_elems,
            m.nmappings,
        )
        for m in brick_send_schedule(grid, width, layout, brick_bytes)
    ]


def basic_brick_schedule(
    grid: Sequence[int],
    width: int,
    layout: Sequence[BitSet],
    brick_bytes: int,
) -> List[MessageSpec]:
    """Basic-mode sends: one message per (region, neighbor) pair.

    ``5^D - 3^D`` messages in total (Eq. 3); relative region order is
    irrelevant, so no layout optimization is involved.
    """
    ndim = len(tuple(grid))
    out: List[MessageSpec] = []
    for neighbor in all_regions(ndim):
        for region in layout:
            if not neighbor.issubset(region):
                continue
            nb = _region_bricks(region, grid, width)
            if nb == 0:
                continue
            nbytes = nb * brick_bytes
            out.append(
                MessageSpec(
                    neighbor,
                    payload_bytes=nbytes,
                    wire_bytes=nbytes,
                    nsegments=1,
                    run_elems=nbytes // 8,
                )
            )
    return out


def shift_schedule(
    extent: Sequence[int], ghost: int, itemsize: int = 8
) -> List[List[MessageSpec]]:
    """Shift-mode sends, one phase per dimension (``2D`` messages total).

    Phase ``d`` exchanges bands of width ``ghost`` along axis ``d`` whose
    other axes span the *extended* range for already-exchanged axes
    (corner forwarding) and the owned range otherwise.  Phases serialize.
    """
    extent = tuple(int(e) for e in extent)
    ndim = len(extent)
    if ghost <= 0:
        raise ExchangeConfigError("ghost width must be positive")
    ext_shape = tuple(e + 2 * ghost for e in extent)
    phases: List[List[MessageSpec]] = []
    for axis in range(ndim):
        phase: List[MessageSpec] = []
        for sign in (-1, 1):
            sub = []
            for a, e in enumerate(extent):
                if a < axis:
                    sub.append(e + 2 * ghost)
                elif a == axis:
                    sub.append(ghost)
                else:
                    sub.append(e)
            count = math.prod(sub)
            run = 1
            for a in range(ndim):
                run *= sub[a]
                if sub[a] != ext_shape[a]:
                    break
            vec = [0] * ndim
            vec[axis] = sign
            phase.append(
                MessageSpec(
                    BitSet.from_vector(vec),
                    payload_bytes=count * itemsize,
                    wire_bytes=count * itemsize,
                    nsegments=max(1, count // run),
                    run_elems=run,
                )
            )
        phases.append(phase)
    return phases


def memmap_schedule(
    grid: Sequence[int],
    width: int,
    layout: Sequence[BitSet],
    brick_bytes: int,
    page_size: int,
) -> List[MessageSpec]:
    """MemMap sends: exactly one message per neighbor, page-padded.

    Each region in the view is padded to a page multiple; runs of
    adjacent regions coalesce into single mappings (Section 4: layout
    optimization minimises the mapping count).
    """
    ndim = len(tuple(grid))
    if page_size <= 0:
        raise ExchangeConfigError("page_size must be positive")
    align = math.lcm(brick_bytes, page_size)
    out: List[MessageSpec] = []
    for neighbor in all_regions(ndim):
        payload = 0
        wire = 0
        nmappings = 0
        for start, length in message_runs(layout, neighbor):
            run_bricks = 0
            for i in range(start, start + length):
                nb = _region_bricks(layout[i], grid, width)
                run_bricks += nb
                wire += ceil_div(nb * brick_bytes, align) * align if nb else 0
            if run_bricks:
                payload += run_bricks * brick_bytes
                nmappings += 1  # a run coalesces into one mapping
        if payload == 0:
            continue
        out.append(
            MessageSpec(
                neighbor,
                payload_bytes=payload,
                wire_bytes=wire,
                nsegments=1,
                run_elems=payload // 8,
                nmappings=nmappings,
            )
        )
    return out


def array_schedule(
    extent: Sequence[int], ghost: int, itemsize: int = 8
) -> List[MessageSpec]:
    """Pack / MPI_Types sends on a lexicographic array: one box per
    neighbor.

    Segment structure: the contiguous run of a box is the product of
    trailing axes the box spans fully (axis 1 innermost); the surface
    bands never span the extended axis, so runs are short on axis-1-normal
    faces (the "strided" pattern packing suffers from).
    """
    extent = tuple(int(e) for e in extent)
    ndim = len(extent)
    if ghost <= 0:
        raise ExchangeConfigError("ghost width must be positive")
    ext_shape = tuple(e + 2 * ghost for e in extent)  # axis order 1..D
    out: List[MessageSpec] = []
    for neighbor in all_regions(ndim):
        vec = neighbor.to_vector(ndim)
        sub = tuple(ghost if v else e for v, e in zip(vec, extent))
        count = math.prod(sub)
        if count == 0:
            continue
        # contiguous run: trailing full axes in numpy order = leading axes
        # in axis-1-first order.
        run = 1
        for axis in range(ndim):
            run *= sub[axis]
            if sub[axis] != ext_shape[axis]:
                break
        nbytes = count * itemsize
        out.append(
            MessageSpec(
                neighbor,
                payload_bytes=nbytes,
                wire_bytes=nbytes,
                nsegments=max(1, count // run),
                run_elems=run,
            )
        )
    return out
