"""Ghost-zone exchange engines.

Four strategies from the paper's evaluation plus one from related work:

* :class:`PackExchanger` -- the classic baseline (YASK-style): explicitly
  pack each neighbor's surface boxes into a contiguous buffer, one message
  per neighbor, unpack on arrival.  Maximum on-node data movement.
* :class:`MPITypesExchanger` -- MPI derived datatypes; the "library" packs
  internally (no application ``pack`` phase, but the interpretive datatype
  engine is charged inside MPI time).
* :class:`LayoutExchanger` -- pack-free: bricks are laid out so each
  message is a contiguous slot range sent straight out of brick storage
  (42 messages in 3-D instead of 26, zero copies).
* :class:`MemMapExchanger` -- pack-free *and* message-minimal: stitched
  virtual-memory views make each neighbor's regions virtually contiguous
  (26 messages, zero copies, page-padding network overhead).
* :class:`ShiftExchanger` -- related-work Shift algorithm: per-dimension
  face exchanges with corner forwarding (2D messages, extra
  synchronization).
"""

from repro.exchange.base import ExchangeResult, Exchanger
from repro.exchange.boxes import neighbor_recv_box, neighbor_send_box
from repro.exchange.brickpack import BrickPackExchanger
from repro.exchange.envelope import Envelope, checksum, seal, verify
from repro.exchange.layout_ex import LayoutExchanger
from repro.exchange.hierarchical import RankDomainGrid
from repro.exchange.local import LocalDomainGrid
from repro.exchange.memmap_ex import ExchangeView, MemMapExchanger
from repro.exchange.mpitypes import MPITypesExchanger
from repro.exchange.pack import PackExchanger
from repro.exchange.schedule import (
    MessageSpec,
    array_schedule,
    basic_brick_schedule,
    brick_recv_schedule,
    brick_send_schedule,
    memmap_schedule,
    shift_schedule,
)
from repro.exchange.shift import ShiftExchanger

__all__ = [
    "BrickPackExchanger",
    "Envelope",
    "ExchangeResult",
    "ExchangeView",
    "Exchanger",
    "LayoutExchanger",
    "LocalDomainGrid",
    "MPITypesExchanger",
    "RankDomainGrid",
    "MemMapExchanger",
    "MessageSpec",
    "PackExchanger",
    "ShiftExchanger",
    "array_schedule",
    "basic_brick_schedule",
    "checksum",
    "seal",
    "verify",
    "brick_recv_schedule",
    "brick_send_schedule",
    "memmap_schedule",
    "shift_schedule",
    "neighbor_recv_box",
    "neighbor_send_box",
]
