"""Message envelopes: sequence numbers + checksums for verified exchange.

The pack-free schemes move correctness risk out of copy loops and into
layout metadata and live mmap aliases: a dropped, duplicated or corrupted
message silently poisons ghost bricks instead of crashing.  The envelope
layer closes that hole.  When the fabric runs in *verified* mode, every
message carries:

* a per-edge **sequence number** (edge = ``(src, dst, tag)``), assigned in
  sender program order -- receivers require exactly ``delivered + 1``, so
  losses and reorders are detected, and duplicates are discarded;
* a **CRC32 checksum** of the frozen payload, recomputed by the receiver
  over the bytes that actually landed in its buffer -- wire corruption is
  detected before the ghost zone is trusted.

Validation failures raise the typed errors from
:mod:`repro.faults.errors` (re-exported here), and the fabric queues a
pristine retransmit *before* raising, so the driver's bounded
retry-with-backoff heals them.  Retried exchanges are idempotent by
construction: sends are frozen copies of brick storage taken at post
time, re-posts within one exchange epoch are suppressed, and
already-delivered messages are replayed from the delivery cache
(see DESIGN.md, "Why retried exchanges are idempotent").

Header fields are side-band metadata on the simulated wire: they never
count toward modelled bytes or modelled times, exactly as the artifact's
cost model ignores MPI's own envelope.  With verification disabled the
fabric takes its original zero-overhead path.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

import numpy as np

from repro.faults.errors import (
    ExchangeIntegrityError,
    ExchangeTimeoutError,
    FaultError,
)

__all__ = [
    "Envelope",
    "checksum",
    "seal",
    "verify",
    "ExchangeIntegrityError",
    "ExchangeTimeoutError",
    "FaultError",
]


def checksum(buf: np.ndarray) -> int:
    """CRC32 over a contiguous NumPy buffer's raw bytes."""
    return zlib.crc32(np.ascontiguousarray(buf).data)


@dataclass(frozen=True)
class Envelope:
    """Side-band header of one verified message."""

    seq: int
    crc: int
    nbytes: int


def seal(payload: np.ndarray, seq: int) -> Envelope:
    """Envelope for a frozen (already copied, contiguous) payload."""
    return Envelope(seq=seq, crc=checksum(payload), nbytes=payload.nbytes)


def verify(env: Envelope, received: np.ndarray, expected_seq: int,
           edge: tuple) -> None:
    """Validate a delivery; raises :class:`ExchangeIntegrityError`.

    *received* is the receiver's buffer AFTER the wire copy -- checking
    the landed bytes (not the sender's copy) is what catches corruption
    introduced anywhere along the path.
    """
    src, dst, tag = edge
    if env.seq != expected_seq:
        raise ExchangeIntegrityError(
            f"sequence gap on (src={src}, dst={dst}, tag={tag}):"
            f" got seq {env.seq}, expected {expected_seq}"
        )
    crc = checksum(received)
    if crc != env.crc:
        raise ExchangeIntegrityError(
            f"checksum mismatch on (src={src}, dst={dst}, tag={tag},"
            f" seq={env.seq}): wire crc {crc:#010x} != sent {env.crc:#010x}"
        )
