"""Exchanger interface and shared modelled-timing helpers.

Every exchanger really moves the data (over :mod:`repro.simmpi`) *and*
returns a modelled :class:`~repro.util.timing.TimeBreakdown` for the
exchange, split into the artifact's phases: ``pack`` (on-node copies the
scheme performs), ``call`` (posting MPI operations), ``wait`` (wire time
plus any in-library processing) and ``move`` (explicit CPU-GPU staging,
zero on CPU paths).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exchange.schedule import MessageSpec
from repro.faults.errors import ExchangeConfigError, ProtocolError
from repro.hardware.profiles import MachineProfile
from repro.obs import METRICS as _METRICS
from repro.obs import TRACER as _TRACER
from repro.simmpi.comm import CartComm
from repro.util.bitset import BitSet
from repro.util.timing import TimeBreakdown

__all__ = [
    "Exchanger",
    "ExchangeChannel",
    "ExchangeResult",
    "PlannedMessage",
    "RankMessagePlan",
    "exchange_tag",
]

_MAX_RUNS_PER_NEIGHBOR = 4096


def exchange_tag(slab_dir_index: int, run: int) -> int:
    """Stable tag for (receiver's ghost-slab direction, run index)."""
    if not 0 <= run < _MAX_RUNS_PER_NEIGHBOR:
        raise ExchangeConfigError(f"run index {run} out of range")
    return slab_dir_index * _MAX_RUNS_PER_NEIGHBOR + run


@dataclass(frozen=True)
class PlannedMessage:
    """One message of a rank's static exchange schedule.

    A pure-geometry description of what :meth:`Exchanger.exchange` will
    put on (or take off) the wire: enough for the static schedule
    verifier (:mod:`repro.check`) to rebuild the global send/recv
    multigraph without touching the fabric.

    ``ranges`` are the *storage* byte intervals ``(offset, length)`` the
    message reads from (sends) or writes into (receives) for the
    zero-copy schemes that wire brick storage directly (layout / basic /
    memmap / brickpack sections); ``None`` for schemes whose wire buffer
    is separate staging (pack / mpi_types / shift), where storage
    aliasing is structurally impossible.  ``phase`` orders barrier-
    separated sub-exchanges (Shift's per-axis rounds); schedules with a
    single phase use 0.  ``partitions`` overrides the plan-wide
    partition count for this message (``None`` = inherit), which the
    mutation harness uses to model split disagreements.
    """

    peer: int
    tag: int
    nbytes: int
    phase: int = 0
    ranges: Optional[Tuple[Tuple[int, int], ...]] = None
    partitions: Optional[int] = None


@dataclass(frozen=True)
class RankMessagePlan:
    """One rank's complete per-step message schedule.

    ``channelable`` mirrors whether :meth:`Exchanger.make_channel` can
    flatten the schedule into one persistent batch (False for Shift,
    whose intra-exchange barriers serialize the phases); ``nphases`` is
    the number of barrier-separated rounds (1 for every flat schedule).
    """

    rank: int
    method: str
    sends: Tuple[PlannedMessage, ...]
    recvs: Tuple[PlannedMessage, ...]
    channelable: bool = True
    nphases: int = 1


@dataclass
class ExchangeResult:
    """Outcome of one exchange: modelled times plus actual counters."""

    breakdown: TimeBreakdown
    messages_sent: int
    messages_received: int
    payload_bytes_sent: int
    wire_bytes_sent: int

    @property
    def padding_fraction(self) -> float:
        if self.payload_bytes_sent == 0:
            return 0.0
        return (
            self.wire_bytes_sent - self.payload_bytes_sent
        ) / self.payload_bytes_sent


class ExchangeChannel:
    """Persistent exchange channel: negotiate once, fire every step.

    The run-plan analogue of persistent MPI requests.  An exchanger's
    message plan is flattened, once, into precomputed ``(peer, tag,
    buffer)`` tuples bound to persistent buffers (storage views for the
    pack-free schemes, staging buffers for the packing ones), and each
    step replays it through the batched fabric operations -- one posting
    call, one receive drain, one send sweep -- instead of ``N``
    point-to-point request objects through the per-message chokepoint.

    The modelled :class:`ExchangeResult` is a function of the (static)
    message plan, so it too is computed once and returned by reference.
    Channels carry no wire-verification machinery: they are only built on
    an unverified fabric (the envelope/chaos path keeps the per-message
    protocol, whose sequence/CRC state lives in the fabric).

    Beyond the bulk-synchronous :meth:`exchange`, a channel can run one
    exchange *phased*: :meth:`start` packs (if the scheme packs), arms the
    partitioned persistent requests and releases every send partition;
    :meth:`complete` drains the receives, awaits send consumption and
    unpacks.  The caller computes interior stencil work between the two
    -- the compute-comm overlap the phased timestep is built on.  With
    *partitions* > 1, each flattened buffer travels as that many
    independently-released sub-region partitions (``Pready`` semantics).
    """

    __slots__ = ("comm", "method", "_fabric", "_rank", "_posts", "_recvs",
                 "_result", "_packed_bytes", "_pre", "_post", "_pre_span",
                 "_post_span", "_nmsgs", "_partitions", "_psend", "_precv",
                 "_inflight")

    def __init__(
        self,
        comm: CartComm,
        method: str,
        posts: Sequence[Tuple[int, int, np.ndarray]],
        recvs: Sequence[Tuple[int, int, np.ndarray]],
        result: ExchangeResult,
        packed_bytes: int = 0,
        pre=None,
        post=None,
        pre_span: str = "exchange.pack",
        post_span: str = "exchange.unpack",
        partitions: int = 1,
    ) -> None:
        if comm.fabric.envelope_enabled:
            raise ExchangeConfigError(
                "exchange channels require an unverified fabric; the"
                " envelope protocol is per-message"
            )
        if partitions < 1:
            raise ExchangeConfigError("partitions must be >= 1")
        for _, _, buf in list(posts) + list(recvs):
            if not buf.flags.c_contiguous:
                raise ExchangeConfigError(
                    "channel buffers must be C-contiguous"
                )
        self.comm = comm
        self.method = method
        self._fabric = comm.fabric
        self._rank = comm.rank
        self._posts = list(posts)
        self._recvs = list(recvs)
        self._result = result
        self._packed_bytes = int(packed_bytes)
        self._pre = pre
        self._post = post
        self._pre_span = pre_span
        self._post_span = post_span
        self._nmsgs = len(self._posts)
        self._partitions = int(partitions)
        self._psend = None
        self._precv = None
        self._inflight = False
        # Register both halves of the byte split with the fabric now, so
        # a cross-rank disagreement (byte counts or partition bounds)
        # surfaces at negotiation as a typed SplitMismatchError instead
        # of a DeadlockError on the first wait.
        self._fabric.negotiate_channel(
            self._rank, self._posts, self._recvs, self._partitions
        )

    def exchange(self) -> ExchangeResult:
        """Re-fire the negotiated plan; returns the precomputed result."""
        if self._inflight:
            raise ProtocolError(
                "channel has a phased exchange in flight; complete() it"
                " before exchanging"
            )
        fabric = self._fabric
        rank = self._rank
        if self._pre is not None:
            with _TRACER.span(self._pre_span, rank=rank, method=self.method):
                self._pre()
        with _TRACER.span("exchange.post", rank=rank, method=self.method):
            entries = fabric.post_send_batch(rank, self._posts)
        with _TRACER.span("exchange.wait", rank=rank, method=self.method):
            fabric.complete_recv_batch(rank, self._recvs)
            fabric.wait_send_batch(entries, rank)
        if self._post is not None:
            with _TRACER.span(self._post_span, rank=rank, method=self.method):
                self._post()
        if _METRICS.enabled:
            _METRICS.count("exchange.bytes_packed", self._packed_bytes,
                           rank=rank)
            _METRICS.count("exchange.messages", self._nmsgs, rank=rank)
        return self._result

    # ------------------------------------------------------------------
    # Phased exchange: start -> (caller's interior compute) -> complete
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Pack, arm the persistent partitioned requests, release sends.

        Returns as soon as every send partition is on the wire; nothing
        has been received yet.  The caller may compute any stencil work
        that reads no ghost data before calling :meth:`complete`.
        """
        if self._inflight:
            raise ProtocolError(
                "channel already started; complete() the in-flight"
                " exchange first"
            )
        rank = self._rank
        if self._pre is not None:
            with _TRACER.span(self._pre_span, rank=rank, method=self.method):
                self._pre()
        if self._psend is None:
            # Negotiated lazily on first phased use: the same channel can
            # serve bulk-synchronous runs without ever building requests.
            fabric = self._fabric
            self._psend = fabric.send_init(rank, self._posts, self._partitions)
            self._precv = fabric.recv_init(rank, self._recvs, self._partitions)
        with _TRACER.span("exchange.start", rank=rank, method=self.method):
            self._precv.start()
            self._psend.start()
            self._psend.pready_all()
        self._inflight = True

    def complete(self) -> ExchangeResult:
        """Drain every receive partition, await send consumption, unpack."""
        if not self._inflight:
            raise ProtocolError("complete() without a start()ed exchange")
        rank = self._rank
        with _TRACER.span("exchange.complete", rank=rank, method=self.method):
            self._precv.complete()
            self._psend.wait()
        self._inflight = False
        if self._post is not None:
            with _TRACER.span(self._post_span, rank=rank, method=self.method):
                self._post()
        if _METRICS.enabled:
            _METRICS.count("exchange.bytes_packed", self._packed_bytes,
                           rank=rank)
            _METRICS.count("exchange.messages", self._nmsgs, rank=rank)
        return self._result


class Exchanger(abc.ABC):
    """One rank's ghost-zone exchange engine.

    Subclasses precompute their message plan at construction; ``exchange``
    performs the data movement and returns an :class:`ExchangeResult`.
    """

    #: Name used by benchmark tables.
    method = "abstract"

    def __init__(self, comm: CartComm, profile: MachineProfile) -> None:
        self.comm = comm
        self.profile = profile

    @abc.abstractmethod
    def exchange(self) -> ExchangeResult:
        """Run one ghost-zone exchange."""

    @abc.abstractmethod
    def send_specs(self) -> List[MessageSpec]:
        """The modelled send schedule of this rank."""

    def message_plan(self) -> RankMessagePlan:
        """This rank's static per-step message schedule, from geometry.

        The introspection hook of the static verifier: every executable
        method implements it so :mod:`repro.check` can rebuild the
        global send/recv multigraph (peers, tags, byte counts, storage
        ranges) without allocating wire buffers or touching the fabric.
        """
        raise NotImplementedError(
            f"{type(self).__name__} does not expose a static message plan"
        )

    def make_channel(self, partitions: int = 1) -> Optional[ExchangeChannel]:
        """Persistent-channel form of this exchanger's plan.

        ``None`` means the scheme cannot be replayed as one batch and the
        caller keeps the per-step :meth:`exchange` path.  Verified
        (envelope) fabrics are detected *here*, once, rather than
        surfacing later as a batch-path ``RuntimeError`` from the fabric:
        the envelope protocol is per-message, so channel negotiation
        falls back cleanly regardless of the subclass.  *partitions* is
        the per-message partition count phased exchanges will use.
        """
        if self.comm.fabric.envelope_enabled:
            return None
        return self._build_channel(int(partitions))

    def _build_channel(self, partitions: int) -> Optional[ExchangeChannel]:
        """Subclass hook: build the channel (fabric already vetted).

        ``None`` (the default) marks schemes with intra-exchange barriers
        (Shift) that cannot flatten into one persistent batch.
        """
        return None

    # ------------------------------------------------------------------
    # Shared modelled-time helpers (thin wrappers over exchange.costs)
    # ------------------------------------------------------------------
    def _network_times(
        self, sends: Sequence[MessageSpec], recvs: Sequence[MessageSpec]
    ) -> Tuple[float, float]:
        """(call, wait) charged by the plain network model."""
        from repro.exchange.costs import network_times

        return network_times(self.profile.network, sends, recvs)

    def _pack_cost(self, specs: Sequence[MessageSpec]) -> float:
        """Application-level pack (or unpack) cost of a message batch."""
        from repro.exchange.costs import pack_cost

        return pack_cost(self.profile, specs)

    def _datatype_cost(self, specs: Sequence[MessageSpec]) -> float:
        """In-library derived-datatype processing cost of a batch."""
        from repro.exchange.costs import datatype_cost

        return datatype_cost(self.profile, specs)
