"""Exchanger interface and shared modelled-timing helpers.

Every exchanger really moves the data (over :mod:`repro.simmpi`) *and*
returns a modelled :class:`~repro.util.timing.TimeBreakdown` for the
exchange, split into the artifact's phases: ``pack`` (on-node copies the
scheme performs), ``call`` (posting MPI operations), ``wait`` (wire time
plus any in-library processing) and ``move`` (explicit CPU-GPU staging,
zero on CPU paths).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.exchange.schedule import MessageSpec
from repro.hardware.profiles import MachineProfile
from repro.simmpi.comm import CartComm
from repro.util.bitset import BitSet
from repro.util.timing import TimeBreakdown

__all__ = ["Exchanger", "ExchangeResult", "exchange_tag"]

_MAX_RUNS_PER_NEIGHBOR = 4096


def exchange_tag(slab_dir_index: int, run: int) -> int:
    """Stable tag for (receiver's ghost-slab direction, run index)."""
    if not 0 <= run < _MAX_RUNS_PER_NEIGHBOR:
        raise ValueError(f"run index {run} out of range")
    return slab_dir_index * _MAX_RUNS_PER_NEIGHBOR + run


@dataclass
class ExchangeResult:
    """Outcome of one exchange: modelled times plus actual counters."""

    breakdown: TimeBreakdown
    messages_sent: int
    messages_received: int
    payload_bytes_sent: int
    wire_bytes_sent: int

    @property
    def padding_fraction(self) -> float:
        if self.payload_bytes_sent == 0:
            return 0.0
        return (
            self.wire_bytes_sent - self.payload_bytes_sent
        ) / self.payload_bytes_sent


class Exchanger(abc.ABC):
    """One rank's ghost-zone exchange engine.

    Subclasses precompute their message plan at construction; ``exchange``
    performs the data movement and returns an :class:`ExchangeResult`.
    """

    #: Name used by benchmark tables.
    method = "abstract"

    def __init__(self, comm: CartComm, profile: MachineProfile) -> None:
        self.comm = comm
        self.profile = profile

    @abc.abstractmethod
    def exchange(self) -> ExchangeResult:
        """Run one ghost-zone exchange."""

    @abc.abstractmethod
    def send_specs(self) -> List[MessageSpec]:
        """The modelled send schedule of this rank."""

    # ------------------------------------------------------------------
    # Shared modelled-time helpers (thin wrappers over exchange.costs)
    # ------------------------------------------------------------------
    def _network_times(
        self, sends: Sequence[MessageSpec], recvs: Sequence[MessageSpec]
    ) -> Tuple[float, float]:
        """(call, wait) charged by the plain network model."""
        from repro.exchange.costs import network_times

        return network_times(self.profile.network, sends, recvs)

    def _pack_cost(self, specs: Sequence[MessageSpec]) -> float:
        """Application-level pack (or unpack) cost of a message batch."""
        from repro.exchange.costs import pack_cost

        return pack_cost(self.profile, specs)

    def _datatype_cost(self, specs: Sequence[MessageSpec]) -> float:
        """In-library derived-datatype processing cost of a batch."""
        from repro.exchange.costs import datatype_cost

        return datatype_cost(self.profile, specs)
