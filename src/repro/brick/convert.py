"""Conversion between lexicographic arrays and brick storage.

The extended array of a subdomain has shape ``(E_D + 2g, ..., E_1 + 2g)``
in numpy axis order (axis 1 last/fastest) and covers the ghost shell.  A
single precomputed permutation maps every element of that array to its
``(slot, within-brick offset)`` flat position in storage, so conversion is
one vectorized fancy-indexing gather/scatter.

These converters are the test oracle's bridge: reference stencils run on
plain arrays, brick kernels on storage, and the permutation proves them
equal element-for-element.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Optional, Tuple

import numpy as np

from repro.obs import METRICS as _METRICS
from repro.obs import TRACER as _TRACER

if TYPE_CHECKING:  # pragma: no cover
    from repro.brick.decomp import BrickDecomp, SlotAssignment
    from repro.brick.storage import BrickStorage

__all__ = [
    "extended_shape",
    "element_permutation",
    "extended_to_bricks",
    "bricks_to_extended",
    "conversion_scratch",
]

def extended_shape(decomp: "BrickDecomp") -> Tuple[int, ...]:
    """Numpy shape of the subdomain-plus-ghost array (axis D first)."""
    return tuple(
        e + 2 * decomp.ghost_elems for e in reversed(decomp.extent)
    )


def element_permutation(
    decomp: "BrickDecomp", assignment: "SlotAssignment", fld: int = 0
) -> np.ndarray:
    """Flat storage index of every element of the extended array.

    Returned array has :func:`extended_shape`; entry ``[cD, ..., c1]`` is
    the index into ``storage.data.reshape(-1)`` holding that element (for
    interleaved field *fld*).
    """
    # Cache on the decomp instance itself: a module-level id()-keyed cache
    # would hand a *new* decomp the permutation of a garbage-collected one
    # whose id was reused.
    cache: Dict[Tuple[int, int], np.ndarray] = decomp.__dict__.setdefault(
        "_element_perm_cache", {}
    )
    key = (assignment.alignment, fld)
    cached = cache.get(key)
    if cached is not None:
        return cached
    if not 0 <= fld < decomp.nfields:
        raise ValueError(f"field {fld} outside 0..{decomp.nfields - 1}")

    ndim = decomp.ndim
    g = decomp.ghost_elems
    # Per-axis element coordinate decomposition (axis order 1..D).
    grid_axes = []  # brick-grid index along each axis (0 .. n+2W-1)
    within_axes = []  # within-brick offset along each axis
    for axis in range(ndim):
        bd = decomp.brick_dim[axis]
        n_ext = decomp.extent[axis] + 2 * g
        e = np.arange(n_ext)
        grid_axes.append(e // bd)
        within_axes.append(e % bd)

    # slot per element: expand grid_index through per-axis grid coords.
    # grid_index is numpy-ordered (axis D first); use open meshes.
    mesh = np.ix_(*(grid_axes[axis] for axis in range(ndim - 1, -1, -1)))
    slots = assignment.grid_index[mesh]  # extended shape
    if (slots < 0).any():
        raise AssertionError("extended array element fell outside the grid")

    # within-brick flat offset (axis 1 fastest), broadcast over axes.
    offset = np.zeros((1,) * ndim, dtype=np.int64)
    stride = 1
    for axis in range(ndim):
        shape = [1] * ndim
        shape[ndim - 1 - axis] = within_axes[axis].size  # numpy axis position
        offset = offset + within_axes[axis].reshape(shape) * stride
        stride *= decomp.brick_dim[axis]

    field_base = fld * decomp.brick_volume
    perm = slots * decomp.brick_elems + field_base + offset
    cache[key] = perm
    return perm


def extended_to_bricks(
    arr: np.ndarray,
    decomp: "BrickDecomp",
    storage: "BrickStorage",
    assignment: "SlotAssignment",
    fld: int = 0,
) -> None:
    """Scatter an extended array into brick storage (one fancy index)."""
    shape = extended_shape(decomp)
    if arr.shape != shape:
        raise ValueError(f"expected extended array of shape {shape}, got {arr.shape}")
    with _TRACER.span("convert.extended_to_bricks"):
        perm = element_permutation(decomp, assignment, fld)
        storage.data.reshape(-1)[perm.reshape(-1)] = arr.reshape(-1)
    if _METRICS.enabled:
        _METRICS.count("convert.elements", int(arr.size))


def bricks_to_extended(
    decomp: "BrickDecomp",
    storage: "BrickStorage",
    assignment: "SlotAssignment",
    fld: int = 0,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Gather brick storage back into an extended array.

    Pass *out* (e.g. :func:`conversion_scratch`) to reuse a destination
    across repeated conversions instead of allocating a fresh array; the
    gather then runs as one ``np.take`` straight into it.
    """
    with _TRACER.span("convert.bricks_to_extended"):
        perm = element_permutation(decomp, assignment, fld)
        if _METRICS.enabled:
            _METRICS.count("convert.elements", int(perm.size))
        if out is None:
            return storage.data.reshape(-1)[perm]
        if out.shape != perm.shape:
            raise ValueError(
                f"expected extended array of shape {perm.shape}, got {out.shape}"
            )
        if out.dtype != storage.dtype:
            raise ValueError(
                f"scratch dtype {out.dtype} != storage dtype {storage.dtype}"
            )
        np.take(storage.data.reshape(-1), perm, out=out)
        return out


def conversion_scratch(decomp: "BrickDecomp", dtype=None) -> np.ndarray:
    """Reusable extended-shape scratch array, cached on the decomp.

    One array per (decomp, dtype); callers that convert repeatedly (the
    executed driver, benchmarks) avoid re-allocating the whole extended
    domain every time.  Contents are whatever the last conversion left --
    callers own the data discipline, and must not share one decomp's
    scratch across threads.
    """
    cache: Dict[str, np.ndarray] = decomp.__dict__.setdefault(
        "_convert_scratch_cache", {}
    )
    dt = np.dtype(dtype) if dtype is not None else decomp.dtype
    scratch = cache.get(dt.str)
    if scratch is None:
        scratch = np.empty(extended_shape(decomp), dtype=dt)
        cache[dt.str] = scratch
    return scratch
