"""Element-level Brick accessor (the paper's Figure 6 interface).

``Brick(info, storage)[slot][i1, i2, i3]`` reads one element of a brick;
indices may run outside ``[0, brick_dim)`` by up to one brick per axis, in
which case the access is transparently redirected through the adjacency to
the neighboring brick -- the property that makes stencil code
layout-agnostic.

This accessor is for clarity and testing, not speed; the vectorized
kernels in :mod:`repro.stencil.brick_kernels` are the production path.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.brick.info import BrickInfo, direction_index
from repro.brick.storage import BrickStorage
from repro.util.indexing import ravel_coord

__all__ = ["Brick", "BrickView"]


class Brick:
    """Storage + logical layout, addressed by brick slot then element."""

    def __init__(
        self, info: BrickInfo, storage: BrickStorage, field_offset: int = 0
    ) -> None:
        if storage.brick_elems % np.prod(info.brick_dim):
            raise ValueError("storage brick size incompatible with BrickInfo")
        if field_offset < 0 or field_offset + np.prod(info.brick_dim) > storage.brick_elems:
            raise ValueError("field offset outside the brick")
        self.info = info
        self.storage = storage
        self.field_offset = int(field_offset)

    def __getitem__(self, slot: int) -> "BrickView":
        if not 0 <= slot < self.storage.nslots:
            raise IndexError(f"slot {slot} outside storage of {self.storage.nslots}")
        return BrickView(self, int(slot))

    def resolve(self, slot: int, index: Sequence[int]) -> Tuple[int, int]:
        """Map a possibly out-of-brick element index to (slot, flat offset)."""
        bd = self.info.brick_dim
        if len(index) != self.info.ndim:
            raise IndexError(
                f"need {self.info.ndim} indices (axis 1 first), got {len(index)}"
            )
        shift = []
        local = []
        for i, b in zip(index, bd):
            i = int(i)
            if i < -b or i >= 2 * b:
                raise IndexError(
                    f"index {i} reaches beyond the adjacent brick (dim {b})"
                )
            if i < 0:
                shift.append(-1)
                local.append(i + b)
            elif i >= b:
                shift.append(1)
                local.append(i - b)
            else:
                shift.append(0)
                local.append(i)
        if any(shift):
            slot = int(self.info.adjacency[slot, direction_index(shift)])
            if slot < 0:
                raise IndexError(
                    f"access leaves the brick grid (direction {tuple(shift)})"
                )
        return slot, self.field_offset + ravel_coord(local, bd)

    def get(self, slot: int, index: Sequence[int]) -> float:
        s, off = self.resolve(slot, index)
        return self.storage.data[s, off]

    def set(self, slot: int, index: Sequence[int], value: float) -> None:
        s, off = self.resolve(slot, index)
        self.storage.data[s, off] = value


class BrickView:
    """One brick of a :class:`Brick`, indexable by element tuple."""

    __slots__ = ("_brick", "_slot")

    def __init__(self, brick: Brick, slot: int) -> None:
        self._brick = brick
        self._slot = slot

    def __getitem__(self, index) -> float:
        if not isinstance(index, tuple):
            index = (index,)
        return self._brick.get(self._slot, index)

    def __setitem__(self, index, value) -> None:
        if not isinstance(index, tuple):
            index = (index,)
        self._brick.set(self._slot, index, value)
