"""Subdomain decomposition into interior / surface / ghost brick sections.

Everything the communication layer needs falls out of one observation: in
grid-of-bricks coordinates, the interior, every surface region ``r(S)`` and
every ghost *subsection* are axis-aligned boxes.

* The **interior** is the box ``[W, n-W)`` per axis (``W`` = ghost width in
  bricks, ``n`` = subdomain extent in bricks).
* **Surface region** ``r(S)``: per axis, the low band ``[0, W)`` if
  ``S_i = -1``, the high band ``[n-W, n)`` if ``S_i = +1``, else the middle
  ``[W, n-W)``.
* **Ghost subsection** ``(T, S')``: the image of the *sender's* surface
  region ``r(S')`` (``S'`` a superset of ``opposite(T)``) shifted by
  ``T * n`` -- the exact bricks neighbor ``N(T)``'s region lands in.

Physical slot order is: interior, then surface regions in the layout's
order, then ghost subsections grouped by neighbor and ordered *by the
sender's layout* within each group -- so that every message of the
pack-free exchange is a contiguous slot range on both ends.

Section starts can be aligned to a slot multiple (``alignment`` > 1):
that is how ``mmap_alloc`` keeps regions page-aligned for MemMap, at the
price of phantom padding slots (the Table 2 network-transfer waste).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.brick.info import BrickInfo
from repro.brick.storage import BrickStorage
from repro.layout.order import surface_order, validate_order
from repro.layout.regions import all_regions, sending_regions
from repro.util.bitset import BitSet
from repro.util.indexing import ceil_div

__all__ = ["Section", "SlotAssignment", "BrickDecomp"]

_COORD_SENTINEL = np.iinfo(np.int32).min


@dataclass(frozen=True)
class Section:
    """A contiguous slot range holding the bricks of one box.

    ``kind`` is ``"interior"``, ``"surface"`` or ``"ghost"``.  For surface
    sections ``region`` names ``r(S)``; for ghost sections ``region`` is
    the *sender's* region ``S'`` and ``neighbor`` the slab direction ``T``
    (the neighbor the data comes from).
    """

    kind: str
    start: int
    nbricks: int
    box_lo: Tuple[int, ...]  # signed brick-grid coordinates, inclusive
    box_extent: Tuple[int, ...]
    region: Optional[BitSet] = None
    neighbor: Optional[BitSet] = None
    padded_nbricks: int = 0  # slots reserved including alignment padding

    @property
    def end(self) -> int:
        return self.start + self.nbricks

    @property
    def padded_end(self) -> int:
        return self.start + self.padded_nbricks


@dataclass
class SlotAssignment:
    """Physical slot layout for one alignment choice."""

    alignment: int
    total_slots: int
    sections: List[Section]
    interior: Section
    surface: Dict[BitSet, Section]
    ghost: Dict[Tuple[BitSet, BitSet], Section]  # keyed (neighbor T, sender region S')
    grid_index: np.ndarray  # numpy-axis-ordered grid -> slot
    slot_coords: np.ndarray  # (total_slots, ndim) signed coords; sentinel = padding

    @property
    def logical_bricks(self) -> int:
        return sum(s.nbricks for s in self.sections)

    @property
    def padding_slots(self) -> int:
        return self.total_slots - self.logical_bricks

    def is_padding(self, slot: int) -> bool:
        return self.slot_coords[slot, 0] == _COORD_SENTINEL


class BrickDecomp:
    """Decompose one rank's subdomain for pack-free ghost-zone exchange.

    Parameters
    ----------
    extent:
        Subdomain size in elements per axis (axis 1 first).
    brick_dim:
        Brick size in elements per axis; must divide *extent*.
    ghost_elems:
        Ghost-zone width in elements; must be a positive multiple of the
        brick dimension on every axis (use ghost-cell expansion to widen a
        thin ghost zone to a brick multiple -- paper Section 2).
    layout:
        Surface-region order; defaults to the packaged optimal order for
        the dimensionality.
    dtype, nfields:
        Element type and interleaved field count per brick.
    """

    def __init__(
        self,
        extent: Sequence[int],
        brick_dim: Sequence[int],
        ghost_elems: int,
        layout: Optional[Sequence[BitSet]] = None,
        dtype=np.float64,
        nfields: int = 1,
    ) -> None:
        self.extent = tuple(int(e) for e in extent)
        self.ndim = len(self.extent)
        if self.ndim < 1:
            raise ValueError("extent must have at least one axis")
        if isinstance(brick_dim, int):
            brick_dim = (brick_dim,) * self.ndim
        self.brick_dim = tuple(int(b) for b in brick_dim)
        if len(self.brick_dim) != self.ndim:
            raise ValueError("brick_dim dimensionality mismatch")
        if any(b <= 0 for b in self.brick_dim):
            raise ValueError("brick dimensions must be positive")
        if any(e % b for e, b in zip(self.extent, self.brick_dim)):
            raise ValueError(
                f"brick dims {self.brick_dim} must divide extent {self.extent}"
            )
        if ghost_elems <= 0:
            raise ValueError("ghost width must be positive")
        if any(ghost_elems % b for b in self.brick_dim):
            raise ValueError(
                f"ghost width {ghost_elems} must be a multiple of the brick"
                f" dimension on every axis {self.brick_dim}; widen it with"
                " ghost-cell expansion"
            )
        self.ghost_elems = int(ghost_elems)
        #: subdomain extent in bricks per axis
        self.grid = tuple(e // b for e, b in zip(self.extent, self.brick_dim))
        #: ghost/surface width in bricks (same on every axis)
        self.width = ghost_elems // self.brick_dim[0]
        widths = {ghost_elems // b for b in self.brick_dim}
        if len(widths) != 1:
            raise ValueError(
                "anisotropic bricks must still give one ghost width in bricks"
            )
        if any(n < 2 * self.width for n in self.grid):
            raise ValueError(
                f"subdomain of {self.grid} bricks too small for surface"
                f" width {self.width} bricks per side"
            )
        if nfields <= 0:
            raise ValueError("nfields must be positive")
        self.nfields = int(nfields)
        self.dtype = np.dtype(dtype)
        self.brick_volume = math.prod(self.brick_dim)
        self.brick_elems = self.brick_volume * self.nfields
        self.brick_bytes = self.brick_elems * self.dtype.itemsize

        if layout is None:
            layout = surface_order(self.ndim)
        self.layout: List[BitSet] = list(layout)
        self.messages_per_exchange = validate_order(self.layout, self.ndim)
        self._assignments: Dict[int, SlotAssignment] = {}

    # ------------------------------------------------------------------
    # Geometry
    # ------------------------------------------------------------------
    def region_box(self, region: BitSet) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        """Signed-coordinate (lo, extent) box of surface region ``r(region)``."""
        lo, ext = [], []
        for axis in range(self.ndim):
            n, w = self.grid[axis], self.width
            d = region.direction(axis + 1)
            if d < 0:
                lo.append(0)
                ext.append(w)
            elif d > 0:
                lo.append(n - w)
                ext.append(w)
            else:
                lo.append(w)
                ext.append(n - 2 * w)
        return tuple(lo), tuple(ext)

    def interior_box(self) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        lo = tuple(self.width for _ in range(self.ndim))
        ext = tuple(n - 2 * self.width for n in self.grid)
        return lo, ext

    def ghost_subsection_box(
        self, neighbor: BitSet, sender_region: BitSet
    ) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
        """Box where ``N(neighbor)``'s region ``r(sender_region)`` lands.

        The sender's region box shifted by ``neighbor * n``; valid only
        when ``sender_region`` is a superset of ``opposite(neighbor)``.
        """
        if not neighbor.opposite().issubset(sender_region):
            raise ValueError(
                f"region {sender_region.notation()} is not sent to the"
                f" neighbor opposite {neighbor.notation()}"
            )
        lo, ext = self.region_box(sender_region)
        tvec = neighbor.to_vector(self.ndim)
        lo = tuple(l + t * n for l, t, n in zip(lo, tvec, self.grid))
        return lo, ext

    # ------------------------------------------------------------------
    # Slot assignment
    # ------------------------------------------------------------------
    def assignment(self, alignment: int = 1) -> SlotAssignment:
        """Slot layout with section starts aligned to *alignment* slots."""
        if alignment <= 0:
            raise ValueError("alignment must be positive")
        cached = self._assignments.get(alignment)
        if cached is not None:
            return cached

        full = tuple(n + 2 * self.width for n in self.grid)
        # numpy arrays index [axis_D, ..., axis_1] (axis 1 fastest/last)
        np_shape = tuple(reversed(full))
        grid_index = np.full(np_shape, -1, dtype=np.int64)

        plan: List[Tuple[str, Optional[BitSet], Optional[BitSet], tuple, tuple]] = []
        plan.append(("interior", None, None) + self.interior_box())
        for region in self.layout:
            plan.append(("surface", region, None) + self.region_box(region))
        for neighbor in self.layout:
            opp = neighbor.opposite()
            wanted = {
                s for s in sending_regions(opp, self.ndim)
            }  # sender regions covering us
            for sender_region in self.layout:
                if sender_region in wanted:
                    plan.append(
                        ("ghost", sender_region, neighbor)
                        + self.ghost_subsection_box(neighbor, sender_region)
                    )

        sections: List[Section] = []
        cursor = 0
        coords_blocks: List[np.ndarray] = []
        for kind, region, neighbor, lo, ext in plan:
            nb = math.prod(ext)
            aligned_start = ceil_div(cursor, alignment) * alignment
            if kind == "interior":
                # The interior needs no alignment of its own; it starts the
                # buffer.  (cursor == 0 is always aligned.)
                aligned_start = cursor
            if nb == 0:
                sections.append(
                    Section(kind, aligned_start, 0, lo, ext, region, neighbor, 0)
                )
                continue
            start = aligned_start
            padded = ceil_div(nb, alignment) * alignment
            sections.append(
                Section(kind, start, nb, lo, ext, region, neighbor, padded)
            )
            # Fill grid_index for this box: slots are consecutive with
            # axis 1 fastest, which is exactly numpy C-order over the
            # reversed-axis slice.
            slices = tuple(
                slice(l + self.width, l + self.width + e)
                for l, e in zip(reversed(lo), reversed(ext))
            )
            grid_index[slices] = np.arange(start, start + nb).reshape(
                tuple(reversed(ext))
            )
            # Signed coordinates of each slot in the box, same ordering.
            mesh = np.meshgrid(
                *(np.arange(l, l + e) for l, e in zip(reversed(lo), reversed(ext))),
                indexing="ij",
            )
            block = np.stack(
                [m.reshape(-1) for m in reversed(mesh)], axis=1
            )  # (nb, ndim) with axis 1 first
            pad_rows = padded - nb
            if pad_rows or start != cursor:
                lead = start - cursor
                if lead:
                    coords_blocks.append(
                        np.full((lead, self.ndim), _COORD_SENTINEL, dtype=np.int64)
                    )
                coords_blocks.append(block)
                if pad_rows:
                    coords_blocks.append(
                        np.full((pad_rows, self.ndim), _COORD_SENTINEL, dtype=np.int64)
                    )
                cursor = start + padded
            else:
                coords_blocks.append(block)
                cursor = start + nb

        total = ceil_div(cursor, alignment) * alignment
        if total > cursor:
            coords_blocks.append(
                np.full((total - cursor, self.ndim), _COORD_SENTINEL, dtype=np.int64)
            )
        slot_coords = (
            np.concatenate(coords_blocks, axis=0)
            if coords_blocks
            else np.empty((0, self.ndim), dtype=np.int64)
        )
        assert slot_coords.shape[0] == total, (slot_coords.shape, total)

        interior = next(s for s in sections if s.kind == "interior")
        surface = {s.region: s for s in sections if s.kind == "surface"}
        ghost = {
            (s.neighbor, s.region): s for s in sections if s.kind == "ghost"
        }
        out = SlotAssignment(
            alignment=alignment,
            total_slots=total,
            sections=sections,
            interior=interior,
            surface=surface,
            ghost=ghost,
            grid_index=grid_index,
            slot_coords=slot_coords,
        )
        self._assignments[alignment] = out
        return out

    def alignment_for_page(self, page_size: int) -> int:
        """Slots per aligned unit so section starts are page-aligned."""
        if page_size <= 0:
            raise ValueError("page_size must be positive")
        return math.lcm(self.brick_bytes, page_size) // self.brick_bytes

    # ------------------------------------------------------------------
    # Allocation (paper Figure 7)
    # ------------------------------------------------------------------
    def allocate(self, dtype=None) -> Tuple[BrickStorage, SlotAssignment]:
        """Plain storage for Layout-mode exchange (no padding)."""
        asn = self.assignment(1)
        storage = BrickStorage.allocate(
            asn.total_slots, self.brick_elems, dtype or self.dtype
        )
        return storage, asn

    def mmap_alloc(
        self, page_size: int = 4096, dtype=None
    ) -> Tuple[BrickStorage, SlotAssignment]:
        """Mapping-capable storage with page-aligned regions (MemMap)."""
        asn = self.assignment(self.alignment_for_page(page_size))
        storage = BrickStorage.mmap_alloc(
            asn.total_slots, self.brick_elems, dtype or self.dtype, page_size
        )
        return storage, asn

    # ------------------------------------------------------------------
    def brick_info(self, assignment: Optional[SlotAssignment] = None) -> BrickInfo:
        """Adjacency metadata for stencil computation over this layout."""
        asn = assignment or self.assignment(1)
        return BrickInfo.from_assignment(self, asn)

    def compute_slots(self, assignment: Optional[SlotAssignment] = None) -> np.ndarray:
        """Slots the stencil is applied to: interior plus surface bricks."""
        asn = assignment or self.assignment(1)
        ranges = [np.arange(asn.interior.start, asn.interior.end)]
        for region in self.layout:
            s = asn.surface[region]
            ranges.append(np.arange(s.start, s.end))
        return np.concatenate(ranges)
