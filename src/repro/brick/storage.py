"""Flat brick storage over an arena.

Bricks occupy consecutive *slots* of ``brick_bytes`` each.  Slot indices
include any phantom padding slots the MemMap allocator inserted to keep
region starts page-aligned; padding slots hold no data and are never
referenced by the adjacency or the exchange schedules.
"""

from __future__ import annotations

from typing import Sequence, Tuple

import numpy as np

from repro.vmem import NumpyArena, default_arena
from repro.vmem.arena import Arena

__all__ = ["BrickStorage"]


class BrickStorage:
    """``nslots`` bricks of ``brick_elems`` elements over an *arena*.

    Parameters
    ----------
    arena:
        Backing byte buffer.  :class:`~repro.vmem.NumpyArena` for plain
        (Layout-mode) storage; a mapping-capable arena for MemMap mode.
    nslots:
        Number of brick slots, including padding slots.
    brick_elems:
        Elements per brick (brick volume times interleaved field count).
    dtype:
        Element dtype.
    """

    def __init__(
        self, arena: Arena, nslots: int, brick_elems: int, dtype=np.float64
    ) -> None:
        if nslots <= 0 or brick_elems <= 0:
            raise ValueError("nslots and brick_elems must be positive")
        self.arena = arena
        self.nslots = int(nslots)
        self.brick_elems = int(brick_elems)
        self.dtype = np.dtype(dtype)
        self.brick_bytes = self.brick_elems * self.dtype.itemsize
        need = self.nslots * self.brick_bytes
        if arena.nbytes < need:
            raise ValueError(
                f"arena of {arena.nbytes} bytes too small for {nslots} slots"
                f" of {self.brick_bytes} bytes"
            )
        #: (nslots, brick_elems) view of the arena -- the brick data.
        self.data = (
            arena.buffer[:need].view(self.dtype).reshape(self.nslots, self.brick_elems)
        )

    # ------------------------------------------------------------------
    @classmethod
    def allocate(
        cls, nslots: int, brick_elems: int, dtype=np.float64, page_size: int = 4096
    ) -> "BrickStorage":
        """Plain allocation (the paper's ``BrickInfo::allocate``)."""
        dtype = np.dtype(dtype)
        nbytes = -(-nslots * brick_elems * dtype.itemsize // page_size) * page_size
        return cls(NumpyArena(nbytes, page_size), nslots, brick_elems, dtype)

    @classmethod
    def from_view(
        cls, view, nslots: int, brick_elems: int, dtype=np.float64
    ) -> "BrickStorage":
        """Storage whose slots live in a stitched view rather than a
        plain arena -- used by the intra-node aliased-halo grids, where a
        subdomain's ghost slots are mappings of its neighbor's surface.

        The returned storage cannot build further views (``can_map`` is
        False); callers keep the view (and its arena) alive.
        """
        dtype = np.dtype(dtype)
        need = nslots * brick_elems * dtype.itemsize
        if view.nbytes < need:
            raise ValueError(
                f"view of {view.nbytes} bytes too small for {nslots} slots"
            )
        self = cls.__new__(cls)
        self.arena = None
        self.nslots = int(nslots)
        self.brick_elems = int(brick_elems)
        self.dtype = dtype
        self.brick_bytes = brick_elems * dtype.itemsize
        self.view = view
        self.data = view.array(dtype)[: nslots * brick_elems].reshape(
            nslots, brick_elems
        )
        return self

    @classmethod
    def mmap_alloc(
        cls, nslots: int, brick_elems: int, dtype=np.float64, page_size: int = 4096
    ) -> "BrickStorage":
        """Mapping-capable allocation (the paper's ``mmap_alloc``).

        Uses a real memfd-backed arena when the platform allows, else the
        simulated page-table arena -- both support ``make_view``.
        """
        dtype = np.dtype(dtype)
        nbytes = nslots * brick_elems * dtype.itemsize
        return cls(default_arena(nbytes, page_size), nslots, brick_elems, dtype)

    # ------------------------------------------------------------------
    @property
    def can_map(self) -> bool:
        """True when stitched views can be built over this storage."""
        return self.arena is not None and not isinstance(self.arena, NumpyArena)

    def slot_range_bytes(self, start_slot: int, nslots: int) -> Tuple[int, int]:
        """Byte ``(offset, length)`` of a contiguous slot range."""
        if not 0 <= start_slot <= start_slot + nslots <= self.nslots:
            raise IndexError(
                f"slot range ({start_slot}, {nslots}) outside storage of"
                f" {self.nslots} slots"
            )
        return start_slot * self.brick_bytes, nslots * self.brick_bytes

    def slot_view(self, start_slot: int, nslots: int) -> np.ndarray:
        """Contiguous element view of a slot range (zero-copy)."""
        off, length = self.slot_range_bytes(start_slot, nslots)
        return self.data.reshape(-1)[
            start_slot * self.brick_elems : (start_slot + nslots) * self.brick_elems
        ]

    def slot_bytes(self, start_slot: int, nslots: int) -> np.ndarray:
        """Zero-copy ``uint8`` view of a slot range's raw bytes.

        Routed through the arena when there is one (the checkpoint
        writer snapshots arena content directly); view-backed storage
        falls back to its element view.
        """
        off, length = self.slot_range_bytes(start_slot, nslots)
        if self.arena is not None:
            return self.arena.read_bytes(off, length)
        return self.slot_view(start_slot, nslots).view(np.uint8)

    def load_slot_bytes(self, start_slot: int, nslots: int, data) -> None:
        """Overwrite a slot range with raw bytes (checkpoint restore)."""
        target = self.slot_bytes(start_slot, nslots)
        src = np.frombuffer(data, dtype=np.uint8)
        if src.nbytes != target.nbytes:
            raise ValueError(
                f"slot range ({start_slot}, {nslots}) is {target.nbytes}"
                f" bytes; got {src.nbytes}"
            )
        target[:] = src

    def make_view(self, chunks: Sequence[Tuple[int, int]]):
        """Stitch page-aligned byte ranges into a contiguous view."""
        if self.arena is None:
            raise NotImplementedError(
                "view-backed storage cannot build further views"
            )
        return self.arena.make_view(chunks)

    def fill(self, value: float) -> None:
        self.data[:] = value

    def close(self) -> None:
        if self.arena is not None:
            self.arena.close()
