"""BrickInfo: the logical organisation of bricks (adjacency list).

The brick library stores the logical neighbor relation of every brick in
an adjacency list (paper Section 6): entry ``adjacency[slot, dir]`` is the
physical slot of the brick one step in direction ``dir`` from ``slot``,
or ``-1`` when no such brick exists (outside the ghost shell, or a padding
slot).  Directions are all ``3^D`` vectors over ``{-1, 0, +1}`` indexed
lexicographically with axis 1 fastest; the centre index is the brick
itself.

Computation through :class:`BrickInfo` is *layout-agnostic*: kernels only
ever chase adjacency entries, so reordering bricks for communication does
not change any compute code (and, per Figure 10, not its performance
either).
"""

from __future__ import annotations

from itertools import product
from typing import TYPE_CHECKING, List, Sequence, Tuple

import numpy as np

if TYPE_CHECKING:  # pragma: no cover
    from repro.brick.decomp import BrickDecomp, SlotAssignment

__all__ = ["BrickInfo", "direction_index", "all_direction_vectors"]


def all_direction_vectors(ndim: int) -> List[Tuple[int, ...]]:
    """All ``3^D`` direction vectors, lexicographic, axis 1 fastest."""
    out = []
    for rev in product((-1, 0, 1), repeat=ndim):
        out.append(tuple(reversed(rev)))
    return out


def direction_index(vec: Sequence[int]) -> int:
    """Index of a direction vector in :func:`all_direction_vectors` order."""
    idx = 0
    stride = 1
    for v in vec:
        if v not in (-1, 0, 1):
            raise ValueError(f"direction entries must be -1/0/+1, got {v}")
        idx += (v + 1) * stride
        stride *= 3
    return idx


class BrickInfo:
    """Adjacency metadata tying slots into the logical brick grid."""

    def __init__(
        self,
        ndim: int,
        brick_dim: Tuple[int, ...],
        adjacency: np.ndarray,
        nfields: int = 1,
    ) -> None:
        if adjacency.ndim != 2 or adjacency.shape[1] != 3**ndim:
            raise ValueError(
                f"adjacency must be (nslots, 3^{ndim}), got {adjacency.shape}"
            )
        self.ndim = ndim
        self.brick_dim = tuple(brick_dim)
        self.adjacency = adjacency
        self.nfields = nfields
        self.center_index = direction_index((0,) * ndim)

    @property
    def nslots(self) -> int:
        return self.adjacency.shape[0]

    @classmethod
    def from_assignment(
        cls, decomp: "BrickDecomp", assignment: "SlotAssignment"
    ) -> "BrickInfo":
        """Build adjacency from a slot assignment's coordinate tables."""
        ndim = decomp.ndim
        total = assignment.total_slots
        coords = assignment.slot_coords  # (total, ndim), sentinel rows = padding
        grid_index = assignment.grid_index
        full = tuple(n + 2 * decomp.width for n in decomp.grid)

        sentinel = np.iinfo(np.int32).min
        valid_slot = coords[:, 0] != sentinel

        adjacency = np.full((total, 3**ndim), -1, dtype=np.int64)
        for d, vec in enumerate(all_direction_vectors(ndim)):
            ncoord = coords + np.asarray(vec, dtype=np.int64)
            inside = valid_slot.copy()
            for axis in range(ndim):
                inside &= ncoord[:, axis] >= -decomp.width
                inside &= ncoord[:, axis] < decomp.grid[axis] + decomp.width
            if not inside.any():
                continue
            # grid_index is indexed [axis_D, ..., axis_1] with a +width shift
            idx = tuple(
                ncoord[inside, axis] + decomp.width
                for axis in range(ndim - 1, -1, -1)
            )
            adjacency[inside, d] = grid_index[idx]
        # Ensure full tables: a brick's centre entry is itself.
        center = direction_index((0,) * ndim)
        slots = np.arange(total)
        adjacency[valid_slot, center] = slots[valid_slot]
        return cls(ndim, decomp.brick_dim, adjacency, decomp.nfields)

    def neighbor_slot(self, slot: int, vec: Sequence[int]) -> int:
        """Physical slot one step in direction *vec* from *slot* (-1: none)."""
        return int(self.adjacency[slot, direction_index(vec)])
