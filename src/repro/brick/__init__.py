"""Fine-grained data blocking: the brick library (paper Section 6).

The domain (plus its ghost zone) is stored as fixed-size *bricks* -- e.g.
8x8x8 doubles -- laid out contiguously in a flat buffer
(:class:`BrickStorage`) in an order chosen freely per layout.  The logical
organisation lives in an adjacency list (:class:`BrickInfo`), so stencil
code is layout-agnostic: accesses that leave a brick resolve through the
adjacency to the right neighboring brick, wherever it physically lives.

:class:`BrickDecomp` decomposes one rank's subdomain into interior bricks,
surface regions (ordered by the communication layout) and ghost regions
(ordered so each neighbor's incoming messages land contiguously), and
allocates storage either plainly (``allocate`` -- Layout mode) or
memfd-backed with page-aligned regions (``mmap_alloc`` -- MemMap mode).
"""

from repro.brick.convert import bricks_to_extended, extended_to_bricks
from repro.brick.decomp import BrickDecomp, Section, SlotAssignment
from repro.brick.info import BrickInfo
from repro.brick.accessor import Brick
from repro.brick.storage import BrickStorage

__all__ = [
    "Brick",
    "BrickDecomp",
    "BrickInfo",
    "BrickStorage",
    "Section",
    "SlotAssignment",
    "bricks_to_extended",
    "extended_to_bricks",
]
