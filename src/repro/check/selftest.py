"""Mutation harness: prove the verifier actually catches violations.

A static checker that silently passes everything is worse than none.
``run_selftest`` takes a known-clean geometry, injects one violation of
each class the verifier claims to detect -- a tag collision, a dropped
receive, a byte-count disagreement, a partition split disagreement, a
dead rank, a tag in the partition region, an off-by-one gather index,
an overlapping phase split -- and asserts the corresponding finding
code appears.  CI gates on 100% detection (``repro check --selftest``).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Dict, Optional, Tuple

import numpy as np

from repro.check.geometry import build_rank_geometries
from repro.check.memory import check_gather_tables, check_phase_split
from repro.check.report import CheckReport
from repro.check.schedule import verify_schedule
from repro.core.problem import StencilProblem
from repro.simmpi.fabric import _PARTITION_TAG_BASE
from repro.stencil.spec import SEVEN_POINT

__all__ = ["run_selftest", "MUTATIONS"]


def _default_problem() -> StencilProblem:
    return StencilProblem(
        global_extent=(32, 32, 32),
        rank_dims=(2, 2, 2),
        stencil=SEVEN_POINT,
        brick_dim=(8, 8, 8),
        ghost=8,
    )


def _plans(problem, method):
    return {
        g.rank: g.plan
        for g in build_rank_geometries(problem, method)
    }


def _mutate_first_send(plans, **changes):
    """Return plans with rank 0's first send replaced via dataclass
    replace(**changes)."""
    plan = plans[0]
    sends = list(plan.sends)
    sends[0] = replace(sends[0], **changes)
    plans = dict(plans)
    plans[0] = replace(plan, sends=tuple(sends))
    return plans


# ---------------------------------------------------------------------
# One injector per violation class: mutate, verify, return the finding
# code that must appear.
# ---------------------------------------------------------------------
def _inject_tag_collision(problem, method) -> Tuple[CheckReport, str]:
    plans = _plans(problem, method)
    plan = plans[0]
    sends = list(plan.sends)
    sends.append(sends[0])  # duplicate (peer, tag) in the same phase
    plans[0] = replace(plan, sends=tuple(sends))
    report = CheckReport()
    verify_schedule(plans, report)
    return report, "tag-collision"


def _inject_dropped_recv(problem, method) -> Tuple[CheckReport, str]:
    plans = _plans(problem, method)
    # Drop the receive matching rank 0's first send: its peer starves
    # the send forever.
    target = plans[0].sends[0]
    peer_plan = plans[target.peer]
    recvs = tuple(
        m for m in peer_plan.recvs
        if not (m.peer == 0 and m.tag == target.tag
                and m.phase == target.phase)
    )
    plans[target.peer] = replace(peer_plan, recvs=recvs)
    report = CheckReport()
    verify_schedule(plans, report)
    return report, "orphan-send"


def _inject_dropped_send(problem, method) -> Tuple[CheckReport, str]:
    plans = _plans(problem, method)
    plan = plans[0]
    plans[0] = replace(plan, sends=tuple(plan.sends[1:]))
    report = CheckReport()
    verify_schedule(plans, report)
    return report, "starved-recv"


def _inject_byte_mismatch(problem, method) -> Tuple[CheckReport, str]:
    plans = _plans(problem, method)
    target = plans[0].sends[0]
    plans = _mutate_first_send(plans, nbytes=target.nbytes + 8)
    report = CheckReport()
    verify_schedule(plans, report)
    return report, "byte-mismatch"


def _inject_partition_split(problem, method) -> Tuple[CheckReport, str]:
    plans = _plans(problem, method)
    plans = _mutate_first_send(plans, partitions=3)
    report = CheckReport()
    verify_schedule(plans, report, partitions=4)
    return report, "partition-split-mismatch"


def _inject_tag_overflow(problem, method) -> Tuple[CheckReport, str]:
    plans = _plans(problem, method)
    target = plans[0].sends[0]
    bad = _PARTITION_TAG_BASE + target.tag
    plans = _mutate_first_send(plans, tag=bad)
    # Keep the pairing intact on the peer so only the overflow fires.
    peer_plan = plans[target.peer]
    recvs = tuple(
        replace(m, tag=bad)
        if (m.peer == 0 and m.tag == target.tag
            and m.phase == target.phase)
        else m
        for m in peer_plan.recvs
    )
    plans[target.peer] = replace(peer_plan, recvs=recvs)
    report = CheckReport()
    verify_schedule(plans, report)
    return report, "tag-overflow"


def _inject_dead_rank(problem, method) -> Tuple[CheckReport, str]:
    plans = _plans(problem, method)
    report = CheckReport()
    verify_schedule(plans, report, dead_ranks=(0,))
    return report, "dead-rank-edge"


def _inject_oob_index(problem, method) -> Tuple[CheckReport, str]:
    """Forge a gather chunk whose last index overruns the arena by one."""

    class _Chunk:
        pass

    total_slots, brick_elems, volume = 64, 512, 512
    chunk = _Chunk()
    idx = np.arange(27, dtype=np.int64)
    idx[-1] = total_slots * brick_elems  # one past the last element
    chunk.index = idx
    report = CheckReport()
    check_gather_tables(
        [chunk], total_slots, brick_elems, 0, volume, report, rank=0
    )
    return report, "oob-index"


def _inject_overlapping_split(problem, method) -> Tuple[CheckReport, str]:
    slots = np.arange(16, dtype=np.int64)
    interior = slots[:9]  # slot 8 claimed by both phases
    surface = slots[8:]
    report = CheckReport()
    check_phase_split(interior, surface, slots, report, rank=0)
    return report, "phase-split-overlap"


#: every violation class the verifier claims to catch
MUTATIONS: Dict[str, Callable] = {
    "tag_collision": _inject_tag_collision,
    "dropped_recv": _inject_dropped_recv,
    "dropped_send": _inject_dropped_send,
    "byte_mismatch": _inject_byte_mismatch,
    "partition_split": _inject_partition_split,
    "tag_overflow": _inject_tag_overflow,
    "dead_rank": _inject_dead_rank,
    "oob_index": _inject_oob_index,
    "overlapping_split": _inject_overlapping_split,
}


def run_selftest(
    problem: Optional[StencilProblem] = None,
    methods: Tuple[str, ...] = ("memmap",),
) -> Dict[str, bool]:
    """Inject every mutation class; map mutation name -> detected.

    A value of ``False`` anywhere means the verifier has a blind spot;
    ``repro check --selftest`` (and the CI ``static-verify`` job) exit
    nonzero on it.
    """
    problem = problem or _default_problem()
    results: Dict[str, bool] = {}
    for method in methods:
        for name, inject in MUTATIONS.items():
            report, expected_code = inject(problem, method)
            key = name if len(methods) == 1 else f"{method}:{name}"
            results[key] = report.has(expected_code)
    return results
