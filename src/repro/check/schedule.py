"""Pass 1: global send/recv schedule verification.

Rebuilds the whole job's message multigraph from every rank's static
:class:`~repro.exchange.base.RankMessagePlan` and proves, ahead of any
fabric traffic:

* **pairing** -- every send has exactly one matching recv on the same
  ``(phase, src, dst, tag)`` edge and vice versa (orphan sends and
  starved recvs are the two halves of a deadlock: the fabric's sends are
  synchronous-mode, so an unmatched post blocks its poster forever);
* **byte agreement** -- both endpoints of an edge agree on the payload
  byte count (the fabric raises at copy time otherwise; here it is a
  finding with both counts);
* **partition symmetry** -- with partitioned channels, both endpoints
  derive the same partition bounds from the same
  :func:`~repro.simmpi.fabric.partition_bounds` helper the runtime
  negotiation uses, so a split disagreement found here is exactly the
  ``SplitMismatchError`` the fabric would raise;
* **tag-space hygiene** -- no duplicate ``(peer, tag)`` within one
  rank's sends (or recvs) of one phase, and every base tag below the
  partitioned-request tag region (``partition_tag`` maps partition *p*
  of tag *t* to ``(p+1)*2^20 + t``, so a base tag at or above ``2^20``
  can collide with another message's partition 0);
* **liveness** -- no edge touches a rank marked dead (elastic restart
  must re-brick onto a decomposition that avoids lost nodes; an edge to
  a dead rank would raise ``RankDeadError`` on first contact).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, Iterable, List, Tuple

from repro.check.report import CheckReport
from repro.exchange.base import PlannedMessage, RankMessagePlan
from repro.simmpi.fabric import _PARTITION_TAG_BASE, partition_bounds

__all__ = ["verify_schedule"]

PASS = "schedule"


def _edges(
    plans: Dict[int, RankMessagePlan], kind: str
) -> Dict[Tuple[int, int, int, int], List[PlannedMessage]]:
    """Multigraph edges keyed ``(phase, src, dst, tag)`` for one side."""
    edges: Dict[Tuple[int, int, int, int], List[PlannedMessage]] = (
        defaultdict(list)
    )
    for rank, plan in plans.items():
        for m in getattr(plan, kind):
            if kind == "sends":
                key = (m.phase, rank, m.peer, m.tag)
            else:
                key = (m.phase, m.peer, rank, m.tag)
            edges[key].append(m)
    return edges


def verify_schedule(
    plans: Dict[int, RankMessagePlan],
    report: CheckReport,
    partitions: int = 1,
    dead_ranks: Iterable[int] = (),
) -> None:
    """Run every schedule check over *plans*, appending to *report*.

    *partitions* is the channel partition count the run will negotiate
    (1 for unphased runs); per-message ``PlannedMessage.partitions``
    overrides it, which the mutation harness uses to model endpoint
    disagreement.
    """
    dead = frozenset(int(r) for r in dead_ranks)
    nranks = len(plans)

    # Per-rank tag hygiene: a duplicate (peer, tag) inside one phase is
    # ambiguous on the wire regardless of what the peer does.
    for rank, plan in plans.items():
        for kind in ("sends", "recvs"):
            seen: Dict[Tuple[int, int, int], int] = {}
            for m in getattr(plan, kind):
                key = (m.phase, m.peer, m.tag)
                seen[key] = seen.get(key, 0) + 1
            for (phase, peer, tag), n in seen.items():
                if n > 1:
                    report.error(
                        PASS, "tag-collision",
                        f"rank {rank} {kind[:-1]}s {n} messages to peer"
                        f" {peer} with the same tag in phase {phase}; the"
                        " fabric matches on (src, dst, tag), so their"
                        " payloads are interchangeable on the wire",
                        ranks=(rank, peer), tag=tag,
                        hint="give each message a distinct run index in"
                             " exchange_tag(slab_dir_index, run)",
                    )

        for kind in ("sends", "recvs"):
            for m in getattr(plan, kind):
                if not 0 <= m.tag < _PARTITION_TAG_BASE:
                    report.error(
                        PASS, "tag-overflow",
                        f"rank {rank} {kind[:-1]} tag {m.tag} is outside"
                        f" the base tag space [0, {_PARTITION_TAG_BASE});"
                        " partitioned requests map partition p of tag t"
                        f" to (p+1)*{_PARTITION_TAG_BASE} + t, so this"
                        " tag aliases another message's partition",
                        ranks=(rank,), tag=m.tag,
                        hint="keep base tags below 2**20; the partition"
                             " tag region is reserved",
                    )
                if not 0 <= m.peer < nranks:
                    report.error(
                        PASS, "bad-peer",
                        f"rank {rank} addresses peer {m.peer}, outside"
                        f" the {nranks}-rank world",
                        ranks=(rank,), tag=m.tag,
                    )

    # Global pairing + byte/split agreement on each (phase,src,dst,tag).
    sends = _edges(plans, "sends")
    recvs = _edges(plans, "recvs")
    for key in sorted(set(sends) | set(recvs)):
        phase, src, dst, tag = key
        s_list = sends.get(key, [])
        r_list = recvs.get(key, [])
        if src in dead or dst in dead:
            report.error(
                PASS, "dead-rank-edge",
                f"edge rank {src} -> rank {dst} (tag {tag}, phase"
                f" {phase}) touches dead rank"
                f" {src if src in dead else dst}; first contact raises"
                " RankDeadError",
                ranks=(src, dst), tag=tag,
                hint="re-brick onto a decomposition that avoids the lost"
                     " node (elastic restart) before running",
            )
            continue
        if s_list and not r_list:
            other_phases = sorted(
                p for (p, s, d, t) in recvs
                if (s, d, t) == (src, dst, tag) and p != phase
            )
            if other_phases:
                report.error(
                    PASS, "phase-mismatch",
                    f"rank {src} sends to rank {dst} (tag {tag}) in phase"
                    f" {phase} but rank {dst} receives it in phase"
                    f" {other_phases[0]}; the intervening barrier"
                    " deadlocks both",
                    ranks=(src, dst), tag=tag,
                )
            else:
                report.error(
                    PASS, "orphan-send",
                    f"rank {src} sends {s_list[0].nbytes} bytes to rank"
                    f" {dst} (tag {tag}, phase {phase}) but rank {dst}"
                    " never posts the matching receive; the synchronous-"
                    "mode send blocks forever",
                    ranks=(src, dst), tag=tag,
                    hint=f"rank {dst}'s plan must post a receive from"
                         f" rank {src} with tag {tag}",
                )
            continue
        if r_list and not s_list:
            report.error(
                PASS, "starved-recv",
                f"rank {dst} expects {r_list[0].nbytes} bytes from rank"
                f" {src} (tag {tag}, phase {phase}) but rank {src} never"
                " sends; the receive times out as a deadlock",
                ranks=(src, dst), tag=tag,
                hint=f"rank {src}'s plan must send to rank {dst} with"
                     f" tag {tag}",
            )
            continue
        if len(s_list) != len(r_list):
            # Duplicates already reported as tag-collision; the counts
            # still tell which side over-posts.
            report.error(
                PASS, "multiplicity-mismatch",
                f"edge rank {src} -> rank {dst} (tag {tag}, phase"
                f" {phase}) has {len(s_list)} send(s) vs"
                f" {len(r_list)} recv(s)",
                ranks=(src, dst), tag=tag,
            )
        for s, r in zip(s_list, r_list):
            if s.nbytes != r.nbytes:
                report.error(
                    PASS, "byte-mismatch",
                    f"rank {src} sends {s.nbytes} bytes to rank {dst}"
                    f" (tag {tag}, phase {phase}) but rank {dst} expects"
                    f" {r.nbytes}; the fabric's copy guard would reject"
                    " the delivery",
                    ranks=(src, dst), tag=tag,
                    hint="both endpoints must derive the message from"
                         " the same geometry (ghost width, brick size,"
                         " padding)",
                )
                continue
            ps = s.partitions if s.partitions is not None else partitions
            pr = r.partitions if r.partitions is not None else partitions
            if partition_bounds(s.nbytes, ps) != partition_bounds(
                r.nbytes, pr
            ):
                report.error(
                    PASS, "partition-split-mismatch",
                    f"rank {src} splits its {s.nbytes}-byte send to rank"
                    f" {dst} (tag {tag}) into {ps} partition(s), rank"
                    f" {dst} expects {pr}; partitioned channel"
                    " negotiation would raise SplitMismatchError",
                    ranks=(src, dst), tag=tag,
                    hint="pass the same partitions= to make_engines /"
                         " make_channel on every rank",
                )
