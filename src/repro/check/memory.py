"""Pass 2: compiled-plan and channel-buffer memory verification.

Proves, per rank and purely from geometry, that the run's precomputed
index tables and wire-visible storage ranges stay inside the regions
they are entitled to:

* **gather tables in bounds** -- every flat source index of the compiled
  brick plan's gather chunks lands inside the storage arena
  (``[0, total_slots * brick_elems)``), inside its source slot's padded
  span, and inside the plan's field window; the only negative value is
  the ``-1`` absent sentinel;
* **phase split sound** -- the interior/surface slot partition used by
  compute-comm overlap is disjoint and jointly covers the unphased slot
  set (an overlap double-computes a brick, a gap leaves one stale);
* **wire ranges in bounds** -- the storage byte ranges a zero-copy
  scheme wires directly (``PlannedMessage.ranges``) fall inside the
  arena, sends read only surface sections (padding included for the
  page-granular MemMap views), receives write only ghost sections;
* **snapshot aliasing** -- no received byte overlaps the interior or
  surface payload spans the checkpointer snapshots: a wire write into
  snapshot territory would silently corrupt a restored epoch;
* **receive disjointness** -- no two receives of one rank write
  overlapping storage bytes.

The helpers take explicit tables so the mutation harness
(:mod:`repro.check.selftest`) can feed forged inputs and assert the
violations are caught.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

import numpy as np

from repro.check.geometry import RankGeometry
from repro.check.report import CheckReport
from repro.core.problem import StencilProblem
from repro.stencil.plan import (
    _build_gather_chunk,
    ghost_slot_mask,
    split_array_region,
    split_brick_slots,
)

__all__ = [
    "verify_memory",
    "check_gather_tables",
    "check_phase_split",
    "check_ranges",
]

PASS = "memory"


# ----------------------------------------------------------------------
# Reusable checkers (the selftest feeds these forged inputs)
# ----------------------------------------------------------------------
def check_gather_tables(
    chunks: Iterable,
    total_slots: int,
    brick_elems: int,
    field_offset: int,
    volume: int,
    report: CheckReport,
    rank: int,
) -> None:
    """Validate compiled gather chunks against the arena geometry."""
    total_elems = total_slots * brick_elems
    lo_f = field_offset
    hi_f = field_offset + volume
    for chunk in chunks:
        idx = np.asarray(chunk.index).reshape(-1)
        present = idx >= 0
        bad_neg = idx < -1
        if bad_neg.any():
            report.error(
                PASS, "oob-index",
                f"rank {rank}: gather table holds {int(bad_neg.sum())}"
                " negative index value(s) other than the -1 absent"
                " sentinel",
                ranks=(rank,),
                hint="absent halo cells must carry exactly -1",
            )
        vals = idx[present]
        if vals.size == 0:
            continue
        oob = (vals >= total_elems).sum()
        if oob:
            worst = int(vals.max())
            report.error(
                PASS, "oob-index",
                f"rank {rank}: {int(oob)} gather index value(s) reach"
                f" past the storage arena ({worst} >="
                f" {total_elems} elements)",
                ranks=(rank,), slot=worst // brick_elems,
                hint="the index table must be rebuilt for this"
                     " assignment's total_slots",
            )
        within = vals % brick_elems
        off_field = (within < lo_f) | (within >= hi_f)
        if off_field.any():
            report.error(
                PASS, "field-window",
                f"rank {rank}: {int(off_field.sum())} gather index"
                " value(s) read outside the plan's field window"
                f" [{lo_f}, {hi_f}) within their brick",
                ranks=(rank,),
                hint="field_offset/volume disagree between the plan and"
                     " the table",
            )


def check_phase_split(
    interior: np.ndarray,
    surface: np.ndarray,
    slots: np.ndarray,
    report: CheckReport,
    rank: int,
) -> None:
    """Interior/surface must partition the unphased slot set exactly."""
    si = set(int(s) for s in np.asarray(interior).reshape(-1))
    ss = set(int(s) for s in np.asarray(surface).reshape(-1))
    sall = set(int(s) for s in np.asarray(slots).reshape(-1))
    both = si & ss
    if both:
        report.error(
            PASS, "phase-split-overlap",
            f"rank {rank}: {len(both)} slot(s) appear in both the"
            " interior and surface phase plans (first:"
            f" {min(both)}); the phased step would compute them twice",
            ranks=(rank,), slot=min(both),
            hint="split_brick_slots must partition, not duplicate",
        )
    missing = sall - (si | ss)
    if missing:
        report.error(
            PASS, "phase-split-gap",
            f"rank {rank}: {len(missing)} slot(s) of the unphased plan"
            f" are in neither phase plan (first: {min(missing)}); the"
            " phased step would leave them stale",
            ranks=(rank,), slot=min(missing),
        )
    extra = (si | ss) - sall
    if extra:
        report.error(
            PASS, "phase-split-extra",
            f"rank {rank}: {len(extra)} phased slot(s) are not part of"
            f" the unphased plan (first: {min(extra)})",
            ranks=(rank,), slot=min(extra),
        )


def _union(spans: Sequence[Tuple[int, int]]) -> List[Tuple[int, int]]:
    """Merge (start, stop) byte spans into a sorted disjoint union."""
    out: List[Tuple[int, int]] = []
    for lo, hi in sorted(spans):
        if out and lo <= out[-1][1]:
            out[-1] = (out[-1][0], max(out[-1][1], hi))
        else:
            out.append((lo, hi))
    return out


def _covered(lo: int, hi: int, union: Sequence[Tuple[int, int]]) -> bool:
    for ulo, uhi in union:
        if ulo <= lo and hi <= uhi:
            return True
    return False


def _intersects(
    lo: int, hi: int, union: Sequence[Tuple[int, int]]
) -> Optional[Tuple[int, int]]:
    for ulo, uhi in union:
        if lo < uhi and ulo < hi:
            return (max(lo, ulo), min(hi, uhi))
    return None


def check_ranges(
    geom: RankGeometry,
    report: CheckReport,
) -> None:
    """Wire-visible storage ranges vs the slot assignment's sections."""
    asn, decomp = geom.assignment, geom.decomp
    if asn is None or decomp is None:
        return
    bb = decomp.brick_bytes
    arena_bytes = asn.total_slots * bb
    rank = geom.rank
    # Padded spans: MemMap wires whole pages, which cover each section's
    # alignment padding; payload spans: the bytes that carry data the
    # checkpointer snapshots and the kernels read.
    surface_padded = _union(
        [(s.start * bb, s.padded_end * bb)
         for s in asn.sections if s.kind == "surface" and s.nbricks]
    )
    ghost_padded = _union(
        [(s.start * bb, s.padded_end * bb)
         for s in asn.sections if s.kind == "ghost" and s.nbricks]
    )
    owned_payload = _union(
        [(s.start * bb, s.end * bb)
         for s in asn.sections
         if s.kind in ("interior", "surface") and s.nbricks]
    )

    recv_spans: List[Tuple[int, int, int]] = []  # (lo, hi, tag)
    for kind, allowed in (("sends", surface_padded), ("recvs", ghost_padded)):
        for m in getattr(geom.plan, kind):
            if m.ranges is None:
                continue
            for off, length in m.ranges:
                lo, hi = int(off), int(off) + int(length)
                if lo < 0 or hi > arena_bytes:
                    report.error(
                        PASS, "range-out-of-arena",
                        f"rank {rank}: {kind[:-1]} range [{lo}, {hi})"
                        f" (tag {m.tag}) leaves the"
                        f" {arena_bytes}-byte storage arena",
                        ranks=(rank,), tag=m.tag, slot=lo // bb,
                    )
                    continue
                if not _covered(lo, hi, allowed):
                    where = (
                        "surface" if kind == "sends" else "ghost"
                    )
                    report.error(
                        PASS,
                        "send-range-oob" if kind == "sends"
                        else "recv-range-oob",
                        f"rank {rank}: {kind[:-1]} range [{lo}, {hi})"
                        f" (tag {m.tag}) is not contained in the"
                        f" {where} sections' padded spans",
                        ranks=(rank,), tag=m.tag, slot=lo // bb,
                        hint="the exchanger's section bookkeeping and"
                             " the slot assignment disagree",
                    )
                if kind == "recvs":
                    clash = _intersects(lo, hi, owned_payload)
                    if clash is not None:
                        report.error(
                            PASS, "recv-aliases-snapshot",
                            f"rank {rank}: recv range [{lo}, {hi}) (tag"
                            f" {m.tag}) overlaps owned payload bytes"
                            f" [{clash[0]}, {clash[1]}); a wire write"
                            " there corrupts data the checkpointer"
                            " snapshots",
                            ranks=(rank,), tag=m.tag,
                            slot=clash[0] // bb,
                            hint="receives must land only in ghost"
                                 " sections",
                        )
                    recv_spans.append((lo, hi, m.tag))

    recv_spans.sort()
    for (alo, ahi, atag), (blo, bhi, btag) in zip(
        recv_spans, recv_spans[1:]
    ):
        if blo < ahi:
            report.error(
                PASS, "recv-range-overlap",
                f"rank {rank}: recv ranges for tags {atag} and {btag}"
                f" overlap in [{blo}, {min(ahi, bhi)}); later delivery"
                " order would decide the bytes",
                ranks=(rank,), tag=btag, slot=blo // bb,
            )


# ----------------------------------------------------------------------
# The pass itself
# ----------------------------------------------------------------------
def verify_memory(
    problem: StencilProblem,
    geoms: Sequence[RankGeometry],
    report: CheckReport,
) -> None:
    """Run every memory check over the reconstructed geometries."""
    spec = problem.stencil
    for geom in geoms:
        check_ranges(geom, report)
        decomp, asn = geom.decomp, geom.assignment
        if decomp is None or asn is None:
            # Array schemes: validate the interior/surface region split
            # covers the owned box exactly.
            ext, g, r = (
                problem.subdomain_extent, problem.ghost, spec.radius,
            )
            interior, surf_boxes = split_array_region(ext, g, 0, r)
            shape = tuple(e + 2 * g for e in reversed(ext))
            mask = np.zeros(shape, dtype=np.int32)
            boxes = ([interior] if interior is not None else []) + list(
                surf_boxes
            )
            for box in boxes:
                mask[tuple(slice(lo, hi) for lo, hi in box)] += 1
            owned = tuple(slice(g, g + e) for e in reversed(ext))
            outside = mask.copy()
            outside[owned] = 0  # only the ghost shell remains
            mask = mask[owned]
            if (outside > 0).any():
                report.error(
                    PASS, "phase-split-extra",
                    f"rank {geom.rank}: array phase regions touch"
                    f" {int((outside > 0).sum())} cell(s) outside the"
                    " owned box",
                    ranks=(geom.rank,),
                )
            if (mask > 1).any():
                report.error(
                    PASS, "phase-split-overlap",
                    f"rank {geom.rank}: array phase regions overlap on"
                    f" {int((mask > 1).sum())} cell(s)",
                    ranks=(geom.rank,),
                )
            if (mask == 0).any():
                report.error(
                    PASS, "phase-split-gap",
                    f"rank {geom.rank}: array phase regions miss"
                    f" {int((mask == 0).sum())} owned cell(s)",
                    ranks=(geom.rank,),
                )
            continue
        binfo = decomp.brick_info(asn)
        slots = decomp.compute_slots(asn)
        chunks = [
            _build_gather_chunk(
                binfo, slots[lo: lo + 512], spec.radius, 0,
                decomp.brick_elems,
            )
            for lo in range(0, len(slots), 512)
        ]
        check_gather_tables(
            chunks, asn.total_slots, decomp.brick_elems, 0,
            decomp.brick_volume, report, geom.rank,
        )
        interior, surface = split_brick_slots(
            binfo, ghost_slot_mask(asn), slots
        )
        check_phase_split(interior, surface, slots, report, geom.rank)
