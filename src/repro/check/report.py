"""Structured findings for the ahead-of-run static verifier.

Every pass (:mod:`repro.check.schedule`, :mod:`repro.check.memory`,
:mod:`repro.check.cback`) reports through the same :class:`CheckReport`:
a flat list of :class:`Finding` records, each carrying the pass that
produced it, a stable machine-readable code, the ranks/tag/slot it
implicates and a human fix hint.  The CLI renders the report; the driver
pre-flight (``run_executed(check=...)``) raises
:class:`CheckFailedError` on any error-severity finding; the mutation
harness asserts specific codes appear.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["Finding", "CheckReport", "CheckFailedError"]

#: Finding severities, in increasing order of alarm.
SEVERITIES = ("note", "warning", "error")


@dataclass(frozen=True)
class Finding:
    """One verified-invariant violation (or advisory note)."""

    severity: str  # "note" | "warning" | "error"
    passname: str  # "schedule" | "memory" | "cbackend"
    code: str  # stable machine-readable class, e.g. "tag-collision"
    message: str  # human description of this occurrence
    ranks: Tuple[int, ...] = ()  # implicated ranks (empty: rank-agnostic)
    tag: Optional[int] = None  # offending message tag, when tag-shaped
    slot: Optional[int] = None  # offending storage slot, when slot-shaped
    hint: str = ""  # how to fix it

    def render(self) -> str:
        loc = []
        if self.ranks:
            loc.append("rank " + ",".join(str(r) for r in self.ranks))
        if self.tag is not None:
            loc.append(f"tag {self.tag}")
        if self.slot is not None:
            loc.append(f"slot {self.slot}")
        where = f" [{'; '.join(loc)}]" if loc else ""
        line = (
            f"{self.severity.upper():7s} {self.passname}/{self.code}"
            f"{where}: {self.message}"
        )
        if self.hint:
            line += f"\n        hint: {self.hint}"
        return line


@dataclass
class CheckReport:
    """Accumulated findings of one ``repro check`` invocation."""

    findings: List[Finding] = field(default_factory=list)
    passes_run: List[str] = field(default_factory=list)
    #: geometry / method the report describes, for rendering
    context: Dict[str, str] = field(default_factory=dict)

    def add(self, finding: Finding) -> None:
        if finding.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {finding.severity!r}")
        self.findings.append(finding)

    def error(self, passname: str, code: str, message: str, **kw) -> None:
        self.add(Finding("error", passname, code, message, **kw))

    def warning(self, passname: str, code: str, message: str, **kw) -> None:
        self.add(Finding("warning", passname, code, message, **kw))

    def note(self, passname: str, code: str, message: str, **kw) -> None:
        self.add(Finding("note", passname, code, message, **kw))

    # ------------------------------------------------------------------
    @property
    def ok(self) -> bool:
        """True when no error-severity finding was recorded."""
        return not any(f.severity == "error" for f in self.findings)

    def errors(self) -> List[Finding]:
        return [f for f in self.findings if f.severity == "error"]

    def codes(self) -> List[str]:
        """Distinct finding codes, in first-occurrence order."""
        seen: List[str] = []
        for f in self.findings:
            if f.code not in seen:
                seen.append(f.code)
        return seen

    def has(self, code: str) -> bool:
        return any(f.code == code for f in self.findings)

    # ------------------------------------------------------------------
    def render(self) -> str:
        head = []
        if self.context:
            ctx = ", ".join(f"{k}={v}" for k, v in self.context.items())
            head.append(f"repro check: {ctx}")
        head.append(
            "passes: " + (", ".join(self.passes_run) or "(none)")
        )
        body = [f.render() for f in self.findings]
        nerr = len(self.errors())
        nwarn = sum(1 for f in self.findings if f.severity == "warning")
        tail = (
            f"result: {'CLEAN' if self.ok else 'FAILED'}"
            f" ({nerr} error(s), {nwarn} warning(s))"
        )
        return "\n".join(head + body + [tail])

    def to_literal(self) -> dict:
        """JSON-serializable form of the whole report."""
        return {
            "ok": self.ok,
            "passes": list(self.passes_run),
            "context": dict(self.context),
            "findings": [
                {
                    "severity": f.severity,
                    "pass": f.passname,
                    "code": f.code,
                    "message": f.message,
                    "ranks": list(f.ranks),
                    "tag": f.tag,
                    "slot": f.slot,
                    "hint": f.hint,
                }
                for f in self.findings
            ],
        }


class CheckFailedError(RuntimeError):
    """A strict pre-flight check found at least one error.

    Carries the full :class:`CheckReport` so callers can render or
    serialize the findings instead of re-running the verifier.
    """

    def __init__(self, report: CheckReport) -> None:
        errs = report.errors()
        summary = "; ".join(
            f"{f.passname}/{f.code}" for f in errs[:4]
        )
        if len(errs) > 4:
            summary += f"; +{len(errs) - 4} more"
        super().__init__(
            f"static verification failed with {len(errs)} error(s):"
            f" {summary}"
        )
        self.report = report
