"""Entry point of the ahead-of-run static verifier (``repro check``).

``run_checks`` reconstructs every rank's exchange geometry plan-only
(no storage, no fabric traffic) and runs the three verification passes
over it, returning a :class:`~repro.check.report.CheckReport`:

1. ``schedule`` -- the global send/recv multigraph pairs up, byte counts
   and partition splits agree, tags are collision-free, no edge touches
   a dead rank (:mod:`repro.check.schedule`);
2. ``memory`` -- compiled gather tables stay inside the arena, phase
   splits partition exactly, wire-visible storage ranges stay inside
   the sections they belong to (:mod:`repro.check.memory`);
3. ``cbackend`` -- the C kernel environment parses, the toolchain is
   usable and a probe kernel is bit-identical to NumPy
   (:mod:`repro.check.cback`).

What is *not* provable statically: values (the checker never looks at
payload bytes), timing, and faults injected at runtime -- those remain
the territory of the chaos soak and the bit-exactness validation runs.
"""

from __future__ import annotations

from typing import Iterable, Optional, Sequence

from repro.check.cback import verify_cbackend
from repro.check.geometry import build_rank_geometries
from repro.check.memory import verify_memory
from repro.check.report import CheckFailedError, CheckReport
from repro.check.schedule import verify_schedule
from repro.core.problem import StencilProblem
from repro.hardware.profiles import MachineProfile

__all__ = ["run_checks", "DEFAULT_PASSES"]

DEFAULT_PASSES = ("schedule", "memory", "cbackend")


def run_checks(
    problem: StencilProblem,
    method: str,
    page_size: Optional[int] = None,
    profile: Optional[MachineProfile] = None,
    partitions: int = 1,
    dead_ranks: Iterable[int] = (),
    passes: Sequence[str] = DEFAULT_PASSES,
    strict: bool = False,
) -> CheckReport:
    """Statically verify *problem* x *method* ahead of any run.

    *partitions* is the channel partition count the run will negotiate
    (phased runs use ``DEFAULT_PARTITIONS``); *dead_ranks* marks ranks
    known lost, so elastic pre-flights can prove the old decomposition
    unrunnable and the re-bricked one clean.  With *strict* the call
    raises :class:`CheckFailedError` instead of returning a failed
    report.
    """
    report = CheckReport()
    report.context = {
        "method": method,
        "geometry": "x".join(str(e) for e in problem.global_extent),
        "ranks": "x".join(str(d) for d in problem.rank_dims),
    }
    unknown = [p for p in passes if p not in DEFAULT_PASSES]
    if unknown:
        raise ValueError(
            f"unknown pass(es) {unknown}; available: {DEFAULT_PASSES}"
        )
    geoms = None
    if "schedule" in passes or "memory" in passes:
        geoms = build_rank_geometries(problem, method, profile, page_size)
    if "schedule" in passes:
        report.passes_run.append("schedule")
        verify_schedule(
            {g.rank: g.plan for g in geoms},
            report,
            partitions=partitions,
            dead_ranks=dead_ranks,
        )
    if "memory" in passes:
        report.passes_run.append("memory")
        verify_memory(problem, geoms, report)
    if "cbackend" in passes:
        report.passes_run.append("cbackend")
        verify_cbackend(report)
    if strict and not report.ok:
        raise CheckFailedError(report)
    return report
