"""Pass 3: C kernel backend sanity (toolchain, flags, bit identity).

The compiled backend is the one subsystem the schedule/memory passes
cannot reason about symbolically -- it is generated C.  This pass
verifies what *can* be verified ahead of a run:

* the ``REPRO_KERNEL_BACKEND`` / ``REPRO_CC_SANITIZE`` /
  ``REPRO_CC_BOUNDS`` environment contracts parse (a typo would
  otherwise surface mid-run);
* a toolchain is present when the backend is demanded;
* a small probe kernel compiles (with whatever sanitize/guard flags the
  environment selects) and reproduces the NumPy tap arithmetic
  bit-for-bit on a deterministic batch -- the same invariant the full
  test suite asserts, checked here in milliseconds on the target
  machine's actual compiler.
"""

from __future__ import annotations

import numpy as np

from repro.check.report import CheckReport
from repro.stencil import cbackend

__all__ = ["verify_cbackend"]

PASS = "cbackend"

#: probe specialization: 7-point taps on an 4x4x4 brick
_PROBE_TAPS = (
    ((0, 0, 0), 0.5),
    ((1, 0, 0), 1.0 / 12.0),
    ((-1, 0, 0), 1.0 / 12.0),
    ((0, 1, 0), 1.0 / 12.0),
    ((0, -1, 0), 1.0 / 12.0),
    ((0, 0, 1), 1.0 / 12.0),
    ((0, 0, -1), 1.0 / 12.0),
)
_PROBE_BD = (4, 4, 4)


def _numpy_reference(
    src: np.ndarray, index: np.ndarray, slots: np.ndarray, volume: int
) -> np.ndarray:
    """Tap loop in the exact operand order the C kernel unrolls."""
    n = len(slots)
    halo = np.where(index < 0, 0.0, src[np.maximum(index, 0)])
    halo = halo.reshape(n, *(b + 2 for b in _PROBE_BD))
    out = np.zeros((n, volume))
    first = True
    for (off, coeff) in _PROBE_TAPS:
        ox, oy, oz = (o + 1 for o in reversed(off))
        part = halo[
            :, ox: ox + _PROBE_BD[2], oy: oy + _PROBE_BD[1],
            oz: oz + _PROBE_BD[0],
        ].reshape(n, volume)
        if first:
            out = coeff * part
            first = False
        else:
            out = out + coeff * part
    return out


def verify_cbackend(report: CheckReport, probe: bool = True) -> None:
    """Validate the backend environment and (optionally) bit identity."""
    try:
        choice = cbackend.backend_choice()
    except ValueError as err:
        report.error(
            PASS, "backend-env", str(err),
            hint="REPRO_KERNEL_BACKEND must be auto, numpy or cffi",
        )
        return
    try:
        sanitize = cbackend.sanitize_flags()
    except ValueError as err:
        report.error(
            PASS, "sanitize-env", str(err),
            hint="REPRO_CC_SANITIZE is a comma list of 'address' and"
                 " 'undefined'",
        )
        return
    try:
        guard = cbackend.bounds_guard_enabled()
    except ValueError as err:
        report.error(
            PASS, "bounds-env", str(err),
            hint="REPRO_CC_BOUNDS must be 0 or 1",
        )
        return

    if choice == "numpy":
        report.note(
            PASS, "backend-off",
            "REPRO_KERNEL_BACKEND=numpy: the C backend is disabled, so"
            " the kernel probe is skipped",
        )
        return
    cc = cbackend._compiler()
    if cc is None or cbackend.cffi is None:
        missing = "a C compiler" if cbackend.cffi else "cffi"
        if choice == "cffi":
            report.error(
                PASS, "toolchain-missing",
                f"REPRO_KERNEL_BACKEND=cffi demands the compiled"
                f" backend but {missing} is unavailable",
                hint="install a toolchain or set"
                     " REPRO_KERNEL_BACKEND=numpy",
            )
        else:
            report.note(
                PASS, "toolchain-missing",
                f"{missing} unavailable: runs will use the NumPy"
                " fallback (bit-identical, slower)",
            )
        return
    if not probe:
        return

    # Compile-and-compare probe: 2 bricks, adjacency pointing them at
    # each other on one face, the rest absent.
    volume = int(np.prod(_PROBE_BD))
    source = cbackend.batch_step_source(
        _PROBE_TAPS, tuple(reversed(_PROBE_BD)), 1, 0, volume, guard=guard
    )
    fn = cbackend._build(source, guard=guard, extra_flags=sanitize)
    if fn is None:
        report.error(
            PASS, "probe-compile",
            f"the probe kernel failed to compile or load with {cc}"
            + (f" and flags {' '.join(sanitize)}" if sanitize else ""),
            hint="with ASan the host process must preload libasan:"
                 " LD_PRELOAD=$(cc -print-file-name=libasan.so)",
        )
        return
    rng = np.random.default_rng(12345)
    nslots = 2
    src = rng.random(nslots * volume)
    dst = np.zeros_like(src)
    halo_np = tuple(b + 2 for b in reversed(_PROBE_BD))
    halo_elems = int(np.prod(halo_np))
    # Identity gather: each brick's interior maps to itself, halo ring
    # absent (-1), matching a no-neighbor geometry.
    index = np.full((nslots, halo_elems), -1, dtype=np.int64)
    inner = np.arange(volume).reshape(tuple(reversed(_PROBE_BD)))
    tmpl = np.full(halo_np, -1, dtype=np.int64)
    tmpl[1:-1, 1:-1, 1:-1] = inner
    for b in range(nslots):
        cell = tmpl.reshape(-1)
        index[b] = np.where(cell >= 0, cell + b * volume, -1)
    index = np.ascontiguousarray(index.reshape((nslots,) + halo_np))
    slots = np.arange(nslots, dtype=np.int64)
    fn(src, dst, index, slots)
    ref = _numpy_reference(src, index.reshape(-1), slots, volume)
    got = dst.reshape(nslots, volume)
    if not np.array_equal(got, ref):
        diff = int((got != ref).sum())
        report.error(
            PASS, "probe-mismatch",
            f"the compiled probe kernel differs from the NumPy tap"
            f" arithmetic on {diff} of {got.size} cells",
            hint="suspect compiler flags reordering FP arithmetic;"
                 " -ffp-contract=off must be honoured",
        )
