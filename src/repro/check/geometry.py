"""Plan-only rank geometry reconstruction for the static verifier.

Every executable exchange method can be constructed *plan-only*: no
storage arena, no wire buffers, no fabric traffic -- just the message
schedule derived from geometry (see ``Exchanger.message_plan``).  This
module mirrors the driver's per-rank setup (`_make_exchanger` plus the
brick decomposition it feeds) closely enough that the verified schedule
is the executed schedule, while staying cheap enough to run ahead of
every job.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.brick.decomp import BrickDecomp, SlotAssignment
from repro.core.methods import MethodInfo, method_info
from repro.core.problem import StencilProblem
from repro.exchange.base import Exchanger, RankMessagePlan
from repro.exchange.brickpack import BrickPackExchanger
from repro.exchange.layout_ex import LayoutExchanger
from repro.exchange.memmap_ex import MemMapExchanger
from repro.exchange.mpitypes import MPITypesExchanger
from repro.exchange.pack import PackExchanger
from repro.exchange.shift import ShiftExchanger
from repro.faults.errors import ExchangeConfigError
from repro.hardware.profiles import MachineProfile, generic_host
from repro.simmpi.comm import CartComm, SimComm
from repro.simmpi.fabric import SimFabric

__all__ = ["RankGeometry", "build_rank_geometries", "build_rank_plans"]

#: Methods the static verifier covers: every executable CPU scheme plus
#: the degradation ladder's last rung.
CHECKABLE_METHODS = (
    "yask", "yask_ol", "mpi_types", "shift", "basic", "layout", "memmap",
    "brickpack",
)


@dataclass
class RankGeometry:
    """One rank's reconstructed exchange geometry, plan-only."""

    rank: int
    cart: CartComm
    exchanger: Exchanger
    plan: RankMessagePlan
    decomp: Optional[BrickDecomp]  # brick schemes only
    assignment: Optional[SlotAssignment]  # brick schemes only
    page_size: Optional[int]  # memmap only


def _plan_only_exchanger(
    info: MethodInfo,
    cart: CartComm,
    problem: StencilProblem,
    profile: MachineProfile,
    page_size: int,
):
    """Mirror of the driver's ``_make_exchanger``, with no buffers."""
    ext, g = problem.subdomain_extent, problem.ghost
    if info.base in ("yask", "yask_ol"):
        ex = PackExchanger(cart, None, ext, g, profile, dtype=problem.dtype)
        return ex, None, None, None
    if info.base == "mpi_types":
        ex = MPITypesExchanger(
            cart, None, ext, g, profile, dtype=problem.dtype
        )
        return ex, None, None, None
    if info.base == "shift":
        ex = ShiftExchanger(cart, None, ext, g, profile, dtype=problem.dtype)
        return ex, None, None, None
    decomp = BrickDecomp(
        ext, problem.brick_dim, g, problem.layout, problem.dtype
    )
    if info.base == "memmap":
        asn = decomp.assignment(decomp.alignment_for_page(page_size))
        ex = MemMapExchanger(cart, decomp, None, asn, profile, page_size)
        return ex, decomp, asn, page_size
    asn = decomp.assignment(1)
    if info.base in ("layout", "basic"):
        ex = LayoutExchanger(
            cart, decomp, None, asn, profile,
            merge_runs=(info.base == "layout"),
        )
        return ex, decomp, asn, None
    if info.base == "brickpack":
        ex = BrickPackExchanger(cart, decomp, None, asn, profile)
        return ex, decomp, asn, None
    raise ExchangeConfigError(
        f"method {info.name!r} is not statically checkable; checkable"
        f" methods are {CHECKABLE_METHODS}"
    )


def build_rank_geometries(
    problem: StencilProblem,
    method: str,
    profile: Optional[MachineProfile] = None,
    page_size: Optional[int] = None,
) -> List[RankGeometry]:
    """Reconstruct every rank's plan-only geometry for *method*.

    One shared :class:`SimFabric` backs all the Cartesian communicators
    (nothing is ever posted to it); each rank gets the same plan-only
    exchanger the driver would build, and its static
    :class:`~repro.exchange.base.RankMessagePlan`.
    """
    if method == "brickpack":
        # The ladder rung is not a user-selectable method name; give it a
        # synthetic MethodInfo so the same dispatch covers it.
        info = MethodInfo(
            "brickpack", None, True, False, True, False, "brick"
        )
    else:
        info = method_info(method)
        if info.base not in CHECKABLE_METHODS:
            raise ExchangeConfigError(
                f"method {method!r} is not statically checkable;"
                f" checkable methods are {CHECKABLE_METHODS}"
            )
    profile = profile or generic_host()
    page = page_size or (
        profile.gpu.page_size
        if info.is_gpu and profile.gpu
        else profile.page_size
    )
    fabric = SimFabric(problem.nranks)
    periods = [problem.periodic] * problem.ndim
    out: List[RankGeometry] = []
    for rank in range(problem.nranks):
        cart = SimComm(fabric, rank).Create_cart(problem.rank_dims, periods)
        ex, decomp, asn, pg = _plan_only_exchanger(
            info, cart, problem, profile, page
        )
        out.append(
            RankGeometry(rank, cart, ex, ex.message_plan(), decomp, asn, pg)
        )
    return out


def build_rank_plans(
    problem: StencilProblem,
    method: str,
    profile: Optional[MachineProfile] = None,
    page_size: Optional[int] = None,
) -> Dict[int, RankMessagePlan]:
    """``{rank: message plan}`` for the whole decomposition."""
    return {
        g.rank: g.plan
        for g in build_rank_geometries(problem, method, profile, page_size)
    }
