"""Ahead-of-run static verification (``repro check``).

Proves run-safety properties of a problem/method combination without
touching the fabric: the global message schedule pairs up (deadlock
freedom), compiled index tables stay in bounds, wire-visible storage
ranges stay inside their sections, and the C kernel backend is sane.
See DESIGN.md Section 11 for the invariant catalogue and
:mod:`repro.check.api` for the entry point.
"""

from repro.check.api import DEFAULT_PASSES, run_checks
from repro.check.geometry import (
    CHECKABLE_METHODS,
    RankGeometry,
    build_rank_geometries,
    build_rank_plans,
)
from repro.check.report import CheckFailedError, CheckReport, Finding
from repro.check.selftest import MUTATIONS, run_selftest

__all__ = [
    "CHECKABLE_METHODS",
    "CheckFailedError",
    "CheckReport",
    "DEFAULT_PASSES",
    "Finding",
    "MUTATIONS",
    "RankGeometry",
    "build_rank_geometries",
    "build_rank_plans",
    "run_checks",
    "run_selftest",
]
