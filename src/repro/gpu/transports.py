"""GPU transport strategies: how MPI bytes reach the device.

Each transport turns an exchange's message schedule into three modelled
quantities:

* ``extra_wait(sends, recvs)`` -- time added inside the MPI wait (page
  faults servicing the NIC for UM, nothing for CUDA-aware);
* ``move(sends, recvs)`` -- explicit CPU-GPU staging copies (manual mode
  only; the paper's point is that Layout/MemMap + CA/UM make this zero);
* ``compute_penalty(recv_specs)`` -- first-touch cost the *next kernel*
  pays to fault received pages onto the GPU.  This reproduces Figure 15:
  page-aligned MemMap regions fault cleanly, unaligned Layout_UM /
  MPI_Types_UM regions straddle extra pages.

``network()`` returns the (possibly derated) network model to price the
wire itself.
"""

from __future__ import annotations

import abc
from dataclasses import replace
from typing import Sequence

from repro.exchange.schedule import MessageSpec
from repro.hardware.gpu import GpuModel
from repro.hardware.network import NetworkModel
from repro.util.indexing import ceil_div

__all__ = [
    "GpuTransport",
    "CudaAwareTransport",
    "UnifiedMemoryTransport",
    "StagedTransport",
]


class GpuTransport(abc.ABC):
    """Strategy pricing GPU-side data movement for one exchange."""

    #: suffix used in method names, e.g. "ca" -> "layout_ca"
    suffix = "abstract"
    #: whether MemMap's stitched views work over this memory kind
    supports_memmap = False

    def __init__(self, net: NetworkModel, gpu: GpuModel) -> None:
        self.base_net = net
        self.gpu = gpu

    @abc.abstractmethod
    def network(self) -> NetworkModel:
        """Network model seen by MPI on this memory kind."""

    def extra_wait(
        self, sends: Sequence[MessageSpec], recvs: Sequence[MessageSpec]
    ) -> float:
        return 0.0

    def move(
        self, sends: Sequence[MessageSpec], recvs: Sequence[MessageSpec]
    ) -> float:
        return 0.0

    def compute_penalty(self, recvs: Sequence[MessageSpec]) -> float:
        return 0.0

    # ------------------------------------------------------------------
    def _pages(self, nbytes: int) -> int:
        return ceil_div(nbytes, self.gpu.page_size)


class CudaAwareTransport(GpuTransport):
    """GPUDirect RDMA on cudaMalloc memory (``*_CA``).

    The NIC reads/writes HBM directly: no staging, no faults.  Reading
    device memory over the peer link costs a small bandwidth derate.
    MemMap is unsupported: cudaMalloc memory has no host-page-table
    mappings to stitch (paper footnote: cuMemMap is not available on
    Summit).
    """

    suffix = "ca"
    supports_memmap = False

    def network(self) -> NetworkModel:
        return replace(
            self.base_net, bw_peak=self.base_net.bw_peak * self.gpu.rdma_efficiency
        )


class UnifiedMemoryTransport(GpuTransport):
    """Unified Memory / ATS (``*_UM``): host pointers usable by the GPU.

    MPI runs on host-resident pages; pages the GPU last touched must fault
    back before the NIC can read them (charged in ``extra_wait``), and the
    received pages fault onto the GPU at next kernel launch (charged as a
    compute penalty).  Page-aligned messages (MemMap) fault exactly their
    pages; unaligned ones straddle one extra page per mapped run and pay a
    partial-page inefficiency -- the Figure 15 effect.
    """

    suffix = "um"
    supports_memmap = True

    #: Multiplier on the fault cost of page-*unaligned* regions.  A region
    #: that does not start/end on a page boundary shares pages with its
    #: neighbors in storage: the fault handler must merge partial-page
    #: writes (read-modify-write) instead of migrating whole pages, which
    #: is why Figure 15 shows Layout_UM / MPI_Types_UM computing slower
    #: than the page-aligned MemMap_UM.
    unaligned_penalty = 3.0

    def network(self) -> NetworkModel:
        # The NIC streams UM pages at most at the migration bandwidth.
        return replace(
            self.base_net, bw_peak=min(self.base_net.bw_peak, self.gpu.um_bw)
        )

    def _fault_cost(self, specs: Sequence[MessageSpec]) -> float:
        g = self.gpu
        total = 0.0
        for m in specs:
            pages = self._pages(m.wire_bytes)
            per_page = g.fault_overhead + g.page_size / g.um_bw
            if m.wire_bytes % g.page_size:
                # Unaligned regions migrate less efficiently throughout
                # (partial pages defeat fault batching: 1.5x per page) and
                # additionally straddle one extra page per mapped run,
                # each paying a read-modify-write merge.
                total += pages * per_page * 1.5
                total += m.nmappings * per_page * self.unaligned_penalty
            else:
                total += pages * per_page
        return total

    def extra_wait(
        self, sends: Sequence[MessageSpec], recvs: Sequence[MessageSpec]
    ) -> float:
        # Send-side pages migrate GPU -> host for the NIC to read them.
        return self._fault_cost(sends)

    def compute_penalty(self, recvs: Sequence[MessageSpec]) -> float:
        # Received pages fault host -> GPU on the next kernel.
        return self._fault_cost(recvs)


class StagedTransport(GpuTransport):
    """Manual cudaMemcpy staging through host buffers (pre-CA baseline)."""

    suffix = "staged"
    supports_memmap = False

    def network(self) -> NetworkModel:
        return self.base_net

    def move(
        self, sends: Sequence[MessageSpec], recvs: Sequence[MessageSpec]
    ) -> float:
        down = self.gpu.staged_copy_time(
            sum(m.payload_bytes for m in sends), len(sends)
        )
        up = self.gpu.staged_copy_time(
            sum(m.payload_bytes for m in recvs), len(recvs)
        )
        return down + up
