"""Simulated GPU device: memory spaces and residency tracking.

A :class:`SimDevice` owns "device memory" (plain host NumPy arrays tagged
as device-resident) and tracks, per :class:`DeviceBuffer`, which side last
touched each page -- the state the Unified-Memory cost model needs to
decide whether an access faults.  Computation on device buffers is just
NumPy (correctness path); only the cost models distinguish the spaces.
"""

from __future__ import annotations

import enum
from typing import Dict, Optional

import numpy as np

from repro.hardware.gpu import GpuModel
from repro.util.indexing import ceil_div

__all__ = ["SimDevice", "DeviceBuffer", "Residency"]


class Residency(enum.Enum):
    """Which side currently holds a page of managed memory."""

    HOST = "host"
    DEVICE = "device"


class DeviceBuffer:
    """A page-tracked allocation usable from both sides.

    ``kind`` is ``"device"`` (cudaMalloc: device-only, no UM, no MemMap)
    or ``"managed"`` (UM/ATS: page-migrated on demand).
    """

    def __init__(
        self, device: "SimDevice", nbytes: int, kind: str = "managed"
    ) -> None:
        if kind not in ("device", "managed"):
            raise ValueError(f"kind must be 'device' or 'managed', got {kind!r}")
        if nbytes <= 0:
            raise ValueError("nbytes must be positive")
        self.device = device
        self.kind = kind
        self.nbytes = int(nbytes)
        self.npages = ceil_div(self.nbytes, device.model.page_size)
        self.data = np.zeros(self.nbytes, dtype=np.uint8)
        init = Residency.DEVICE if kind == "device" else Residency.HOST
        self._residency = np.full(self.npages, init == Residency.DEVICE, dtype=bool)

    # ------------------------------------------------------------------
    def _page_range(self, offset: int, nbytes: int) -> slice:
        page = self.device.model.page_size
        if offset < 0 or nbytes < 0 or offset + nbytes > self.nbytes:
            raise ValueError(
                f"range ({offset}, {nbytes}) outside buffer of {self.nbytes}"
            )
        return slice(offset // page, ceil_div(offset + nbytes, page))

    def touch(self, side: Residency, offset: int = 0, nbytes: Optional[int] = None) -> float:
        """Access a byte range from *side*; returns the modelled fault cost.

        For ``device`` buffers host access is an error (that is the whole
        point of CUDA-aware MPI).  For managed buffers, pages resident on
        the other side fault and migrate.
        """
        nbytes = self.nbytes - offset if nbytes is None else nbytes
        if nbytes == 0:
            return 0.0
        if self.kind == "device":
            if side == Residency.HOST:
                raise RuntimeError(
                    "host access to cudaMalloc memory; stage explicitly or"
                    " use CUDA-aware MPI"
                )
            return 0.0
        pages = self._page_range(offset, nbytes)
        want_dev = side == Residency.DEVICE
        faulting = int(np.count_nonzero(self._residency[pages] != want_dev))
        self._residency[pages] = want_dev
        if faulting == 0:
            return 0.0
        model = self.device.model
        moved = faulting * model.page_size
        return faulting * model.fault_overhead + moved / model.um_bw

    def resident_fraction(self, side: Residency) -> float:
        want_dev = side == Residency.DEVICE
        return float(np.count_nonzero(self._residency == want_dev)) / self.npages


class SimDevice:
    """One simulated GPU."""

    def __init__(self, model: Optional[GpuModel] = None) -> None:
        self.model = model or GpuModel()
        self.buffers: Dict[int, DeviceBuffer] = {}

    def alloc(self, nbytes: int, kind: str = "managed") -> DeviceBuffer:
        buf = DeviceBuffer(self, nbytes, kind)
        self.buffers[id(buf)] = buf
        return buf

    def memcpy_time(self, nbytes: int, ncopies: int = 1) -> float:
        """Modelled explicit cudaMemcpy cost (either direction)."""
        return self.model.staged_copy_time(nbytes, ncopies)
