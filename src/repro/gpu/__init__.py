"""Simulated GPU data movement (paper Section 5).

No CUDA device exists in this environment, so the GPU experiments run the
same executed exchange paths as the CPU ones while a *transport* strategy
charges the modelled cost of getting MPI data to and from the (simulated)
device:

* :class:`CudaAwareTransport` -- GPUDirect RDMA: the NIC DMAs device
  memory, no staging, no page faults (``Layout_CA``; MemMap is unsupported
  on ``cudaMalloc`` memory, matching the paper's footnote on cuMemMap).
* :class:`UnifiedMemoryTransport` -- ATS/UM: host-allocated pages migrate
  on fault; MPI on UM pointers pays per-page fault + migration costs, and
  the GPU pays first-touch costs after receives (``Layout_UM``,
  ``MemMap_UM``, ``MPI_Types_UM``).
* :class:`StagedTransport` -- classic manual cudaMemcpy staging through
  host buffers (the pre-CUDA-aware world the paper's prior work measured).
"""

from repro.gpu.device import DeviceBuffer, SimDevice
from repro.gpu.transports import (
    CudaAwareTransport,
    GpuTransport,
    StagedTransport,
    UnifiedMemoryTransport,
)

__all__ = [
    "CudaAwareTransport",
    "DeviceBuffer",
    "GpuTransport",
    "SimDevice",
    "StagedTransport",
    "UnifiedMemoryTransport",
]
