"""Message counting for a given region order.

Given a physical order of the surface regions, the regions destined for one
neighbor occupy a set of positions; each *maximal contiguous run* of those
positions can be sent as a single message (the storage is linear, so runs do
not wrap around).  The total message count of a layout is the sum of run
counts over all neighbors -- the quantity Eq. 1 lower-bounds.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.layout.regions import all_neighbors
from repro.util.bitset import BitSet

__all__ = ["message_runs", "runs_per_neighbor", "messages_for_order"]


def message_runs(order: Sequence[BitSet], neighbor: BitSet) -> List[Tuple[int, int]]:
    """Maximal contiguous runs of *neighbor*'s regions within *order*.

    Returns ``(start, length)`` pairs in region-position units.  Every
    region ``S`` with ``neighbor`` a subset of ``S`` is included.
    """
    if not neighbor:
        raise ValueError("the empty set names the interior, not a neighbor")
    runs: List[Tuple[int, int]] = []
    start = None
    for pos, region in enumerate(order):
        if neighbor.issubset(region):
            if start is None:
                start = pos
        elif start is not None:
            runs.append((start, pos - start))
            start = None
    if start is not None:
        runs.append((start, len(order) - start))
    return runs


def runs_per_neighbor(
    order: Sequence[BitSet], ndim: int
) -> Dict[BitSet, List[Tuple[int, int]]]:
    """Map every neighbor to its message runs under *order*."""
    return {t: message_runs(order, t) for t in all_neighbors(ndim)}


def messages_for_order(order: Sequence[BitSet], ndim: int) -> int:
    """Total messages one rank *sends* per exchange under *order*."""
    return sum(len(runs) for runs in runs_per_neighbor(order, ndim).values())
