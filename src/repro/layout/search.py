"""Search for message-minimal region orders.

``exhaustive_best_order`` enumerates all permutations -- feasible up to
D = 2 (8 regions, 40320 permutations) and proves optimality directly.
``anneal_order`` is a restarted simulated-annealing local search over
permutations using adjacent-window moves; it reliably reaches the Eq. 1
bound (42 messages) for D = 3 in well under a second and is how the
packaged ``SURFACE3D`` constant was originally produced.
"""

from __future__ import annotations

import math
import random
from itertools import permutations
from typing import List, Optional, Sequence, Tuple

from repro.layout.messages import messages_for_order
from repro.layout.regions import all_regions
from repro.util.bitset import BitSet

__all__ = ["exhaustive_best_order", "anneal_order"]


def exhaustive_best_order(ndim: int) -> Tuple[List[BitSet], int]:
    """Optimal order by brute force.  Only sensible for ``ndim <= 2``."""
    regions = all_regions(ndim)
    if len(regions) > 9:
        raise ValueError(
            f"exhaustive search over {len(regions)}! permutations is infeasible;"
            " use anneal_order"
        )
    best_order: Optional[Tuple[BitSet, ...]] = None
    best_count = math.inf
    # Fix the first region to quotient out order reversal symmetry partner
    # sets; correctness is unaffected because message counts are invariant
    # under reversal but not rotation, so we still scan all permutations of
    # the remainder for every choice of head.
    for perm in permutations(regions):
        count = messages_for_order(perm, ndim)
        if count < best_count:
            best_count = count
            best_order = perm
    assert best_order is not None
    return list(best_order), int(best_count)


def anneal_order(
    ndim: int,
    seed: int = 0,
    restarts: int = 8,
    iters: int = 4000,
    target: Optional[int] = None,
) -> Tuple[List[BitSet], int]:
    """Simulated annealing over region permutations.

    Moves: swap two positions, or reverse a window (2-opt style) -- the
    latter is effective because message runs are segment-structured.
    Stops early when *target* (e.g. Eq. 1) is reached.
    """
    rng = random.Random(seed)
    regions = all_regions(ndim)
    n = len(regions)
    best_order = list(regions)
    best_count = messages_for_order(best_order, ndim)

    for _ in range(restarts):
        order = list(regions)
        rng.shuffle(order)
        count = messages_for_order(order, ndim)
        temp = max(2.0, n / 4)
        cooling = (0.01 / temp) ** (1.0 / max(iters, 1))
        for _ in range(iters):
            i, j = sorted(rng.sample(range(n), 2))
            if rng.random() < 0.5:
                order[i], order[j] = order[j], order[i]
                undo = "swap"
            else:
                order[i : j + 1] = reversed(order[i : j + 1])
                undo = "rev"
            new_count = messages_for_order(order, ndim)
            if new_count <= count or rng.random() < math.exp(
                (count - new_count) / temp
            ):
                count = new_count
            else:  # reject: undo the move
                if undo == "swap":
                    order[i], order[j] = order[j], order[i]
                else:
                    order[i : j + 1] = reversed(order[i : j + 1])
            temp *= cooling
            if count < best_count:
                best_count = count
                best_order = list(order)
                if target is not None and best_count <= target:
                    return best_order, best_count
        if target is not None and best_count <= target:
            break
    return best_order, best_count
