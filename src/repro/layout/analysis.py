"""Closed-form message-count analysis (paper Section 3.3, Table 1).

Three regimes for one rank's sends per ghost-zone exchange in ``D``
dimensions:

* ``neighbor_count``  (Eq. 2): full packing, one message per neighbor:
  ``3^D - 1``.
* ``optimal_message_count`` (Eq. 1): the lower bound achievable by layout
  optimization: ``5^D / 3 + (-1)^D / 6 + 1/2``.
* ``basic_message_count`` (Eq. 3): one message per (region, neighbor)
  pair: ``5^D - 3^D``.

Layout optimization can save at most ~2/3 of Basic's messages
asymptotically, and its advantage over packing shrinks as ``D`` grows --
"most effective when dimension is less than 5".
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List

__all__ = [
    "neighbor_count",
    "optimal_message_count",
    "basic_message_count",
    "table1",
]


def neighbor_count(ndim: int) -> int:
    """Eq. 2: number of neighbors, ``3^D - 1``."""
    _check(ndim)
    return 3**ndim - 1


def optimal_message_count(ndim: int) -> int:
    """Eq. 1: minimal sends with layout optimization.

    ``5^D / 3 + (-1)^D / 6 + 1/2`` -- always an integer for ``D >= 1``.
    """
    _check(ndim)
    value = (
        Fraction(5**ndim, 3)
        + Fraction((-1) ** ndim, 6)
        + Fraction(1, 2)
    )
    if value.denominator != 1:
        raise AssertionError(f"Eq. 1 did not yield an integer for D={ndim}")
    return int(value)


def basic_message_count(ndim: int) -> int:
    """Eq. 3: sends with one message per (region, neighbor) pair."""
    _check(ndim)
    return 5**ndim - 3**ndim


def table1(max_dim: int = 5) -> Dict[str, List[int]]:
    """Reproduce Table 1: counts for dimensions ``1 .. max_dim``."""
    dims = list(range(1, max_dim + 1))
    return {
        "Dimensions": dims,
        "Number of neighbors (Eq. 2)": [neighbor_count(d) for d in dims],
        "Layout (Eq. 1)": [optimal_message_count(d) for d in dims],
        "Basic (Eq. 3)": [basic_message_count(d) for d in dims],
    }


def _check(ndim: int) -> None:
    if ndim < 1:
        raise ValueError(f"ndim must be >= 1, got {ndim}")
