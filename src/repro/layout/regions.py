"""Enumeration of surface/ghost regions and neighbors.

Regions and neighbors share the same name space: the non-empty direction
sets over ``D`` axes (``3^D - 1`` of them).  The fundamental send relation
(paper Section 2, Figure 2) is::

    r(S) is sent to N(T)   iff   {} != T is a subset of S

e.g. in 2-D the corner region ``r({A1-, A2-})`` goes to three neighbors
(``{A1-}``, ``{A2-}`` and ``{A1-, A2-}``) while the edge-interior region
``r({A1-})`` goes only to ``N({A1-})``.
"""

from __future__ import annotations

from itertools import product
from typing import List, Tuple

from repro.util.bitset import BitSet

__all__ = [
    "all_regions",
    "all_neighbors",
    "receiving_neighbors",
    "sending_regions",
    "region_brick_extent",
]


def all_regions(ndim: int) -> List[BitSet]:
    """All ``3^D - 1`` non-empty direction sets, in lexicographic
    direction-vector order (axis 1 fastest, -1 < 0 < +1)."""
    if ndim < 1:
        raise ValueError("ndim must be >= 1")
    out = []
    for rev in product((-1, 0, 1), repeat=ndim):
        vec = tuple(reversed(rev))
        if any(vec):
            out.append(BitSet.from_vector(vec))
    return out


def all_neighbors(ndim: int) -> List[BitSet]:
    """Neighbors are named exactly like regions (``3^D - 1`` of them)."""
    return all_regions(ndim)


def receiving_neighbors(region: BitSet) -> List[BitSet]:
    """Every neighbor that must receive surface region ``r(region)``.

    These are the non-empty subsets of *region*'s direction set:
    ``2^|region| - 1`` neighbors.
    """
    elems = list(region)
    if not elems:
        raise ValueError("the empty set names the interior, not a region")
    out = []
    for mask in range(1, 1 << len(elems)):
        out.append(BitSet(e for i, e in enumerate(elems) if mask >> i & 1))
    return out


def sending_regions(neighbor: BitSet, ndim: int) -> List[BitSet]:
    """Every surface region sent to ``N(neighbor)``: the supersets.

    For each axis not constrained by *neighbor* the region may extend in
    either direction or not at all, so there are ``3^(D - |neighbor|)``
    such regions.
    """
    if not neighbor:
        raise ValueError("the empty set names the interior, not a neighbor")
    vec = neighbor.to_vector(ndim)
    free_axes = [i for i, v in enumerate(vec) if v == 0]
    out = []
    for combo in product((-1, 0, 1), repeat=len(free_axes)):
        v = list(vec)
        for axis, d in zip(free_axes, combo):
            v[axis] = d
        out.append(BitSet.from_vector(v))
    return out


def region_brick_extent(
    region: BitSet, grid: Tuple[int, ...], width: int = 1
) -> Tuple[int, ...]:
    """Brick-grid extent of surface region ``r(region)``.

    *grid* is the subdomain's brick-grid shape (interior + surface) and
    *width* the surface thickness in bricks.  Axes constrained by *region*
    contribute *width*; free axes contribute the interior span
    ``grid[i] - 2 * width``.
    """
    vec = region.to_vector(len(grid))
    extent = []
    for g, v in zip(grid, vec):
        if g < 2 * width:
            raise ValueError(
                f"grid extent {g} too small for surface width {width} bricks"
            )
        extent.append(width if v else g - 2 * width)
    return tuple(extent)
