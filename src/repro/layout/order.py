"""Region orders (layouts) shipped with the library.

The paper's library exposes the optimized layouts as constants
(``surface2d`` in Figure 3, ``surface3d`` referenced in Section 3.3); we do
the same.  ``SURFACE2D`` is the perimeter ring order, proven optimal
(9 messages) by exhaustive search (:func:`repro.layout.search.
exhaustive_best_order`).  ``SURFACE3D`` attains the Eq. 1 bound of 42
messages; it was produced by the packaged annealing search
(``anneal_order(3, seed=0, target=42)``) and is re-verified by the test
suite.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.layout.messages import messages_for_order
from repro.layout.regions import all_regions
from repro.util.bitset import BitSet

__all__ = [
    "SURFACE1D",
    "SURFACE2D",
    "SURFACE3D",
    "lexicographic_order",
    "basic_order",
    "grouped_order",
    "surface_order",
    "validate_order",
]


def _from_vectors(vectors) -> List[BitSet]:
    return [BitSet.from_vector(v) for v in vectors]


#: Optimal 1-D layout: two regions, two messages (trivially optimal).
SURFACE1D: List[BitSet] = _from_vectors([(-1,), (1,)])

#: Optimal 2-D layout: walk the perimeter -- corner, edge, corner, ... --
#: so that each edge-neighbor's three regions are consecutive.  9 messages
#: for 8 neighbors (Eq. 1).  Equivalent (up to rotation/reflection) to the
#: paper's Figure 3 ``surface2d``.
SURFACE2D: List[BitSet] = _from_vectors(
    [
        (-1, -1),
        (0, -1),
        (1, -1),
        (1, 0),
        (1, 1),
        (0, 1),
        (-1, 1),
        (-1, 0),
    ]
)

#: Optimal 3-D layout: 42 messages for 26 neighbors (Eq. 1), the constant
#: the paper calls ``surface3d``.  Found by ``anneal_order(3, seed=0,
#: restarts=20, iters=8000, target=42)``.
SURFACE3D: List[BitSet] = _from_vectors(
    [
        (0, 0, -1),
        (0, -1, -1),
        (1, -1, -1),
        (1, 0, -1),
        (1, 1, -1),
        (0, 1, -1),
        (-1, 1, -1),
        (-1, 0, -1),
        (-1, -1, -1),
        (-1, -1, 0),
        (-1, -1, 1),
        (-1, 0, 1),
        (-1, 0, 0),
        (-1, 1, 0),
        (-1, 1, 1),
        (0, 1, 1),
        (0, 1, 0),
        (1, 1, 0),
        (1, 1, 1),
        (1, 0, 1),
        (1, -1, 1),
        (1, -1, 0),
        (1, 0, 0),
        (0, 0, 1),
        (0, -1, 1),
        (0, -1, 0),
    ]
)

_OPTIMAL = {1: SURFACE1D, 2: SURFACE2D, 3: SURFACE3D}


def lexicographic_order(ndim: int) -> List[BitSet]:
    """Regions in direction-vector lexicographic order (axis 1 fastest).

    For 2-D this reproduces the Figure 2(L) numbering (regions 1-8), which
    needs 12 messages -- better than Basic's 16 but short of the optimum.
    """
    return all_regions(ndim)


def basic_order(ndim: int) -> List[BitSet]:
    """Any region order works for the Basic scheme (each region is its own
    message, so relative order is irrelevant); we use lexicographic."""
    return all_regions(ndim)


def grouped_order(ndim: int) -> List[BitSet]:
    """A cheap deterministic heuristic: sort regions by the number of
    constrained axes, then lexicographically.  Groups faces first, then
    edges, then corners; used as an ablation point between lexicographic
    and optimal orders."""
    return sorted(all_regions(ndim), key=lambda r: (len(r), r.to_vector(ndim)))


def surface_order(ndim: int) -> List[BitSet]:
    """The best packaged order for *ndim* (optimal for D <= 3)."""
    try:
        return list(_OPTIMAL[ndim])
    except KeyError:
        raise ValueError(
            f"no packaged optimal order for D={ndim}; run"
            " repro.layout.search.anneal_order"
        ) from None


def validate_order(order: Sequence[BitSet], ndim: int) -> int:
    """Check *order* is a permutation of all regions; return its message
    count.  Raises ``ValueError`` on malformed layouts."""
    expected = set(all_regions(ndim))
    got = list(order)
    if len(got) != len(expected) or set(got) != expected:
        raise ValueError(
            f"layout must be a permutation of the {len(expected)} regions"
            f" of a {ndim}-D subdomain"
        )
    return messages_for_order(got, ndim)
