"""Layout optimization for communication (paper Section 3).

A ``D``-dimensional subdomain has ``3^D - 1`` surface regions and as many
ghost regions and neighbors, each named by a :class:`~repro.util.BitSet` of
signed axes.  Surface region ``r(S)`` must be sent to every neighbor
``N(T)`` with non-empty ``T`` a subset of ``S``.  Choosing the *physical
order* in which regions are stored decides how many contiguous messages the
exchange needs:

* ``Basic`` -- one message per (region, neighbor) pair: ``5^D - 3^D``.
* optimal ``Layout`` -- ``5^D/3 + (-1)^D/6 + 1/2`` messages (Eq. 1).
* full packing -- one per neighbor: ``3^D - 1``.

This package enumerates regions, counts messages for a given order,
provides the paper's optimized ``surface2d``/``surface3d`` constants, and
searches for optimal orders.
"""

from repro.layout.analysis import (
    basic_message_count,
    neighbor_count,
    optimal_message_count,
    table1,
)
from repro.layout.messages import message_runs, messages_for_order, runs_per_neighbor
from repro.layout.order import (
    SURFACE2D,
    SURFACE3D,
    basic_order,
    grouped_order,
    lexicographic_order,
    surface_order,
    validate_order,
)
from repro.layout.regions import all_neighbors, all_regions, receiving_neighbors
from repro.layout.search import anneal_order, exhaustive_best_order

__all__ = [
    "SURFACE2D",
    "SURFACE3D",
    "all_neighbors",
    "all_regions",
    "anneal_order",
    "basic_message_count",
    "basic_order",
    "exhaustive_best_order",
    "grouped_order",
    "lexicographic_order",
    "message_runs",
    "messages_for_order",
    "neighbor_count",
    "optimal_message_count",
    "receiving_neighbors",
    "runs_per_neighbor",
    "surface_order",
    "table1",
    "validate_order",
]
