"""Optional compiled (C) kernel backend for brick stencil plans.

The planned NumPy path still makes three full passes over the halo batch
per tap (gather via ``np.take``, multiply, add).  This module generates a
fused C kernel per ``(stencil taps, brick shape, radius, field offset,
brick elems)`` specialization -- gather, the unrolled tap loop and the
scatter into destination bricks all happen in one pass per brick, reading
straight from the plan's precomputed flat index table.

Bit-exactness with the NumPy path is by construction:

* identical tap order and operand order (``acc = c0*x0`` then
  ``t = ci*xi; acc = acc + t`` per tap -- the scalar form of the plan
  kernels' ``np.multiply(out=)`` / in-place ``np.add`` sequence);
* ``-ffp-contract=off`` so no FMA contraction reorders roundings;
* coefficients embedded as C99 hex float literals (exact bit patterns);
* absent halo cells carry index ``-1`` in the plan table and contribute
  ``coeff * 0.0``, exactly like the re-zeroed cells on the NumPy path.

Backend selection (:func:`backend_choice`) honours the
``REPRO_KERNEL_BACKEND`` environment variable: ``auto`` (default) uses C
when ``cffi`` and a C compiler are available and falls back to NumPy
silently; ``numpy`` forces the fallback; ``cffi`` demands the compiled
backend and raises if it cannot be built.  Compiled kernels are stateless
(all mutable state stays in caller-owned arrays), so the per-process
module cache may hand the same kernel to every rank thread; calls release
the GIL, so rank threads genuinely overlap inside the kernel.

No build-system dependency: the generated translation unit is compiled
with the system ``cc`` straight into a shared object and loaded through
``cffi``'s ABI mode (``dlopen``), sidestepping setuptools entirely.
"""

from __future__ import annotations

import atexit
import math
import os
import shutil
import subprocess
import tempfile
import threading
from typing import Callable, Dict, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "KernelBoundsError",
    "backend_choice",
    "batch_step_kernel",
    "batch_step_source",
    "bounds_guard_enabled",
    "sanitize_flags",
]

try:  # cffi ships with the baked toolchain, but stay importable without it
    import cffi
except ImportError:  # pragma: no cover - environment without cffi
    cffi = None

_lock = threading.Lock()
_kernels: Dict[Tuple, Optional[Callable]] = {}
_build_dirs: list = []

#: sanitizers REPRO_CC_SANITIZE may request, mapped to compile flags
_SANITIZERS = {
    "address": "-fsanitize=address",
    "undefined": "-fsanitize=undefined",
}


class KernelBoundsError(RuntimeError):
    """The bounds-guarded C kernel observed out-of-range table indices.

    Only raised when ``REPRO_CC_BOUNDS=1`` selects the guarded kernel
    variant, which checks every gather load and scatter store against
    the storage extents at runtime and reports the violation count
    instead of touching memory out of bounds.
    """


def sanitize_flags() -> Tuple[str, ...]:
    """Compile flags requested via ``REPRO_CC_SANITIZE``.

    The variable holds a comma-separated subset of ``address`` and
    ``undefined`` (e.g. ``REPRO_CC_SANITIZE=address,undefined``); any
    sanitizer implies a debug-friendly build (``-g``,
    ``-fno-omit-frame-pointer``).  Note ASan interposition requires the
    host process to preload ``libasan`` (``LD_PRELOAD=$(cc
    -print-file-name=libasan.so)``) because the kernel is ``dlopen``ed;
    UBSan needs no preload.
    """
    raw = os.environ.get("REPRO_CC_SANITIZE", "").strip()
    if not raw:
        return ()
    flags = []
    for token in raw.split(","):
        token = token.strip().lower()
        if not token:
            continue
        if token not in _SANITIZERS:
            raise ValueError(
                f"REPRO_CC_SANITIZE token {token!r}: expected a comma"
                f" list of {sorted(_SANITIZERS)}"
            )
        flags.append(_SANITIZERS[token])
    if flags:
        flags += ["-g", "-fno-omit-frame-pointer"]
    return tuple(flags)


def bounds_guard_enabled() -> bool:
    """True when ``REPRO_CC_BOUNDS=1`` selects the guarded kernel."""
    raw = os.environ.get("REPRO_CC_BOUNDS", "0").strip()
    if raw not in ("", "0", "1"):
        raise ValueError(
            f"REPRO_CC_BOUNDS={raw!r}: expected 0 or 1"
        )
    return raw == "1"


def backend_choice() -> str:
    """Resolve ``REPRO_KERNEL_BACKEND`` to ``auto``/``numpy``/``cffi``."""
    choice = os.environ.get("REPRO_KERNEL_BACKEND", "auto").strip().lower()
    if choice not in ("auto", "numpy", "cffi"):
        raise ValueError(
            f"REPRO_KERNEL_BACKEND={choice!r}: expected auto, numpy or cffi"
        )
    return choice


def _compiler() -> Optional[str]:
    return shutil.which("cc") or shutil.which("gcc")


def _hexf(x: float) -> str:
    """C99 hex float literal carrying the exact double bit pattern."""
    return float(x).hex()


def batch_step_source(
    taps: Sequence[Tuple[Tuple[int, ...], float]],
    np_bd: Tuple[int, ...],
    radius: int,
    field_offset: int,
    brick_elems: int,
    guard: bool = False,
) -> str:
    """C source of the fused gather+stencil+scatter brick-batch kernel.

    Signature: ``repro_step(src, dst, index, slots, nbricks)`` where
    *src*/*dst* are the flat storage element arrays, *index* the plan's
    ``(nbricks, halo...)`` flat source-index table and *slots* the
    destination slot per brick.

    With *guard* (``REPRO_CC_BOUNDS=1``) the signature grows
    ``src_elems``/``dst_elems`` extents and returns the number of index
    values that fell outside them: out-of-range gather loads contribute
    ``0.0`` like absent cells, out-of-range scatter stores are skipped,
    and the Python wrapper turns a nonzero count into
    :class:`KernelBoundsError`.  Guarded and unguarded kernels are
    bit-identical on in-bounds tables.
    """
    ndim = len(np_bd)
    halo_np = tuple(b + 2 * radius for b in np_bd)
    halo_elems = int(math.prod(halo_np))
    # Row-major strides of the halo box.
    strides = [1] * ndim
    for a in range(ndim - 2, -1, -1):
        strides[a] = strides[a + 1] * halo_np[a + 1]

    # Redundancy elimination across taps: the cell's centered halo
    # position is computed once (``base``), every tap is a constant
    # offset from it, and taps landing on the same halo cell share one
    # load.  The per-tap arithmetic then degenerates to one load, one
    # multiply, one add.
    tap_offsets = []  # unique halo offsets, in first-use order
    tap_terms = []  # (offset slot, coeff) per tap, in tap order
    for off, coeff in taps:
        off_np = tuple(reversed(off))
        rel = sum(o * s for o, s in zip(off_np, strides))
        if rel not in tap_offsets:
            tap_offsets.append(rel)
        tap_terms.append((tap_offsets.index(rel), coeff))

    center = sum(radius * s for s in strides)
    body = []
    body.append("#include <stdint.h>")
    body.append("")
    ret = "int64_t" if guard else "void"
    body.append(
        f"{ret} repro_step(const double *restrict src,"
        " double *restrict dst,"
    )
    body.append(
        "                const int64_t *restrict index,"
        " const int64_t *restrict slots,"
    )
    if guard:
        body.append(
            "                int64_t nbricks,"
            " int64_t src_elems, int64_t dst_elems)"
        )
    else:
        body.append("                int64_t nbricks)")
    body.append("{")
    if guard:
        body.append("    int64_t violations = 0;")
    body.append("    int64_t b;")
    body.append("    for (b = 0; b < nbricks; ++b) {")
    body.append(f"        const int64_t *idx = index + b * {halo_elems};")
    body.append(
        f"        double *out = dst + slots[b] * {brick_elems}"
        f" + {field_offset};"
    )
    if guard:
        body.append(
            f"        const int64_t out_base = slots[b] * {brick_elems}"
            f" + {field_offset};"
        )
    indent = "        "
    loop_vars = [f"i{a}" for a in range(ndim)]
    for a in range(ndim):
        body.append(
            f"{indent}for (int64_t {loop_vars[a]} = 0;"
            f" {loop_vars[a]} < {np_bd[a]}; ++{loop_vars[a]}) {{"
        )
        indent += "    "
    base = " + ".join(f"{v} * {s}" for v, s in zip(loop_vars, strides))
    body.append(f"{indent}const int64_t base = {base} + {center};")
    for slot, rel in enumerate(tap_offsets):
        body.append(f"{indent}const int64_t j{slot} = idx[base + ({rel})];")
        if guard:
            body.append(
                f"{indent}const int ok{slot} ="
                f" j{slot} >= 0 && j{slot} < src_elems;"
            )
            body.append(
                f"{indent}if (j{slot} >= src_elems || j{slot} < -1)"
                " ++violations;"
            )
            body.append(
                f"{indent}const double x{slot} ="
                f" ok{slot} ? src[j{slot}] : 0.0;"
            )
        else:
            body.append(
                f"{indent}const double x{slot} ="
                f" j{slot} < 0 ? 0.0 : src[j{slot}];"
            )
    slot0, c0 = tap_terms[0]
    body.append(f"{indent}double acc = {_hexf(c0)} * x{slot0};")
    if len(tap_terms) > 1:
        body.append(f"{indent}double t;")
        for slot, coeff in tap_terms[1:]:
            body.append(f"{indent}t = {_hexf(coeff)} * x{slot};")
            body.append(f"{indent}acc = acc + t;")
    # Output cell in brick row-major order, matching the loop nest.
    bstr = [1] * ndim
    for a in range(ndim - 2, -1, -1):
        bstr[a] = bstr[a + 1] * np_bd[a + 1]
    cell = " + ".join(f"{v} * {s}" for v, s in zip(loop_vars, bstr))
    if guard:
        body.append(
            f"{indent}if (out_base >= 0 &&"
            f" out_base + ({cell}) < dst_elems)"
        )
        body.append(f"{indent}    out[{cell}] = acc;")
        body.append(f"{indent}else ++violations;")
    else:
        body.append(f"{indent}out[{cell}] = acc;")
    for a in range(ndim):
        indent = indent[:-4]
        body.append(f"{indent}}}")
    body.append("    }")
    if guard:
        body.append("    return violations;")
    body.append("}")
    return "\n".join(body) + "\n"


def _build(
    source: str,
    guard: bool = False,
    extra_flags: Sequence[str] = (),
) -> Optional[Callable]:
    """Compile *source* into a loaded kernel; None when the toolchain
    refuses (caller decides whether that is fatal)."""
    if cffi is None:
        return None
    cc = _compiler()
    if cc is None:
        return None
    workdir = tempfile.mkdtemp(prefix="repro-ckernel-")
    _build_dirs.append(workdir)
    c_path = os.path.join(workdir, "kernel.c")
    so_path = os.path.join(workdir, "kernel.so")
    with open(c_path, "w") as fh:
        fh.write(source)
    cmd = [
        cc, "-O3", "-fPIC", "-shared", "-ffp-contract=off",
        *extra_flags,
        "-o", so_path, c_path,
    ]
    try:
        subprocess.run(
            cmd, check=True, capture_output=True, timeout=120
        )
    except (OSError, subprocess.SubprocessError):
        return None
    ffi = cffi.FFI()
    if guard:
        ffi.cdef(
            "int64_t repro_step(const double *src, double *dst,"
            " const int64_t *index, const int64_t *slots,"
            " int64_t nbricks, int64_t src_elems, int64_t dst_elems);"
        )
    else:
        ffi.cdef(
            "void repro_step(const double *src, double *dst,"
            " const int64_t *index, const int64_t *slots,"
            " int64_t nbricks);"
        )
    try:
        lib = ffi.dlopen(so_path)
    except OSError:
        return None

    if guard:

        def step(
            src_data: np.ndarray,
            dst_data: np.ndarray,
            index: np.ndarray,
            slots: np.ndarray,
            _ffi=ffi,
            _fn=lib.repro_step,
        ) -> None:
            violations = _fn(
                _ffi.cast("const double *", _ffi.from_buffer(src_data)),
                _ffi.cast("double *", _ffi.from_buffer(dst_data)),
                _ffi.cast("const int64_t *", _ffi.from_buffer(index)),
                _ffi.cast("const int64_t *", _ffi.from_buffer(slots)),
                len(slots),
                src_data.size,
                dst_data.size,
            )
            if violations:
                raise KernelBoundsError(
                    f"bounds-guarded kernel observed {violations}"
                    " out-of-range table index value(s)"
                    " (REPRO_CC_BOUNDS=1)"
                )

    else:

        def step(
            src_data: np.ndarray,
            dst_data: np.ndarray,
            index: np.ndarray,
            slots: np.ndarray,
            _ffi=ffi,
            _fn=lib.repro_step,
        ) -> None:
            _fn(
                _ffi.cast("const double *", _ffi.from_buffer(src_data)),
                _ffi.cast("double *", _ffi.from_buffer(dst_data)),
                _ffi.cast("const int64_t *", _ffi.from_buffer(index)),
                _ffi.cast("const int64_t *", _ffi.from_buffer(slots)),
                len(slots),
            )

    step.__source__ = source
    step.__lib__ = lib  # keep the dlopen handle alive with the kernel
    return step


@atexit.register
def _cleanup() -> None:  # pragma: no cover - exit path
    for d in _build_dirs:
        shutil.rmtree(d, ignore_errors=True)


def batch_step_kernel(
    taps: Sequence[Tuple[Tuple[int, ...], float]],
    np_bd: Tuple[int, ...],
    radius: int,
    field_offset: int,
    brick_elems: int,
    dtype: np.dtype,
) -> Optional[Callable]:
    """The fused C step kernel for this specialization, or ``None``.

    ``None`` means "use the NumPy plan path": backend forced off, a
    non-double dtype, or (under ``auto``) a missing/failing toolchain.
    Compiled kernels are cached per specialization for the process.
    """
    choice = backend_choice()
    if choice == "numpy":
        return None
    if np.dtype(dtype) != np.float64:
        if choice == "cffi":
            raise RuntimeError(
                "REPRO_KERNEL_BACKEND=cffi supports float64 plans only"
            )
        return None
    sanitize = sanitize_flags()
    guard = bounds_guard_enabled()
    key = (
        tuple(taps), tuple(np_bd), int(radius), int(field_offset),
        int(brick_elems), sanitize, guard,
    )
    with _lock:
        if key in _kernels:
            fn = _kernels[key]
        else:
            source = batch_step_source(
                taps, tuple(np_bd), radius, field_offset, brick_elems,
                guard=guard,
            )
            fn = _build(source, guard=guard, extra_flags=sanitize)
            _kernels[key] = fn
    if fn is None and choice == "cffi":
        raise RuntimeError(
            "REPRO_KERNEL_BACKEND=cffi but the compiled kernel backend is"
            " unavailable (cffi or a C compiler is missing, or compilation"
            " failed)"
        )
    return fn
