"""Reference implementation: global periodic-domain stencil via np.roll.

The oracle for every distributed test: apply the stencil to the *entire*
global domain with periodic boundary conditions, with no decomposition, no
ghost zones and no communication.  ``np.roll`` implements the periodic
shifts exactly, so any exchange + local-compute pipeline must reproduce
this bit-for-bit (same dtype, same tap order).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.stencil.spec import StencilSpec

__all__ = ["apply_periodic_reference"]


def apply_periodic_reference(
    grid: np.ndarray, spec: StencilSpec, steps: int = 1
) -> np.ndarray:
    """Apply *spec* to the global periodic *grid* for *steps* timesteps.

    *grid* is in numpy axis order (axis D first, axis 1 last/fastest); tap
    offsets are in axis order (axis 1 first) and are mapped accordingly.
    A positive tap offset reads the neighbor in the positive direction,
    i.e. contributes ``roll(grid, -offset)``.
    """
    if grid.ndim != spec.ndim:
        raise ValueError(f"grid is {grid.ndim}-D, stencil is {spec.ndim}-D")
    if steps < 0:
        raise ValueError("steps cannot be negative")
    cur = grid.astype(np.float64, copy=True)
    for _ in range(steps):
        acc: Optional[np.ndarray] = None
        for off, coeff in spec.taps:
            shifted = np.roll(
                cur, shift=tuple(-o for o in reversed(off)), axis=tuple(range(cur.ndim))
            )
            term = coeff * shifted
            acc = term if acc is None else acc + term
        cur = acc
    return cur
