"""Vectorized stencil application on lexicographic extended arrays.

The extended array covers the subdomain plus its ghost shell; the stencil
is applied to every *owned* point (the subdomain proper), reading up to
``radius`` elements into the ghost shell, which must have been filled by a
prior exchange.  Pure NumPy slicing -- no Python-level loops over grid
points (the guide's vectorization idiom).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.stencil.spec import StencilSpec

__all__ = ["apply_array_stencil", "owned_slices"]


def owned_slices(extent: Sequence[int], ghost: int) -> Tuple[slice, ...]:
    """Numpy slices selecting the owned region of an extended array.

    *extent* is in axis order (axis 1 first); the returned slices are in
    numpy order (axis D first).
    """
    return tuple(slice(ghost, ghost + e) for e in reversed(extent))


def apply_array_stencil(
    arr: np.ndarray,
    out: np.ndarray,
    spec: StencilSpec,
    extent: Sequence[int],
    ghost: int,
    margin: int = 0,
) -> None:
    """``out[region] = sum_t c_t * arr[region + offset_t]``.

    *arr* and *out* are extended arrays of identical shape; the computed
    region is the owned box grown by *margin* elements per side (margin 0
    = owned only; margin > 0 computes redundantly into the ghost shell
    for communication avoidance, and requires ``margin + radius`` of
    valid ghost data).  Tap offsets are in axis order (axis 1 first) and
    are applied to the matching numpy axes (reversed).
    """
    if arr.shape != out.shape:
        raise ValueError("arr and out must have the same extended shape")
    if spec.ndim != len(extent):
        raise ValueError(
            f"stencil is {spec.ndim}-D but the domain is {len(extent)}-D"
        )
    if margin < 0:
        raise ValueError("margin cannot be negative")
    if spec.radius + margin > ghost:
        raise ValueError(
            f"stencil radius {spec.radius} plus margin {margin} exceeds"
            f" ghost width {ghost}"
        )
    expected = tuple(e + 2 * ghost for e in reversed(extent))
    if arr.shape != expected:
        raise ValueError(f"expected extended shape {expected}, got {arr.shape}")

    lo = ghost - margin
    acc: Optional[np.ndarray] = None
    for off, coeff in spec.taps:
        slices = tuple(
            slice(lo + o, lo + o + e + 2 * margin)
            for o, e in zip(reversed(off), reversed(extent))
        )
        term = coeff * arr[slices]
        acc = term if acc is None else acc + term
    region = tuple(
        slice(lo, lo + e + 2 * margin) for e in reversed(extent)
    )
    out[region] = acc
