"""Compiled execution plans for the executed timestep loop.

The paper's thesis is that on-node data movement dominates strong-scaled
stencil communication; this module applies the same discipline to the
reproduction's own hottest Python path.  The generic kernels re-derive
slices, allocate halo/accumulator temporaries, and issue ``3^D`` separate
fancy-index gathers on every chunk of every timestep.  A *plan* hoists all
of that out of the loop, once per ``(stencil spec, brick geometry, slot
set, field offset)`` key:

* **Fused gather plan** -- a flat int64 source-index table built once, so
  the per-step halo gather is a single ``np.take`` into a persistent
  buffer instead of ``3^D`` direction-wise fancy-index assignments.
  Halo cells whose source brick is absent (adjacency ``-1``) are located
  at plan build; per step they are re-zeroed with one small fancy write.
* **Persistent work buffers** -- halo batch, accumulator and tap scratch
  are allocated once and reused across timesteps and chunks.
* **Specialized kernels** -- the tap loop runs as a codegen-compiled,
  fully-unrolled kernel (:mod:`repro.stencil.codegen`) that accumulates
  with ``np.multiply(..., out=)`` / in-place ``np.add``, making zero
  temporaries per step.

The generic kernels in :mod:`repro.stencil.kernels` and
:mod:`repro.stencil.brick_kernels` remain the bit-identity reference; the
test suite asserts planned results equal them exactly.

Plans own mutable scratch buffers and therefore must not be shared across
simulated ranks (threads); the executed driver builds one plan per rank
per cycle position.  Set ``REPRO_NO_PLAN=1`` (or pass
``use_plans=False`` to :func:`repro.core.driver.run_executed`) to fall
back to the generic kernels for debugging.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro.brick.info import BrickInfo, all_direction_vectors, direction_index
from repro.brick.storage import BrickStorage
from repro.obs import METRICS as _METRICS
from repro.obs import TRACER as _TRACER
from repro.stencil.cbackend import batch_step_kernel
from repro.stencil.codegen import (
    generate_array_box_kernel,
    generate_array_plan_kernel,
    generate_batch_plan_kernel,
)
from repro.stencil.spec import StencilSpec

__all__ = [
    "ArrayStencilPlan",
    "ArrayRegionPlan",
    "BrickStencilPlan",
    "compile_array_plan",
    "compile_brick_plan",
    "compile_array_phase_plans",
    "compile_brick_phase_plans",
    "split_array_region",
    "split_brick_slots",
    "ghost_slot_mask",
    "plans_enabled",
]


def plans_enabled(flag: Optional[bool] = None) -> bool:
    """Resolve whether compiled plans should be used.

    An explicit *flag* wins; otherwise plans are on unless the
    ``REPRO_NO_PLAN`` environment variable is set to a non-empty,
    non-``"0"`` value.
    """
    if flag is not None:
        return bool(flag)
    return os.environ.get("REPRO_NO_PLAN", "0") in ("", "0")


# ----------------------------------------------------------------------
# Brick-storage plans
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class _GatherChunk:
    """One chunk's precomputed gather/scatter tables."""

    slots: np.ndarray  # the batch of brick slots, in compute order
    index: np.ndarray  # (n, *halo_np) flat source indices into storage
    absent: Optional[np.ndarray]  # flat halo positions with no source brick
    scatter: Union[slice, np.ndarray]  # row selector into the dst brick view

    @property
    def n(self) -> int:
        return len(self.slots)


def _margin_slices(d: int, bd: int, r: int) -> Tuple[slice, slice]:
    """(target-in-halo, source-in-neighbor) slices along one axis."""
    if d == -1:
        return slice(0, r), slice(bd - r, bd)
    if d == 0:
        return slice(r, r + bd), slice(0, bd)
    return slice(r + bd, bd + 2 * r), slice(0, r)


# Per-(brick shape, radius) halo template maps, shared by every chunk and
# every plan: for each flattened halo position, which of the 3^D adjacency
# directions it reads from and the ravelled within-brick source offset.
# Building these once turns per-chunk index-table construction from 3^D
# meshgrid assemblies into two vectorized lookups -- the difference between
# a ~77 ms and a ~2 ms plan compile per run (plans are rebuilt every run:
# the BrickInfo that scopes the plan cache is itself rebuilt per rank).
_halo_templates: Dict[Tuple, Tuple[np.ndarray, np.ndarray]] = {}


def _halo_template(
    bd: Tuple[int, ...], radius: int, ndim: int
) -> Tuple[np.ndarray, np.ndarray]:
    key = (tuple(bd), int(radius))
    tpl = _halo_templates.get(key)
    if tpl is not None:
        return tpl
    np_bd = tuple(reversed(bd))
    halo_np = tuple(b + 2 * radius for b in np_bd)
    dir_map = np.empty(halo_np, dtype=np.int64)
    within = np.empty(halo_np, dtype=np.int64)
    for vec in all_direction_vectors(ndim):
        if radius == 0 and any(vec):
            continue
        tgt_slices, src_slices = [], []
        for axis in range(ndim - 1, -1, -1):  # numpy order: axis D first
            t, s = _margin_slices(vec[axis], bd[axis], radius)
            tgt_slices.append(t)
            src_slices.append(s)
        coords = np.meshgrid(
            *(np.arange(s.start, s.stop) for s in src_slices), indexing="ij"
        )
        within[tuple(tgt_slices)] = np.ravel_multi_index(coords, np_bd)
        dir_map[tuple(tgt_slices)] = direction_index(vec)
    tpl = (dir_map.reshape(-1), within.reshape(-1))
    _halo_templates[key] = tpl
    return tpl


def _build_gather_chunk(
    info: BrickInfo,
    slots: np.ndarray,
    radius: int,
    field_offset: int,
    brick_elems: int,
) -> _GatherChunk:
    """Index tables for one batch, mirroring ``gather_halo_batch``."""
    bd = info.brick_dim
    ndim = info.ndim
    np_bd = tuple(reversed(bd))
    halo_np = tuple(b + 2 * radius for b in np_bd)
    n = len(slots)
    dir_map, within = _halo_template(bd, radius, ndim)
    src = info.adjacency[slots][:, dir_map]  # (n, halo cells) source bricks
    index = src * brick_elems
    index += within + field_offset
    absent_flat: Optional[np.ndarray] = None
    mask = src < 0
    if mask.any():
        absent_flat = np.flatnonzero(mask)
        # Sentinel -1: np.take reads the (re-zeroed) last element, the C
        # backend branches to a 0.0 contribution directly.
        index.reshape(-1)[absent_flat] = -1
    index = np.ascontiguousarray(index.reshape((n,) + halo_np))
    # Contiguous slot batches scatter with one slice assignment.
    scatter: Union[slice, np.ndarray]
    if n and slots[-1] - slots[0] + 1 == n and np.all(np.diff(slots) == 1):
        scatter = slice(int(slots[0]), int(slots[0]) + n)
    else:
        scatter = slots
    return _GatherChunk(slots, index, absent_flat, scatter)


class BrickStencilPlan:
    """Compiled executor of one stencil over a fixed brick slot set.

    Precomputes fused gather tables, owns persistent halo/accumulator/tap
    buffers, and dispatches the codegen-compiled batch kernel.  The
    per-step work is: one ``np.take`` gather per chunk, the unrolled
    in-place tap loop, and one scatter into the destination bricks.
    """

    def __init__(
        self,
        spec: StencilSpec,
        info: BrickInfo,
        slots: np.ndarray,
        field_offset: int = 0,
        dtype=np.float64,
        chunk: int = 512,
    ) -> None:
        if spec.ndim != info.ndim:
            raise ValueError(
                f"stencil is {spec.ndim}-D, bricks are {info.ndim}-D"
            )
        r = spec.radius
        bd = info.brick_dim
        if r > min(bd):
            raise ValueError(
                f"stencil radius {r} exceeds brick dimension {min(bd)};"
                " enlarge the bricks"
            )
        if chunk <= 0:
            raise ValueError("chunk must be positive")
        volume = int(math.prod(bd))
        brick_elems = volume * info.nfields
        if not 0 <= field_offset <= brick_elems - volume:
            raise ValueError(
                f"field offset {field_offset} leaves no room for a"
                f" {volume}-element field in {brick_elems}-element bricks"
            )
        self.spec = spec
        self.info = info
        self.field_offset = int(field_offset)
        self.dtype = np.dtype(dtype)
        self.brick_elems = brick_elems
        self.volume = volume
        self._np_bd = tuple(reversed(bd))
        slots = np.asarray(slots, dtype=np.int64)
        self.slots = slots
        self.chunks: List[_GatherChunk] = [
            _build_gather_chunk(
                info, slots[lo : lo + chunk], r, self.field_offset, brick_elems
            )
            for lo in range(0, len(slots), chunk)
        ]
        # Codegen seam: the fused C backend replaces the whole per-chunk
        # gather/taps/scatter sequence when available (and allowed by
        # REPRO_KERNEL_BACKEND); otherwise the NumPy plan path below runs
        # with its persistent scratch.  Results are bit-identical.
        self._ckernel = batch_step_kernel(
            spec.taps, self._np_bd, r, self.field_offset, brick_elems,
            self.dtype,
        )
        if self._ckernel is None:
            nmax = max((c.n for c in self.chunks), default=0)
            halo_np = tuple(b + 2 * r for b in self._np_bd)
            self._halo = np.zeros((nmax,) + halo_np, dtype=self.dtype)
            self._acc = np.empty((nmax,) + self._np_bd, dtype=self.dtype)
            self._tmp = np.empty_like(self._acc)
            self._kernel = generate_batch_plan_kernel(spec, bd)

    def _check_storage(self, storage: BrickStorage, role: str) -> None:
        if storage.brick_elems != self.brick_elems:
            raise ValueError(
                f"{role} storage has {storage.brick_elems}-element bricks,"
                f" plan expects {self.brick_elems}"
            )
        if storage.dtype != self.dtype:
            raise ValueError(
                f"{role} storage dtype {storage.dtype} != plan {self.dtype}"
            )
        if storage.nslots < self.info.nslots:
            raise ValueError(
                f"{role} storage has {storage.nslots} slots, adjacency"
                f" spans {self.info.nslots}"
            )

    def execute(self, src: BrickStorage, dst: BrickStorage) -> None:
        """Apply the stencil to every planned slot, reading *src*,
        writing *dst* (which must be distinct storages)."""
        if src is dst:
            raise ValueError("plans require distinct src and dst storages")
        self._check_storage(src, "src")
        self._check_storage(dst, "dst")
        track = _METRICS.enabled
        ck = self._ckernel
        if ck is not None:
            src_data, dst_data = src.data, dst.data
            for ch in self.chunks:
                if track:
                    _METRICS.count(
                        "plan.halo_cells_gathered", int(ch.index.size)
                    )
                ck(src_data, dst_data, ch.index, ch.slots)
            return
        src_flat = src.data.reshape(-1)
        fo, vol = self.field_offset, self.volume
        dst_bricks = dst.data[:, fo : fo + vol].reshape(
            (dst.nslots,) + self._np_bd
        )
        for ch in self.chunks:
            n = ch.n
            halo = self._halo[:n]
            np.take(src_flat, ch.index, out=halo)
            if track:
                _METRICS.count("plan.halo_cells_gathered", int(ch.index.size))
            if ch.absent is not None:
                halo.reshape(-1)[ch.absent] = 0.0
            acc = self._acc[:n]
            self._kernel(halo, acc, self._tmp[:n])
            dst_bricks[ch.scatter] = acc


def compile_brick_plan(
    spec: StencilSpec,
    info: BrickInfo,
    slots: np.ndarray,
    field_offset: int = 0,
    dtype=np.float64,
    chunk: int = 512,
) -> BrickStencilPlan:
    """Build (or fetch from the per-geometry cache) a brick plan.

    The cache lives on the :class:`BrickInfo` instance itself -- the
    geometry *is* the cache scope, and an id()-keyed module cache could
    hand a new geometry a stale plan.  Keys are
    ``(taps, slot set, field offset, dtype, chunk)``.  Cached plans hold
    mutable scratch: share them only within one rank/thread.
    """
    cache: Dict[Tuple, BrickStencilPlan] = info.__dict__.setdefault(
        "_stencil_plan_cache", {}
    )
    slots = np.asarray(slots, dtype=np.int64)
    key = (
        spec.taps,
        slots.tobytes(),
        int(field_offset),
        np.dtype(dtype).str,
        int(chunk),
    )
    plan = cache.get(key)
    if plan is None:
        if _METRICS.enabled:
            _METRICS.count("plan.cache_misses")
        with _TRACER.span("plan.compile", nslots=len(slots)):
            plan = BrickStencilPlan(
                spec, info, slots, field_offset, dtype, chunk
            )
        cache[key] = plan
    elif _METRICS.enabled:
        _METRICS.count("plan.cache_hits")
    return plan


# ----------------------------------------------------------------------
# Interior/surface phase split (compute-comm overlap)
#
# A phased timestep starts the exchange, computes every cell whose taps
# read no exchanged ghost data while the messages are in flight, completes
# the receives, then sweeps the rest.  The split below classifies compute
# work by what it *reads*: a brick is interior when no adjacency neighbor
# is a ghost-section slot; an array cell is interior when its stencil
# footprint stays inside the owned box.  Interior and surface partitions
# are disjoint and cover the unphased plan exactly, and each cell/brick is
# computed by the same kernel with the same tap order either way, so
# phased results are bit-identical to the unphased sweep.
# ----------------------------------------------------------------------

def split_brick_slots(
    info: BrickInfo, ghost_mask: np.ndarray, slots: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Partition *slots* into ``(interior, surface)`` by ghost reads.

    *ghost_mask* is a boolean array over storage slots, true for slots
    belonging to ghost sections (see :func:`ghost_slot_mask`).  A slot
    whose ``3^D`` adjacency row references any ghost slot -- including
    itself, via the central direction -- is surface; absent neighbors
    (adjacency ``-1``) read zeros the exchange never touches and do not
    force a slot to surface.  Original slot order is preserved within
    each part (plans chunk independently; per-brick results do not depend
    on batch composition).
    """
    slots = np.asarray(slots, dtype=np.int64)
    if len(slots) == 0:
        return slots, slots
    mask = np.asarray(ghost_mask, dtype=bool)
    adj = info.adjacency[slots]
    present = adj >= 0
    reads_ghost = (mask[np.where(present, adj, 0)] & present).any(axis=1)
    return slots[~reads_ghost], slots[reads_ghost]


def ghost_slot_mask(assignment) -> np.ndarray:
    """Boolean mask over storage slots: true for ghost-section slots."""
    mask = np.zeros(assignment.total_slots, dtype=bool)
    for s in assignment.sections:
        if s.kind == "ghost" and s.nbricks:
            mask[s.start: s.end] = True
    return mask


def compile_brick_phase_plans(
    spec: StencilSpec,
    info: BrickInfo,
    assignment,
    slots: np.ndarray,
    field_offset: int = 0,
    dtype=np.float64,
) -> Tuple[Optional["BrickStencilPlan"], Optional["BrickStencilPlan"]]:
    """``(interior plan, surface plan)`` for one cycle position's slots.

    Either part may be ``None`` when empty (tiny subdomains have no
    interior bricks; a neighborless rank has no surface).  Compiled
    through :func:`compile_brick_plan`, so the sub-plans share the
    per-geometry cache with the unphased plan.
    """
    interior, surface = split_brick_slots(info, ghost_slot_mask(assignment), slots)
    return (
        compile_brick_plan(spec, info, interior, field_offset, dtype)
        if len(interior)
        else None,
        compile_brick_plan(spec, info, surface, field_offset, dtype)
        if len(surface)
        else None,
    )


def split_array_region(
    extent: Sequence[int], ghost: int, margin: int, radius: int
) -> Tuple[Optional[Tuple], List[Tuple]]:
    """``(interior box, surface boxes)`` of one cycle-position region.

    Boxes are per-numpy-axis ``(lo, hi)`` ranges in extended-array
    coordinates.  The computed region is the owned box grown by *margin*;
    the interior is the owned box shrunk by *radius* (the cells whose
    taps stay inside owned data), and the surface shell is decomposed
    into at most ``2 * ndim`` disjoint slabs (axis ``a``'s slabs span the
    interior range on axes before ``a`` and the full region after it).
    ``(None, [region])`` when the subdomain is too thin for any interior.
    """
    ext_np = tuple(int(e) for e in reversed(tuple(extent)))
    lo = [ghost - margin] * len(ext_np)
    hi = [ghost + e + margin for e in ext_np]
    ilo = [ghost + radius] * len(ext_np)
    ihi = [ghost + e - radius for e in ext_np]
    region = tuple(zip(lo, hi))
    if any(l >= h for l, h in zip(ilo, ihi)):
        return None, [region]
    boxes: List[Tuple] = []
    for a in range(len(ext_np)):
        for blo, bhi in ((lo[a], ilo[a]), (ihi[a], hi[a])):
            if bhi <= blo:
                continue
            box = [
                (ilo[j], ihi[j]) if j < a else (lo[j], hi[j])
                for j in range(len(ext_np))
            ]
            box[a] = (blo, bhi)
            boxes.append(tuple(box))
    return tuple(zip(ilo, ihi)), boxes


class ArrayRegionPlan:
    """Compiled executor over explicit sub-boxes of an extended array.

    The phase-split form of :class:`ArrayStencilPlan`: one in-place box
    kernel (plus persistent box-shaped scratch) per sub-box.  Executing
    the interior plan and then the surface plan over a disjoint cover
    touches every region cell exactly once, bit-identically to the
    full-region plan.
    """

    def __init__(
        self,
        spec: StencilSpec,
        extent: Sequence[int],
        ghost: int,
        boxes: Sequence[Tuple],
        dtype=np.float64,
    ) -> None:
        extent = tuple(int(e) for e in extent)
        if not boxes:
            raise ValueError("ArrayRegionPlan needs at least one box")
        self.spec = spec
        self.extent = extent
        self.ghost = int(ghost)
        self.dtype = np.dtype(dtype)
        self._expected = tuple(e + 2 * ghost for e in reversed(extent))
        self._steps = []
        for box in boxes:
            shape = tuple(hi - lo for lo, hi in box)
            self._steps.append(
                (
                    generate_array_box_kernel(spec, extent, ghost, box),
                    np.empty(shape, dtype=self.dtype),
                )
            )
        self.cells = int(sum(np.prod([hi - lo for lo, hi in b]) for b in boxes))

    def execute(self, arr: np.ndarray, out: np.ndarray) -> None:
        """Apply the stencil over every planned box, reading *arr*."""
        if arr is out:
            raise ValueError("plans require distinct arr and out arrays")
        if arr.shape != self._expected or out.shape != self._expected:
            raise ValueError(
                f"expected extended shape {self._expected},"
                f" got {arr.shape} / {out.shape}"
            )
        for kernel, tmp in self._steps:
            kernel(arr, out, tmp)


def compile_array_phase_plans(
    spec: StencilSpec,
    extent: Sequence[int],
    ghost: int,
    margin: int = 0,
    dtype=np.float64,
) -> Tuple[Optional[ArrayRegionPlan], ArrayRegionPlan]:
    """``(interior plan, surface plan)`` for one array cycle position."""
    interior_box, surface_boxes = split_array_region(
        extent, ghost, margin, spec.radius
    )
    interior = (
        ArrayRegionPlan(spec, extent, ghost, [interior_box], dtype)
        if interior_box is not None
        else None
    )
    surface = ArrayRegionPlan(spec, extent, ghost, surface_boxes, dtype)
    return interior, surface


# ----------------------------------------------------------------------
# Extended-array plans
# ----------------------------------------------------------------------

class ArrayStencilPlan:
    """Compiled executor of one stencil over an extended array geometry.

    Wraps the codegen in-place array kernel with a persistent tap scratch
    buffer; used by the pack/mpi_types/shift executed paths.  One plan per
    ``(stencil, extent, ghost, margin, dtype)``; results are bit-identical
    to :func:`repro.stencil.kernels.apply_array_stencil`.
    """

    def __init__(
        self,
        spec: StencilSpec,
        extent: Sequence[int],
        ghost: int,
        margin: int = 0,
        dtype=np.float64,
    ) -> None:
        extent = tuple(int(e) for e in extent)
        if spec.ndim != len(extent):
            raise ValueError(
                f"stencil is {spec.ndim}-D but the domain is {len(extent)}-D"
            )
        if margin < 0:
            raise ValueError("margin cannot be negative")
        if spec.radius + margin > ghost:
            raise ValueError(
                f"stencil radius {spec.radius} plus margin {margin} exceeds"
                f" ghost width {ghost}"
            )
        self.spec = spec
        self.extent = extent
        self.ghost = int(ghost)
        self.margin = int(margin)
        self.dtype = np.dtype(dtype)
        self._expected = tuple(e + 2 * ghost for e in reversed(extent))
        region_shape = tuple(e + 2 * margin for e in reversed(extent))
        self._tmp = np.empty(region_shape, dtype=self.dtype)
        self._kernel = generate_array_plan_kernel(spec, extent, ghost, margin)

    def execute(self, arr: np.ndarray, out: np.ndarray) -> None:
        """``out[region] = stencil(arr)`` over the owned box grown by the
        planned margin; *arr* and *out* must be distinct extended arrays."""
        if arr is out:
            raise ValueError("plans require distinct arr and out arrays")
        if arr.shape != self._expected or out.shape != self._expected:
            raise ValueError(
                f"expected extended shape {self._expected},"
                f" got {arr.shape} / {out.shape}"
            )
        self._kernel(arr, out, self._tmp)


def compile_array_plan(
    spec: StencilSpec,
    extent: Sequence[int],
    ghost: int,
    margin: int = 0,
    dtype=np.float64,
) -> ArrayStencilPlan:
    """Build an array plan (the compiled kernel inside is cached globally;
    the scratch-owning plan object is per caller)."""
    return ArrayStencilPlan(spec, extent, ghost, margin, dtype)
