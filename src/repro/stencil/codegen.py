"""Runtime specialization of stencil kernels (code-generator lite).

The brick library's performance comes partly from a code generator that
emits specialized, fully-unrolled stencil code per (stencil, brick shape)
pair (paper Section 6).  This module is the Python analogue: it generates
the source of a specialized kernel -- taps unrolled, slices precomputed as
constants, coefficient constants folded in, accumulation done in-place to
avoid temporaries -- compiles it with :func:`compile`/``exec``, and caches
it per specialization key.

The generic kernels in :mod:`repro.stencil.kernels` and
:mod:`repro.stencil.brick_kernels` remain the reference; the test suite
asserts the generated kernels are bit-identical to them, and the
benchmark suite measures the speedup (tap-loop and slice-building
overheads disappear).
"""

from __future__ import annotations

from typing import Callable, Dict, Sequence, Tuple

import numpy as np

from repro.stencil.spec import StencilSpec

__all__ = [
    "generate_array_kernel",
    "generate_batch_kernel",
    "generate_array_plan_kernel",
    "generate_batch_plan_kernel",
    "generate_array_box_kernel",
    "array_kernel_source",
    "batch_kernel_source",
    "array_plan_kernel_source",
    "batch_plan_kernel_source",
    "array_box_kernel_source",
]

_array_cache: Dict[Tuple, Callable] = {}
_batch_cache: Dict[Tuple, Callable] = {}
_array_plan_cache: Dict[Tuple, Callable] = {}
_batch_plan_cache: Dict[Tuple, Callable] = {}
_array_box_cache: Dict[Tuple, Callable] = {}


def _slice_expr(lo: int, length: int) -> str:
    return f"slice({lo}, {lo + length})"


def array_kernel_source(
    spec: StencilSpec, extent: Sequence[int], ghost: int, margin: int = 0
) -> str:
    """Source text of a specialized extended-array kernel.

    The generated function has signature ``kernel(arr, out)`` and computes
    the owned box grown by *margin*, exactly like
    :func:`repro.stencil.kernels.apply_array_stencil` configured the same
    way -- including the tap order, so results are bit-identical.
    """
    extent = tuple(int(e) for e in extent)
    if spec.ndim != len(extent):
        raise ValueError("stencil/extent dimensionality mismatch")
    if margin < 0 or spec.radius + margin > ghost:
        raise ValueError("margin + radius must fit in the ghost width")
    lo = ghost - margin
    lines = [
        "def kernel(arr, out):",
        f"    # specialized: {spec.name} on extent {extent}, ghost {ghost},"
        f" margin {margin}",
    ]
    first = True
    for off, coeff in spec.taps:
        slices = ", ".join(
            _slice_expr(lo + o, e + 2 * margin)
            for o, e in zip(reversed(off), reversed(extent))
        )
        term = f"{coeff!r} * arr[{slices}]"
        if first:
            lines.append(f"    acc = {term}")
            first = False
        else:
            lines.append(f"    acc += {term}")
    region = ", ".join(
        _slice_expr(lo, e + 2 * margin) for e in reversed(extent)
    )
    lines.append(f"    out[{region}] = acc")
    return "\n".join(lines) + "\n"


def generate_array_kernel(
    spec: StencilSpec, extent: Sequence[int], ghost: int, margin: int = 0
) -> Callable[[np.ndarray, np.ndarray], None]:
    """Compile (and cache) the specialized array kernel."""
    key = (spec.taps, tuple(extent), ghost, margin)
    fn = _array_cache.get(key)
    if fn is None:
        src = array_kernel_source(spec, extent, ghost, margin)
        namespace: Dict = {}
        exec(compile(src, f"<stencil-{spec.name}>", "exec"), namespace)
        fn = namespace["kernel"]
        fn.__source__ = src
        _array_cache[key] = fn
    return fn


def batch_kernel_source(spec: StencilSpec, brick_dim: Sequence[int]) -> str:
    """Source of a specialized halo-batch kernel for brick storage.

    Signature ``kernel(halo) -> ndarray``: *halo* is the
    ``(nbricks, bd_D + 2r, ..., bd_1 + 2r)`` batch from
    :func:`repro.stencil.brick_kernels.gather_halo_batch`; the result is
    the ``(nbricks, bd_D, ..., bd_1)`` stencil output.  Bit-identical to
    the generic tap loop (same accumulation order).
    """
    brick_dim = tuple(int(b) for b in brick_dim)
    if spec.ndim != len(brick_dim):
        raise ValueError("stencil/brick dimensionality mismatch")
    r = spec.radius
    if r > min(brick_dim):
        raise ValueError("stencil radius exceeds the brick dimension")
    lines = [
        "def kernel(halo):",
        f"    # specialized: {spec.name} on {brick_dim} bricks, radius {r}",
    ]
    first = True
    for off, coeff in spec.taps:
        slices = ", ".join(
            ["slice(None)"]
            + [
                _slice_expr(r + o, b)
                for o, b in zip(reversed(off), reversed(brick_dim))
            ]
        )
        term = f"{coeff!r} * halo[{slices}]"
        if first:
            lines.append(f"    acc = {term}")
            first = False
        else:
            lines.append(f"    acc += {term}")
    lines.append("    return acc")
    return "\n".join(lines) + "\n"


def generate_batch_kernel(
    spec: StencilSpec, brick_dim: Sequence[int]
) -> Callable[[np.ndarray], np.ndarray]:
    """Compile (and cache) the specialized halo-batch kernel."""
    key = (spec.taps, tuple(brick_dim))
    fn = _batch_cache.get(key)
    if fn is None:
        src = batch_kernel_source(spec, brick_dim)
        namespace: Dict = {}
        exec(compile(src, f"<brick-stencil-{spec.name}>", "exec"), namespace)
        fn = namespace["kernel"]
        fn.__source__ = src
        _batch_cache[key] = fn
    return fn


# ----------------------------------------------------------------------
# Plan kernels: fully in-place variants used by the execution-plan layer
# (repro.stencil.plan).  Same tap order and scalar-times-slice operand
# order as the generic loops, so results stay bit-identical; the only
# difference is that every intermediate lands in a caller-owned buffer
# (``np.multiply(..., out=)`` / in-place ``np.add``), so the per-step tap
# loop allocates nothing.
# ----------------------------------------------------------------------

def _plan_body(taps, slices_of, acc: str, tmp: str, src: str) -> list:
    lines = []
    first = True
    for off, coeff in taps:
        term_src = f"{src}[{slices_of(off)}]"
        if first:
            lines.append(f"    np.multiply({coeff!r}, {term_src}, out={acc})")
            first = False
        else:
            lines.append(f"    np.multiply({coeff!r}, {term_src}, out={tmp})")
            lines.append(f"    np.add({acc}, {tmp}, out={acc})")
    return lines


def array_plan_kernel_source(
    spec: StencilSpec, extent: Sequence[int], ghost: int, margin: int = 0
) -> str:
    """Source of the in-place extended-array plan kernel.

    Signature ``kernel(arr, out, tmp)``: accumulates directly into the
    computed region of *out* (a strided view), using *tmp* (region-shaped
    scratch) for every tap past the first.  Bit-identical to
    :func:`array_kernel_source` / the generic
    :func:`~repro.stencil.kernels.apply_array_stencil`.
    """
    extent = tuple(int(e) for e in extent)
    if spec.ndim != len(extent):
        raise ValueError("stencil/extent dimensionality mismatch")
    if margin < 0 or spec.radius + margin > ghost:
        raise ValueError("margin + radius must fit in the ghost width")
    lo = ghost - margin

    def slices_of(off):
        return ", ".join(
            _slice_expr(lo + o, e + 2 * margin)
            for o, e in zip(reversed(off), reversed(extent))
        )

    region = ", ".join(
        _slice_expr(lo, e + 2 * margin) for e in reversed(extent)
    )
    lines = [
        "def kernel(arr, out, tmp):",
        f"    # planned: {spec.name} on extent {extent}, ghost {ghost},"
        f" margin {margin}",
        f"    acc = out[{region}]",
    ]
    lines += _plan_body(spec.taps, slices_of, "acc", "tmp", "arr")
    return "\n".join(lines) + "\n"


def generate_array_plan_kernel(
    spec: StencilSpec, extent: Sequence[int], ghost: int, margin: int = 0
) -> Callable[[np.ndarray, np.ndarray, np.ndarray], None]:
    """Compile (and cache) the in-place array plan kernel."""
    key = (spec.taps, tuple(extent), ghost, margin)
    fn = _array_plan_cache.get(key)
    if fn is None:
        src = array_plan_kernel_source(spec, extent, ghost, margin)
        namespace: Dict = {"np": np}
        exec(compile(src, f"<stencil-plan-{spec.name}>", "exec"), namespace)
        fn = namespace["kernel"]
        fn.__source__ = src
        _array_plan_cache[key] = fn
    return fn


def array_box_kernel_source(
    spec: StencilSpec,
    extent: Sequence[int],
    ghost: int,
    box: Sequence[Tuple[int, int]],
) -> str:
    """Source of an in-place plan kernel over one explicit sub-box.

    *box* is a per-numpy-axis ``(lo, hi)`` range in extended-array
    coordinates.  Signature ``kernel(arr, out, tmp)`` with *tmp* shaped
    like the box.  Same tap order and operand order as the full-region
    plan kernel, so a disjoint box cover of the region computes every
    cell bit-identically to one full-region sweep (cells are
    independent).  This is what the interior/surface phase split
    compiles to for array methods.
    """
    extent = tuple(int(e) for e in extent)
    if spec.ndim != len(extent):
        raise ValueError("stencil/extent dimensionality mismatch")
    box = tuple((int(lo), int(hi)) for lo, hi in box)
    if len(box) != spec.ndim:
        raise ValueError("box/extent dimensionality mismatch")
    r = spec.radius
    for (lo, hi), e in zip(box, reversed(extent)):
        if lo >= hi:
            raise ValueError(f"empty box range ({lo}, {hi})")
        if lo - r < 0 or hi + r > e + 2 * ghost:
            raise ValueError(
                f"box range ({lo}, {hi}) reads outside the extended array"
            )

    def slices_of(off):
        return ", ".join(
            _slice_expr(lo + o, hi - lo)
            for (lo, hi), o in zip(box, reversed(off))
        )

    region = ", ".join(_slice_expr(lo, hi - lo) for lo, hi in box)
    lines = [
        "def kernel(arr, out, tmp):",
        f"    # planned box: {spec.name} on extent {extent}, ghost {ghost},"
        f" box {box}",
        f"    acc = out[{region}]",
    ]
    lines += _plan_body(spec.taps, slices_of, "acc", "tmp", "arr")
    return "\n".join(lines) + "\n"


def generate_array_box_kernel(
    spec: StencilSpec,
    extent: Sequence[int],
    ghost: int,
    box: Sequence[Tuple[int, int]],
) -> Callable[[np.ndarray, np.ndarray, np.ndarray], None]:
    """Compile (and cache) the in-place sub-box plan kernel."""
    box = tuple((int(lo), int(hi)) for lo, hi in box)
    key = (spec.taps, tuple(extent), ghost, box)
    fn = _array_box_cache.get(key)
    if fn is None:
        src = array_box_kernel_source(spec, extent, ghost, box)
        namespace: Dict = {"np": np}
        exec(compile(src, f"<stencil-box-{spec.name}>", "exec"), namespace)
        fn = namespace["kernel"]
        fn.__source__ = src
        _array_box_cache[key] = fn
    return fn


def batch_plan_kernel_source(spec: StencilSpec, brick_dim: Sequence[int]) -> str:
    """Source of the in-place halo-batch plan kernel.

    Signature ``kernel(halo, acc, tmp)``: *halo* is the gathered batch,
    *acc* receives the ``(nbricks, bd_D, ..., bd_1)`` result, *tmp* is
    same-shaped scratch.  Bit-identical to :func:`batch_kernel_source`.
    """
    brick_dim = tuple(int(b) for b in brick_dim)
    if spec.ndim != len(brick_dim):
        raise ValueError("stencil/brick dimensionality mismatch")
    r = spec.radius
    if r > min(brick_dim):
        raise ValueError("stencil radius exceeds the brick dimension")

    def slices_of(off):
        return ", ".join(
            ["slice(None)"]
            + [
                _slice_expr(r + o, b)
                for o, b in zip(reversed(off), reversed(brick_dim))
            ]
        )

    lines = [
        "def kernel(halo, acc, tmp):",
        f"    # planned: {spec.name} on {brick_dim} bricks, radius {r}",
    ]
    lines += _plan_body(spec.taps, slices_of, "acc", "tmp", "halo")
    return "\n".join(lines) + "\n"


def generate_batch_plan_kernel(
    spec: StencilSpec, brick_dim: Sequence[int]
) -> Callable[[np.ndarray, np.ndarray, np.ndarray], None]:
    """Compile (and cache) the in-place halo-batch plan kernel."""
    key = (spec.taps, tuple(brick_dim))
    fn = _batch_plan_cache.get(key)
    if fn is None:
        src = batch_plan_kernel_source(spec, brick_dim)
        namespace: Dict = {"np": np}
        exec(compile(src, f"<brick-stencil-plan-{spec.name}>", "exec"), namespace)
        fn = namespace["kernel"]
        fn.__source__ = src
        _batch_plan_cache[key] = fn
    return fn
