"""Stencil specifications: taps, radius, and roofline accounting.

A stencil is a list of ``(offset_vector, coefficient)`` taps.  The
roofline inputs (``flops_per_point``, ``bytes_per_point``) default to the
structural count (one multiply per tap, one add per extra tap; one read +
one write of 8 bytes per point under perfect cache reuse) but can be
overridden to match the paper's own accounting -- which we do for the two
experiment stencils so that modelled compute times use the paper's
arithmetic intensities of 8/16 and 139/16 flop/byte.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import Dict, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "StencilSpec",
    "star_stencil",
    "cube_stencil",
    "SEVEN_POINT",
    "CUBE125",
    "TWENTY_FIVE_POINT_2D",
]

Tap = Tuple[Tuple[int, ...], float]


@dataclass(frozen=True)
class StencilSpec:
    """An explicit constant-coefficient stencil."""

    name: str
    ndim: int
    taps: Tuple[Tap, ...]
    flops_per_point: float
    bytes_per_point: float
    itemsize: int = 8

    def __post_init__(self) -> None:
        if not self.taps:
            raise ValueError("a stencil needs at least one tap")
        for off, _ in self.taps:
            if len(off) != self.ndim:
                raise ValueError(f"tap offset {off} is not {self.ndim}-dimensional")
        seen = {off for off, _ in self.taps}
        if len(seen) != len(self.taps):
            raise ValueError("duplicate tap offsets")

    @property
    def radius(self) -> int:
        """Chebyshev radius: how deep the stencil reads per axis."""
        return max(max(abs(o) for o in off) for off, _ in self.taps)

    @property
    def ntaps(self) -> int:
        return len(self.taps)

    @property
    def arithmetic_intensity(self) -> float:
        """Flop per byte of memory traffic (the paper's AI)."""
        return self.flops_per_point / self.bytes_per_point

    def coefficients(self) -> Dict[Tuple[int, ...], float]:
        return {off: c for off, c in self.taps}


def _structural_flops(ntaps: int) -> float:
    # one multiply per tap plus (ntaps - 1) adds
    return 2.0 * ntaps - 1.0


def star_stencil(
    ndim: int,
    radius: int = 1,
    coefficients: Optional[Sequence[float]] = None,
    name: Optional[str] = None,
    flops_per_point: Optional[float] = None,
    bytes_per_point: float = 16.0,
) -> StencilSpec:
    """Axis-aligned star: centre plus ``2 * ndim * radius`` arm points.

    *coefficients*, if given, lists ``1 + 2 * ndim * radius`` values:
    centre first, then per axis the -1..-radius and +1..+radius arms.
    """
    if ndim < 1 or radius < 1:
        raise ValueError("ndim and radius must be >= 1")
    offsets = [tuple([0] * ndim)]
    for axis in range(ndim):
        for sign in (-1, 1):
            for r in range(1, radius + 1):
                off = [0] * ndim
                off[axis] = sign * r
                offsets.append(tuple(off))
    if coefficients is None:
        # A diffusion-like default: dominant centre, symmetric arms.
        coefficients = [0.5] + [0.5 / (len(offsets) - 1)] * (len(offsets) - 1)
    if len(coefficients) != len(offsets):
        raise ValueError(
            f"need {len(offsets)} coefficients, got {len(coefficients)}"
        )
    taps = tuple((off, float(c)) for off, c in zip(offsets, coefficients))
    return StencilSpec(
        name or f"star{len(offsets)}pt-{ndim}d",
        ndim,
        taps,
        flops_per_point if flops_per_point is not None else _structural_flops(len(taps)),
        bytes_per_point,
    )


def cube_stencil(
    ndim: int,
    radius: int,
    name: Optional[str] = None,
    flops_per_point: Optional[float] = None,
    bytes_per_point: float = 16.0,
    seed: int = 1234,
) -> StencilSpec:
    """Dense cube stencil of side ``2 * radius + 1``.

    Coefficients are symmetric under coordinate reflection/permutation (as
    in the paper's 125-point stencil with 10 unique constants) and sum to
    one; generated deterministically from *seed*.
    """
    if ndim < 1 or radius < 1:
        raise ValueError("ndim and radius must be >= 1")
    rng = np.random.default_rng(seed)
    classes: Dict[Tuple[int, ...], float] = {}
    taps = []
    offsets = list(product(range(-radius, radius + 1), repeat=ndim))
    for off in offsets:
        key = tuple(sorted(abs(o) for o in off))
        if key not in classes:
            classes[key] = float(rng.uniform(0.1, 1.0))
        taps.append((tuple(off), classes[key]))
    total = sum(c for _, c in taps)
    taps = tuple((off, c / total) for off, c in taps)
    return StencilSpec(
        name or f"cube{len(taps)}pt-{ndim}d",
        ndim,
        taps,
        flops_per_point if flops_per_point is not None else _structural_flops(len(taps)),
        bytes_per_point,
    )


#: The paper's 7-point star (AI = 8/16 flop/byte).
SEVEN_POINT = star_stencil(
    3, 1, name="7pt", flops_per_point=8.0, bytes_per_point=16.0
)

#: The paper's 5^3 cube 125-point stencil, 10 unique symmetric constants
#: (AI = 139/16 flop/byte).
CUBE125 = cube_stencil(
    3, 2, name="125pt", flops_per_point=139.0, bytes_per_point=16.0
)

#: A 2-D example stencil used by documentation and low-dimension tests.
TWENTY_FIVE_POINT_2D = cube_stencil(2, 2, name="25pt-2d")
