"""Layout-agnostic stencil kernels over brick storage.

The production compute path of the brick library: for a batch of bricks,
gather each brick plus a ``radius``-deep halo (sourced from neighboring
bricks through the adjacency -- wherever they physically live), apply the
stencil vectorized over the whole batch, and scatter results.  Because
only adjacency entries are chased, the kernel is completely independent of
the physical brick order; Figure 10's observation (layout does not change
compute time) holds by construction here.

Bricks are processed in fixed-size chunks to bound the halo buffer.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

from repro.brick.info import BrickInfo, all_direction_vectors, direction_index
from repro.brick.storage import BrickStorage
from repro.stencil.spec import StencilSpec

__all__ = ["gather_halo_batch", "apply_brick_stencil"]


def _margin_slices(d: int, bd: int, r: int) -> Tuple[slice, slice]:
    """(target-in-batch, source-in-neighbor) slices along one axis."""
    if d == -1:
        return slice(0, r), slice(bd - r, bd)
    if d == 0:
        return slice(r, r + bd), slice(0, bd)
    if d == 1:
        return slice(r + bd, bd + 2 * r), slice(0, r)
    raise ValueError(f"direction must be -1/0/+1, got {d}")


def gather_halo_batch(
    storage: BrickStorage,
    info: BrickInfo,
    slots: np.ndarray,
    radius: int,
    field_offset: int = 0,
    out: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Bricks *slots* with a *radius*-deep halo, shape
    ``(len(slots), bd_D + 2r, ..., bd_1 + 2r)``.

    Halo cells whose source brick does not exist (adjacency -1) come out
    zero; callers must only compute on bricks whose required neighbors
    exist (the interior + surface set always qualifies, since their
    neighbors are at worst ghost bricks).

    The ``3^D`` direction boxes exactly partition the halo block, so a
    reused *out* buffer is never blanket-cleared: every cell with a
    source brick is overwritten, and only margin cells whose source is
    actually absent are zeroed.
    """
    bd = info.brick_dim  # axis order 1..D
    ndim = info.ndim
    if radius < 0 or radius > min(bd):
        raise ValueError(
            f"radius {radius} must be within one brick (dims {bd})"
        )
    np_bd = tuple(reversed(bd))
    volume = int(np.prod(bd))
    bricks = storage.data[:, field_offset : field_offset + volume].reshape(
        (storage.nslots,) + np_bd
    )
    shape = (len(slots),) + tuple(b + 2 * radius for b in np_bd)
    if out is None:
        out = np.empty(shape, dtype=storage.dtype)
    elif out.shape != shape:
        raise ValueError(f"halo buffer shape {out.shape}, expected {shape}")
    for vec in all_direction_vectors(ndim):
        if radius == 0 and any(vec):
            continue
        src = info.adjacency[slots, direction_index(vec)]
        valid = src >= 0
        tgt_slices, src_slices = [], []
        for axis in range(ndim - 1, -1, -1):  # numpy order: axis D first
            t, s = _margin_slices(vec[axis], bd[axis], radius)
            tgt_slices.append(t)
            src_slices.append(s)
        if valid.all():
            out[(slice(None), *tgt_slices)] = bricks[(src, *src_slices)]
        else:
            out[(~valid, *tgt_slices)] = 0
            if valid.any():
                out[(valid, *tgt_slices)] = bricks[(src[valid], *src_slices)]
    return out


def apply_brick_stencil(
    spec: StencilSpec,
    src: BrickStorage,
    dst: BrickStorage,
    info: BrickInfo,
    slots: np.ndarray,
    field_offset: int = 0,
    chunk: int = 512,
) -> None:
    """Apply *spec* to every brick in *slots*, reading *src*, writing *dst*.

    Both storages must share the brick geometry of *info*.  Processing is
    chunked so the halo buffer stays small regardless of domain size.
    """
    bd = info.brick_dim
    ndim = info.ndim
    r = spec.radius
    if spec.ndim != ndim:
        raise ValueError(f"stencil is {spec.ndim}-D, bricks are {ndim}-D")
    if r > min(bd):
        raise ValueError(
            f"stencil radius {r} exceeds brick dimension {min(bd)};"
            " enlarge the bricks"
        )
    np_bd = tuple(reversed(bd))
    volume = int(np.prod(bd))
    dst_bricks = dst.data[:, field_offset : field_offset + volume].reshape(
        (dst.nslots,) + np_bd
    )
    slots = np.asarray(slots)
    # One halo buffer sized for the first (largest) chunk; the short tail
    # chunk computes in a leading view of it instead of reallocating.
    halo: Optional[np.ndarray] = None
    for lo in range(0, len(slots), chunk):
        batch_slots = slots[lo : lo + chunk]
        if halo is None:
            halo_shape = (len(batch_slots),) + tuple(
                b + 2 * r for b in reversed(bd)
            )
            halo = np.empty(halo_shape, dtype=src.dtype)
        batch_halo = gather_halo_batch(
            src, info, batch_slots, r, field_offset,
            halo[: len(batch_slots)],
        )
        acc: Optional[np.ndarray] = None
        for off, coeff in spec.taps:
            slices = (slice(None),) + tuple(
                slice(r + o, r + o + b)
                for o, b in zip(reversed(off), np_bd)
            )
            term = coeff * batch_halo[slices]
            acc = term if acc is None else acc + term
        dst_bricks[batch_slots] = acc
