"""Stencil definitions and kernels.

Two families from the paper's experiments (Section 7): a 7-point star
stencil (arithmetic intensity 8/16 flop/byte -- bandwidth bound) and a
5^3 cube 125-point stencil (139/16 -- near compute bound).  Kernels exist
for lexicographic extended arrays (used by the packing baselines and as
the test oracle) and for brick storage (layout-agnostic, adjacency-driven).
"""

from repro.stencil.spec import (
    SEVEN_POINT,
    TWENTY_FIVE_POINT_2D,
    CUBE125,
    StencilSpec,
    cube_stencil,
    star_stencil,
)
from repro.stencil.kernels import apply_array_stencil
from repro.stencil.brick_kernels import apply_brick_stencil, gather_halo_batch
from repro.stencil.codegen import (
    generate_array_kernel,
    generate_array_plan_kernel,
    generate_batch_kernel,
    generate_batch_plan_kernel,
)
from repro.stencil.plan import (
    ArrayStencilPlan,
    BrickStencilPlan,
    compile_array_plan,
    compile_brick_plan,
    plans_enabled,
)
from repro.stencil.reference import apply_periodic_reference

__all__ = [
    "CUBE125",
    "SEVEN_POINT",
    "TWENTY_FIVE_POINT_2D",
    "ArrayStencilPlan",
    "BrickStencilPlan",
    "StencilSpec",
    "apply_array_stencil",
    "apply_brick_stencil",
    "apply_periodic_reference",
    "compile_array_plan",
    "compile_brick_plan",
    "cube_stencil",
    "gather_halo_batch",
    "generate_array_kernel",
    "generate_array_plan_kernel",
    "generate_batch_kernel",
    "generate_batch_plan_kernel",
    "plans_enabled",
    "star_stencil",
]
