"""Top-level API: distributed stencil problems, drivers and metrics.

Quickstart::

    from repro.core import StencilProblem, run_executed
    from repro.stencil import SEVEN_POINT
    from repro.hardware import theta_knl

    problem = StencilProblem(
        global_extent=(64, 64, 64), rank_dims=(2, 2, 2),
        stencil=SEVEN_POINT, brick_dim=(8, 8, 8), ghost=8,
    )
    run = run_executed(problem, method="memmap", profile=theta_knl(),
                       timesteps=2)
    print(run.metrics.report())

Methods: ``yask`` / ``yask_ol`` (packing baseline, optionally overlapping
communication with computation), ``mpi_types``, ``shift``, ``basic``
(one message per region), ``layout``, ``memmap``, ``network`` (the
empirical communication floor), and GPU variants ``layout_ca``,
``layout_um``, ``memmap_um``, ``mpi_types_um``.
"""

from repro.core.methods import (
    ALL_METHODS,
    BRICK_METHODS,
    CPU_METHODS,
    GPU_METHODS,
    MethodInfo,
    method_info,
)
from repro.core.expansion import cycle_period, element_cycle_margins
from repro.core.metrics import RankMetrics, RunMetrics
from repro.core.model import compute_time, model_timestep
from repro.core.problem import StencilProblem
from repro.core.driver import ExecutedRun, run_executed

__all__ = [
    "ALL_METHODS",
    "BRICK_METHODS",
    "CPU_METHODS",
    "ExecutedRun",
    "GPU_METHODS",
    "MethodInfo",
    "RankMetrics",
    "RunMetrics",
    "StencilProblem",
    "compute_time",
    "cycle_period",
    "element_cycle_margins",
    "method_info",
    "model_timestep",
    "run_executed",
]
