"""Run plans: the executed timestep loop, compiled once and replayed.

The compiled stencil plans (PR 2, :mod:`repro.stencil.plan`) made the
kernel 5.7x faster, yet the whole-run speedup stayed at ~1x: the flame
profile of an executed run shows the wall clock going to per-step,
per-message work in the driver / exchanger / simmpi stack -- thousands of
lock acquisitions, request objects, re-derived schedules and re-priced
cost models per run.  This module hoists all of it to per-run time:

* **Exchange channels** (:class:`repro.exchange.base.ExchangeChannel`)
  flatten each exchanger's message plan into precomputed ``(peer, tag,
  buffer)`` tuples over persistent buffers -- negotiated once, re-fired
  every step through the batched fabric calls (one posting call and one
  receive drain per exchange instead of one per message).
* **A rank run plan** (:class:`RankRunPlan`) binds, per cycle position,
  the channel and the compiled stencil plan to preresolved double-buffer
  slots, and replays the whole run in one tight loop whose per-step
  Python is: one channel re-fire, one plan execution, one buffer flip.
  Exchange counters are precomputed constants accumulated arithmetically.

The plan is replayed only on the *plain* fast path.  Featured runs --
verified envelopes, fault injection, checkpointing, the degradation
ladder, or live observability -- keep the instrumented per-step loop in
:mod:`repro.core.driver` (which still benefits from the channels), so
those paths run unchanged on top of run plans.  ``REPRO_NO_PLAN=1``
disables both the stencil plans and the run-plan replay.

Run plans hold per-rank mutable state (the stencil plans' scratch
buffers); build one per simulated rank, never share across threads.
"""

from __future__ import annotations

import time
from typing import Optional, Sequence, Tuple

from repro.exchange.base import ExchangeChannel, Exchanger
from repro.util.timing import PhaseTimer

__all__ = ["RankRunPlan", "make_engines"]

#: Default per-message partition count of phased channels.  Any value
#: works (partitions are equal byte splits released together by
#: ``pready_all``); a handful keeps per-partition mailbox traffic cheap
#: while still exercising genuinely partitioned transfer.
DEFAULT_PARTITIONS = 4


def make_engines(
    exchangers: Sequence[Exchanger], channels: bool, partitions: int = 1
) -> list:
    """The per-buffer exchange engines a run should fire each step.

    With *channels* true, every exchanger that can be replayed as a
    persistent batch is replaced by its :class:`ExchangeChannel`; the
    rest (phased schemes like Shift, or any exchanger on a verified
    fabric) keep their per-step ``exchange()`` entry point.  Either way
    the returned objects expose the same ``exchange() -> ExchangeResult``
    surface, so callers fire them interchangeably.  *partitions* is
    forwarded to the channels for phased (start/complete) use.
    """
    if not channels:
        return list(exchangers)
    return [ex.make_channel(partitions) or ex for ex in exchangers]


class RankRunPlan:
    """Compiled per-rank program for one executed run.

    ``engines[i]`` is the exchange engine bound to double-buffer slot
    ``i`` (fired at cycle position 0 of whichever buffer is current);
    ``plans[pos]`` is the stencil plan for cycle position *pos*;
    ``buffers`` are the two storage/array operands the plans read and
    write.  :meth:`run` replays the program with minimal per-step Python
    and charges measured calc wall-clock in one sum at the end.

    With *splits* -- an ``(interior plan, surface plan)`` pair replacing
    ``plans[0]`` -- the exchange step runs *phased*: ``channel.start()``
    (pack + release every send partition), interior stencil work while
    the messages are in flight, ``channel.complete()`` (drain receives,
    await send consumption, unpack), then the surface sweep that reads
    the fresh ghost data.  Interior work reads no ghost cells by
    construction, and interior + surface cover ``plans[0]`` exactly, so
    phased replay is bit-identical to the unphased one.  Phased plans
    require every engine to be an :class:`ExchangeChannel`.
    """

    __slots__ = ("engines", "plans", "buffers", "period", "splits")

    def __init__(
        self,
        engines: Sequence,
        plans: Sequence,
        buffers: Sequence,
        period: int,
        splits: Optional[Tuple] = None,
    ) -> None:
        if len(engines) != len(buffers):
            raise ValueError("one exchange engine per double-buffer slot")
        if len(plans) != period:
            raise ValueError("one stencil plan per cycle position")
        if splits is not None:
            if len(splits) != 2:
                raise ValueError(
                    "splits must be an (interior, surface) plan pair"
                )
            for eng in engines:
                if not isinstance(eng, ExchangeChannel):
                    raise ValueError(
                        "phased replay requires exchange channels on every"
                        " double-buffer slot"
                    )
        self.engines = list(engines)
        self.plans = list(plans)
        self.buffers = list(buffers)
        self.period = int(period)
        self.splits = tuple(splits) if splits is not None else None

    def run(
        self,
        start_step: int,
        timesteps: int,
        counters: dict,
        timer: PhaseTimer,
    ) -> int:
        """Replay steps ``[start_step, timesteps)``; returns the final
        source buffer index.

        Accumulates the run's message/byte counters into *counters* and
        the measured calc seconds into *timer* exactly as the
        instrumented loop would, just without per-step dict traffic.
        The replay always starts from buffer 0, matching the driver's
        loop (checkpoint resumes restore into buffer 0 too, but resumed
        runs take the instrumented path anyway).
        """
        engines = self.engines
        plans = self.plans
        bufs = self.buffers
        period = self.period
        splits = self.splits
        interior, surface = splits if splits is not None else (None, None)
        perf = time.perf_counter
        src, dst = 0, 1
        msgs = wire = payload = 0
        calc_s = 0.0
        for t in range(start_step, timesteps):
            pos = t % period
            if pos == 0:
                if splits is not None:
                    # Phased exchange step: interior taps run while the
                    # partitioned messages are in flight; the surface
                    # sweep waits for every receive partition.
                    eng = engines[src]
                    eng.start()
                    if interior is not None:
                        t0 = perf()
                        interior.execute(bufs[src], bufs[dst])
                        calc_s += perf() - t0
                    res = eng.complete()
                    if surface is not None:
                        t0 = perf()
                        surface.execute(bufs[src], bufs[dst])
                        calc_s += perf() - t0
                    msgs += res.messages_sent
                    wire += res.wire_bytes_sent
                    payload += res.payload_bytes_sent
                    src, dst = dst, src
                    continue
                res = engines[src].exchange()
                msgs += res.messages_sent
                wire += res.wire_bytes_sent
                payload += res.payload_bytes_sent
            plan = plans[pos]
            t0 = perf()
            plan.execute(bufs[src], bufs[dst])
            calc_s += perf() - t0
            src, dst = dst, src
        counters["msgs"] += msgs
        counters["wire"] += wire
        counters["payload"] += payload
        timer.breakdown.charge("calc", calc_s)
        return src
