"""Registry of exchange methods and their properties.

A method name is ``<base>`` for CPU runs or ``<base>_<transport>`` for GPU
runs (``ca`` = CUDA-aware/GPUDirect, ``um`` = Unified Memory/ATS,
``staged`` = manual cudaMemcpy).  The registry records which storage kind
each base method needs and which compute model prices its kernel, so the
driver and the cost model stay consistent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

__all__ = [
    "MethodInfo",
    "method_info",
    "CPU_METHODS",
    "GPU_METHODS",
    "BRICK_METHODS",
    "ALL_METHODS",
]


@dataclass(frozen=True)
class MethodInfo:
    """Static properties of one exchange method."""

    base: str  # yask / yask_ol / mpi_types / shift / basic / layout / memmap / network
    transport: Optional[str]  # None (CPU) / "ca" / "um" / "staged"
    uses_bricks: bool
    uses_views: bool
    packs: bool
    overlaps: bool
    compute_kind: str  # "yask" or "brick"

    @property
    def name(self) -> str:
        return self.base if self.transport is None else f"{self.base}_{self.transport}"

    @property
    def is_gpu(self) -> bool:
        return self.transport is not None


_BASES = {
    # base: (uses_bricks, uses_views, packs, overlaps, compute_kind)
    "yask": (False, False, True, False, "yask"),
    "yask_ol": (False, False, True, True, "yask"),
    "mpi_types": (False, False, False, False, "yask"),
    "shift": (False, False, True, False, "yask"),
    "basic": (True, False, False, False, "brick"),
    "layout": (True, False, False, False, "brick"),
    "memmap": (True, True, False, False, "brick"),
    "network": (True, False, False, False, "brick"),
}

_TRANSPORTS = ("ca", "um", "staged")


def method_info(name: str) -> MethodInfo:
    """Parse a method name into its :class:`MethodInfo`."""
    base, transport = name, None
    for t in _TRANSPORTS:
        if name.endswith("_" + t):
            base, transport = name[: -(len(t) + 1)], t
            break
    if base not in _BASES:
        raise ValueError(
            f"unknown method {name!r}; bases are {sorted(_BASES)} with"
            f" optional transports {_TRANSPORTS}"
        )
    if transport == "ca" and base == "memmap":
        raise ValueError(
            "memmap_ca is not implementable: cudaMalloc memory has no host"
            " page-table mappings to stitch (paper Section 5)"
        )
    uses_bricks, uses_views, packs, overlaps, compute = _BASES[base]
    return MethodInfo(base, transport, uses_bricks, uses_views, packs, overlaps, compute)


CPU_METHODS: Tuple[str, ...] = (
    "yask",
    "yask_ol",
    "mpi_types",
    "shift",
    "basic",
    "layout",
    "memmap",
    "network",
)

GPU_METHODS: Tuple[str, ...] = (
    "layout_ca",
    "layout_um",
    "memmap_um",
    "mpi_types_um",
    "mpi_types_ca",
    "network_ca",
)

BRICK_METHODS: Tuple[str, ...] = tuple(
    m for m in CPU_METHODS if _BASES[m][0]
)

ALL_METHODS: Tuple[str, ...] = CPU_METHODS + GPU_METHODS
