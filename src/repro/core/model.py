"""Modelled per-timestep cost of every method at any scale.

``model_timestep`` prices one rank's timestep -- computation plus one
ghost-zone exchange -- purely from the decomposition arithmetic (no data
allocated), using the combinatorial schedules and the machine profile's
cost models.  This powers every figure bench, including the strong-scaling
sweeps up to 1024 nodes that cannot be executed in-process.

The executed driver reports the same quantities from the exchangers'
internal plans; the test suite asserts the two agree.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

from repro.core.methods import MethodInfo, method_info
from repro.exchange.costs import datatype_cost, network_times, pack_cost
from repro.exchange.schedule import (
    MessageSpec,
    array_schedule,
    basic_brick_schedule,
    brick_send_schedule,
    memmap_schedule,
    shift_schedule,
)
from repro.gpu.transports import (
    CudaAwareTransport,
    GpuTransport,
    StagedTransport,
    UnifiedMemoryTransport,
)
from repro.hardware.profiles import MachineProfile
from repro.layout.order import surface_order
from repro.stencil.spec import StencilSpec
from repro.util.bitset import BitSet
from repro.util.timing import TimeBreakdown

__all__ = [
    "compute_time",
    "compute_time_table",
    "exchange_breakdown",
    "model_timestep",
    "make_transport",
]


def make_transport(info: MethodInfo, profile: MachineProfile) -> Optional[GpuTransport]:
    """Build the GPU transport for a method, or ``None`` for CPU runs."""
    if info.transport is None:
        return None
    if profile.gpu is None:
        raise ValueError(
            f"method {info.name!r} needs a GPU profile; {profile.name} has none"
        )
    cls = {
        "ca": CudaAwareTransport,
        "um": UnifiedMemoryTransport,
        "staged": StagedTransport,
    }[info.transport]
    return cls(profile.network, profile.gpu)


def compute_time(
    profile: MachineProfile,
    info: MethodInfo,
    points: int,
    stencil: StencilSpec,
) -> float:
    """Roofline kernel time for one timestep on one rank.

    GPU methods compute on the device (HBM roofline plus a kernel-launch
    overhead); CPU methods use the profile's per-engine compute model
    (YASK's autotuned two-level schedule vs the brick one-level schedule,
    Figure 10).
    """
    if info.is_gpu:
        gpu = profile.gpu
        if gpu is None:
            raise ValueError(f"profile {profile.name} has no GPU model")
        if points == 0:
            return 10e-6
        flop_time = points * stencil.flops_per_point / gpu.peak_flops
        mem_time = points * stencil.bytes_per_point / gpu.hbm_bw
        # High-order cube stencils run well below the roofline on GPUs
        # (register pressure, reduced reuse): the paper's V2 shows the
        # 125-pt at less than half the 7-pt throughput (18.3 vs 8.1
        # TStencil/s) even though both are bandwidth-bound on paper.
        efficiency = 0.8 if stencil.ntaps <= 27 else 0.35
        return 10e-6 + max(flop_time, mem_time) / efficiency
    model = profile.yask_compute if info.compute_kind == "yask" else profile.brick_compute
    return model.stencil_time(
        points, stencil.flops_per_point, stencil.bytes_per_point
    )


def compute_time_table(
    profile: MachineProfile,
    info: MethodInfo,
    points_per_position: Sequence[int],
    stencil: StencilSpec,
) -> List[float]:
    """Kernel time per exchange-cycle position, evaluated once.

    The timing analogue of a compiled execution plan
    (:mod:`repro.stencil.plan`): the executed driver's accounting loop
    looks the per-step cost up in this table instead of re-pricing the
    roofline model every timestep, so the modelled bookkeeping is
    ``O(period)`` model evaluations rather than ``O(timesteps)``.
    """
    return [
        compute_time(profile, info, int(points), stencil)
        for points in points_per_position
    ]


def _schedules(
    info: MethodInfo,
    profile: MachineProfile,
    extent: Sequence[int],
    brick_dim: Sequence[int],
    ghost: int,
    layout: Optional[Sequence[BitSet]],
    page_size: Optional[int],
    itemsize: int = 8,
):
    """(send specs, recv specs, phase list for shift) for one method."""
    extent = tuple(int(e) for e in extent)
    ndim = len(extent)
    if info.base == "shift":
        phases = shift_schedule(extent, ghost, itemsize)
        flat = [m for ph in phases for m in ph]
        return flat, flat, phases
    if not info.uses_bricks:
        specs = array_schedule(extent, ghost, itemsize)
        return specs, specs, None

    if isinstance(brick_dim, int):
        brick_dim = (brick_dim,) * ndim
    grid = tuple(e // b for e, b in zip(extent, brick_dim))
    width = ghost // brick_dim[0]
    brick_bytes = math.prod(brick_dim) * itemsize
    lay = list(layout) if layout is not None else surface_order(ndim)
    if info.base == "layout":
        specs = brick_send_schedule(grid, width, lay, brick_bytes)
    elif info.base == "basic":
        specs = basic_brick_schedule(grid, width, lay, brick_bytes)
    elif info.base == "memmap":
        page = page_size or (
            profile.gpu.page_size if info.is_gpu and profile.gpu else profile.page_size
        )
        specs = memmap_schedule(grid, width, lay, brick_bytes, page)
    elif info.base == "network":
        # The empirical floor: one message per neighbor carrying exactly
        # the payload (message-sized buffers, no padding, no packing).
        specs = memmap_schedule(grid, width, lay, brick_bytes, 1)
    else:  # pragma: no cover - registry and model must stay in sync
        raise AssertionError(f"unhandled brick method {info.base}")
    recvs = [
        MessageSpec(
            m.neighbor.opposite(),
            m.payload_bytes,
            m.wire_bytes,
            m.nsegments,
            m.run_elems,
            m.nmappings,
        )
        for m in specs
    ]
    return specs, recvs, None


def exchange_breakdown(
    profile: MachineProfile,
    method: str,
    extent: Sequence[int],
    brick_dim: Sequence[int] = (8, 8, 8),
    ghost: int = 8,
    layout: Optional[Sequence[BitSet]] = None,
    page_size: Optional[int] = None,
    itemsize: int = 8,
) -> TimeBreakdown:
    """Modelled pack/call/wait/move of one exchange (no calc)."""
    info = method_info(method)
    transport = make_transport(info, profile)
    net = transport.network() if transport else profile.network
    sends, recvs, phases = _schedules(
        info, profile, extent, brick_dim, ghost, layout, page_size, itemsize
    )
    bd = TimeBreakdown()
    if info.base == "shift":
        # Phases serialize: each pays its own pack and network round.
        for ph in phases:
            bd.charge("pack", pack_cost(profile, ph) * 2)
            call, wait = network_times(net, ph, ph)
            bd.charge("call", call)
            bd.charge("wait", wait)
    else:
        if info.packs:
            bd.charge("pack", pack_cost(profile, sends) * 2)
        call, wait = network_times(net, sends, recvs)
        if info.base == "mpi_types":
            wait += 2 * datatype_cost(profile, sends)
        bd.charge("call", call)
        bd.charge("wait", wait)
    if transport is not None:
        bd.charge("wait", transport.extra_wait(sends, recvs))
        bd.charge("move", transport.move(sends, recvs))
    return bd


def model_timestep(
    profile: MachineProfile,
    method: str,
    extent: Sequence[int],
    stencil: StencilSpec,
    brick_dim: Sequence[int] = (8, 8, 8),
    ghost: int = 8,
    layout: Optional[Sequence[BitSet]] = None,
    page_size: Optional[int] = None,
) -> TimeBreakdown:
    """Full modelled timestep: calc + exchange (+ GPU penalties/overlap)."""
    info = method_info(method)
    extent = tuple(int(e) for e in extent)
    points = math.prod(extent)
    bd = exchange_breakdown(
        profile, method, extent, brick_dim, ghost, layout, page_size,
        stencil.itemsize,
    )
    calc = compute_time(profile, info, points, stencil)
    if info.transport == "um":
        transport = make_transport(info, profile)
        _, recvs, _ = _schedules(
            info, profile, extent, brick_dim, ghost, layout, page_size,
            stencil.itemsize,
        )
        calc += transport.compute_penalty(recvs)
    if info.overlaps:
        # Communication/computation overlap hides wire time behind the
        # kernel; posting and packing stay on the critical path.
        bd.wait = max(0.0, bd.wait - calc)
    bd.charge("calc", calc)
    return bd
