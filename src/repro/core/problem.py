"""Distributed stencil problem definition.

A :class:`StencilProblem` is the paper's experimental unit: a periodic
global domain evenly decomposed over a Cartesian grid of ranks, a stencil,
a brick size and a ghost width (a brick multiple, per ghost-cell
expansion).  It knows how to slice the global initial condition into rank
subdomains and how dimensions relate -- everything the drivers need.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.layout.order import surface_order, validate_order
from repro.stencil.spec import StencilSpec
from repro.util.bitset import BitSet

__all__ = ["StencilProblem"]


@dataclass
class StencilProblem:
    """A periodic global stencil domain decomposed over ranks."""

    global_extent: Tuple[int, ...]
    rank_dims: Tuple[int, ...]
    stencil: StencilSpec
    brick_dim: Tuple[int, ...] = (8, 8, 8)
    ghost: int = 8
    layout: Optional[Sequence[BitSet]] = None
    dtype: np.dtype = np.float64
    #: Periodic wrap per the paper's experiments; set False for open
    #: boundaries (boundary ghost zones are left to the application's
    #: boundary conditions and simply not exchanged).
    periodic: bool = True

    def __post_init__(self) -> None:
        self.global_extent = tuple(int(e) for e in self.global_extent)
        self.rank_dims = tuple(int(d) for d in self.rank_dims)
        if isinstance(self.brick_dim, int):
            self.brick_dim = (self.brick_dim,) * self.ndim
        self.brick_dim = tuple(int(b) for b in self.brick_dim)
        self.dtype = np.dtype(self.dtype)
        if len(self.rank_dims) != self.ndim or len(self.brick_dim) != self.ndim:
            raise ValueError("rank_dims/brick_dim dimensionality mismatch")
        if self.stencil.ndim != self.ndim:
            raise ValueError(
                f"stencil is {self.stencil.ndim}-D, domain is {self.ndim}-D"
            )
        for e, d in zip(self.global_extent, self.rank_dims):
            if d <= 0 or e % d:
                raise ValueError(
                    f"rank grid {self.rank_dims} must evenly divide the"
                    f" global extent {self.global_extent}"
                )
        for s, b in zip(self.subdomain_extent, self.brick_dim):
            if b <= 0 or s % b:
                raise ValueError(
                    f"bricks {self.brick_dim} must divide the subdomain"
                    f" {self.subdomain_extent}"
                )
        if self.ghost <= 0 or any(self.ghost % b for b in self.brick_dim):
            raise ValueError(
                f"ghost width {self.ghost} must be a positive multiple of"
                f" the brick dims {self.brick_dim} (use ghost-cell expansion)"
            )
        if self.stencil.radius > self.ghost:
            raise ValueError(
                f"stencil radius {self.stencil.radius} exceeds the ghost"
                f" width {self.ghost}"
            )
        if self.layout is None:
            self.layout = surface_order(self.ndim)
        else:
            self.layout = list(self.layout)
        validate_order(self.layout, self.ndim)

    # ------------------------------------------------------------------
    @property
    def ndim(self) -> int:
        return len(self.global_extent)

    @property
    def nranks(self) -> int:
        return math.prod(self.rank_dims)

    @property
    def subdomain_extent(self) -> Tuple[int, ...]:
        return tuple(
            e // d for e, d in zip(self.global_extent, self.rank_dims)
        )

    @property
    def points_per_rank(self) -> int:
        return math.prod(self.subdomain_extent)

    @property
    def global_points(self) -> int:
        return math.prod(self.global_extent)

    # ------------------------------------------------------------------
    def initial_global(self, seed: int = 0) -> np.ndarray:
        """Deterministic global initial condition (numpy axis order)."""
        rng = np.random.default_rng(seed)
        shape = tuple(reversed(self.global_extent))
        return rng.random(shape, dtype=np.float64).astype(self.dtype)

    def owned_slices(self, coords: Sequence[int]) -> Tuple[slice, ...]:
        """Slices of the global array owned by the rank at *coords*
        (coords in axis order 1..D; slices in numpy order)."""
        sub = self.subdomain_extent
        lo = [c * s for c, s in zip(coords, sub)]
        return tuple(
            slice(l, l + s) for l, s in zip(reversed(lo), reversed(sub))
        )
