"""Executed distributed driver: real data movement over simulated ranks.

Runs a :class:`~repro.core.problem.StencilProblem` for a number of
timesteps with a chosen exchange method.  Each rank is a thread in the
:mod:`repro.simmpi` fabric; data really moves; stencils are really applied
(vectorized).  Per-timestep *times* are modelled via
:func:`repro.core.model.model_timestep` (the single source of truth the
figure benches also use), while the run additionally verifies itself: the
assembled global result must equal the serial periodic reference
bit-for-bit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.brick.convert import (
    bricks_to_extended,
    conversion_scratch,
    extended_to_bricks,
)
from repro.brick.decomp import BrickDecomp
from repro.core.expansion import (
    brick_cycle_slots,
    depths_for_period,
    margins_for_period,
)
from repro.core.methods import MethodInfo, method_info
from repro.core.metrics import RankMetrics, RunMetrics
from repro.core.model import (
    compute_time,
    compute_time_table,
    exchange_breakdown,
    make_transport,
    model_timestep,
    _schedules,
)
from repro.core.problem import StencilProblem
from repro.obs import METRICS as _METRICS
from repro.obs import TRACER as _TRACER
from repro.exchange.layout_ex import LayoutExchanger
from repro.exchange.memmap_ex import MemMapExchanger
from repro.exchange.mpitypes import MPITypesExchanger
from repro.exchange.pack import PackExchanger
from repro.exchange.shift import ShiftExchanger
from repro.hardware.profiles import MachineProfile, generic_host
from repro.simmpi.comm import SimComm
from repro.simmpi.fabric import SimFabric
from repro.simmpi.launcher import run_spmd
from repro.stencil.brick_kernels import apply_brick_stencil
from repro.stencil.kernels import apply_array_stencil, owned_slices
from repro.stencil.plan import (
    compile_array_plan,
    compile_brick_plan,
    plans_enabled,
)
from repro.util.timing import PhaseTimer, TimeBreakdown

__all__ = ["ExecutedRun", "run_executed"]


@dataclass
class ExecutedRun:
    """Everything one executed run produced."""

    method: str
    global_result: np.ndarray
    metrics: RunMetrics
    fabric: SimFabric
    messages_per_rank: int
    wire_bytes_per_rank: int
    padding_fraction: float
    mapping_count: int  # MemMap only; 0 otherwise
    exchange_period: int = 1  # steps between exchanges (ghost expansion)


def _make_exchanger(
    info: MethodInfo,
    cart,
    problem: StencilProblem,
    profile: MachineProfile,
    array: Optional[np.ndarray],
    brick_state: Optional[tuple],
    page_size: Optional[int],
):
    ext, g = problem.subdomain_extent, problem.ghost
    if info.base in ("yask", "yask_ol"):
        return PackExchanger(cart, array, ext, g, profile)
    if info.base == "mpi_types":
        return MPITypesExchanger(cart, array, ext, g, profile)
    if info.base == "shift":
        return ShiftExchanger(cart, array, ext, g, profile)
    decomp, storage, assignment = brick_state
    if info.base in ("layout", "basic"):
        return LayoutExchanger(
            cart, decomp, storage, assignment, profile,
            merge_runs=(info.base == "layout"),
        )
    if info.base == "memmap":
        return MemMapExchanger(
            cart, decomp, storage, assignment, profile, page_size
        )
    raise ValueError(f"method {info.name!r} is model-only and cannot execute")


def _modelled_totals(
    profile: MachineProfile,
    info: MethodInfo,
    problem: StencilProblem,
    page_size: Optional[int],
    timesteps: int,
    period: int,
    computed_points: list,
) -> TimeBreakdown:
    """Accumulate modelled time over a run with exchange period *period*.

    ``computed_points[pos]`` is the number of stencil points evaluated at
    cycle position *pos* (redundant computation included).
    """
    ext = problem.subdomain_extent
    spec = problem.stencil
    exch = exchange_breakdown(
        profile, info.name, ext, problem.brick_dim, problem.ghost,
        problem.layout, page_size, spec.itemsize,
    )
    um_penalty = 0.0
    if info.transport == "um":
        transport = make_transport(info, profile)
        _, recvs, _ = _schedules(
            info, profile, ext, problem.brick_dim, problem.ghost,
            problem.layout, page_size, spec.itemsize,
        )
        um_penalty = transport.compute_penalty(recvs)

    # Per-cycle-position kernel times, priced once (the timing analogue
    # of the compiled execution plans: O(period) model evaluations, not
    # O(timesteps)).  Accumulation order is unchanged, so totals stay
    # bit-identical to the per-step evaluation.
    calc_table = compute_time_table(profile, info, computed_points, spec)
    totals = TimeBreakdown()
    for t in range(timesteps):
        pos = t % period
        calc = calc_table[pos]
        if pos == 0:
            calc += um_penalty
            wait = exch.wait
            if info.overlaps:
                wait = max(0.0, wait - calc)
            totals.charge("pack", exch.pack)
            totals.charge("call", exch.call)
            totals.charge("wait", wait)
            totals.charge("move", exch.move)
        totals.charge("calc", calc)
    return totals


def _rank_fn(
    comm: SimComm,
    problem: StencilProblem,
    method: str,
    profile: MachineProfile,
    timesteps: int,
    seed: int,
    page_size: Optional[int],
    exchange_period,
    use_plans: bool,
):
    info = method_info(method)
    cart = comm.Create_cart(
        problem.rank_dims, periods=[problem.periodic] * problem.ndim
    )
    ext = problem.subdomain_extent
    g = problem.ghost
    spec = problem.stencil

    global_arr = problem.initial_global(seed)
    owned = global_arr[problem.owned_slices(cart.coords)]
    ext_shape = tuple(e + 2 * g for e in reversed(ext))
    own_slc = owned_slices(ext, g)
    owned_points = problem.points_per_rank

    counters = {"msgs": 0, "wire": 0, "payload": 0, "maps": 0}
    timer = PhaseTimer()  # measured wall-clock of the real kernel path

    if not info.uses_bricks:
        period = _resolve_period(exchange_period, g // spec.radius, "element")
        margins = margins_for_period(period, spec.radius, g)
        computed_points = [
            int(np.prod([e + 2 * margins[pos] for e in ext]))
            for pos in range(period)
        ]
        a = np.zeros(ext_shape, dtype=problem.dtype)
        a[own_slc] = owned
        b = np.zeros_like(a)
        exchangers = [
            _make_exchanger(info, cart, problem, profile, arr, None, page_size)
            for arr in (a, b)
        ]
        # Compiled execution plans: per-step slice derivation, tap-loop
        # temporaries and kernel dispatch all hoisted out of the loop.
        plans = (
            [
                compile_array_plan(spec, ext, g, margins[pos], problem.dtype)
                for pos in range(period)
            ]
            if use_plans
            else None
        )
        src, dst = 0, 1
        arrays = [a, b]
        rank = comm.rank
        for t in range(timesteps):
            pos = t % period
            with _TRACER.span("driver.step", rank=rank, step=t):
                if pos == 0:
                    with _TRACER.span("driver.exchange", rank=rank, step=t,
                                      method=info.name):
                        res = exchangers[src].exchange()
                    counters["msgs"] += res.messages_sent
                    counters["wire"] += res.wire_bytes_sent
                    counters["payload"] += res.payload_bytes_sent
                    if _METRICS.enabled:
                        _METRICS.count("driver.exchanges", 1, rank=rank)
                        _METRICS.count(
                            "driver.messages", res.messages_sent, rank=rank
                        )
                        _METRICS.count(
                            "driver.wire_bytes", res.wire_bytes_sent,
                            rank=rank,
                        )
                with _TRACER.span("driver.calc", rank=rank, step=t):
                    with timer.phase("calc"):
                        if plans is not None:
                            plans[pos].execute(arrays[src], arrays[dst])
                        else:
                            apply_array_stencil(
                                arrays[src], arrays[dst], spec, ext, g,
                                margin=margins[pos],
                            )
            src, dst = dst, src
        result = arrays[src][own_slc].copy()
    else:
        decomp = BrickDecomp(
            ext, problem.brick_dim, g, problem.layout, problem.dtype
        )
        page = page_size or (
            profile.gpu.page_size if info.is_gpu and profile.gpu else profile.page_size
        )
        if info.base == "memmap":
            sa, asn = decomp.mmap_alloc(page)
            sb, _ = decomp.mmap_alloc(page)
        else:
            sa, asn = decomp.allocate()
            sb, _ = decomp.allocate()
        binfo = decomp.brick_info(asn)
        period = _resolve_period(exchange_period, decomp.width, "brick")
        cycle_slots = brick_cycle_slots(
            decomp, asn, spec.radius, depths_for_period(period, decomp.width)
        )
        computed_points = [
            len(cycle_slots[pos]) * decomp.brick_volume
            for pos in range(period)
        ]
        storages = [sa, sb]
        exchangers = [
            _make_exchanger(
                info, cart, problem, profile, None, (decomp, st, asn), page
            )
            for st in storages
        ]
        tmp = np.zeros(ext_shape, dtype=problem.dtype)
        tmp[own_slc] = owned
        extended_to_bricks(tmp, decomp, sa, asn)
        # Compiled execution plans: fused gather tables, persistent
        # halo/accumulator buffers and the specialized batch kernel,
        # built once per cycle position.
        plans = (
            [
                compile_brick_plan(
                    spec, binfo, cycle_slots[pos], 0, problem.dtype
                )
                for pos in range(period)
            ]
            if use_plans
            else None
        )
        src, dst = 0, 1
        rank = comm.rank
        for t in range(timesteps):
            pos = t % period
            with _TRACER.span("driver.step", rank=rank, step=t):
                if pos == 0:
                    with _TRACER.span("driver.exchange", rank=rank, step=t,
                                      method=info.name):
                        res = exchangers[src].exchange()
                    counters["msgs"] += res.messages_sent
                    counters["wire"] += res.wire_bytes_sent
                    counters["payload"] += res.payload_bytes_sent
                    if _METRICS.enabled:
                        _METRICS.count("driver.exchanges", 1, rank=rank)
                        _METRICS.count(
                            "driver.messages", res.messages_sent, rank=rank
                        )
                        _METRICS.count(
                            "driver.wire_bytes", res.wire_bytes_sent,
                            rank=rank,
                        )
                with _TRACER.span("driver.calc", rank=rank, step=t):
                    with timer.phase("calc"):
                        if plans is not None:
                            plans[pos].execute(storages[src], storages[dst])
                        else:
                            apply_brick_stencil(
                                spec, storages[src], storages[dst], binfo,
                                cycle_slots[pos],
                            )
            src, dst = dst, src
        if info.base == "memmap":
            counters["maps"] = exchangers[0].mapping_count
            if _METRICS.enabled:
                _METRICS.gauge(
                    "memmap.regions", exchangers[0].mapping_count, rank=rank
                )
        result = bricks_to_extended(
            decomp, storages[src], asn, out=conversion_scratch(decomp)
        )[own_slc].copy()
        for ex in exchangers:
            close = getattr(ex, "close", None)
            if close:
                close()
        for st in storages:
            st.close()

    totals = _modelled_totals(
        profile, info, problem, page_size, timesteps, period, computed_points
    )
    return {
        "coords": cart.coords,
        "result": result,
        "totals": totals,
        "measured": timer.breakdown,
        "counters": counters,
        "period": period,
    }


def _resolve_period(requested, available: int, granularity: str) -> int:
    """Validate/resolve the exchange period against what the ghost
    width supports at this granularity."""
    if requested in (None, 1):
        return 1
    if requested == "auto":
        return available
    period = int(requested)
    if period < 1:
        raise ValueError("exchange_period must be >= 1")
    if period > available:
        raise ValueError(
            f"exchange_period {period} exceeds the {available} step(s) the"
            f" ghost width supports at {granularity} granularity; widen the"
            " ghost zone (ghost-cell expansion)"
        )
    return period


def run_executed(
    problem: StencilProblem,
    method: str,
    profile: Optional[MachineProfile] = None,
    timesteps: int = 1,
    seed: int = 0,
    page_size: Optional[int] = None,
    exchange_period=None,
    use_plans: Optional[bool] = None,
) -> ExecutedRun:
    """Run the problem end-to-end on simulated ranks; see module docs.

    *exchange_period*: exchange every N steps instead of every step,
    computing redundantly into the ghost shell in between (ghost-cell
    expansion / communication avoiding).  ``"auto"`` uses the maximum
    period the ghost width supports; the default (None) exchanges every
    step as the paper's main experiments do.

    *use_plans*: run the timestep loop through compiled execution plans
    (:mod:`repro.stencil.plan`) -- the default -- or force the generic
    kernels with ``False``.  ``None`` defers to the ``REPRO_NO_PLAN``
    environment variable.  Results are bit-identical either way.
    """
    if timesteps <= 0:
        raise ValueError("timesteps must be positive")
    profile = profile or generic_host()
    info = method_info(method)
    if info.base == "network":
        raise ValueError(
            "'network' is the modelled communication floor; use"
            " repro.core.model.model_timestep for it"
        )
    fabric = SimFabric(problem.nranks)
    outs = run_spmd(
        problem.nranks,
        _rank_fn,
        problem,
        method,
        profile,
        timesteps,
        seed,
        page_size,
        exchange_period,
        plans_enabled(use_plans),
        fabric=fabric,
    )

    global_result = np.empty(
        tuple(reversed(problem.global_extent)), dtype=problem.dtype
    )
    for out in outs:
        global_result[problem.owned_slices(out["coords"])] = out["result"]

    ranks = [
        RankMetrics(
            rank=i,
            timesteps=timesteps,
            totals=out["totals"],
            measured=out["measured"],
        )
        for i, out in enumerate(outs)
    ]
    metrics = RunMetrics(
        method=method,
        points_per_rank=problem.points_per_rank,
        nranks=problem.nranks,
        timesteps=timesteps,
        ranks=ranks,
    )
    c0 = outs[0]["counters"]
    payload = c0["payload"]
    period = outs[0]["period"]
    n_exchanges = max(1, -(-timesteps // period))
    return ExecutedRun(
        method=method,
        global_result=global_result,
        metrics=metrics,
        fabric=fabric,
        messages_per_rank=c0["msgs"] // n_exchanges,
        wire_bytes_per_rank=c0["wire"] // n_exchanges,
        padding_fraction=(c0["wire"] - payload) / payload if payload else 0.0,
        mapping_count=c0["maps"],
        exchange_period=period,
    )
