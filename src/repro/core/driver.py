"""Executed distributed driver: real data movement over simulated ranks.

Runs a :class:`~repro.core.problem.StencilProblem` for a number of
timesteps with a chosen exchange method.  Each rank is a thread in the
:mod:`repro.simmpi` fabric; data really moves; stencils are really applied
(vectorized).  Per-timestep *times* are modelled via
:func:`repro.core.model.model_timestep` (the single source of truth the
figure benches also use), while the run additionally verifies itself: the
assembled global result must equal the serial periodic reference
bit-for-bit.
"""

from __future__ import annotations

import math
import time
import zlib
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.brick.convert import (
    bricks_to_extended,
    conversion_scratch,
    extended_to_bricks,
)
from repro.brick.decomp import BrickDecomp
from repro.core.expansion import (
    brick_cycle_slots,
    depths_for_period,
    margins_for_period,
)
from repro.core.methods import MethodInfo, method_info
from repro.core.metrics import RankMetrics, RunMetrics
from repro.core.model import (
    compute_time,
    compute_time_table,
    exchange_breakdown,
    make_transport,
    model_timestep,
    _schedules,
)
from repro.core.problem import StencilProblem
from repro.core.runplan import DEFAULT_PARTITIONS, RankRunPlan, make_engines
from repro.ckpt import (
    CheckpointConfig,
    CheckpointError,
    CheckpointStore,
    ChunkSpec,
    RankCheckpointer,
    negotiate_epoch,
    problem_key,
    storage_chunks,
)
from repro.faults.errors import (
    ExchangeIntegrityError,
    ExchangeTimeoutError,
    InjectedCrashError,
    RankDeadError,
)
from repro.faults.plan import FaultPlan, RetryPolicy
from repro.faults.runtime import FaultInjector
from repro.obs import METRICS as _METRICS
from repro.obs import TRACER as _TRACER
from repro.exchange.base import ExchangeChannel
from repro.exchange.brickpack import BrickPackExchanger
from repro.exchange.costs import overlap_times
from repro.exchange.layout_ex import LayoutExchanger
from repro.exchange.memmap_ex import MemMapExchanger
from repro.exchange.mpitypes import MPITypesExchanger
from repro.exchange.pack import PackExchanger
from repro.exchange.shift import ShiftExchanger
from repro.hardware.profiles import MachineProfile, generic_host
from repro.simmpi.collectives import allreduce
from repro.simmpi.comm import SimComm
from repro.simmpi.fabric import SimFabric
from repro.simmpi.launcher import run_spmd, run_spmd_restartable
from repro.stencil.brick_kernels import apply_brick_stencil
from repro.stencil.kernels import apply_array_stencil, owned_slices
from repro.stencil.plan import (
    compile_array_phase_plans,
    compile_array_plan,
    compile_brick_phase_plans,
    compile_brick_plan,
    plans_enabled,
)
from repro.util.timing import PhaseTimer, TimeBreakdown

__all__ = ["ExecutedRun", "run_executed"]


@dataclass
class ExecutedRun:
    """Everything one executed run produced."""

    method: str
    global_result: np.ndarray
    metrics: RunMetrics
    fabric: SimFabric
    messages_per_rank: int
    wire_bytes_per_rank: int
    padding_fraction: float
    mapping_count: int  # MemMap only; 0 otherwise
    exchange_period: int = 1  # steps between exchanges (ghost expansion)
    final_method: str = ""  # exchange engine in use at the end of the run
    demotions: int = 0  # total degradation-ladder steps across all ranks
    faults: Optional[dict] = None  # injector summary (chaos runs only)
    restarts: int = 0  # world relaunches after survivable crashes
    resumed_epoch: int = -1  # negotiated restore epoch (-1: from scratch)
    checkpoint_saves: int = 0  # snapshots committed by rank 0
    checkpoint_bytes: int = 0  # snapshot bytes written across all ranks
    overlap: bool = False  # phased (interior/surface) execution ran
    hidden_comm_s: float = 0.0  # modelled wait hidden behind interior calc
    reshapes: int = 0  # elastic reshapes after permanent rank deaths
    final_rank_dims: Tuple[int, ...] = ()  # decomposition the run ended on
    dead_ranks: Tuple[int, ...] = ()  # old-world ranks lost permanently

    @property
    def hidden_comm_fraction(self) -> float:
        """Modelled fraction of wire wait hidden by interior compute.

        Rank 0's run totals, like the message counters: hidden over
        (hidden + still-visible wait).  Zero for unphased runs.
        """
        visible = self.metrics.ranks[0].totals.wait
        total = self.hidden_comm_s + visible
        return self.hidden_comm_s / total if total > 0.0 else 0.0


def _make_exchanger(
    info: MethodInfo,
    cart,
    problem: StencilProblem,
    profile: MachineProfile,
    array: Optional[np.ndarray],
    brick_state: Optional[tuple],
    page_size: Optional[int],
):
    ext, g = problem.subdomain_extent, problem.ghost
    if info.base in ("yask", "yask_ol"):
        return PackExchanger(cart, array, ext, g, profile)
    if info.base == "mpi_types":
        return MPITypesExchanger(cart, array, ext, g, profile)
    if info.base == "shift":
        return ShiftExchanger(cart, array, ext, g, profile)
    decomp, storage, assignment = brick_state
    if info.base in ("layout", "basic"):
        return LayoutExchanger(
            cart, decomp, storage, assignment, profile,
            merge_runs=(info.base == "layout"),
        )
    if info.base == "memmap":
        return MemMapExchanger(
            cart, decomp, storage, assignment, profile, page_size
        )
    raise ValueError(f"method {info.name!r} is model-only and cannot execute")


# Degradation ladder for MemMap runs: when the mapping machinery fails
# (mmap refusal, vm.max_map_count budget), the run demotes -- collectively
# -- to basic Layout exchange over the same padded storage, and from there
# to staged brick packing.  Only the exchange engine changes; storage,
# assignment and results stay identical.
_LADDER = ("memmap", "basic", "brickpack")


def _ladder_exchanger(level, cart, profile, decomp, storage, assignment, page):
    if level == 0:
        return MemMapExchanger(cart, decomp, storage, assignment, profile, page)
    if level == 1:
        return LayoutExchanger(
            cart, decomp, storage, assignment, profile, merge_runs=False
        )
    return BrickPackExchanger(cart, decomp, storage, assignment, profile)


def _build_ladder(
    cart, level, profile, decomp, storages, assignment, page,
    injector, counters, step,
):
    """Build exchangers at *level*, demoting collectively on failure.

    Every rank votes (allreduce-max) on whether any construction failed;
    demotion is all-or-none so peers always run wire-compatible engines.
    Returns ``(exchangers, level)``.
    """
    rank = cart.rank
    while True:
        built = []
        try:
            for st in storages:
                built.append(
                    _ladder_exchanger(
                        level, cart, profile, decomp, st, assignment, page
                    )
                )
            failed = 0
        except (OSError, ValueError):
            failed = 1
        if not int(allreduce(cart, np.asarray(failed), np.maximum)):
            return built, level
        for ex in built:
            close = getattr(ex, "close", None)
            if close:
                close()
        if level + 1 >= len(_LADDER):
            raise RuntimeError(
                "degradation ladder exhausted: even brick packing failed"
            )
        level += 1
        counters["demotions"] += 1
        if injector is not None:
            injector.record("demoted", src=rank, step=step)
        if _METRICS.enabled:
            _METRICS.count("faults.demoted", 1, rank=rank)
            _METRICS.gauge("exchange.ladder_level", level, rank=rank)


def _vmem_probe_failed(storage, page: int) -> bool:
    """Try the cheapest possible stitched view; True when mapping fails."""
    try:
        view = storage.make_view([(0, page)])
    except OSError:
        return True
    view.close()
    return False


def _exchange_with_retry(comm, exchanger, t, envelope, retry, injector):
    """One exchange, healed by bounded retry-with-backoff.

    Safe because detected faults leave a pristine retransmit queued and
    the envelope fabric makes whole-exchange retries idempotent (posts
    suppressed, deliveries replayed); see DESIGN.md.
    """
    rank = comm.rank
    if envelope:
        comm.set_epoch(t)
    try:
        attempt = 0
        while True:
            try:
                result = exchanger.exchange()
            except (ExchangeIntegrityError, ExchangeTimeoutError):
                if retry is None or attempt >= retry.max_retries:
                    raise
                if injector is not None:
                    injector.record("retry", src=rank, step=t)
                time.sleep(retry.sleep_for(attempt))
                attempt += 1
                continue
            if attempt and injector is not None:
                injector.record("healed", src=rank, step=t)
            return result
    finally:
        if envelope:
            comm.set_epoch(None)


def _modelled_totals(
    profile: MachineProfile,
    info: MethodInfo,
    problem: StencilProblem,
    page_size: Optional[int],
    timesteps: int,
    period: int,
    computed_points: list,
    overlap_points: Optional[int] = None,
) -> Tuple[TimeBreakdown, float]:
    """Accumulate modelled time over a run with exchange period *period*.

    ``computed_points[pos]`` is the number of stencil points evaluated at
    cycle position *pos* (redundant computation included).

    *overlap_points* (phased runs only) is the number of interior stencil
    points computed while the exchange is in flight: the modelled wire
    wait shrinks by the interior kernel time it hides behind, and the
    hidden seconds are returned separately so the run can report an
    overlap-efficiency figure.  Returns ``(totals, hidden_seconds)``.
    """
    ext = problem.subdomain_extent
    spec = problem.stencil
    exch = exchange_breakdown(
        profile, info.name, ext, problem.brick_dim, problem.ghost,
        problem.layout, page_size, spec.itemsize,
    )
    um_penalty = 0.0
    if info.transport == "um":
        transport = make_transport(info, profile)
        _, recvs, _ = _schedules(
            info, profile, ext, problem.brick_dim, problem.ghost,
            problem.layout, page_size, spec.itemsize,
        )
        um_penalty = transport.compute_penalty(recvs)

    interior_calc = (
        compute_time(profile, info, int(overlap_points), spec)
        if overlap_points is not None
        else None
    )

    # Per-cycle-position kernel times, priced once (the timing analogue
    # of the compiled execution plans: O(period) model evaluations, not
    # O(timesteps)).  Accumulation order is unchanged, so totals stay
    # bit-identical to the per-step evaluation.
    calc_table = compute_time_table(profile, info, computed_points, spec)
    totals = TimeBreakdown()
    hidden_total = 0.0
    for t in range(timesteps):
        pos = t % period
        calc = calc_table[pos]
        if pos == 0:
            calc += um_penalty
            wait = exch.wait
            if interior_calc is not None:
                # Phased execution: only the interior kernel time runs
                # while the wire completes, so exactly that much wait is
                # hidden (an explicit price, replacing the whole-calc
                # discount the overlapping GPU methods model).
                wait, hidden = overlap_times(wait, interior_calc)
                hidden_total += hidden
            elif info.overlaps:
                wait = max(0.0, wait - calc)
            totals.charge("pack", exch.pack)
            totals.charge("call", exch.call)
            totals.charge("wait", wait)
            totals.charge("move", exch.move)
        totals.charge("calc", calc)
    return totals, hidden_total


def _ckpt_meta(
    t: int,
    counters: dict,
    timer: PhaseTimer,
    ladder_level,
    period: int,
    adjacency_crc: int,
    injector: Optional[FaultInjector],
) -> dict:
    """Everything besides the field bytes a resumed rank needs back."""
    return {
        "step": int(t),
        "counters": {k: int(v) for k, v in counters.items()},
        "measured": timer.breakdown.as_dict(),
        "ladder_level": ladder_level,
        "period": int(period),
        "adjacency_crc": int(adjacency_crc),
        "fired_crashes": injector.crashed() if injector is not None else [],
    }


def _ckpt_apply_meta(
    meta: dict,
    counters: dict,
    timer: PhaseTimer,
    period: int,
    adjacency_crc: int,
    injector: Optional[FaultInjector],
) -> int:
    """Re-install restored cursors; returns the step to resume from."""
    if int(meta["period"]) != period:
        raise CheckpointError(
            f"snapshot was taken with exchange period {meta['period']},"
            f" this run uses {period}"
        )
    if int(meta["adjacency_crc"]) != int(adjacency_crc):
        raise CheckpointError(
            "snapshot adjacency/layout permutation does not match the"
            " rebuilt BrickInfo"
        )
    counters.update({k: int(v) for k, v in meta["counters"].items()})
    timer.breakdown = TimeBreakdown(**meta["measured"])
    if injector is not None:
        injector.mark_fired(meta.get("fired_crashes") or ())
    return int(meta["step"])


def _rank_fn(
    comm: SimComm,
    problem: StencilProblem,
    method: str,
    profile: MachineProfile,
    timesteps: int,
    seed: int,
    page_size: Optional[int],
    exchange_period,
    use_plans: bool,
    overlap: bool = False,
    injector: Optional[FaultInjector] = None,
    envelope: bool = False,
    retry: Optional[RetryPolicy] = None,
    degrade_enabled: bool = False,
    ckpt: Optional[CheckpointConfig] = None,
):
    info = method_info(method)
    cart = comm.Create_cart(
        problem.rank_dims, periods=[problem.periodic] * problem.ndim
    )
    ext = problem.subdomain_extent
    g = problem.ghost
    spec = problem.stencil

    global_arr = problem.initial_global(seed)
    owned = global_arr[problem.owned_slices(cart.coords)]
    ext_shape = tuple(e + 2 * g for e in reversed(ext))
    own_slc = owned_slices(ext, g)
    owned_points = problem.points_per_rank

    counters = {"msgs": 0, "wire": 0, "payload": 0, "maps": 0, "demotions": 0}
    timer = PhaseTimer()  # measured wall-clock of the real kernel path
    rank = comm.rank

    def crash_check(t: int) -> None:
        if injector is None:
            return
        comm.fabric.heartbeat(rank)
        if injector.death_due(rank, t):
            # Permanent node loss, checked before the crash: death wins.
            # Marking the fabric makes peers targeting this rank fail
            # fast with the same typed error instead of timing out.
            comm.fabric.mark_dead(rank)
            raise RankDeadError(
                f"rank {rank} died permanently at step {t} (scheduled by"
                f" fault plan seed {injector.plan.seed})"
            )
        if injector.crash_due(rank, t):
            raise InjectedCrashError(
                f"rank {rank} crashed at step {t} (scheduled by fault plan"
                f" seed {injector.plan.seed})"
            )

    if not info.uses_bricks:
        period = _resolve_period(exchange_period, g // spec.radius, "element")
        margins = margins_for_period(period, spec.radius, g)
        computed_points = [
            int(np.prod([e + 2 * margins[pos] for e in ext]))
            for pos in range(period)
        ]
        a = np.zeros(ext_shape, dtype=problem.dtype)
        a[own_slc] = owned
        b = np.zeros_like(a)
        arrays = [a, b]
        start_step = 0
        resumed_epoch = -1
        cp = None
        if ckpt is not None:
            # Array methods snapshot the whole extended subdomain (ghost
            # margins included) as one chunk; the margins make mid-cycle
            # restores of period>1 runs self-contained.
            key = problem_key(problem, seed, method, 1, 1, period)
            cp = RankCheckpointer(
                ckpt, rank, [ChunkSpec("array", 0, 1)], key, 1
            )
            if ckpt.resume:
                epoch = negotiate_epoch(cart, cp.verified_epochs(), allreduce)
                if epoch >= 0:
                    meta = cp.restore(
                        epoch, [("array", arrays[0].reshape(-1).view(np.uint8))]
                    )
                    start_step = _ckpt_apply_meta(
                        meta, counters, timer, period, 0, injector
                    )
                    resumed_epoch = epoch
        exchangers = [
            _make_exchanger(info, cart, problem, profile, arr, None, page_size)
            for arr in (a, b)
        ]
        # Compiled execution plans: per-step slice derivation, tap-loop
        # temporaries and kernel dispatch all hoisted out of the loop.
        plans = (
            [
                compile_array_plan(spec, ext, g, margins[pos], problem.dtype)
                for pos in range(period)
            ]
            if use_plans
            else None
        )
        # Exchange engines: persistent channels (negotiated once, re-fired
        # batched every step) wherever the method and fabric allow, the
        # per-message exchangers otherwise.  Plans off disables the whole
        # run-plan layer, channels included.
        engines = make_engines(
            exchangers,
            plans is not None and not envelope,
            DEFAULT_PARTITIONS if overlap else 1,
        )
        plain_path = (
            plans is not None
            and injector is None
            and cp is None
            and not envelope
            and not _TRACER.enabled
            and not _METRICS.enabled
        )
        # Phased (interior/surface) execution needs the plain fast path
        # plus a channel on every slot; anything else -- featured runs,
        # channel-less methods like Shift -- falls back to the unphased
        # loop, exactly like featured runs fall off the run plan.
        phase_split = None
        if (
            overlap
            and plain_path
            and all(isinstance(e, ExchangeChannel) for e in engines)
        ):
            phase_split = compile_array_phase_plans(
                spec, ext, g, margins[0], problem.dtype
            )
        overlap_points = (
            (phase_split[0].cells if phase_split[0] is not None else 0)
            if phase_split is not None
            else None
        )
        if plain_path:
            # Plain fast path: replay the whole run through the compiled
            # rank plan with minimal per-step Python.
            rp = RankRunPlan(engines, plans, arrays, period, phase_split)
            src = rp.run(start_step, timesteps, counters, timer)
        else:
            src, dst = 0, 1
            for t in range(start_step, timesteps):
                pos = t % period
                crash_check(t)
                if cp is not None and ckpt.due(t, start_step):
                    # Arrays double-buffer with no section structure, so
                    # every snapshot rewrites the one chunk.
                    cp.dirty.mark_all()
                    cp.save(
                        t,
                        [("array", arrays[src].reshape(-1).view(np.uint8))],
                        _ckpt_meta(
                            t, counters, timer, None, period, 0, injector
                        ),
                    )
                with _TRACER.span("driver.step", rank=rank, step=t):
                    if pos == 0:
                        with _TRACER.span("driver.exchange", rank=rank,
                                          step=t, method=info.name):
                            res = _exchange_with_retry(
                                comm, engines[src], t, envelope, retry,
                                injector,
                            )
                        counters["msgs"] += res.messages_sent
                        counters["wire"] += res.wire_bytes_sent
                        counters["payload"] += res.payload_bytes_sent
                        if _METRICS.enabled:
                            _METRICS.count("driver.exchanges", 1, rank=rank)
                            _METRICS.count(
                                "driver.messages", res.messages_sent,
                                rank=rank,
                            )
                            _METRICS.count(
                                "driver.wire_bytes", res.wire_bytes_sent,
                                rank=rank,
                            )
                    with _TRACER.span("driver.calc", rank=rank, step=t):
                        with timer.phase("calc"):
                            if plans is not None:
                                plans[pos].execute(arrays[src], arrays[dst])
                            else:
                                apply_array_stencil(
                                    arrays[src], arrays[dst], spec, ext, g,
                                    margin=margins[pos],
                                )
                src, dst = dst, src
        result = arrays[src][own_slc].copy()
    else:
        decomp = BrickDecomp(
            ext, problem.brick_dim, g, problem.layout, problem.dtype
        )
        page = page_size or (
            profile.gpu.page_size if info.is_gpu and profile.gpu else profile.page_size
        )
        if info.base == "memmap":
            sa, asn = decomp.mmap_alloc(page)
            sb, _ = decomp.mmap_alloc(page)
        else:
            sa, asn = decomp.allocate()
            sb, _ = decomp.allocate()
        binfo = decomp.brick_info(asn)
        period = _resolve_period(exchange_period, decomp.width, "brick")
        cycle_slots = brick_cycle_slots(
            decomp, asn, spec.radius, depths_for_period(period, decomp.width)
        )
        computed_points = [
            len(cycle_slots[pos]) * decomp.brick_volume
            for pos in range(period)
        ]
        storages = [sa, sb]
        start_step = 0
        resumed_epoch = -1
        restore_level = 0
        cp = None
        adjacency_crc = 0
        ghost_ranges: List[Tuple[int, int]] = []
        if ckpt is not None:
            # Section-granular snapshots of the src storage only: the
            # ghost-expansion invariant (bricks read at cycle position
            # pos+1 were computed at pos) means the dst buffer never
            # contributes bytes a resumed run could read.
            key = problem_key(
                problem, seed, method, asn.alignment, asn.total_slots, period
            )
            cp = RankCheckpointer(
                ckpt, rank, storage_chunks(asn), key, asn.total_slots
            )
            adjacency_crc = zlib.crc32(
                np.ascontiguousarray(binfo.adjacency).tobytes()
            )
            ghost_ranges = [
                (s.start, s.nbricks)
                for s in asn.sections
                if s.kind == "ghost" and s.nbricks
            ]
            if ckpt.resume:
                epoch = negotiate_epoch(cart, cp.verified_epochs(), allreduce)
                if epoch >= 0:
                    # Restoring writes through the arena, so MemMap
                    # stitched views built below alias the restored
                    # bytes directly (vmem re-attach).
                    meta = cp.restore(epoch, cp.chunk_views(storages[0]))
                    start_step = _ckpt_apply_meta(
                        meta, counters, timer, period, adjacency_crc, injector
                    )
                    restore_level = int(meta.get("ladder_level") or 0)
                    resumed_epoch = epoch
        ladder_level = None
        if degrade_enabled and info.base == "memmap":
            exchangers, ladder_level = _build_ladder(
                cart, restore_level, profile, decomp, storages, asn, page,
                injector, counters, -1,
            )
        else:
            exchangers = [
                _make_exchanger(
                    info, cart, problem, profile, None, (decomp, st, asn), page
                )
                for st in storages
            ]
        if resumed_epoch < 0:
            tmp = np.zeros(ext_shape, dtype=problem.dtype)
            tmp[own_slc] = owned
            extended_to_bricks(tmp, decomp, sa, asn)
        # Compiled execution plans: fused gather tables, persistent
        # halo/accumulator buffers and the specialized batch kernel,
        # built once per cycle position.
        plans = (
            [
                compile_brick_plan(
                    spec, binfo, cycle_slots[pos], 0, problem.dtype
                )
                for pos in range(period)
            ]
            if use_plans
            else None
        )
        # Exchange engines: persistent channels where possible (see the
        # array branch).  Rebuilt on every ladder demotion below so the
        # replacement exchangers get channels too.
        channels_on = plans is not None and not envelope
        engines = make_engines(
            exchangers, channels_on, DEFAULT_PARTITIONS if overlap else 1
        )
        plain_path = (
            plans is not None
            and injector is None
            and cp is None
            and ladder_level is None
            and not envelope
            and not _TRACER.enabled
            and not _METRICS.enabled
        )
        # Phased execution: see the array branch.  Interior bricks are
        # the slots whose adjacency references no ghost-section slot.
        phase_split = None
        if (
            overlap
            and plain_path
            and all(isinstance(e, ExchangeChannel) for e in engines)
        ):
            phase_split = compile_brick_phase_plans(
                spec, binfo, asn, cycle_slots[0], 0, problem.dtype
            )
        overlap_points = (
            (
                len(phase_split[0].slots) * decomp.brick_volume
                if phase_split[0] is not None
                else 0
            )
            if phase_split is not None
            else None
        )
        if plain_path:
            # Plain fast path: replay the whole run through the compiled
            # rank plan with minimal per-step Python.
            rp = RankRunPlan(engines, plans, storages, period, phase_split)
            src = rp.run(start_step, timesteps, counters, timer)
        else:
            src, dst = 0, 1
            for t in range(start_step, timesteps):
                pos = t % period
                crash_check(t)
                if cp is not None and ckpt.due(t, start_step):
                    # Placed after the crash check (a rank never snapshots
                    # the step it dies on) and before the degradation vote
                    # (demotion events after the snapshot refire identically
                    # on replay, so they must not be double-counted).
                    cp.save(
                        t,
                        cp.chunk_views(storages[src]),
                        _ckpt_meta(
                            t, counters, timer, ladder_level, period,
                            adjacency_crc, injector,
                        ),
                    )
                if pos == 0 and ladder_level is not None:
                    # Degradation vote: a rank whose mapping machinery fails a
                    # live probe asks for demotion; allreduce-max keeps every
                    # rank on the same (wire-compatible) engine.
                    want = 0
                    if (
                        injector is not None
                        and ladder_level + 1 < len(_LADDER)
                        and injector.degrade_due(rank, t)
                    ):
                        with injector.vmem_armed("view_map_chunk"):
                            if _vmem_probe_failed(storages[src], page):
                                injector.record("vmem_fault", src=rank, step=t)
                                want = 1
                    if int(allreduce(cart, np.asarray(want), np.maximum)):
                        for ex in exchangers:
                            close = getattr(ex, "close", None)
                            if close:
                                close()
                        counters["demotions"] += 1
                        if injector is not None:
                            injector.record("demoted", src=rank, step=t)
                        if _METRICS.enabled:
                            _METRICS.count("faults.demoted", 1, rank=rank)
                            _METRICS.gauge(
                                "exchange.ladder_level", ladder_level + 1,
                                rank=rank,
                            )
                        exchangers, ladder_level = _build_ladder(
                            cart, ladder_level + 1, profile, decomp, storages,
                            asn, page, injector, counters, t,
                        )
                        engines = make_engines(exchangers, channels_on)
                with _TRACER.span("driver.step", rank=rank, step=t):
                    if pos == 0:
                        with _TRACER.span("driver.exchange", rank=rank, step=t,
                                          method=info.name):
                            res = _exchange_with_retry(
                                comm, engines[src], t, envelope, retry,
                                injector,
                            )
                        counters["msgs"] += res.messages_sent
                        counters["wire"] += res.wire_bytes_sent
                        counters["payload"] += res.payload_bytes_sent
                        if _METRICS.enabled:
                            _METRICS.count("driver.exchanges", 1, rank=rank)
                            _METRICS.count(
                                "driver.messages", res.messages_sent, rank=rank
                            )
                            _METRICS.count(
                                "driver.wire_bytes", res.wire_bytes_sent,
                                rank=rank,
                            )
                        if cp is not None:
                            # Exchange rewrites every ghost section of the
                            # current src buffer.
                            for g_start, g_n in ghost_ranges:
                                cp.dirty.mark_range(g_start, g_n)
                    with _TRACER.span("driver.calc", rank=rank, step=t):
                        with timer.phase("calc"):
                            if plans is not None:
                                plans[pos].execute(storages[src], storages[dst])
                            else:
                                apply_brick_stencil(
                                    spec, storages[src], storages[dst], binfo,
                                    cycle_slots[pos],
                                )
                    if cp is not None:
                        cp.dirty.mark_slots(cycle_slots[pos])
                src, dst = dst, src
        if info.base == "memmap":
            # After a demotion the live engine may have no mappings at all.
            counters["maps"] = getattr(exchangers[0], "mapping_count", 0)
            if _METRICS.enabled:
                _METRICS.gauge(
                    "memmap.regions", counters["maps"], rank=rank
                )
        result = bricks_to_extended(
            decomp, storages[src], asn, out=conversion_scratch(decomp)
        )[own_slc].copy()
        for ex in exchangers:
            close = getattr(ex, "close", None)
            if close:
                close()
        for st in storages:
            st.close()

    totals, hidden_s = _modelled_totals(
        profile, info, problem, page_size, timesteps, period, computed_points,
        overlap_points,
    )
    return {
        "coords": cart.coords,
        "result": result,
        "totals": totals,
        "measured": timer.breakdown,
        "counters": counters,
        "period": period,
        "final_method": exchangers[0].method,
        "resumed_epoch": resumed_epoch,
        "ckpt_saves": cp.saves if cp is not None else 0,
        "ckpt_bytes": cp.saved_bytes if cp is not None else 0,
        "overlap": phase_split is not None,
        "hidden_s": hidden_s,
    }


def _resolve_period(requested, available: int, granularity: str) -> int:
    """Validate/resolve the exchange period against what the ghost
    width supports at this granularity."""
    if requested in (None, 1):
        return 1
    if requested == "auto":
        return available
    period = int(requested)
    if period < 1:
        raise ValueError("exchange_period must be >= 1")
    if period > available:
        raise ValueError(
            f"exchange_period {period} exceeds the {available} step(s) the"
            f" ghost width supports at {granularity} granularity; widen the"
            " ghost zone (ghost-cell expansion)"
        )
    return period


def _elastic_reshape(
    cur_problem: StencilProblem,
    cur_ckpt: CheckpointConfig,
    method: str,
    info: MethodInfo,
    profile: MachineProfile,
    seed: int,
    page_size: Optional[int],
    exchange_period,
    injector: FaultInjector,
    topology,
    n: int,
):
    """One elastic recovery round after a permanent rank death.

    Plans the shrunken world, negotiates the newest epoch verified on
    every old rank, re-bricks it into a fresh store under the old one
    (``reshape<n>/``) and returns ``(new_problem, new_ckpt, dead)`` for
    the relaunch.  No common epoch degrades to a from-scratch reshape:
    the new world starts empty and recomputes -- still bit-exact.
    Imported lazily: :mod:`repro.elastic` sits above this module.
    """
    from repro.elastic.rebrick import rebrick, resolved_period, snapshot_key
    from repro.elastic.recovery import negotiate_recovery_epoch, plan_recovery

    # Sweep every scheduled death into this reshape.  Which of several
    # concurrently-dying ranks raises first is a thread race (the abort
    # may beat the others to their death step), but the plan says all of
    # them are gone: folding them in here keeps the event log, the
    # survivor set and the reshape plan deterministic per seed.
    for r, s in injector.plan.deaths:
        injector.death_due(r, s)
    dead = sorted({r for r, _ in injector.died()})
    plan = plan_recovery(cur_problem, dead, topology, profile.network)
    page = page_size or (
        profile.gpu.page_size if info.is_gpu and profile.gpu else profile.page_size
    )
    period = resolved_period(cur_problem, method, exchange_period)
    old_key = snapshot_key(cur_problem, method, seed, period, page)
    epoch = negotiate_recovery_epoch(
        cur_ckpt.store, cur_problem.nranks, len(plan.survivors), old_key
    )
    new_store = CheckpointStore(cur_ckpt.store.root / f"reshape{n}")
    with _TRACER.span("elastic.reshape", epoch=epoch,
                      new_nranks=plan.new_nranks):
        if epoch >= 0:
            rebrick(
                cur_ckpt.store, cur_problem, epoch, new_store,
                plan.new_problem, method=method, seed=seed,
                exchange_period=exchange_period, page=page,
            )
    injector.record("reshaped", step=-1)
    # The plan's death schedule names old-world ranks; after the reshape
    # those nodes are excluded and ranks renumbered, so it is spent.
    injector.deaths_disabled = True
    if _METRICS.enabled:
        _METRICS.count("elastic.reshapes", 1)
        _METRICS.gauge("elastic.nranks", plan.new_nranks)
    new_ckpt = CheckpointConfig(
        store=new_store,
        period=cur_ckpt.period,
        mode=cur_ckpt.mode,
        resume=epoch >= 0,
    )
    return plan.new_problem, new_ckpt, dead


def run_executed(
    problem: StencilProblem,
    method: str,
    profile: Optional[MachineProfile] = None,
    timesteps: int = 1,
    seed: int = 0,
    page_size: Optional[int] = None,
    exchange_period=None,
    use_plans: Optional[bool] = None,
    overlap: bool = False,
    fault_plan: Optional[FaultPlan] = None,
    verify_wire: bool = False,
    retry: Optional[RetryPolicy] = None,
    degrade: Optional[bool] = None,
    fabric_timeout: Optional[float] = None,
    checkpoint_dir=None,
    checkpoint_period: Optional[int] = None,
    checkpoint_mode: str = "incr",
    resume: bool = False,
    max_restarts: Optional[int] = None,
    elastic: bool = False,
    topology=None,
    max_reshapes: Optional[int] = None,
    check: Optional[str] = None,
) -> ExecutedRun:
    """Run the problem end-to-end on simulated ranks; see module docs.

    *exchange_period*: exchange every N steps instead of every step,
    computing redundantly into the ghost shell in between (ghost-cell
    expansion / communication avoiding).  ``"auto"`` uses the maximum
    period the ghost width supports; the default (None) exchanges every
    step as the paper's main experiments do.

    *use_plans*: run the timestep loop through compiled execution plans
    (:mod:`repro.stencil.plan`) -- the default -- or force the generic
    kernels with ``False``.  ``None`` defers to the ``REPRO_NO_PLAN``
    environment variable.  Results are bit-identical either way.

    *overlap*: phase each exchange step for compute-comm overlap --
    start the partitioned persistent channel, compute the interior
    stencil work while messages are in flight, complete the receives,
    then sweep the surface.  Results are bit-identical to the unphased
    path.  Requires the plain run-plan fast path and a channel-capable
    method; featured runs (chaos, envelopes, checkpoints, tracing) and
    channel-less methods fall back to the unphased instrumented loop,
    reported via ``ExecutedRun.overlap``.

    Chaos-fabric knobs (see README "Robustness"):

    *fault_plan*: a seeded :class:`~repro.faults.FaultPlan` to inject
    wire faults / crashes / degradation events.  Implies verified
    (enveloped) exchange.  *verify_wire* turns envelopes on without any
    injection.  Envelope headers and retries cost wall-clock only:
    modelled bytes/times and the numerical results are unchanged.

    *retry*: :class:`~repro.faults.RetryPolicy` healing detected faults
    (defaults to the standard policy whenever envelopes are on; pass
    ``RetryPolicy(max_retries=0)`` to fail on first detection).

    *degrade*: enable the MemMap->Layout->Pack demotion ladder (defaults
    to on exactly when the plan schedules degradation events).

    *fabric_timeout*: deadlock timeout in seconds (else the
    ``REPRO_FABRIC_TIMEOUT`` environment variable, else 30 s).

    Checkpoint/restart knobs (see README "Checkpoint/restart"):

    *checkpoint_dir*: directory for the content-verified snapshot store;
    enables checkpointing.  *checkpoint_period* snapshots every N steps
    (default 1).  *checkpoint_mode* is ``"incr"`` (dirty-section
    incremental, the default) or ``"full"``.  With a checkpoint store,
    scheduled crashes in *fault_plan* become survivable: the world is
    relaunched from the latest globally consistent epoch and the run
    continues bit-exactly.  *resume* restores from an existing store
    before the first step (cold restart).  *max_restarts* bounds the
    relaunches (default: the number of distinct scheduled crashes).

    *check*: ahead-of-run static verification (``repro.check``).
    ``"strict"`` verifies the schedule and plan memory before the first
    rank launches and raises
    :class:`~repro.check.CheckFailedError` on any violation;
    ``"warn"`` prints the findings and runs anyway.  The verifier
    reconstructs the plan from the same geometry the run will use
    (partition count included), so a clean check proves deadlock
    freedom and split agreement for this exact configuration.

    Elastic restart knobs (see README "Robustness" and DESIGN.md 10):

    *elastic*: survive *permanent* rank deaths (``fault_plan.deaths``).
    Requires a checkpoint store.  When a rank dies, the survivors agree
    on a shrunken decomposition that avoids the failed nodes
    (*topology*, a :class:`~repro.elastic.ClusterTopology`; default one
    rank per node), negotiate the newest epoch verified on every old
    rank, re-brick that epoch's snapshots onto the new decomposition and
    relaunch.  With no common epoch the reshaped world recomputes from
    the seeded initial state -- still bit-exact, just slower.
    *max_reshapes* bounds reshape rounds (default: the number of
    distinct scheduled deaths).  Elastic restart requires a periodic
    problem (ghost shells are rebuilt by periodic wrap).  Without a
    checkpoint store a death is still *detected* -- peers fail fast with
    :class:`~repro.faults.RankDeadError` -- but not recovered.
    """
    if timesteps <= 0:
        raise ValueError("timesteps must be positive")
    profile = profile or generic_host()
    info = method_info(method)
    if info.base == "network":
        raise ValueError(
            "'network' is the modelled communication floor; use"
            " repro.core.model.model_timestep for it"
        )
    if check is not None:
        if check not in ("strict", "warn"):
            raise ValueError(
                f"check={check!r}: expected None, 'strict' or 'warn'"
            )
        from repro.check import run_checks

        report = run_checks(
            problem, method,
            page_size=page_size,
            profile=profile,
            partitions=DEFAULT_PARTITIONS if overlap else 1,
            passes=("schedule", "memory"),
            strict=(check == "strict"),
        )
        if not report.ok:  # only reachable in warn mode
            import sys as _sys

            print(report.render(), file=_sys.stderr)
    injector = FaultInjector(fault_plan) if fault_plan is not None else None
    envelope = verify_wire or injector is not None
    if envelope and retry is None:
        retry = RetryPolicy()
    if degrade is None:
        degrade = bool(fault_plan is not None and fault_plan.degrade)

    ckpt = None
    if checkpoint_dir is not None:
        ckpt = CheckpointConfig(
            store=CheckpointStore(checkpoint_dir),
            period=int(checkpoint_period if checkpoint_period is not None else 1),
            mode=checkpoint_mode,
            resume=bool(resume),
        )
    elif resume or checkpoint_period is not None:
        raise ValueError(
            "resume/checkpoint_period require a checkpoint_dir"
        )
    if ckpt is not None and injector is not None:
        # Checkpointing turns scheduled crashes into survivable events:
        # each fires once, then the relaunched world sails past it.
        injector.survivable = True
    if max_restarts is None:
        max_restarts = (
            len(set(fault_plan.crashes))
            if ckpt is not None and fault_plan is not None
            else 0
        )
    if max_reshapes is None:
        max_reshapes = (
            len({r for r, _ in fault_plan.deaths})
            if elastic and fault_plan is not None
            else 0
        )

    cur_problem = problem
    cur_ckpt = ckpt
    reshapes = 0
    restarts = 0
    dead_total: List[int] = []

    while True:

        def make_fabric() -> SimFabric:
            fab = SimFabric(cur_problem.nranks, timeout=fabric_timeout)
            if envelope:
                fab.enable_envelope(injector)
            return fab

        rank_args = (
            cur_problem,
            method,
            profile,
            timesteps,
            seed,
            page_size,
            exchange_period,
            plans_enabled(use_plans),
            overlap,
            injector,
            envelope,
            retry,
            degrade,
            cur_ckpt,
        )
        try:
            if cur_ckpt is not None and max_restarts > 0:

                def on_restart(n: int, cause, _ck=cur_ckpt) -> None:
                    _ck.resume = True
                    if injector is not None:
                        injector.record("restarted", step=-1)
                    if _METRICS.enabled:
                        _METRICS.count("ckpt.restarts", 1)

                outs, fabric, n_restarts = run_spmd_restartable(
                    cur_problem.nranks,
                    _rank_fn,
                    *rank_args,
                    make_fabric=make_fabric,
                    max_restarts=max_restarts,
                    should_restart=lambda c: isinstance(c, InjectedCrashError),
                    on_restart=on_restart,
                )
            else:
                fabric = make_fabric()
                n_restarts = 0
                outs = run_spmd(
                    cur_problem.nranks, _rank_fn, *rank_args, fabric=fabric
                )
            restarts += n_restarts
            break
        except RuntimeError as err:
            # Elastic recovery: a *permanent* death is never restartable
            # in place -- the node is gone.  Reshape onto the survivors
            # and relaunch; anything else propagates unchanged.
            recoverable = (
                elastic
                and cur_ckpt is not None
                and injector is not None
                and reshapes < max_reshapes
                and isinstance(err.__cause__, RankDeadError)
                and injector.died()
            )
            if not recoverable:
                raise
            cur_problem, cur_ckpt, newly_dead = _elastic_reshape(
                cur_problem, cur_ckpt, method, info, profile, seed,
                page_size, exchange_period, injector, topology,
                reshapes + 1,
            )
            dead_total.extend(newly_dead)
            reshapes += 1

    global_result = np.empty(
        tuple(reversed(cur_problem.global_extent)), dtype=cur_problem.dtype
    )
    for out in outs:
        global_result[cur_problem.owned_slices(out["coords"])] = out["result"]

    ranks = [
        RankMetrics(
            rank=i,
            timesteps=timesteps,
            totals=out["totals"],
            measured=out["measured"],
        )
        for i, out in enumerate(outs)
    ]
    metrics = RunMetrics(
        method=method,
        points_per_rank=cur_problem.points_per_rank,
        nranks=cur_problem.nranks,
        timesteps=timesteps,
        ranks=ranks,
    )
    c0 = outs[0]["counters"]
    payload = c0["payload"]
    period = outs[0]["period"]
    n_exchanges = max(1, -(-timesteps // period))
    return ExecutedRun(
        method=method,
        global_result=global_result,
        metrics=metrics,
        fabric=fabric,
        messages_per_rank=c0["msgs"] // n_exchanges,
        wire_bytes_per_rank=c0["wire"] // n_exchanges,
        padding_fraction=(c0["wire"] - payload) / payload if payload else 0.0,
        mapping_count=c0["maps"],
        exchange_period=period,
        final_method=outs[0]["final_method"],
        demotions=sum(out["counters"]["demotions"] for out in outs),
        faults=injector.summary() if injector is not None else None,
        restarts=restarts,
        resumed_epoch=outs[0]["resumed_epoch"],
        checkpoint_saves=outs[0]["ckpt_saves"],
        checkpoint_bytes=sum(out["ckpt_bytes"] for out in outs),
        overlap=outs[0]["overlap"],
        hidden_comm_s=outs[0]["hidden_s"],
        reshapes=reshapes,
        final_rank_dims=tuple(cur_problem.rank_dims),
        dead_ranks=tuple(sorted(set(dead_total))),
    )
