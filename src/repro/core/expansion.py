"""Ghost-cell expansion: communication-avoiding timestepping.

With a ghost zone ``g`` elements wide and a stencil of radius ``r``, one
exchange validates the whole shell; each subsequent step can *redundantly
compute* into the shrinking valid region instead of communicating
(Ding & He, the paper's reference [7]).  The exchange frequency drops by
the cycle period at the cost of redundant computation -- exactly the
trade the paper quantifies when it charges "any redundant computation
necessary for communication avoiding" to ``Comp``.

Two granularities:

* **element** (lexicographic arrays): validity shrinks by ``r`` elements
  per step, giving the full period ``floor(g / r)``.
* **brick** (blocked storage): only whole bricks are computed, so the
  valid depth snaps down to brick multiples and the period is shorter --
  the brick-size/ghost-width trade the D3/D4 ablations explore.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.brick.decomp import BrickDecomp, SlotAssignment

__all__ = [
    "element_validity_schedule",
    "element_cycle_margins",
    "brick_validity_schedule",
    "brick_cycle_depths",
    "brick_cycle_slots",
    "cycle_period",
    "depths_for_period",
    "margins_for_period",
]


def element_validity_schedule(ghost: int, radius: int) -> List[int]:
    """Valid ghost depth (elements) before each cycle step, element
    granularity: ``g, g-r, g-2r, ...`` while at least ``r`` remains."""
    _check(ghost, radius)
    out = []
    valid = ghost
    while valid >= radius:
        out.append(valid)
        valid -= radius
    return out


def element_cycle_margins(ghost: int, radius: int) -> List[int]:
    """How far beyond the owned region step ``s`` may compute
    (elements): ``valid(s) - r``."""
    return [v - radius for v in element_validity_schedule(ghost, radius)]


def brick_validity_schedule(ghost: int, brick_dim: int, radius: int) -> List[int]:
    """Valid ghost depth before each cycle step, brick granularity.

    After a step, only whole computed bricks are trustworthy, so the
    valid depth snaps down: ``valid' = floor((valid - r) / bd) * bd``.
    """
    _check(ghost, radius)
    if brick_dim <= 0:
        raise ValueError("brick_dim must be positive")
    out = []
    valid = ghost
    while valid >= radius:
        out.append(valid)
        valid = (valid - radius) // brick_dim * brick_dim
        if out and valid >= out[-1]:  # pragma: no cover - defensive
            raise AssertionError("validity must strictly decrease")
    return out


def brick_cycle_depths(ghost: int, brick_dim: int, radius: int) -> List[int]:
    """Max ghost *brick depth* computable at each cycle step.

    Depth 0 = owned bricks only; depth d additionally computes ghost
    bricks whose Chebyshev brick distance from the owned box is <= d.
    A depth-d brick's outermost element sits ``d * bd`` deep, and its
    halo needs ``d * bd + r`` of valid shell.
    """
    out = []
    for valid in brick_validity_schedule(ghost, brick_dim, radius):
        out.append(max(0, (valid - radius) // brick_dim))
    return out


def cycle_period(ghost: int, radius: int, brick_dim: int = 0) -> int:
    """Steps per exchange: element granularity if ``brick_dim`` is 0."""
    if brick_dim:
        return len(brick_validity_schedule(ghost, brick_dim, radius))
    return len(element_validity_schedule(ghost, radius))


def margins_for_period(period: int, radius: int, ghost: int) -> List[int]:
    """Element margins per cycle step for a chosen *period*.

    Step ``s`` must leave ``period - 1 - s`` more steps computable, so it
    computes ``(period - 1 - s) * radius`` elements beyond the owned box.
    """
    if period < 1:
        raise ValueError("period must be >= 1")
    if (period - 1) * radius + radius > ghost:
        raise ValueError(
            f"period {period} needs {period * radius} of ghost, have {ghost}"
        )
    return [(period - 1 - s) * radius for s in range(period)]


def depths_for_period(period: int, width: int) -> List[int]:
    """Brick depths per cycle step for a chosen *period* (max = width)."""
    if period < 1:
        raise ValueError("period must be >= 1")
    if period > width:
        raise ValueError(
            f"period {period} exceeds the ghost width of {width} bricks"
        )
    return [period - 1 - s for s in range(period)]


def brick_cycle_slots(
    decomp: BrickDecomp,
    assignment: SlotAssignment,
    radius: int,
    depths: List[int] = None,
) -> List[np.ndarray]:
    """Per-cycle-step compute slot lists for brick storage.

    Entry ``s`` lists every brick to compute at cycle step ``s``: the
    owned bricks plus all ghost bricks within the step's allowed depth.
    ``len(result)`` is the exchange period.  *depths* defaults to the
    maximum schedule :func:`brick_cycle_depths` allows.
    """
    if depths is None:
        depths = brick_cycle_depths(
            decomp.ghost_elems, decomp.brick_dim[0], radius
        )
    coords = assignment.slot_coords  # (total, ndim), sentinel for padding
    sentinel = np.iinfo(np.int32).min
    valid_slot = coords[:, 0] != sentinel
    # Chebyshev brick depth beyond the owned box, per slot.
    depth = np.zeros(assignment.total_slots, dtype=np.int64)
    for axis in range(decomp.ndim):
        c = coords[:, axis]
        n = decomp.grid[axis]
        depth = np.maximum(depth, np.maximum(-c, c - (n - 1)))
    slots_per_step = []
    for d in depths:
        mask = valid_slot & (depth <= d)
        slots_per_step.append(np.nonzero(mask)[0])
    return slots_per_step


def _check(ghost: int, radius: int) -> None:
    if ghost <= 0 or radius <= 0:
        raise ValueError("ghost and radius must be positive")
    if radius > ghost:
        raise ValueError(
            f"stencil radius {radius} exceeds the ghost width {ghost}"
        )
