"""Run metrics in the paper artifact's format.

The artifact reports, per run: ``calc``, ``pack``, ``call``, ``wait``
(seconds per timestep, ``[minimum, average, maximum]`` across ranks) and
``perf`` (overall stencil throughput from the average per-iteration time).
:class:`RunMetrics` reproduces exactly that, plus the ``move`` phase for
GPU staging and communication/computation totals used by the figures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.util.stats import MinAvgMax, summarize
from repro.util.timing import PHASES, TimeBreakdown

__all__ = ["RankMetrics", "RunMetrics"]


@dataclass
class RankMetrics:
    """One rank's accumulated phase times over a run.

    ``totals`` holds *modelled* virtual seconds (the single source of
    truth for figures); ``measured``, when present, holds wall-clock
    seconds the executed driver's :class:`~repro.util.timing.PhaseTimer`
    captured around the real kernel path -- how the plan-vs-generic
    speedup is observed without perturbing the model.
    """

    rank: int
    timesteps: int
    totals: TimeBreakdown
    measured: Optional[TimeBreakdown] = None

    def per_timestep(self) -> TimeBreakdown:
        if self.timesteps <= 0:
            raise ValueError("no timesteps recorded")
        return self.totals.scaled(1.0 / self.timesteps)


@dataclass
class RunMetrics:
    """Aggregated metrics of one multi-rank run."""

    method: str
    points_per_rank: int
    nranks: int
    timesteps: int
    ranks: List[RankMetrics]

    def phase(self, name: str) -> MinAvgMax:
        """Across-rank summary of one per-timestep phase time."""
        return summarize(
            getattr(r.per_timestep(), name) for r in self.ranks
        )

    @property
    def calc(self) -> MinAvgMax:
        return self.phase("calc")

    @property
    def pack(self) -> MinAvgMax:
        return self.phase("pack")

    @property
    def call(self) -> MinAvgMax:
        return self.phase("call")

    @property
    def wait(self) -> MinAvgMax:
        return self.phase("wait")

    @property
    def move(self) -> MinAvgMax:
        return self.phase("move")

    @property
    def measured_calc(self) -> Optional[MinAvgMax]:
        """Across-rank wall-clock kernel time per timestep, when the
        executed driver recorded it (None for model-only runs)."""
        if not self.ranks or any(r.measured is None for r in self.ranks):
            return None
        return summarize(
            r.measured.calc / r.timesteps for r in self.ranks
        )

    @property
    def comm_time(self) -> float:
        """Average per-timestep communication time (pack+call+wait+move)."""
        return summarize(r.per_timestep().comm for r in self.ranks).avg

    @property
    def timestep_time(self) -> float:
        """Average per-timestep total; ranks run bulk-synchronously, so
        the slowest rank gates the step."""
        return max(r.per_timestep().total for r in self.ranks)

    @property
    def gstencils_per_s(self) -> float:
        """Throughput in 1e9 stencil applications per second."""
        total_points = self.points_per_rank * self.nranks
        return total_points / self.timestep_time / 1e9

    def report(self) -> str:
        """Artifact-style text report."""
        lines = [
            f"method={self.method} ranks={self.nranks}"
            f" timesteps={self.timesteps}"
        ]
        for p in PHASES:
            lines.append(f"  {p:<5} {self.phase(p):.3e}")
        lines.append(f"  perf  {self.gstencils_per_s:.4g} GStencil/s")
        return "\n".join(lines)
