"""Seeded chaos soak: run the stencil under injected faults and report.

One soak is a series of *trials*.  Each trial builds a deterministic
:class:`~repro.faults.FaultPlan` from ``(base seed, trial index)``, picks
an exchange method and a fault *preset* (wire corruption, drops,
duplicates, delays, a scheduled rank crash, or MemMap degradation), runs
the small reference problem end-to-end, and classifies the outcome:

``healed_exact``
    Faults were injected, every one was detected and healed, and the
    final state is bit-identical to the serial reference.
``detected``
    The run failed, but with a typed fault (or deadlock) as the root
    cause -- the failure was *noticed*, which is the contract.
``silent_corruption``
    The run "succeeded" with a wrong answer.  Never acceptable; the CI
    chaos job gates on zero of these.
``unexpected_error``
    The run failed with something other than a detected fault (or, with
    determinism checking on, a repeated trial diverged).  Also gated to
    zero.
``resumed_exact`` / ``resume_failed``
    Outcomes of the ``crash_restart`` preset, which runs the scheduled
    crash *with* a checkpoint store attached: the world must relaunch
    from the latest consistent epoch and finish bit-identical to the
    reference (``resumed_exact``); anything else -- no restart, a wrong
    answer, or an exception -- is ``resume_failed`` and gated to zero.
``reshaped_exact`` / ``reshape_failed``
    Outcomes of the ``node_loss`` preset, which kills two ranks
    *permanently* mid-run.  With a checkpoint store the elastic driver
    must reshape onto the survivors and finish bit-identical to the
    reference (``reshaped_exact``).  Without a store the loss must
    still be *detected* -- a typed ``RankDeadError`` root cause, never
    a hang -- classified as ``detected``.  ``reshape_failed`` is gated
    to zero.

Shift is excluded from the soak: its per-axis barrier phases make a
whole-exchange retry unsafe (peers may already sit at a later barrier),
so it has no healing story -- the other exchangers retry safely because
the envelope fabric makes retries idempotent.
"""

from __future__ import annotations

import tempfile
from dataclasses import dataclass, field
from threading import BrokenBarrierError
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.faults.errors import FaultError
from repro.faults.plan import FaultPlan

__all__ = ["ChaosConfig", "TrialResult", "SoakReport", "run_soak", "PRESETS"]

#: Exchange methods the soak cycles through (shift excluded, see above).
_SOAK_METHODS = ("layout", "memmap", "yask", "mpi_types")

#: Wire-fault probabilities are kept moderate so most trials *heal*
#: (the interesting case); crash/degrade presets carry zero wire faults
#: so their event sets stay exactly reproducible even though the run is
#: torn down mid-flight.
PRESETS: Dict[str, dict] = {
    "corrupt": {"corrupt": 0.06},
    "drop": {"drop": 0.05},
    "duplicate": {"duplicate": 0.06},
    "delay": {"delay": 0.15, "delay_s": 0.0002},
    "mixed": {"drop": 0.02, "corrupt": 0.02, "duplicate": 0.02},
    "crash": {},
    "degrade": {},
    "crash_restart": {},
    "node_loss": {},
}

# crash_restart and node_loss are appended last on purpose: for
# index < 7 the preset cycle is unchanged, so committed BENCH_chaos
# baselines (7 trials) and existing seeded soaks keep their exact
# event sets.
_PRESET_ORDER = ("corrupt", "drop", "mixed", "duplicate", "degrade", "crash",
                 "delay", "crash_restart", "node_loss")


@dataclass(frozen=True)
class ChaosConfig:
    """Knobs of one soak (defaults match the CI chaos job)."""

    trials: int = 10
    seed: int = 0
    steps: int = 3
    timeout_s: float = 10.0
    check_determinism: bool = True
    presets: Tuple[str, ...] = _PRESET_ORDER

    @classmethod
    def quick(cls, trials: int = 10, seed: int = 0) -> "ChaosConfig":
        return cls(trials=trials, seed=seed, steps=2, timeout_s=8.0)


@dataclass
class TrialResult:
    index: int
    preset: str
    method: str
    seed: int
    outcome: str
    events: Dict[str, int] = field(default_factory=dict)
    digest: int = 0
    demotions: int = 0
    restarts: int = 0
    final_method: str = ""
    error: str = ""


@dataclass
class SoakReport:
    config: ChaosConfig
    trials: List[TrialResult]

    def counts(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for t in self.trials:
            out[t.outcome] = out.get(t.outcome, 0) + 1
        return dict(sorted(out.items()))

    @property
    def silent(self) -> int:
        return self.counts().get("silent_corruption", 0)

    @property
    def unexpected(self) -> int:
        return self.counts().get("unexpected_error", 0)

    @property
    def resume_failed(self) -> int:
        return self.counts().get("resume_failed", 0)

    @property
    def reshape_failed(self) -> int:
        return self.counts().get("reshape_failed", 0)

    @property
    def passed(self) -> bool:
        """The chaos contract: every fault detected or healed, none
        silent, every survivable crash resumed bit-exactly, and every
        permanent rank loss either reshaped bit-exactly or detected."""
        return (
            self.silent == 0 and self.unexpected == 0
            and self.resume_failed == 0 and self.reshape_failed == 0
        )

    def to_literal(self) -> dict:
        return {
            "trials": self.config.trials,
            "seed": self.config.seed,
            "steps": self.config.steps,
            "outcomes": self.counts(),
            "passed": self.passed,
            "per_trial": [vars(t) for t in self.trials],
        }

    def render(self) -> str:
        lines = [
            f"chaos soak: {self.config.trials} trials,"
            f" base seed {self.config.seed}, {self.config.steps} steps/trial",
            f"{'#':>3} {'preset':<10} {'method':<10} {'outcome':<17}"
            f" {'final':<10} {'events'}",
        ]
        for t in self.trials:
            ev = ", ".join(f"{k}={v}" for k, v in sorted(t.events.items()))
            lines.append(
                f"{t.index:>3} {t.preset:<10} {t.method:<10} {t.outcome:<17}"
                f" {t.final_method or '-':<10} {ev or '-'}"
            )
        counts = ", ".join(f"{k}: {v}" for k, v in self.counts().items())
        lines.append(f"outcomes: {counts}")
        lines.append(
            "PASS: every injected fault was detected or healed"
            if self.passed
            else f"FAIL: {self.silent} silent corruption(s),"
                 f" {self.unexpected} unexpected error(s),"
                 f" {self.resume_failed} failed resume(s),"
                 f" {self.reshape_failed} failed reshape(s)"
        )
        return "\n".join(lines)


def _root_is_detected(exc: BaseException) -> bool:
    """Walk the cause chain: did a typed fault/deadlock start this?"""
    from repro.simmpi.fabric import AbortedError, DeadlockError

    seen = set()
    node: Optional[BaseException] = exc
    while node is not None and id(node) not in seen:
        seen.add(id(node))
        if isinstance(
            node, (FaultError, DeadlockError, AbortedError, BrokenBarrierError)
        ):
            return True
        node = node.__cause__ or node.__context__
    return False


def _trial_plan(config: ChaosConfig, index: int, nranks: int,
                preset: str) -> FaultPlan:
    seed = config.seed * 1000 + index
    kwargs = dict(PRESETS[preset])
    if preset in ("crash", "crash_restart"):
        # Crash a deterministic non-root rank partway through the run.
        kwargs["crashes"] = ((1 + (seed % (nranks - 1)), config.steps // 2),)
    elif preset == "degrade":
        kwargs["degrade"] = ((seed % nranks, 1),)
    elif preset == "node_loss":
        # Two distinct non-root ranks die permanently, late enough that
        # longer soaks have committed a common epoch to re-brick.
        step = max(1, (2 * config.steps) // 3)
        others = list(range(1, nranks))
        first = others.pop(seed % len(others))
        second = others[seed % len(others)]
        kwargs["deaths"] = ((first, step), (second, step))
    return FaultPlan(seed=seed, **kwargs)


def _run_trial(problem, reference, config: ChaosConfig, index: int,
               elastic_problem=None, elastic_reference=None):
    """One chaos trial; returns a :class:`TrialResult`."""
    from repro.core.driver import run_executed

    preset = config.presets[index % len(config.presets)]
    if preset == "node_loss" and elastic_problem is not None:
        # The reshape needs a global extent that also factorizes for
        # the shrunken rank count; the cubical soak problem does not.
        problem, reference = elastic_problem, elastic_reference
    if preset == "degrade":
        method = "memmap"
    elif preset == "node_loss":
        # Elastic restart covers the brick methods (re-bricking is the
        # point); alternate with/without a store so the soak exercises
        # both the reshape and the detect-only contract.
        method = ("layout", "memmap", "basic")[index % 3]
    else:
        method = _SOAK_METHODS[index % len(_SOAK_METHODS)]
    plan = _trial_plan(config, index, problem.nranks, preset)
    with_store = preset == "node_loss" and plan.seed % 2 == 0
    result = TrialResult(
        index=index, preset=preset, method=method, seed=plan.seed, outcome=""
    )

    def attempt():
        if preset == "crash_restart":
            # A fresh store per attempt: the determinism rerun must
            # replay the whole crash-and-resume sequence from scratch,
            # not warm-start from the first attempt's snapshots.
            with tempfile.TemporaryDirectory(prefix="repro-ckpt-") as d:
                return run_executed(
                    problem, method, timesteps=config.steps, seed=0,
                    fault_plan=plan, fabric_timeout=config.timeout_s,
                    checkpoint_dir=d, checkpoint_period=1,
                )
        if with_store:
            with tempfile.TemporaryDirectory(prefix="repro-ckpt-") as d:
                return run_executed(
                    problem, method, timesteps=config.steps, seed=0,
                    fault_plan=plan, fabric_timeout=config.timeout_s,
                    checkpoint_dir=d, checkpoint_period=1, elastic=True,
                )
        return run_executed(
            problem, method, timesteps=config.steps, seed=0,
            fault_plan=plan, fabric_timeout=config.timeout_s,
        )

    try:
        run = attempt()
    except BaseException as exc:  # noqa: BLE001 - classified, not swallowed
        if preset == "crash_restart":
            # With a checkpoint store attached the scheduled crash is
            # supposed to be survived; any escape is a failed resume.
            result.outcome = "resume_failed"
            result.error = f"{type(exc).__name__}: {exc}"
            return result
        if with_store:
            # With a store attached the permanent loss is supposed to
            # be reshaped around; any escape is a failed reshape.
            result.outcome = "reshape_failed"
            result.error = f"{type(exc).__name__}: {exc}"
            return result
        result.outcome = (
            "detected" if _root_is_detected(exc) else "unexpected_error"
        )
        result.error = f"{type(exc).__name__}: {exc}"
        if _root_is_detected(exc) and config.check_determinism:
            try:
                attempt()
                result.outcome = "unexpected_error"
                result.error += " (rerun did not reproduce the failure)"
            except BaseException as again:  # noqa: BLE001
                if not _root_is_detected(again):
                    result.outcome = "unexpected_error"
                    result.error += (
                        f" (rerun failed differently:"
                        f" {type(again).__name__})"
                    )
        return result

    result.events = dict(run.faults["events"]) if run.faults else {}
    result.digest = run.faults["schedule_digest"] if run.faults else 0
    result.demotions = run.demotions
    result.restarts = run.restarts
    result.final_method = run.final_method
    if preset == "crash_restart" and run.restarts < 1:
        result.outcome = "resume_failed"
        result.error = "scheduled crash did not trigger a restart"
        return result
    if preset == "node_loss" and not with_store:
        # Without snapshots a permanent death cannot be survived; a
        # "successful" run means detection never happened.
        result.outcome = "unexpected_error"
        result.error = "scheduled permanent death did not fail the run"
        return result
    if with_store and run.reshapes < 1:
        result.outcome = "reshape_failed"
        result.error = "scheduled permanent death did not trigger a reshape"
        return result
    if not np.array_equal(run.global_result, reference):
        result.outcome = (
            "resume_failed"
            if preset == "crash_restart"
            else "reshape_failed"
            if with_store
            else "silent_corruption"
        )
        return result
    if preset == "crash_restart":
        result.outcome = "resumed_exact"
    elif with_store:
        result.outcome = "reshaped_exact"
    else:
        result.outcome = "healed_exact"
    if config.check_determinism:
        rerun = attempt()
        if (
            rerun.faults["schedule_digest"] != result.digest
            or not np.array_equal(rerun.global_result, reference)
        ):
            result.outcome = "unexpected_error"
            result.error = "rerun diverged: fault schedule or state changed"
    return result


def run_soak(config: Optional[ChaosConfig] = None) -> SoakReport:
    """Run the full soak on the standard small problem (32^3 over 2^3)."""
    from repro.core.problem import StencilProblem
    from repro.stencil.reference import apply_periodic_reference
    from repro.stencil.spec import SEVEN_POINT

    config = config or ChaosConfig()
    problem = StencilProblem(
        global_extent=(32, 32, 32),
        rank_dims=(2, 2, 2),
        stencil=SEVEN_POINT,
        brick_dim=(8, 8, 8),
        ghost=8,
    )
    reference = apply_periodic_reference(
        problem.initial_global(0), SEVEN_POINT, config.steps
    )
    elastic_problem = None
    elastic_reference = None
    if "node_loss" in config.presets:
        elastic_problem = StencilProblem(
            global_extent=(48, 32, 32),
            rank_dims=(2, 2, 2),
            stencil=SEVEN_POINT,
            brick_dim=(8, 8, 8),
            ghost=8,
        )
        elastic_reference = apply_periodic_reference(
            elastic_problem.initial_global(0), SEVEN_POINT, config.steps
        )
    trials = [
        _run_trial(problem, reference, config, i,
                   elastic_problem, elastic_reference)
        for i in range(config.trials)
    ]
    return SoakReport(config=config, trials=trials)
