"""Deterministic fault injection and the machinery that survives it.

See README.md ("Robustness") for the fault model and degradation ladder,
and DESIGN.md for why retried exchanges are idempotent.
"""

from repro.faults.errors import (
    ExchangeConfigError,
    ExchangeIntegrityError,
    ExchangeTimeoutError,
    FaultError,
    InjectedCrashError,
    ProtocolError,
    RankDeadError,
    SplitMismatchError,
)
from repro.faults.plan import FaultPlan, RetryPolicy
from repro.faults.runtime import VMEM_FAULTS, FaultEvent, FaultInjector, FaultPoints

__all__ = [
    "FaultError",
    "ExchangeIntegrityError",
    "ExchangeTimeoutError",
    "InjectedCrashError",
    "RankDeadError",
    "ProtocolError",
    "SplitMismatchError",
    "ExchangeConfigError",
    "FaultPlan",
    "RetryPolicy",
    "FaultEvent",
    "FaultInjector",
    "FaultPoints",
    "VMEM_FAULTS",
]
