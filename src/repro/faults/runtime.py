"""Runtime side of fault injection: the injector and armable fault points.

:class:`FaultInjector` binds a :class:`~repro.faults.plan.FaultPlan` to a
running fabric.  The fabric consults it at ``post_send`` time; the driver
consults it at step boundaries (scheduled crashes, degradation events).
Every injected *and* healed event is recorded three ways -- an in-memory
event log (the chaos report's source of truth), the PR 2 metrics registry
(``faults.*`` counters), and a tracer span -- so a traced chaos run shows
exactly where the wire misbehaved.

:data:`VMEM_FAULTS` is a set of *thread-locally* armable failure sites
threaded through ``vmem/realmap.py`` and ``vmem/simmap.py``: arming
``"view_map_chunk"`` makes the next stitched-view construction on this
thread fail mid-stitch with ``OSError``, exercising the real cleanup
paths (munmap of the reserved span, memfd close).  Thread-local arming
matters because simulated ranks are threads: injecting a mapping failure
into rank 1 must not break rank 0's concurrent ``make_view``.
"""

from __future__ import annotations

import errno
import threading
import zlib
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.faults.plan import FaultPlan
from repro.obs import METRICS as _METRICS
from repro.obs import TRACER as _TRACER

__all__ = ["FaultInjector", "FaultEvent", "FaultPoints", "VMEM_FAULTS"]


@dataclass(frozen=True)
class FaultEvent:
    """One injected or healed event, fully identified for reproducibility."""

    kind: str
    src: int = -1
    dst: int = -1
    tag: int = -1
    seq: int = -1
    step: int = -1

    def key(self) -> Tuple:
        return (self.kind, self.src, self.dst, self.tag, self.seq, self.step)


class FaultPoints:
    """Named failure sites, armed per thread, consumed per trigger."""

    def __init__(self) -> None:
        self._tls = threading.local()

    def arm(self, site: str, count: int = 1, skip: int = 0) -> None:
        """Make the next *count* triggers of *site* fail on this thread,
        after letting *skip* triggers through (e.g. ``skip=1`` fails a
        stitched view on its second chunk -- mid-stitch)."""
        sites = getattr(self._tls, "sites", None)
        if sites is None:
            sites = {}
            self._tls.sites = sites
        prev_skip, prev_count = sites.get(site, (0, 0))
        sites[site] = (prev_skip + int(skip), prev_count + int(count))

    def disarm(self, site: Optional[str] = None) -> None:
        sites = getattr(self._tls, "sites", None)
        if sites is None:
            return
        if site is None:
            sites.clear()
        else:
            sites.pop(site, None)

    @contextmanager
    def armed(self, site: str, count: int = 1, skip: int = 0):
        self.arm(site, count, skip)
        try:
            yield self
        finally:
            self.disarm(site)

    def check(self, site: str) -> None:
        """Raise ``OSError`` if *site* is armed on this thread (and use up
        one charge).  Disabled cost is one ``getattr`` + truthiness test."""
        sites = getattr(self._tls, "sites", None)
        if not sites:
            return
        entry = sites.get(site)
        if entry is None:
            return
        skip, count = entry
        if skip > 0:
            sites[site] = (skip - 1, count)
            return
        if count <= 0:
            return
        if count == 1:
            del sites[site]
        else:
            sites[site] = (0, count - 1)
        raise OSError(errno.ENOMEM, f"injected fault at vmem site {site!r}")


#: Process-wide vmem fault points; the vmem modules bind this object.
VMEM_FAULTS = FaultPoints()


class FaultInjector:
    """One run's live injector: plan + event log + metrics/tracing."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._lock = threading.Lock()
        self._events: List[FaultEvent] = []
        self._crashed: set = set()
        self._died: set = set()
        #: When True (set by the checkpoint/restart driver) a scheduled
        #: crash fires exactly once: the relaunched world sees the same
        #: ``crash_due`` query again and survives it.
        self.survivable = False
        #: Set by the elastic driver after a reshape: the dead node is
        #: excluded from the new world and ranks were renumbered, so the
        #: plan's old-world death schedule no longer applies.
        self.deaths_disabled = False

    # -- recording -------------------------------------------------------
    def record(self, kind: str, src: int = -1, dst: int = -1, tag: int = -1,
               seq: int = -1, step: int = -1) -> None:
        event = FaultEvent(kind, src, dst, tag, seq, step)
        with self._lock:
            self._events.append(event)
        rank = src if src >= 0 else (dst if dst >= 0 else None)
        if _METRICS.enabled:
            _METRICS.count(f"faults.{kind}", 1, rank=rank)
        with _TRACER.span(f"fault.{kind}", rank=rank, src=src, dst=dst,
                          tag=tag, seq=seq, step=step):
            pass

    # -- fabric hooks ----------------------------------------------------
    def on_post(self, src: int, dst: int, tag: int, seq: int) -> Optional[str]:
        """Injection decision for one transmission; records the event."""
        kind = self.plan.decide(src, dst, tag, seq)
        if kind is not None:
            self.record(f"injected_{kind}", src=src, dst=dst, tag=tag, seq=seq)
        return kind

    def corrupt(self, payload: np.ndarray, src: int, dst: int, tag: int,
                seq: int) -> np.ndarray:
        """Return a bit-flipped wire copy of *payload* (pristine kept)."""
        wire = payload.copy()
        flat = wire.reshape(-1).view(np.uint8)
        offset, mask = self.plan.corrupt_byte(src, dst, tag, seq, flat.size)
        flat[offset] ^= mask
        return wire

    # -- driver hooks ----------------------------------------------------
    def crash_due(self, rank: int, step: int) -> bool:
        if not self.plan.crash_due(rank, step):
            return False
        with self._lock:
            first = (rank, step) not in self._crashed
            self._crashed.add((rank, step))
        if first:
            self.record("injected_crash", src=rank, step=step)
        return first if self.survivable else True

    def crashed(self) -> List[Tuple[int, int]]:
        """Crash sites that already fired, as sorted ``(rank, step)``."""
        with self._lock:
            return sorted(self._crashed)

    def mark_fired(self, crashes) -> None:
        """Mark crash sites as already fired (checkpoint restore: a cold
        ``--resume`` must not re-trigger crashes the snapshot outlived)."""
        with self._lock:
            self._crashed.update((int(r), int(s)) for r, s in crashes)

    def degrade_due(self, rank: int, step: int) -> bool:
        return self.plan.degrade_due(rank, step)

    def death_due(self, rank: int, step: int) -> bool:
        """Permanent-death check; records the event exactly once.

        Death is never survivable in place: unlike :meth:`crash_due`
        this keeps returning True on relaunches at the same rank count
        (the node is gone).  The elastic driver instead excludes dead
        ranks from the reshaped world, so the query is simply never made
        for them again.
        """
        if self.deaths_disabled or not self.plan.death_due(rank, step):
            return False
        with self._lock:
            first = (rank, step) not in self._died
            self._died.add((rank, step))
        if first:
            self.record("injected_death", src=rank, step=step)
        return True

    def died(self) -> List[Tuple[int, int]]:
        """Death sites that already fired, as sorted ``(rank, step)``."""
        with self._lock:
            return sorted(self._died)

    def vmem_armed(self, site: str = "view_map_chunk", count: int = 1):
        """Arm a vmem failure site on the calling thread (context)."""
        return VMEM_FAULTS.armed(site, count)

    # -- reporting -------------------------------------------------------
    def events(self) -> List[FaultEvent]:
        with self._lock:
            return list(self._events)

    def event_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for e in self.events():
            counts[e.kind] = counts.get(e.kind, 0) + 1
        return dict(sorted(counts.items()))

    def schedule_digest(self) -> int:
        """Order-independent CRC32 of every event's identity.

        Thread scheduling permutes the *log order*; the *set* of events is
        deterministic per seed, so the digest sorts before hashing.  The
        chaos determinism gate compares this across repeated runs.
        """
        blob = repr(sorted(e.key() for e in self.events())).encode()
        return zlib.crc32(blob)

    def summary(self) -> dict:
        return {
            "seed": self.plan.seed,
            "events": self.event_counts(),
            "n_events": len(self.events()),
            "schedule_digest": self.schedule_digest(),
        }
