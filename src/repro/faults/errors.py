"""Typed failure taxonomy for the chaos fabric.

Every fault the subsystem can inject -- and every fault the envelope
layer can *detect* -- surfaces as one of these exception types, so
callers (the driver's retry path, the chaos soak classifier, tests) can
tell detected corruption apart from ordinary bugs.  A fault that escapes
as a plain ``RuntimeError`` counts as *undetected* in the chaos report.
"""

from __future__ import annotations

__all__ = [
    "FaultError",
    "ExchangeIntegrityError",
    "ExchangeTimeoutError",
    "InjectedCrashError",
    "RankDeadError",
    "ProtocolError",
    "SplitMismatchError",
    "ExchangeConfigError",
]


class FaultError(RuntimeError):
    """Base of all detected-fault exceptions."""


class ProtocolError(RuntimeError):
    """The fabric/channel call protocol was violated by the caller.

    Covers call-order misuse of the partitioned persistent requests
    (``pready`` before ``start``, double ``start``) and of the phased
    channel entry points (``complete`` without ``start``).  These are
    caller bugs, not injected or detected faults, so this deliberately
    does *not* derive from :class:`FaultError` -- a ``ProtocolError``
    must never be classified as a detected fault by the chaos report.
    """


class SplitMismatchError(ProtocolError, ValueError):
    """The two endpoints of a message disagree on its byte split.

    Raised at *negotiation* time (channel construction,
    ``send_init``/``recv_init``) when the sender and receiver register
    different byte counts or partition bounds for the same
    ``(src, dst, tag)`` edge -- the static schedule verifier
    (:mod:`repro.check`) computes the same
    :func:`~repro.simmpi.fabric.partition_bounds` split, so a run
    admitted by ``repro check`` can never raise this.  Also a
    ``ValueError`` so pre-existing handlers of the fabric's message
    size-mismatch guard keep working.
    """


class ExchangeConfigError(ValueError):
    """Invalid configuration of an exchanger, channel, or fabric.

    The typed form of the argument-validation errors across
    :mod:`repro.simmpi` and :mod:`repro.exchange`.  Subclasses
    ``ValueError`` so blanket config handlers -- notably the
    degradation ladder's ``(OSError, ValueError)`` net -- keep
    working unchanged.
    """


class ExchangeIntegrityError(FaultError):
    """A received message failed envelope validation (checksum or
    sequence number).  The fabric has already queued a pristine
    retransmit, so a bounded retry of the exchange heals this."""


class ExchangeTimeoutError(FaultError):
    """An expected message was lost on the wire (detected via the
    envelope sequence numbers).  As with integrity failures, a
    retransmit is queued before this is raised; retrying heals it."""


class InjectedCrashError(FaultError):
    """A scheduled rank crash from a :class:`~repro.faults.FaultPlan`.

    Raised *by the crashing rank*; peers observe the usual abort fan-out
    (``AbortedError`` / ``BrokenBarrierError``) and the launcher reports
    this as the root cause."""


class RankDeadError(FaultError):
    """A rank is *permanently* dead (node loss), not merely crashed.

    Unlike :class:`InjectedCrashError` -- which the checkpoint/restart
    driver survives by relaunching the *same* world -- a dead rank never
    comes back: the fabric's liveness state (``SimFabric.mark_dead``)
    makes every send/recv touching the dead rank raise this immediately
    instead of timing out.  Recovery requires *elastic* restart: the
    survivors negotiate a snapshot epoch, agree on a shrunken
    decomposition avoiding the lost node, and re-brick
    (:mod:`repro.elastic`)."""
