"""Typed failure taxonomy for the chaos fabric.

Every fault the subsystem can inject -- and every fault the envelope
layer can *detect* -- surfaces as one of these exception types, so
callers (the driver's retry path, the chaos soak classifier, tests) can
tell detected corruption apart from ordinary bugs.  A fault that escapes
as a plain ``RuntimeError`` counts as *undetected* in the chaos report.
"""

from __future__ import annotations

__all__ = [
    "FaultError",
    "ExchangeIntegrityError",
    "ExchangeTimeoutError",
    "InjectedCrashError",
    "RankDeadError",
]


class FaultError(RuntimeError):
    """Base of all detected-fault exceptions."""


class ExchangeIntegrityError(FaultError):
    """A received message failed envelope validation (checksum or
    sequence number).  The fabric has already queued a pristine
    retransmit, so a bounded retry of the exchange heals this."""


class ExchangeTimeoutError(FaultError):
    """An expected message was lost on the wire (detected via the
    envelope sequence numbers).  As with integrity failures, a
    retransmit is queued before this is raised; retrying heals it."""


class InjectedCrashError(FaultError):
    """A scheduled rank crash from a :class:`~repro.faults.FaultPlan`.

    Raised *by the crashing rank*; peers observe the usual abort fan-out
    (``AbortedError`` / ``BrokenBarrierError``) and the launcher reports
    this as the root cause."""


class RankDeadError(FaultError):
    """A rank is *permanently* dead (node loss), not merely crashed.

    Unlike :class:`InjectedCrashError` -- which the checkpoint/restart
    driver survives by relaunching the *same* world -- a dead rank never
    comes back: the fabric's liveness state (``SimFabric.mark_dead``)
    makes every send/recv touching the dead rank raise this immediately
    instead of timing out.  Recovery requires *elastic* restart: the
    survivors negotiate a snapshot epoch, agree on a shrunken
    decomposition avoiding the lost node, and re-brick
    (:mod:`repro.elastic`)."""
