"""Deterministic, seeded fault plans.

A :class:`FaultPlan` is a *pure-literal* description of what should go
wrong during a run: per-edge wire-fault probabilities, scheduled rank
crashes, and scheduled MemMap degradation events.  Every decision is a
pure function of ``(seed, src, dst, tag, seq)`` -- each message gets its
own counter-based :class:`numpy.random.Generator` stream -- so the fault
schedule is bit-reproducible regardless of thread interleaving: the same
seed always drops/corrupts/duplicates exactly the same messages, which is
what lets the chaos CI gate exact-compare injected-event counts.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Mapping, Optional, Tuple

import numpy as np

__all__ = ["FaultPlan", "RetryPolicy"]

#: domain-separation constant mixed into every per-message seed sequence
_STREAM_SALT = 0x9E3779B9

#: wire-fault kinds in decision order (first match wins)
_WIRE_KINDS = ("drop", "corrupt", "duplicate", "delay")


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry-with-backoff for detected exchange faults."""

    max_retries: int = 8
    backoff_s: float = 0.002
    max_backoff_s: float = 0.05

    def sleep_for(self, attempt: int) -> float:
        """Backoff before retry *attempt* (0-based), exponential, capped."""
        return min(self.backoff_s * (2.0 ** attempt), self.max_backoff_s)


@dataclass(frozen=True)
class FaultPlan:
    """Seeded description of every fault to inject into one run.

    Probabilities apply per *message transmission* on the simulated wire
    (exchange traffic only; collective/control traffic is verified but
    never faulted, so healing protocols stay analyzable).  Retransmits of
    an already-faulted message are always clean -- one fault per logical
    message -- mirroring the standard fault model of checksummed halo
    frameworks.

    ``edge_overrides`` maps ``(src, dst)`` rank pairs (or ``"src,dst"``
    strings, for JSON-friendly literals) to per-edge probability dicts.

    ``crashes`` is a tuple of ``(rank, step)`` pairs: the rank raises
    :class:`~repro.faults.errors.InjectedCrashError` at the top of that
    timestep.  ``degrade`` is a tuple of ``(rank, step)`` pairs at which
    the rank's MemMap machinery is made to fail (through the real
    ``vmem`` mapping path), triggering the MemMap->Layout->Pack
    demotion vote.

    ``deaths`` is a tuple of ``(rank, step)`` pairs scheduling
    *permanent* rank loss (node failure): the rank marks itself dead on
    the fabric and raises
    :class:`~repro.faults.errors.RankDeadError` at the top of that
    timestep.  Unlike ``crashes``, deaths are never survivable in place
    -- a relaunch at the same rank count would just die again -- so
    recovery goes through the elastic-restart path, which reshapes the
    world onto the surviving ranks.
    """

    seed: int = 0
    drop: float = 0.0
    corrupt: float = 0.0
    duplicate: float = 0.0
    delay: float = 0.0
    delay_s: float = 0.001
    edge_overrides: Mapping = field(default_factory=dict)
    crashes: Tuple[Tuple[int, int], ...] = ()
    degrade: Tuple[Tuple[int, int], ...] = ()
    deaths: Tuple[Tuple[int, int], ...] = ()

    # ------------------------------------------------------------------
    def __post_init__(self) -> None:
        for kind in _WIRE_KINDS:
            p = getattr(self, kind)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{kind} probability {p} outside [0, 1]")
        total = sum(getattr(self, k) for k in _WIRE_KINDS)
        if total > 1.0:
            raise ValueError(
                f"wire-fault probabilities sum to {total}, must be <= 1"
            )

    @property
    def any_wire_faults(self) -> bool:
        if any(getattr(self, k) > 0.0 for k in _WIRE_KINDS):
            return True
        return bool(self.edge_overrides)

    # ------------------------------------------------------------------
    def _edge_probs(self, src: int, dst: int) -> Tuple[float, ...]:
        override = self.edge_overrides.get((src, dst))
        if override is None:
            override = self.edge_overrides.get(f"{src},{dst}")
        if override is None:
            return tuple(getattr(self, k) for k in _WIRE_KINDS)
        return tuple(
            float(override.get(k, getattr(self, k))) for k in _WIRE_KINDS
        )

    def _rng(self, *key: int) -> np.random.Generator:
        """Counter-based stream: one generator per decision key."""
        return np.random.default_rng(
            [_STREAM_SALT, int(self.seed) & 0xFFFFFFFF, *[int(k) for k in key]]
        )

    def decide(self, src: int, dst: int, tag: int, seq: int) -> Optional[str]:
        """Wire fault (if any) for this transmission; None = deliver clean.

        Deterministic: depends only on the plan seed and the message's
        identity, never on wall-clock or thread scheduling.
        """
        probs = self._edge_probs(src, dst)
        if not any(probs):
            return None
        r = float(self._rng(src, dst, tag, seq).random())
        cum = 0.0
        for kind, p in zip(_WIRE_KINDS, probs):
            cum += p
            if r < cum:
                return kind
        return None

    def corrupt_byte(self, src: int, dst: int, tag: int, seq: int,
                     nbytes: int) -> Tuple[int, int]:
        """(byte offset, XOR mask) of the injected corruption."""
        rng = self._rng(src, dst, tag, seq, 1)
        offset = int(rng.integers(0, max(1, nbytes)))
        mask = int(rng.integers(1, 256))  # never 0: must actually flip bits
        return offset, mask

    # ------------------------------------------------------------------
    def crash_due(self, rank: int, step: int) -> bool:
        return (rank, step) in self.crashes

    def degrade_due(self, rank: int, step: int) -> bool:
        return (rank, step) in self.degrade

    def death_due(self, rank: int, step: int) -> bool:
        return (rank, step) in self.deaths

    @property
    def dead_ranks(self) -> Tuple[int, ...]:
        """Ranks scheduled to die permanently, sorted and deduplicated."""
        return tuple(sorted({r for r, _ in self.deaths}))

    @property
    def max_degrade_step(self) -> int:
        """Last scheduled degradation step (-1 when none)."""
        return max((s for _, s in self.degrade), default=-1)

    def to_literal(self) -> dict:
        """JSON-ready dict the plan can be rebuilt from."""
        doc = asdict(self)
        doc["edge_overrides"] = {
            (k if isinstance(k, str) else f"{k[0]},{k[1]}"): dict(v)
            for k, v in self.edge_overrides.items()
        }
        doc["crashes"] = [list(c) for c in self.crashes]
        doc["degrade"] = [list(d) for d in self.degrade]
        doc["deaths"] = [list(d) for d in self.deaths]
        return doc

    @classmethod
    def from_literal(cls, doc: Mapping) -> "FaultPlan":
        doc = dict(doc)
        doc["crashes"] = tuple(tuple(c) for c in doc.get("crashes", ()))
        doc["degrade"] = tuple(tuple(d) for d in doc.get("degrade", ()))
        doc["deaths"] = tuple(tuple(d) for d in doc.get("deaths", ()))
        return cls(**doc)
