"""Derived datatypes: extraction/insertion and segment profiles."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.simmpi.datatypes import ContiguousType, SubarrayType, VectorType


class TestContiguous:
    def test_roundtrip(self):
        arr = np.arange(20.0)
        t = ContiguousType(5, offset=3)
        buf = t.extract(arr)
        np.testing.assert_array_equal(buf, np.arange(3.0, 8.0))
        out = np.zeros(20)
        t.insert(out, buf)
        np.testing.assert_array_equal(out[3:8], buf)

    def test_profile(self):
        assert ContiguousType(100).segment_profile() == (1, 100)

    def test_validation(self):
        with pytest.raises(ValueError):
            ContiguousType(0)


class TestVector:
    def test_roundtrip(self):
        arr = np.arange(24.0)
        t = VectorType(nblocks=3, blocklength=2, stride=8, offset=1)
        buf = t.extract(arr)
        np.testing.assert_array_equal(buf, [1, 2, 9, 10, 17, 18])
        out = np.zeros(24)
        t.insert(out, buf)
        assert out[9] == 9.0 and out[0] == 0.0

    def test_profile_strided(self):
        assert VectorType(10, 4, 16).segment_profile() == (10, 4)

    def test_profile_dense_collapses(self):
        assert VectorType(10, 4, 4).segment_profile() == (1, 40)

    def test_stride_check(self):
        with pytest.raises(ValueError):
            VectorType(2, 8, 4)


class TestSubarray:
    def test_roundtrip_3d(self):
        arr = np.arange(4 * 5 * 6, dtype=np.float64).reshape(4, 5, 6)
        t = SubarrayType(arr.shape, (2, 3, 4), (1, 1, 1))
        buf = t.extract(arr)
        np.testing.assert_array_equal(buf, arr[1:3, 1:4, 1:5].reshape(-1))
        out = np.zeros_like(arr)
        t.insert(out, buf)
        np.testing.assert_array_equal(out[1:3, 1:4, 1:5].reshape(-1), buf)
        assert out[0].sum() == 0.0

    def test_profile_partial_inner(self):
        # inner axis not full -> one segment per (outer x middle) row
        t = SubarrayType((8, 8, 8), (2, 3, 4), (0, 0, 0))
        assert t.segment_profile() == (6, 4)

    def test_profile_full_inner(self):
        # inner axis full -> runs span inner x middle rows
        t = SubarrayType((8, 8, 8), (2, 3, 8), (0, 0, 0))
        assert t.segment_profile() == (6, 8) or t.segment_profile() == (2, 24)

    def test_profile_fully_contiguous(self):
        t = SubarrayType((4, 4, 4), (2, 4, 4), (0, 0, 0))
        assert t.segment_profile() == (1, 32)

    def test_count(self):
        assert SubarrayType((8, 8), (2, 3), (0, 0)).count == 6

    def test_fit_validation(self):
        with pytest.raises(ValueError):
            SubarrayType((4, 4), (3, 3), (2, 2))

    def test_shape_check_on_extract(self):
        t = SubarrayType((4, 4), (2, 2), (0, 0))
        with pytest.raises(ValueError):
            t.extract(np.zeros((5, 5)))


@given(
    st.tuples(st.integers(2, 6), st.integers(2, 6)).flatmap(
        lambda shape: st.tuples(
            st.just(shape),
            st.tuples(st.integers(1, shape[0]), st.integers(1, shape[1])),
        )
    ),
    st.integers(0, 2**31 - 1),
)
def test_subarray_extract_insert_identity(case, seed):
    shape, sub = case
    start = tuple((f - s) // 2 for f, s in zip(shape, sub))
    rng = np.random.default_rng(seed)
    arr = rng.random(shape)
    t = SubarrayType(shape, sub, start)
    out = np.zeros(shape)
    t.insert(out, t.extract(arr))
    slc = tuple(slice(s, s + e) for s, e in zip(start, sub))
    np.testing.assert_array_equal(out[slc], arr[slc])
    mask = np.ones(shape, dtype=bool)
    mask[slc] = False
    assert (out[mask] == 0).all()
