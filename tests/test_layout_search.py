"""Layout search: exhaustive proof and annealing."""

import pytest

from repro.layout.analysis import optimal_message_count
from repro.layout.messages import messages_for_order
from repro.layout.regions import all_regions
from repro.layout.search import anneal_order, exhaustive_best_order


class TestExhaustive:
    def test_1d(self):
        order, count = exhaustive_best_order(1)
        assert count == 2
        assert set(order) == set(all_regions(1))

    @pytest.mark.slow
    def test_2d_proves_eq1(self):
        """Brute force over all 8! permutations confirms the Eq. 1 bound."""
        order, count = exhaustive_best_order(2)
        assert count == optimal_message_count(2) == 9
        assert messages_for_order(order, 2) == 9

    def test_3d_refused(self):
        with pytest.raises(ValueError):
            exhaustive_best_order(3)


class TestAnnealing:
    def test_2d_reaches_optimum(self):
        order, count = anneal_order(2, seed=3, restarts=4, iters=1500, target=9)
        assert count == 9
        assert set(order) == set(all_regions(2))

    def test_3d_reaches_optimum(self):
        """This is how the packaged SURFACE3D constant was produced."""
        order, count = anneal_order(
            3, seed=0, restarts=20, iters=8000, target=42
        )
        assert count == 42
        assert set(order) == set(all_regions(3))

    def test_deterministic_given_seed(self):
        a = anneal_order(2, seed=7, restarts=2, iters=500)
        b = anneal_order(2, seed=7, restarts=2, iters=500)
        assert a[1] == b[1]
        assert a[0] == b[0]

    def test_count_matches_order(self):
        order, count = anneal_order(2, seed=1, restarts=2, iters=800)
        assert messages_for_order(order, 2) == count

    def test_never_worse_than_identity(self):
        base = messages_for_order(all_regions(2), 2)
        _, count = anneal_order(2, seed=5, restarts=1, iters=200)
        assert count <= base
