"""The invariant lint passes on the repo and catches planted violations."""

import ast
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "tools"))

import lint_invariants  # noqa: E402


def test_repo_is_clean(capsys):
    assert lint_invariants.main([]) == 0
    out = capsys.readouterr().out
    assert "files clean" in out


def test_list_mode(capsys):
    assert lint_invariants.main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "src/repro/simmpi/fabric.py" in out


def test_bare_raise_flagged():
    src = (
        "def f(x):\n"
        "    if x < 0:\n"
        "        raise ValueError('negative')\n"
        "    raise RuntimeError\n"
    )
    path = lint_invariants.SRC / "simmpi" / "synthetic.py"
    violations = sorted(
        lint_invariants.check_bare_raises(path, ast.parse(src)),
        key=lambda v: v[1],
    )
    assert len(violations) == 2
    assert violations[0][1] == 3 and "ValueError" in violations[0][2]
    assert violations[1][1] == 4 and "RuntimeError" in violations[1][2]


def test_typed_raise_not_flagged():
    src = (
        "def f():\n"
        "    raise SplitMismatchError('split disagreement')\n"
    )
    path = lint_invariants.SRC / "simmpi" / "synthetic.py"
    assert lint_invariants.check_bare_raises(path, ast.parse(src)) == []


def test_fabric_call_outside_chokepoint_flagged():
    src = "def f(fabric):\n    fabric.post_send(0, 1, 2, b'x')\n"
    path = lint_invariants.SRC / "exchange" / "synthetic.py"
    violations = lint_invariants.check_fabric_chokepoint(
        path, ast.parse(src)
    )
    assert len(violations) == 1
    assert "post_send" in violations[0][2]


def test_fabric_call_in_allowlisted_file_ok():
    src = "def f(fabric):\n    fabric.post_send(0, 1, 2, b'x')\n"
    path = lint_invariants.SRC / "simmpi" / "comm.py"
    assert lint_invariants.check_fabric_chokepoint(path, ast.parse(src)) == []


def test_lint_file_on_real_sources():
    # Spot-check two real files through the full per-file path.
    for rel in ("simmpi/fabric.py", "check/schedule.py"):
        assert lint_invariants.lint_file(lint_invariants.SRC / rel) == []
