"""Array boxes and combinatorial message schedules."""

import math

import pytest

from repro.exchange.boxes import box_slices, neighbor_recv_box, neighbor_send_box
from repro.exchange.schedule import (
    array_schedule,
    basic_brick_schedule,
    brick_send_schedule,
    memmap_schedule,
    shift_schedule,
)
from repro.layout.order import SURFACE3D, lexicographic_order
from repro.layout.regions import all_regions
from repro.util.bitset import BitSet


class TestBoxes:
    def test_send_recv_shapes_match_opposites(self):
        extent, g = (16, 12, 8), 4
        for nbr in all_regions(3):
            _, s_ext = neighbor_send_box(nbr, extent, g)
            _, r_ext = neighbor_recv_box(nbr.opposite(), extent, g)
            assert s_ext == r_ext

    def test_send_box_inside_owned(self):
        extent, g = (16, 16, 16), 4
        lo, ext = neighbor_send_box(BitSet([1, -3]), extent, g)
        assert lo == (16, 4, 4)
        assert ext == (4, 16, 4)

    def test_recv_box_in_ghost(self):
        extent, g = (16, 16, 16), 4
        lo, ext = neighbor_recv_box(BitSet([1]), extent, g)
        assert lo == (20, 4, 4)
        assert ext == (4, 16, 16)

    def test_recv_boxes_disjoint(self):
        """Ghost regions are disjoint (paper Section 3.2)."""
        extent, g = (8, 8), 2
        cells = set()
        for nbr in all_regions(2):
            lo, ext = neighbor_recv_box(nbr, extent, g)
            for i in range(lo[0], lo[0] + ext[0]):
                for j in range(lo[1], lo[1] + ext[1]):
                    assert (i, j) not in cells
                    cells.add((i, j))
        # exactly the ghost shell
        assert len(cells) == 12 * 12 - 8 * 8

    def test_box_slices_numpy_order(self):
        slc = box_slices(((1, 2, 3), (4, 5, 6)))
        assert slc == (slice(3, 9), slice(2, 7), slice(1, 5))

    def test_validation(self):
        with pytest.raises(ValueError):
            neighbor_send_box(BitSet(), (8, 8), 2)
        with pytest.raises(ValueError):
            neighbor_send_box(BitSet([1]), (8, 8), 0)


GRID, WIDTH, BB = (8, 8, 8), 1, 4096


class TestBrickSchedules:
    def test_layout_message_count(self):
        specs = brick_send_schedule(GRID, WIDTH, SURFACE3D, BB)
        assert len(specs) == 42

    def test_basic_message_count(self):
        specs = basic_brick_schedule(GRID, WIDTH, SURFACE3D, BB)
        assert len(specs) == 98

    def test_lexicographic_layout_count(self):
        # 2-D figure-2 order needs 12 messages.
        specs = brick_send_schedule((8, 8), 1, lexicographic_order(2), 512)
        assert len(specs) == 12

    def test_total_payload_independent_of_scheme(self):
        """Layout vs Basic move identical bytes, just in different
        message counts."""
        lay = brick_send_schedule(GRID, WIDTH, SURFACE3D, BB)
        bas = basic_brick_schedule(GRID, WIDTH, SURFACE3D, BB)
        assert sum(m.payload_bytes for m in lay) == sum(
            m.payload_bytes for m in bas
        )

    def test_payload_equals_ghost_volume(self):
        """Total sent bytes = total ghost bytes of one neighbor set."""
        specs = brick_send_schedule(GRID, WIDTH, SURFACE3D, BB)
        n = GRID[0]
        shell = (n + 2 * WIDTH) ** 3 - n**3
        # each (region, neighbor) instance is sent once; sum over
        # neighbors of regions >= shell (overlap multiplicity)
        per_region_instances = sum(m.payload_bytes for m in specs) // BB
        expected = sum(
            math.prod(
                (WIDTH if v else n - 2 * WIDTH) for v in r.to_vector(3)
            ) * (2 ** len(r) - 1)
            for r in all_regions(3)
        )
        assert per_region_instances == expected

    def test_degenerate_grid_drops_empty(self):
        specs = brick_send_schedule((2, 2, 2), 1, SURFACE3D, BB)
        assert 0 < len(specs) < 42
        assert all(m.payload_bytes > 0 for m in specs)


class TestMemMapSchedule:
    def test_one_message_per_neighbor(self):
        specs = memmap_schedule(GRID, WIDTH, SURFACE3D, BB, 65536)
        assert len(specs) == 26

    def test_padding_with_64k_pages(self):
        specs = memmap_schedule(GRID, WIDTH, SURFACE3D, BB, 65536)
        assert all(m.wire_bytes >= m.payload_bytes for m in specs)
        assert any(m.wire_bytes > m.payload_bytes for m in specs)
        for m in specs:
            assert m.wire_bytes % 65536 == 0

    def test_no_padding_when_brick_is_page(self):
        """On Theta an 8^3 double brick is exactly one 4 KiB page."""
        specs = memmap_schedule(GRID, WIDTH, SURFACE3D, BB, 4096)
        assert all(m.wire_bytes == m.payload_bytes for m in specs)

    def test_mapping_counts_match_runs(self):
        from repro.layout.messages import message_runs

        specs = memmap_schedule(GRID, WIDTH, SURFACE3D, BB, 65536)
        total_runs = sum(m.nmappings for m in specs)
        expected = sum(
            len(message_runs(SURFACE3D, t)) for t in all_regions(3)
        )
        assert total_runs == expected == 42

    def test_page1_equals_payload(self):
        specs = memmap_schedule(GRID, WIDTH, SURFACE3D, BB, 1)
        assert all(m.wire_bytes == m.payload_bytes for m in specs)


class TestArraySchedule:
    def test_one_box_per_neighbor(self):
        specs = array_schedule((16, 16, 16), 8)
        assert len(specs) == 26

    def test_face_normal_axis1_is_strided(self):
        specs = array_schedule((64, 64, 64), 8)
        by_nbr = {m.neighbor: m for m in specs}
        face_x = by_nbr[BitSet([1])]
        assert face_x.run_elems == 8  # g-element runs
        assert face_x.nsegments == 64 * 64
        face_z = by_nbr[BitSet([3])]
        assert face_z.run_elems == 64  # full interior rows

    def test_payload_matches_boxes(self):
        extent, g = (16, 16, 16), 8
        specs = array_schedule(extent, g)
        total = sum(m.payload_bytes for m in specs)
        expected = sum(
            math.prod(g if v else e for v, e in zip(n.to_vector(3), extent)) * 8
            for n in all_regions(3)
        )
        assert total == expected


class TestShiftSchedule:
    def test_two_messages_per_dim(self):
        phases = shift_schedule((16, 16, 16), 8)
        assert len(phases) == 3
        assert all(len(p) == 2 for p in phases)

    def test_later_phases_carry_corners(self):
        phases = shift_schedule((16, 16, 16), 8)
        # axis-3 faces span the extended extent on axes 1 and 2
        a3 = phases[2][0]
        assert a3.payload_bytes == 32 * 32 * 8 * 8

    def test_total_volume_equals_ghost_volume(self):
        """Both Shift and the direct exchange fill the ghost shell exactly
        once, so total communicated volume is identical."""
        phases = shift_schedule((16, 16, 16), 8)
        shift_total = sum(m.payload_bytes for p in phases for m in p)
        full = sum(m.payload_bytes for m in array_schedule((16, 16, 16), 8))
        assert shift_total == full == (32**3 - 16**3) * 8
