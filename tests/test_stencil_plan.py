"""Compiled execution plans are bit-identical to the generic kernels.

Covers the plan layer of :mod:`repro.stencil.plan` across dimensions,
radii, non-cubic bricks, interleaved fields, dirty-buffer reuse, the
driver integration (plans on vs off vs the serial reference) and the
``REPRO_NO_PLAN`` escape hatch.
"""

import math
from itertools import product

import numpy as np
import pytest

from repro.brick.convert import (
    bricks_to_extended,
    conversion_scratch,
    extended_shape,
    extended_to_bricks,
)
from repro.brick.decomp import BrickDecomp
from repro.brick.info import BrickInfo, all_direction_vectors, direction_index
from repro.brick.storage import BrickStorage
from repro.core.driver import run_executed
from repro.core.expansion import brick_cycle_slots
from repro.stencil.brick_kernels import apply_brick_stencil, gather_halo_batch
from repro.stencil.codegen import (
    array_plan_kernel_source,
    batch_plan_kernel_source,
)
from repro.stencil.kernels import apply_array_stencil
from repro.stencil.plan import (
    ArrayStencilPlan,
    compile_array_plan,
    compile_brick_plan,
    plans_enabled,
)
from repro.stencil.reference import apply_periodic_reference
from repro.stencil.spec import (
    CUBE125,
    SEVEN_POINT,
    StencilSpec,
    cube_stencil,
    star_stencil,
)


def identity_spec(ndim: int) -> StencilSpec:
    """A radius-0 stencil (single centre tap)."""
    return StencilSpec(f"id-{ndim}d", ndim, (((0,) * ndim, 0.75),), 1.0, 16.0)


def grid_info(grid, brick_dim, nfields=1, periodic=True):
    """A hand-built logical brick grid (supports non-cubic bricks, which
    :class:`BrickDecomp`'s uniform ghost width cannot express)."""
    ndim = len(grid)
    nslots = math.prod(grid)
    adjacency = np.full((nslots, 3**ndim), -1, dtype=np.int64)
    for slot in range(nslots):
        c, rest = [], slot
        for axis in range(ndim):  # axis 1 fastest
            c.append(rest % grid[axis])
            rest //= grid[axis]
        for vec in all_direction_vectors(ndim):
            nc = [x + v for x, v in zip(c, vec)]
            if periodic:
                nc = [x % g for x, g in zip(nc, grid)]
            elif any(x < 0 or x >= g for x, g in zip(nc, grid)):
                continue
            nslot = 0
            for axis in range(ndim - 1, -1, -1):
                nslot = nslot * grid[axis] + nc[axis]
            adjacency[slot, direction_index(vec)] = nslot
    return BrickInfo(ndim, tuple(brick_dim), adjacency, nfields)


def random_storage(info, rng, nfields=1):
    volume = math.prod(info.brick_dim)
    st = BrickStorage.allocate(info.nslots, volume * nfields)
    st.data[:] = rng.random(st.data.shape)
    return st


CASES = [
    # (grid, brick_dim, spec builder) -- mixes dims 1-3, radii 0-2 and
    # non-cubic bricks
    ((5,), (6,), lambda: identity_spec(1)),
    ((5,), (6,), lambda: star_stencil(1, 1)),
    ((4,), (7,), lambda: star_stencil(1, 2)),
    ((4, 3), (5, 3), lambda: identity_spec(2)),
    ((4, 3), (5, 3), lambda: star_stencil(2, 1)),
    ((3, 4), (4, 3), lambda: cube_stencil(2, 2)),
    ((3, 3, 3), (4, 2, 3), lambda: star_stencil(3, 1)),
    ((2, 3, 2), (3, 2, 4), lambda: cube_stencil(3, 2)),
]


class TestBrickPlanBitIdentity:
    @pytest.mark.parametrize("periodic", [True, False])
    @pytest.mark.parametrize(
        "grid,brick_dim,make_spec", CASES,
        ids=[f"{g}x{b}-{i}" for i, (g, b, _) in enumerate(CASES)],
    )
    def test_matches_generic(self, grid, brick_dim, make_spec, periodic):
        spec = make_spec()
        info = grid_info(grid, brick_dim, periodic=periodic)
        rng = np.random.default_rng(42)
        src = random_storage(info, rng)
        ref = random_storage(info, rng)
        got = random_storage(info, rng)  # dirty destination
        slots = np.arange(info.nslots)
        apply_brick_stencil(spec, src, ref, info, slots, chunk=5)
        plan = compile_brick_plan(spec, info, slots, chunk=5)
        plan.execute(src, got)
        np.testing.assert_array_equal(got.data, ref.data)

    def test_repeated_steps_reuse_buffers(self):
        """Dirty internal buffers must not leak between steps."""
        spec = star_stencil(2, 1)
        info = grid_info((4, 4), (3, 3), periodic=False)
        rng = np.random.default_rng(7)
        slots = np.arange(info.nslots)
        plan = compile_brick_plan(spec, info, slots, chunk=6)
        for trial in range(3):
            src = random_storage(info, rng)
            ref = random_storage(info, rng)
            got = random_storage(info, rng)
            apply_brick_stencil(spec, src, ref, info, slots)
            plan.execute(src, got)
            np.testing.assert_array_equal(got.data, ref.data)

    def test_multi_field_offsets(self):
        spec = star_stencil(3, 1)
        nfields = 3
        info = grid_info((3, 3, 3), (4, 4, 4), nfields=nfields)
        volume = math.prod(info.brick_dim)
        rng = np.random.default_rng(11)
        src = random_storage(info, rng, nfields)
        ref = random_storage(info, rng, nfields)
        got = random_storage(info, rng, nfields)
        slots = np.arange(info.nslots)
        for fld in range(nfields):
            off = fld * volume
            apply_brick_stencil(spec, src, ref, info, slots, field_offset=off)
            plan = compile_brick_plan(spec, info, slots, field_offset=off)
            plan.execute(src, got)
        np.testing.assert_array_equal(got.data, ref.data)

    def test_cycle_slots_from_decomp(self, small_decomp):
        """Plans over the executed driver's actual slot sets."""
        d = small_decomp
        rng = np.random.default_rng(3)
        ext = rng.random(extended_shape(d))
        src, asn = d.allocate()
        ref, _ = d.allocate()
        got, _ = d.allocate()
        extended_to_bricks(ext, d, src, asn)
        info = d.brick_info(asn)
        for slots in brick_cycle_slots(d, asn, 1):
            apply_brick_stencil(SEVEN_POINT, src, ref, info, slots)
            compile_brick_plan(SEVEN_POINT, info, slots).execute(src, got)
            np.testing.assert_array_equal(
                got.data[slots], ref.data[slots]
            )

    def test_plan_cache_per_geometry(self, small_decomp):
        info = small_decomp.brick_info()
        slots = small_decomp.compute_slots()
        a = compile_brick_plan(SEVEN_POINT, info, slots)
        b = compile_brick_plan(SEVEN_POINT, info, slots)
        assert a is b
        c = compile_brick_plan(SEVEN_POINT, info, slots[:4])
        assert c is not a
        d = compile_brick_plan(CUBE125, info, slots)
        assert d is not a

    def test_validation(self, small_decomp):
        info = small_decomp.brick_info()
        slots = small_decomp.compute_slots()
        st, _ = small_decomp.allocate()
        with pytest.raises(ValueError):
            compile_brick_plan(star_stencil(3, 9), info, slots)
        with pytest.raises(ValueError):
            compile_brick_plan(star_stencil(2, 1), info, slots)
        with pytest.raises(ValueError):
            compile_brick_plan(SEVEN_POINT, info, slots, field_offset=1)
        plan = compile_brick_plan(SEVEN_POINT, info, slots)
        with pytest.raises(ValueError):
            plan.execute(st, st)  # src must differ from dst
        f32, _ = small_decomp.allocate(dtype=np.float32)
        with pytest.raises(ValueError):
            plan.execute(st, f32)


class TestArrayPlanBitIdentity:
    @pytest.mark.parametrize(
        "spec,extent,ghost",
        [
            (identity_spec(1), (12,), 2),
            (star_stencil(1, 2), (12,), 4),
            (star_stencil(2, 1), (12, 8), 3),
            (SEVEN_POINT, (8, 8, 8), 4),
            (CUBE125, (8, 8, 8), 4),
        ],
        ids=["id1d", "star1d-r2", "star2d", "7pt", "125pt"],
    )
    def test_matches_generic_all_margins(self, spec, extent, ghost):
        rng = np.random.default_rng(5)
        shape = tuple(e + 2 * ghost for e in reversed(extent))
        arr = rng.random(shape)
        max_margin = ghost - spec.radius
        for margin in range(0, max_margin + 1):
            ref = rng.random(shape)  # dirty destinations
            got = ref.copy()
            apply_array_stencil(arr, ref, spec, extent, ghost, margin=margin)
            plan = compile_array_plan(spec, extent, ghost, margin)
            plan.execute(arr, got)
            np.testing.assert_array_equal(got, ref)

    def test_repeated_execution_reuses_scratch(self):
        spec = SEVEN_POINT
        extent, g = (8, 8, 8), 2
        plan = compile_array_plan(spec, extent, g)
        rng = np.random.default_rng(9)
        shape = tuple(e + 2 * g for e in reversed(extent))
        for trial in range(3):
            arr = rng.random(shape)
            ref, got = np.zeros(shape), np.zeros(shape)
            apply_array_stencil(arr, ref, spec, extent, g)
            plan.execute(arr, got)
            np.testing.assert_array_equal(got, ref)

    def test_validation(self):
        with pytest.raises(ValueError):
            ArrayStencilPlan(SEVEN_POINT, (8, 8), 4)  # ndim mismatch
        with pytest.raises(ValueError):
            ArrayStencilPlan(SEVEN_POINT, (8, 8, 8), 4, margin=4)
        plan = ArrayStencilPlan(SEVEN_POINT, (8, 8, 8), 4)
        a = np.zeros((16, 16, 16))
        with pytest.raises(ValueError):
            plan.execute(a, a)
        with pytest.raises(ValueError):
            plan.execute(a, np.zeros((4, 4, 4)))


class TestPlanKernelSources:
    def test_inplace_ops_only(self):
        src = batch_plan_kernel_source(SEVEN_POINT, (8, 8, 8))
        assert "np.multiply" in src and "out=acc" in src
        assert " + " not in src  # no temporary-producing arithmetic
        src = array_plan_kernel_source(SEVEN_POINT, (8, 8, 8), 2)
        assert "np.multiply" in src and "out=tmp" in src


class TestGatherMarginClearing:
    def test_dirty_buffer_absent_margins_cleared(self, small_decomp):
        """A reused halo buffer only needs absent-source margins cleared;
        result must equal a fresh gather."""
        d = small_decomp
        rng = np.random.default_rng(13)
        src, asn = d.allocate()
        src.data[:] = rng.random(src.data.shape)
        info = d.brick_info(asn)
        # outermost ghost bricks: some neighbors absent
        slots = np.nonzero((info.adjacency == -1).any(axis=1))[0][:8]
        assert len(slots) > 0
        fresh = gather_halo_batch(src, info, slots, 2)
        dirty = np.full_like(fresh, 9.99)
        got = gather_halo_batch(src, info, slots, 2, out=dirty)
        np.testing.assert_array_equal(got, fresh)

    def test_short_tail_chunk_reuses_buffer(self, small_decomp):
        """apply_brick_stencil's tail chunk computes in a view of the
        persistent buffer (no reallocation) and stays correct."""
        d = small_decomp
        rng = np.random.default_rng(17)
        ext = rng.random(extended_shape(d))
        outs = []
        for chunk in (60, 512):  # 60 forces a short tail over 64+ slots
            src, asn = d.allocate()
            dst, _ = d.allocate()
            extended_to_bricks(ext, d, src, asn)
            apply_brick_stencil(
                SEVEN_POINT, src, dst, d.brick_info(asn),
                d.compute_slots(asn), chunk=chunk,
            )
            outs.append(bricks_to_extended(d, dst, asn))
        np.testing.assert_array_equal(outs[0], outs[1])


class TestConversionScratch:
    def test_out_matches_fresh(self, small_decomp):
        d = small_decomp
        rng = np.random.default_rng(19)
        st, asn = d.allocate()
        st.data[:] = rng.random(st.data.shape)
        fresh = bricks_to_extended(d, st, asn)
        scratch = conversion_scratch(d)
        got = bricks_to_extended(d, st, asn, out=scratch)
        assert got is scratch
        np.testing.assert_array_equal(got, fresh)
        assert conversion_scratch(d) is scratch  # cached

    def test_out_validated(self, small_decomp):
        d = small_decomp
        st, asn = d.allocate()
        with pytest.raises(ValueError):
            bricks_to_extended(d, st, asn, out=np.empty((3, 3, 3)))


class TestDriverIntegration:
    @pytest.mark.parametrize("method", ["yask", "layout", "memmap"])
    def test_planned_equals_generic_and_reference(
        self, method, small_problem, theta
    ):
        steps = 2
        planned = run_executed(
            small_problem, method, theta, timesteps=steps, use_plans=True
        )
        generic = run_executed(
            small_problem, method, theta, timesteps=steps, use_plans=False
        )
        ref = apply_periodic_reference(
            small_problem.initial_global(0), small_problem.stencil, steps
        )
        np.testing.assert_array_equal(planned.global_result, ref)
        np.testing.assert_array_equal(generic.global_result, ref)

    def test_exchange_period_cycles_planned(self, theta):
        """Every cycle position (margins > 0, brick depths > 0) runs
        through its own plan and still matches the reference."""
        spec = star_stencil(2, 1)
        steps = 4
        for method, brick, ghost, period in (
            ("yask", (4, 4), 4, "auto"),  # element margins 3..0
            ("layout", (4, 4), 8, 2),  # brick depths 1, 0
        ):
            problem_kw = dict(
                global_extent=(32, 32), rank_dims=(2, 2), stencil=spec,
                brick_dim=brick, ghost=ghost,
            )
            from repro.core.problem import StencilProblem

            run = run_executed(
                StencilProblem(**problem_kw), method, theta,
                timesteps=steps, exchange_period=period,
            )
            ref = apply_periodic_reference(
                StencilProblem(**problem_kw).initial_global(0), spec, steps
            )
            np.testing.assert_array_equal(run.global_result, ref)

    def test_measured_calc_recorded(self, small_problem, theta):
        run = run_executed(small_problem, "layout", theta, timesteps=2)
        measured = run.metrics.measured_calc
        assert measured is not None and measured.avg > 0

    def test_env_disables_plans(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_PLAN", "1")
        assert not plans_enabled()
        assert plans_enabled(True)  # explicit flag wins
        monkeypatch.setenv("REPRO_NO_PLAN", "0")
        assert plans_enabled()
        monkeypatch.delenv("REPRO_NO_PLAN")
        assert plans_enabled()
        assert not plans_enabled(False)
