"""Stencil kernels: array, brick and reference implementations agree."""

import numpy as np
import pytest

from repro.brick.convert import bricks_to_extended, extended_shape, extended_to_bricks
from repro.brick.decomp import BrickDecomp
from repro.stencil.brick_kernels import apply_brick_stencil, gather_halo_batch
from repro.stencil.kernels import apply_array_stencil, owned_slices
from repro.stencil.reference import apply_periodic_reference
from repro.stencil.spec import CUBE125, SEVEN_POINT, cube_stencil, star_stencil


def _periodic_extended(global_arr, extent, ghost):
    """Build an extended array whose ghosts hold the periodic wrap."""
    pads = [(ghost, ghost)] * global_arr.ndim
    return np.pad(global_arr, pads, mode="wrap")


class TestArrayKernel:
    @pytest.mark.parametrize("spec", [SEVEN_POINT, CUBE125])
    def test_matches_reference_single_domain(self, spec):
        rng = np.random.default_rng(0)
        extent = (16, 16, 16)
        g = 8
        grid = rng.random(tuple(reversed(extent)))
        ext = _periodic_extended(grid, extent, g)
        out = np.zeros_like(ext)
        apply_array_stencil(ext, out, spec, extent, g)
        ref = apply_periodic_reference(grid, spec)
        np.testing.assert_array_equal(out[owned_slices(extent, g)], ref)

    def test_2d(self):
        spec = star_stencil(2, 1)
        rng = np.random.default_rng(1)
        extent = (12, 8)
        g = 2
        grid = rng.random(tuple(reversed(extent)))
        ext = _periodic_extended(grid, extent, g)
        out = np.zeros_like(ext)
        apply_array_stencil(ext, out, spec, extent, g)
        ref = apply_periodic_reference(grid, spec)
        np.testing.assert_array_equal(out[owned_slices(extent, g)], ref)

    def test_radius_check(self):
        spec = cube_stencil(3, 2)
        ext = np.zeros((18, 18, 18))
        with pytest.raises(ValueError):
            apply_array_stencil(ext, ext.copy(), spec, (16, 16, 16), 1)

    def test_shape_check(self):
        with pytest.raises(ValueError):
            apply_array_stencil(
                np.zeros((4, 4, 4)), np.zeros((4, 4, 4)), SEVEN_POINT,
                (16, 16, 16), 8,
            )

    def test_ghosts_not_written(self):
        extent, g = (16, 16, 16), 8
        ext = np.random.default_rng(3).random(
            tuple(e + 2 * g for e in extent)
        )
        out = np.full_like(ext, -1.0)
        apply_array_stencil(ext, out, SEVEN_POINT, extent, g)
        assert (out[0] == -1.0).all()  # ghost plane untouched


class TestBrickKernel:
    @pytest.mark.parametrize("spec", [SEVEN_POINT, CUBE125])
    def test_matches_array_kernel(self, spec, small_decomp):
        d = small_decomp
        rng = np.random.default_rng(4)
        ext = rng.random(extended_shape(d))
        src, asn = d.allocate()
        dst, _ = d.allocate()
        extended_to_bricks(ext, d, src, asn)
        info = d.brick_info(asn)
        apply_brick_stencil(spec, src, dst, info, d.compute_slots(asn))

        out_ref = np.zeros_like(ext)
        apply_array_stencil(ext, out_ref, spec, d.extent, d.ghost_elems)
        got = bricks_to_extended(d, dst, asn)
        own = owned_slices(d.extent, d.ghost_elems)
        np.testing.assert_array_equal(got[own], out_ref[own])

    def test_layout_agnostic(self, small_decomp):
        """Permuting brick order does not change results (Figure 10's
        premise): compare the default optimal layout against the
        lexicographic region order."""
        from repro.layout.order import lexicographic_order

        rng = np.random.default_rng(5)
        ext = rng.random(extended_shape(small_decomp))
        results = []
        for layout in (None, lexicographic_order(3)):
            d = BrickDecomp((32, 32, 32), (8, 8, 8), 8, layout=layout)
            src, asn = d.allocate()
            dst, _ = d.allocate()
            extended_to_bricks(ext, d, src, asn)
            apply_brick_stencil(
                SEVEN_POINT, src, dst, d.brick_info(asn), d.compute_slots(asn)
            )
            results.append(bricks_to_extended(d, dst, asn))
        own = owned_slices((32, 32, 32), 8)
        np.testing.assert_array_equal(results[0][own], results[1][own])

    def test_chunking_irrelevant(self, small_decomp):
        d = small_decomp
        ext = np.random.default_rng(6).random(extended_shape(d))
        outs = []
        for chunk in (7, 512):
            src, asn = d.allocate()
            dst, _ = d.allocate()
            extended_to_bricks(ext, d, src, asn)
            apply_brick_stencil(
                SEVEN_POINT, src, dst, d.brick_info(asn),
                d.compute_slots(asn), chunk=chunk,
            )
            outs.append(bricks_to_extended(d, dst, asn))
        np.testing.assert_array_equal(outs[0], outs[1])

    def test_radius_must_fit_brick(self, small_decomp):
        d = small_decomp
        src, asn = d.allocate()
        big = cube_stencil(3, 2)
        object.__setattr__(big, "taps", big.taps)  # no-op; radius comes from taps
        bad = star_stencil(3, 9)
        with pytest.raises(ValueError):
            apply_brick_stencil(
                bad, src, src, d.brick_info(asn), d.compute_slots(asn)
            )


class TestHaloGather:
    def test_halo_contents(self, small_decomp):
        d = small_decomp
        ext = np.random.default_rng(7).random(extended_shape(d))
        src, asn = d.allocate()
        extended_to_bricks(ext, d, src, asn)
        info = d.brick_info(asn)
        slot = int(asn.grid_index[2, 2, 2])  # interior brick (1,1,1) signed
        halo = gather_halo_batch(src, info, np.array([slot]), 2)
        # halo block equals the extended array around that brick
        np.testing.assert_array_equal(
            halo[0], ext[8 * 2 - 2 : 8 * 3 + 2, 8 * 2 - 2 : 8 * 3 + 2, 8 * 2 - 2 : 8 * 3 + 2]
        )

    def test_radius_zero(self, small_decomp):
        d = small_decomp
        src, asn = d.allocate()
        src.fill(3.0)
        info = d.brick_info(asn)
        slots = d.compute_slots(asn)[:4]
        halo = gather_halo_batch(src, info, slots, 0)
        assert halo.shape == (4, 8, 8, 8)
        assert (halo == 3.0).all()
