"""BitSet: direction-set notation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.bitset import BitSet


class TestConstruction:
    def test_empty(self):
        b = BitSet()
        assert len(b) == 0
        assert not b

    def test_simple(self):
        b = BitSet([-1, 2])
        assert -1 in b
        assert 2 in b
        assert 1 not in b
        assert len(b) == 2

    def test_zero_rejected(self):
        with pytest.raises(ValueError):
            BitSet([0])

    def test_conflicting_directions_rejected(self):
        with pytest.raises(ValueError):
            BitSet([1, -1])

    def test_duplicates_collapse(self):
        assert BitSet([2, 2]) == BitSet([2])

    def test_from_vector(self):
        assert BitSet.from_vector((-1, 0, 1)) == BitSet([-1, 3])

    def test_from_vector_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            BitSet.from_vector((2, 0))

    def test_to_vector_roundtrip(self):
        vec = (-1, 1, 0)
        assert BitSet.from_vector(vec).to_vector(3) == vec

    def test_to_vector_too_small(self):
        with pytest.raises(ValueError):
            BitSet([3]).to_vector(2)


class TestSetOps:
    def test_equality_and_hash(self):
        assert BitSet([1, -2]) == BitSet([-2, 1])
        assert hash(BitSet([1, -2])) == hash(BitSet([-2, 1]))
        assert BitSet([1]) != BitSet([-1])

    def test_subset(self):
        assert BitSet([-1]).issubset(BitSet([-1, -2]))
        assert not BitSet([1]).issubset(BitSet([-1, -2]))
        assert BitSet().issubset(BitSet([1]))

    def test_superset(self):
        assert BitSet([-1, -2]).issuperset(BitSet([-2]))

    def test_union_intersection(self):
        a, b = BitSet([1]), BitSet([-2])
        assert a.union(b) == BitSet([1, -2])
        assert a.intersection(b) == BitSet()

    def test_union_conflict_raises(self):
        with pytest.raises(ValueError):
            BitSet([1]).union(BitSet([-1]))

    def test_iteration_sorted_by_axis(self):
        assert list(BitSet([3, -1, 2])) == [-1, 2, 3]


class TestDomainSemantics:
    def test_axes(self):
        assert BitSet([-3, 1]).axes() == (1, 3)

    def test_direction(self):
        b = BitSet([-1, 2])
        assert b.direction(1) == -1
        assert b.direction(2) == 1
        assert b.direction(3) == 0

    def test_opposite(self):
        assert BitSet([-1, 2]).opposite() == BitSet([1, -2])
        assert BitSet().opposite() == BitSet()

    def test_covers_neighbor_paper_example(self):
        # Figure 2: region 1 = r({A1-, A2-}) is sent to three neighbors.
        corner = BitSet([-1, -2])
        assert corner.covers_neighbor(BitSet([-1]))
        assert corner.covers_neighbor(BitSet([-2]))
        assert corner.covers_neighbor(BitSet([-1, -2]))
        assert not corner.covers_neighbor(BitSet([1]))
        # The empty set is the interior, never a neighbor.
        assert not corner.covers_neighbor(BitSet())

    def test_edge_region_covers_only_one(self):
        # Region 4 = r({A1-}) is sent only to the left neighbor.
        edge = BitSet([-1])
        assert edge.covers_neighbor(BitSet([-1]))
        assert not edge.covers_neighbor(BitSet([-1, -2]))

    def test_notation(self):
        assert BitSet([-1, 2]).notation() == "{A1-, A2+}"
        assert BitSet().notation() == "{}"

    def test_repr_roundtrippable_content(self):
        assert "-1" in repr(BitSet([-1]))


@given(st.lists(st.integers(1, 5), unique=True, max_size=5), st.data())
def test_vector_roundtrip_property(axes, data):
    elems = [axis * data.draw(st.sampled_from([-1, 1])) for axis in axes]
    b = BitSet(elems)
    ndim = max(axes) if axes else 1
    assert BitSet.from_vector(b.to_vector(ndim)) == b


@given(st.integers(1, 4), st.data())
def test_opposite_involution(ndim, data):
    vec = tuple(data.draw(st.sampled_from([-1, 0, 1])) for _ in range(ndim))
    b = BitSet.from_vector(vec)
    assert b.opposite().opposite() == b
    assert b.opposite().to_vector(ndim) == tuple(-v for v in vec)
