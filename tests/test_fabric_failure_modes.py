"""Fabric failure modes: deadlocks, aborts, error cascades, timeouts."""

import numpy as np
import pytest

import repro.simmpi.fabric as fabric_mod
from repro.simmpi import SimFabric, run_spmd
from repro.simmpi.collectives import allreduce, barrier_all, broadcast
from repro.simmpi.fabric import AbortedError, DeadlockError


@pytest.fixture
def fast_timeout(monkeypatch):
    """Shrink the deadlock timeout so failure tests run quickly."""
    monkeypatch.setattr(fabric_mod, "_DEADLOCK_TIMEOUT", 0.5)


class TestDeadlockDetection:
    def test_unmatched_recv_detected(self, fast_timeout):
        def fn(comm):
            buf = np.empty(1)
            comm.Recv(buf, (comm.rank + 1) % comm.size, tag=99)

        with pytest.raises(RuntimeError, match="waited"):
            run_spmd(2, fn)

    def test_unmatched_send_detected(self, fast_timeout):
        def fn(comm):
            if comm.rank == 0:
                comm.Send(np.zeros(1), 1, tag=5)  # nobody receives
            else:
                # rank 1 sits at the barrier forever; abort must reach it
                try:
                    comm.Barrier()
                except Exception:
                    pass

        with pytest.raises(RuntimeError, match="unmatched|Deadlock|deadlock"):
            run_spmd(2, fn)

    def test_tag_mismatch_is_a_deadlock(self, fast_timeout):
        def fn(comm):
            if comm.rank == 0:
                comm.Send(np.zeros(1), 1, tag=1)
            else:
                comm.Recv(np.empty(1), 0, tag=2)

        with pytest.raises(RuntimeError):
            run_spmd(2, fn)


class TestAbortCascades:
    def test_one_failure_releases_blocked_peers(self, fast_timeout):
        """A raise on one rank must not leave others hanging on recvs."""

        def fn(comm):
            if comm.rank == 0:
                raise RuntimeError("original failure")
            comm.Recv(np.empty(1), 0, tag=0)  # would block forever

        with pytest.raises(RuntimeError, match="original failure"):
            run_spmd(3, fn)

    def test_root_cause_reported_not_fallout(self, fast_timeout):
        """The launcher reports the originating exception, not the
        BrokenBarrier/Aborted noise other ranks see."""

        def fn(comm):
            if comm.rank == 2:
                raise ValueError("root cause")
            comm.Barrier()

        with pytest.raises(RuntimeError, match="rank 2.*root cause"):
            run_spmd(4, fn)

    def test_fabric_unusable_after_abort(self, fast_timeout):
        fab = SimFabric(2)
        fab.abort()
        with pytest.raises(AbortedError):
            fab.complete_recv(0, 1, 0, np.empty(1))


class TestTimeoutConfiguration:
    def test_constructor_argument(self):
        assert SimFabric(2, timeout=3.5).timeout == 3.5

    def test_module_default_when_unset(self):
        assert SimFabric(2).timeout == fabric_mod._DEADLOCK_TIMEOUT

    def test_monkeypatched_module_default_still_works(self, fast_timeout):
        # The legacy override path used throughout this file: a fabric
        # without an explicit timeout follows the module global live.
        assert SimFabric(2).timeout == 0.5

    def test_environment_variable(self, monkeypatch):
        monkeypatch.setenv("REPRO_FABRIC_TIMEOUT", "2.25")
        assert SimFabric(2).timeout == 2.25
        # Explicit argument wins over the environment.
        assert SimFabric(2, timeout=1.0).timeout == 1.0

    def test_bad_environment_value_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_FABRIC_TIMEOUT", "soon")
        with pytest.raises(ValueError, match="REPRO_FABRIC_TIMEOUT"):
            SimFabric(2)

    def test_set_timeout_validation(self):
        fab = SimFabric(2, timeout=5.0)
        fab.set_timeout(1.5)
        assert fab.timeout == 1.5
        fab.set_timeout(None)  # back to the module default
        assert fab.timeout == fabric_mod._DEADLOCK_TIMEOUT
        with pytest.raises(ValueError, match="positive"):
            fab.set_timeout(0.0)
        with pytest.raises(ValueError, match="positive"):
            SimFabric(2, timeout=-1.0)

    def test_run_spmd_timeout_governs_deadlock(self):
        def fn(comm):
            if comm.rank == 1:
                comm.Recv(np.empty(1), 0, tag=9)  # never sent

        with pytest.raises(RuntimeError, match="waited 0.4"):
            run_spmd(2, fn, timeout=0.4)

    def test_run_spmd_timeout_overrides_supplied_fabric(self):
        fab = SimFabric(2, timeout=60.0)

        def fn(comm):
            pass

        run_spmd(2, fn, fabric=fab, timeout=0.7)
        assert fab.timeout == 0.7


class TestCollectiveAbortPropagation:
    """Satellite (c): a crash inside a collective must release the peers
    blocked in the same collective, with the crash as the reported root
    cause -- not a bare deadlock or barrier timeout."""

    def test_crash_inside_barrier_releases_peers(self, fast_timeout):
        def fn(comm):
            if comm.rank == 0:
                raise RuntimeError("rank 0 died before the barrier")
            barrier_all(comm)  # fabric-level barrier (point-to-point)

        with pytest.raises(RuntimeError, match="rank 0 died") as info:
            run_spmd(4, fn)
        assert isinstance(info.value.__cause__, RuntimeError)

    def test_crash_inside_allreduce_releases_peers(self, fast_timeout):
        def fn(comm):
            if comm.rank == 2:
                raise ValueError("rank 2 died mid-reduction")
            return allreduce(comm, np.asarray(float(comm.rank)), np.maximum)

        with pytest.raises(RuntimeError, match="rank 2.*died mid-reduction"):
            run_spmd(4, fn)

    def test_crash_inside_broadcast_releases_peers(self, fast_timeout):
        def fn(comm):
            if comm.rank == 0:
                raise RuntimeError("root died before broadcasting")
            return broadcast(comm, np.zeros(4))

        with pytest.raises(RuntimeError, match="root died"):
            run_spmd(4, fn)

    def test_peers_see_aborted_not_deadlock(self, fast_timeout):
        """The fallout on surviving ranks is AbortedError (fail-fast),
        which the launcher demotes in favor of the root cause."""
        seen = {}

        def fn(comm):
            if comm.rank == 0:
                raise RuntimeError("boom")
            try:
                allreduce(comm, np.asarray(1.0), np.add)
            except BaseException as exc:  # noqa: BLE001 - recorded for assert
                seen[comm.rank] = exc
                raise

        with pytest.raises(RuntimeError, match="boom"):
            run_spmd(3, fn)
        assert seen  # at least one peer was actually blocked
        for exc in seen.values():
            assert isinstance(exc, AbortedError)

    def test_injected_crash_root_cause_through_collectives(
        self, fast_timeout, small_problem
    ):
        """End-to-end: a scheduled mid-run crash during a degrade-voting
        (collective-using) run surfaces InjectedCrashError as the cause."""
        from repro.core.driver import run_executed
        from repro.faults import FaultPlan, InjectedCrashError

        plan = FaultPlan(seed=1, crashes=((2, 1),), degrade=((0, 1),))
        with pytest.raises(RuntimeError) as info:
            run_executed(small_problem, "memmap", timesteps=2, seed=0,
                         fault_plan=plan)
        chain, node = [], info.value
        while node is not None:
            chain.append(node)
            node = node.__cause__ or node.__context__
        assert any(isinstance(n, InjectedCrashError) for n in chain)


class TestPendingAccounting:
    def test_pending_messages_counter(self):
        fab = SimFabric(2)
        assert fab.pending_messages == 0
        fab.post_send(0, 1, 7, np.zeros(4))
        assert fab.pending_messages == 1
        fab.complete_recv(0, 1, 7, np.empty(4))
        assert fab.pending_messages == 0

    def test_clean_run_leaves_no_pending(self, small_problem, theta):
        from repro.core.driver import run_executed

        run = run_executed(small_problem, "layout", theta, timesteps=2)
        assert run.fabric.pending_messages == 0
