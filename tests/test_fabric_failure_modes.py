"""Fabric failure modes: deadlocks, aborts, error cascades."""

import numpy as np
import pytest

import repro.simmpi.fabric as fabric_mod
from repro.simmpi import SimFabric, run_spmd
from repro.simmpi.fabric import AbortedError, DeadlockError


@pytest.fixture
def fast_timeout(monkeypatch):
    """Shrink the deadlock timeout so failure tests run quickly."""
    monkeypatch.setattr(fabric_mod, "_DEADLOCK_TIMEOUT", 0.5)


class TestDeadlockDetection:
    def test_unmatched_recv_detected(self, fast_timeout):
        def fn(comm):
            buf = np.empty(1)
            comm.Recv(buf, (comm.rank + 1) % comm.size, tag=99)

        with pytest.raises(RuntimeError, match="waited"):
            run_spmd(2, fn)

    def test_unmatched_send_detected(self, fast_timeout):
        def fn(comm):
            if comm.rank == 0:
                comm.Send(np.zeros(1), 1, tag=5)  # nobody receives
            else:
                # rank 1 sits at the barrier forever; abort must reach it
                try:
                    comm.Barrier()
                except Exception:
                    pass

        with pytest.raises(RuntimeError, match="unmatched|Deadlock|deadlock"):
            run_spmd(2, fn)

    def test_tag_mismatch_is_a_deadlock(self, fast_timeout):
        def fn(comm):
            if comm.rank == 0:
                comm.Send(np.zeros(1), 1, tag=1)
            else:
                comm.Recv(np.empty(1), 0, tag=2)

        with pytest.raises(RuntimeError):
            run_spmd(2, fn)


class TestAbortCascades:
    def test_one_failure_releases_blocked_peers(self, fast_timeout):
        """A raise on one rank must not leave others hanging on recvs."""

        def fn(comm):
            if comm.rank == 0:
                raise RuntimeError("original failure")
            comm.Recv(np.empty(1), 0, tag=0)  # would block forever

        with pytest.raises(RuntimeError, match="original failure"):
            run_spmd(3, fn)

    def test_root_cause_reported_not_fallout(self, fast_timeout):
        """The launcher reports the originating exception, not the
        BrokenBarrier/Aborted noise other ranks see."""

        def fn(comm):
            if comm.rank == 2:
                raise ValueError("root cause")
            comm.Barrier()

        with pytest.raises(RuntimeError, match="rank 2.*root cause"):
            run_spmd(4, fn)

    def test_fabric_unusable_after_abort(self, fast_timeout):
        fab = SimFabric(2)
        fab.abort()
        with pytest.raises(AbortedError):
            fab.complete_recv(0, 1, 0, np.empty(1))


class TestPendingAccounting:
    def test_pending_messages_counter(self):
        fab = SimFabric(2)
        assert fab.pending_messages == 0
        fab.post_send(0, 1, 7, np.zeros(4))
        assert fab.pending_messages == 1
        fab.complete_recv(0, 1, 7, np.empty(4))
        assert fab.pending_messages == 0

    def test_clean_run_leaves_no_pending(self, small_problem, theta):
        from repro.core.driver import run_executed

        run = run_executed(small_problem, "layout", theta, timesteps=2)
        assert run.fabric.pending_messages == 0
