"""Static verifier: clean geometries pass, mutations are caught, and the
runtime negotiation raises the same typed errors the checker predicts."""

import numpy as np
import pytest

from repro.check import (
    CHECKABLE_METHODS,
    CheckFailedError,
    CheckReport,
    MUTATIONS,
    run_checks,
    run_selftest,
)
from repro.check.cback import verify_cbackend
from repro.check.report import Finding
from repro.core.driver import run_executed
from repro.core.problem import StencilProblem
from repro.faults.errors import SplitMismatchError
from repro.hardware.profiles import generic_host
from repro.simmpi.fabric import SimFabric, partition_bounds
from repro.simmpi.launcher import RankFailedError, run_spmd
from repro.stencil import cbackend
from repro.stencil.spec import SEVEN_POINT


def problem(extent=(32, 32, 32), ranks=(2, 2, 2), **kw):
    return StencilProblem(extent, ranks, SEVEN_POINT, (8, 8, 8), 8, **kw)


# ----------------------------------------------------------------------
# Clean geometries check clean
# ----------------------------------------------------------------------
class TestCleanGeometries:
    @pytest.mark.parametrize("method", CHECKABLE_METHODS)
    def test_multirank_clean(self, method):
        rep = run_checks(
            problem(), method, partitions=4,
            passes=("schedule", "memory"),
        )
        assert rep.ok, rep.render()
        assert rep.passes_run == ["schedule", "memory"]

    @pytest.mark.parametrize("method", CHECKABLE_METHODS)
    def test_single_rank_clean(self, method):
        rep = run_checks(
            problem((16, 16, 16), (1, 1, 1)), method,
            passes=("schedule", "memory"),
        )
        assert rep.ok, rep.render()

    @pytest.mark.parametrize("method", ("yask", "shift", "memmap", "basic"))
    def test_open_boundaries_clean(self, method):
        rep = run_checks(
            problem(periodic=False), method,
            passes=("schedule", "memory"),
        )
        assert rep.ok, rep.render()

    def test_anisotropic_ranks_clean(self):
        rep = run_checks(
            problem((32, 32, 48), (1, 2, 3)), "memmap",
            passes=("schedule", "memory"),
        )
        assert rep.ok, rep.render()

    def test_unknown_pass_rejected(self):
        with pytest.raises(ValueError, match="unknown pass"):
            run_checks(problem(), "memmap", passes=("bogus",))

    def test_model_only_method_rejected(self):
        from repro.faults.errors import ExchangeConfigError

        with pytest.raises(ExchangeConfigError, match="checkable"):
            run_checks(problem(), "network")


# ----------------------------------------------------------------------
# Elastic decompositions
# ----------------------------------------------------------------------
class TestElastic:
    def test_dead_rank_edges_flagged(self):
        rep = run_checks(
            problem(), "memmap", dead_ranks=(6, 7),
            passes=("schedule",),
        )
        assert not rep.ok
        assert rep.has("dead-rank-edge")
        assert all(
            6 in f.ranks or 7 in f.ranks
            for f in rep.errors() if f.code == "dead-rank-edge"
        )

    def test_rebricked_world_clean(self):
        # 8 -> 6 ranks: the shrunken decomposition avoids the lost node
        # and checks clean again.
        rep = run_checks(
            problem((32, 32, 48), (1, 2, 3)), "memmap",
            passes=("schedule", "memory"),
        )
        assert rep.ok, rep.render()


# ----------------------------------------------------------------------
# Mutation harness
# ----------------------------------------------------------------------
class TestSelftest:
    def test_all_mutations_detected_default(self):
        results = run_selftest()
        assert all(results.values()), results
        assert set(results) == set(MUTATIONS)

    @pytest.mark.parametrize("method", ("layout", "brickpack", "yask"))
    def test_all_mutations_detected_per_method(self, method):
        results = run_selftest(methods=(method,))
        assert all(results.values()), results


# ----------------------------------------------------------------------
# Report plumbing
# ----------------------------------------------------------------------
class TestReport:
    def test_render_and_literal(self):
        rep = CheckReport()
        rep.passes_run.append("schedule")
        rep.error(
            "schedule", "orphan-send", "boom", ranks=(0, 1), tag=7,
            hint="fix it",
        )
        rep.warning("schedule", "advice", "meh")
        assert not rep.ok
        text = rep.render()
        assert "orphan-send" in text and "FAILED" in text
        lit = rep.to_literal()
        assert lit["ok"] is False
        assert lit["findings"][0]["code"] == "orphan-send"
        assert lit["findings"][0]["ranks"] == [0, 1]

    def test_check_failed_error_carries_report(self):
        rep = CheckReport()
        rep.error("schedule", "byte-mismatch", "x")
        err = CheckFailedError(rep)
        assert err.report is rep
        assert "byte-mismatch" in str(err)

    def test_bad_severity_rejected(self):
        rep = CheckReport()
        with pytest.raises(ValueError):
            rep.add(Finding("fatal", "schedule", "x", "y"))


# ----------------------------------------------------------------------
# Driver pre-flight
# ----------------------------------------------------------------------
class TestDriverPreflight:
    def test_strict_check_passes_and_runs(self):
        run = run_executed(
            problem((16, 16, 32), (1, 1, 2)), "memmap",
            generic_host(), timesteps=1, check="strict",
        )
        assert run.method == "memmap"

    def test_bad_check_value_rejected(self):
        with pytest.raises(ValueError, match="check="):
            run_executed(
                problem((16, 16, 32), (1, 1, 2)), "memmap",
                generic_host(), timesteps=1, check="bogus",
            )


# ----------------------------------------------------------------------
# Runtime negotiation raises the checker-consistent typed error
# ----------------------------------------------------------------------
class TestNegotiation:
    def test_send_recv_init_split_mismatch(self):
        fabric = SimFabric(2)
        buf = np.zeros(64)
        fabric.send_init(0, [(1, 5, buf)], partitions=2)
        with pytest.raises(SplitMismatchError, match="split disagreement"):
            fabric.recv_init(1, [(0, 5, np.zeros(64))], partitions=3)

    def test_register_split_byte_disagreement(self):
        fabric = SimFabric(2)
        fabric.register_split(0, 1, 9, 512, 1, "send")
        with pytest.raises(SplitMismatchError):
            fabric.register_split(0, 1, 9, 520, 1, "recv")

    def test_reregistration_drops_stale_peer(self):
        # Ladder demotion rebuilds a channel with different byte counts
        # on the same tags; a same-side re-registration must not trip on
        # the peer's stale entry.
        fabric = SimFabric(2)
        fabric.register_split(0, 1, 9, 512, 1, "send")
        fabric.register_split(0, 1, 9, 512, 1, "recv")
        fabric.register_split(0, 1, 9, 768, 1, "send")  # demoted engine
        fabric.register_split(0, 1, 9, 768, 1, "recv")  # peer follows

    def test_channel_negotiation_mismatch_in_spmd(self):
        from repro.exchange.pack import PackExchanger

        ext, g = (16, 16, 8), 8
        shape = tuple(e + 2 * g for e in reversed(ext))

        def fn(comm):
            cart = comm.Create_cart((1, 1, 2))
            arr = np.zeros(shape)
            ex = PackExchanger(cart, arr, ext, g, generic_host())
            # Endpoint disagreement: the checker's
            # partition-split-mismatch finding, at runtime.
            ex.make_channel(partitions=2 + cart.rank)

        with pytest.raises(RankFailedError) as exc:
            run_spmd(2, fn, timeout=20.0)
        assert isinstance(exc.value.__cause__, SplitMismatchError)

    def test_partition_bounds_shared_helper(self):
        # The schedule verifier and the fabric must agree by
        # construction: same helper, same bounds.
        assert partition_bounds(10, 4) == ((0, 2), (2, 5), (5, 7), (7, 10))
        assert partition_bounds(0, 4) == ((0, 0),)


# ----------------------------------------------------------------------
# C backend pass + sanitize/bounds modes
# ----------------------------------------------------------------------
class TestCBackend:
    def test_pass_clean_here(self):
        rep = CheckReport()
        verify_cbackend(rep)
        assert rep.ok, rep.render()

    def test_bad_sanitize_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CC_SANITIZE", "address,bogus")
        rep = CheckReport()
        verify_cbackend(rep)
        assert rep.has("sanitize-env")

    def test_bad_bounds_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_CC_BOUNDS", "2")
        rep = CheckReport()
        verify_cbackend(rep)
        assert rep.has("bounds-env")

    def test_sanitize_flags_parse(self, monkeypatch):
        monkeypatch.setenv("REPRO_CC_SANITIZE", "undefined")
        flags = cbackend.sanitize_flags()
        assert "-fsanitize=undefined" in flags and "-g" in flags
        monkeypatch.setenv("REPRO_CC_SANITIZE", "")
        assert cbackend.sanitize_flags() == ()

    def test_guarded_kernel_bit_identical_and_raises(self):
        taps = SEVEN_POINT.taps
        np_bd, r, be = (8, 8, 8), 1, 512
        plain_src = cbackend.batch_step_source(taps, np_bd, r, 0, be)
        guard_src = cbackend.batch_step_source(
            taps, np_bd, r, 0, be, guard=True
        )
        assert "int64_t repro_step" in guard_src
        plain = cbackend._build(plain_src)
        guarded = cbackend._build(guard_src, guard=True)
        if plain is None or guarded is None:
            pytest.skip("no C toolchain")
        rng = np.random.default_rng(0)
        nb = 2
        halo = tuple(b + 2 * r for b in np_bd)
        src = rng.random(nb * be)
        index = np.full((nb,) + halo, -1, dtype=np.int64)
        inner = np.arange(be).reshape(np_bd)
        for b in range(nb):
            index[b][1:-1, 1:-1, 1:-1] = inner + b * be
        index = np.ascontiguousarray(index)
        slots = np.arange(nb, dtype=np.int64)
        d1 = np.zeros_like(src)
        d2 = np.zeros_like(src)
        plain(src, d1, index, slots)
        guarded(src, d2, index, slots)
        assert np.array_equal(d1, d2)
        # Poison one index: the guard reports, the plain kernel would
        # have read out of bounds.
        bad = index.copy()
        bad[0][5, 5, 5] = nb * be + 99  # an interior cell every tap reads
        with pytest.raises(cbackend.KernelBoundsError, match="out-of-range"):
            guarded(src, d2, np.ascontiguousarray(bad), slots)

    def test_bounds_env_selects_guard_in_kernel_cache(self, monkeypatch):
        if cbackend._compiler() is None or cbackend.cffi is None:
            pytest.skip("no C toolchain")
        monkeypatch.setenv("REPRO_CC_BOUNDS", "1")
        fn = cbackend.batch_step_kernel(
            SEVEN_POINT.taps, (8, 8, 8), 1, 0, 512, np.float64
        )
        assert fn is not None
        assert "src_elems" in fn.__source__
