"""FaultPlan: determinism, validation, overrides, serialization."""

import pytest

from repro.faults import FaultPlan, RetryPolicy


class TestValidation:
    def test_default_plan_is_quiet(self):
        plan = FaultPlan()
        assert not plan.any_wire_faults
        assert plan.decide(0, 1, 7, 1) is None

    @pytest.mark.parametrize("kind", ["drop", "corrupt", "duplicate", "delay"])
    def test_probability_range_enforced(self, kind):
        with pytest.raises(ValueError, match="outside"):
            FaultPlan(**{kind: 1.5})
        with pytest.raises(ValueError, match="outside"):
            FaultPlan(**{kind: -0.1})

    def test_probability_sum_enforced(self):
        with pytest.raises(ValueError, match="sum"):
            FaultPlan(drop=0.5, corrupt=0.6)

    def test_edge_overrides_count_as_wire_faults(self):
        plan = FaultPlan(edge_overrides={(0, 1): {"drop": 1.0}})
        assert plan.any_wire_faults


class TestDeterminism:
    def test_decide_is_pure(self):
        plan = FaultPlan(seed=42, drop=0.1, corrupt=0.1, duplicate=0.1)
        first = [plan.decide(0, 1, t, s) for t in range(8) for s in range(16)]
        second = [plan.decide(0, 1, t, s) for t in range(8) for s in range(16)]
        assert first == second

    def test_seed_changes_schedule(self):
        kw = dict(drop=0.2, corrupt=0.2)
        a = [FaultPlan(seed=1, **kw).decide(0, 1, 3, s) for s in range(64)]
        b = [FaultPlan(seed=2, **kw).decide(0, 1, 3, s) for s in range(64)]
        assert a != b

    def test_all_kinds_reachable(self):
        plan = FaultPlan(seed=0, drop=0.2, corrupt=0.2, duplicate=0.2,
                         delay=0.2)
        kinds = {
            plan.decide(0, 1, 0, s) for s in range(300)
        }
        assert kinds == {None, "drop", "corrupt", "duplicate", "delay"}

    def test_certain_fault(self):
        plan = FaultPlan(seed=9, corrupt=1.0)
        assert all(
            plan.decide(a, b, t, s) == "corrupt"
            for a, b, t, s in [(0, 1, 0, 1), (3, 2, 40, 9), (7, 0, 1, 2)]
        )

    def test_corrupt_byte_in_range_and_nonzero_mask(self):
        plan = FaultPlan(seed=5, corrupt=1.0)
        for seq in range(32):
            off, mask = plan.corrupt_byte(0, 1, 4, seq, 100)
            assert 0 <= off < 100
            assert 1 <= mask <= 255


class TestOverridesAndSchedules:
    def test_edge_override_scopes_faults(self):
        plan = FaultPlan(seed=3, edge_overrides={(0, 1): {"drop": 1.0}})
        assert plan.decide(0, 1, 0, 1) == "drop"
        assert plan.decide(1, 0, 0, 1) is None

    def test_string_edge_keys(self):
        plan = FaultPlan(seed=3, edge_overrides={"2,3": {"corrupt": 1.0}})
        assert plan.decide(2, 3, 0, 1) == "corrupt"

    def test_crash_and_degrade_schedules(self):
        plan = FaultPlan(crashes=((2, 5),), degrade=((0, 1), (3, 4)))
        assert plan.crash_due(2, 5) and not plan.crash_due(2, 4)
        assert plan.degrade_due(0, 1) and not plan.degrade_due(1, 0)
        assert plan.max_degrade_step == 4
        assert FaultPlan().max_degrade_step == -1

    def test_literal_round_trip(self):
        plan = FaultPlan(
            seed=11, drop=0.1, corrupt=0.05,
            edge_overrides={(0, 1): {"drop": 0.5}},
            crashes=((1, 2),), degrade=((0, 3),),
        )
        doc = plan.to_literal()
        rebuilt = FaultPlan.from_literal(doc)
        assert rebuilt.seed == plan.seed
        assert rebuilt.crashes == plan.crashes
        assert rebuilt.degrade == plan.degrade
        # Same decisions through the JSON-friendly string edge keys.
        assert [rebuilt.decide(0, 1, 0, s) for s in range(32)] == [
            plan.decide(0, 1, 0, s) for s in range(32)
        ]
        import json

        json.dumps(doc)  # must be JSON-serializable as-is


class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(max_retries=8, backoff_s=0.001, max_backoff_s=0.004)
        sleeps = [policy.sleep_for(a) for a in range(6)]
        assert sleeps[0] == 0.001
        assert sleeps[1] == 0.002
        assert sleeps[2] == 0.004
        assert all(s == 0.004 for s in sleeps[2:])
        assert sleeps == sorted(sleeps)
