"""Message-run counting for region orders."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.layout.analysis import basic_message_count, optimal_message_count
from repro.layout.messages import message_runs, messages_for_order, runs_per_neighbor
from repro.layout.order import SURFACE2D, SURFACE3D, lexicographic_order
from repro.layout.regions import all_regions
from repro.util.bitset import BitSet


class TestMessageRuns:
    def test_single_run(self):
        order = SURFACE2D
        # Bottom neighbor: its three regions are positions 0..2 of the ring.
        runs = message_runs(order, BitSet([-2]))
        assert runs == [(0, 3)]

    def test_run_split_linearly(self):
        # In the ring order the {A1-} regions wrap around the ends,
        # producing two linear runs (storage is linear, not circular).
        runs = message_runs(SURFACE2D, BitSet([-1]))
        assert len(runs) == 2

    def test_corner_neighbor_single_region(self):
        runs = message_runs(SURFACE2D, BitSet([1, 1 + 1]))
        assert sum(length for _, length in runs) == 1

    def test_empty_neighbor_rejected(self):
        with pytest.raises(ValueError):
            message_runs(SURFACE2D, BitSet())

    def test_runs_cover_exactly_the_supersets(self):
        for neighbor in all_regions(2):
            runs = message_runs(SURFACE2D, neighbor)
            covered = set()
            for start, length in runs:
                covered.update(range(start, start + length))
            expected = {
                i for i, r in enumerate(SURFACE2D) if neighbor.issubset(r)
            }
            assert covered == expected


class TestMessageCounts:
    def test_figure2_layout_needs_12(self):
        assert messages_for_order(lexicographic_order(2), 2) == 12

    def test_surface2d_is_optimal(self):
        assert messages_for_order(SURFACE2D, 2) == optimal_message_count(2) == 9

    def test_surface3d_is_optimal(self):
        assert messages_for_order(SURFACE3D, 3) == optimal_message_count(3) == 42

    def test_1d_trivial(self):
        order = all_regions(1)
        assert messages_for_order(order, 1) == 2

    def test_runs_per_neighbor_totals(self):
        per = runs_per_neighbor(SURFACE3D, 3)
        assert len(per) == 26
        assert sum(len(v) for v in per.values()) == 42


@settings(max_examples=60)
@given(st.randoms(use_true_random=False))
def test_any_order_within_analytic_bounds(rnd):
    """Every permutation's message count lies in [Eq.1, Eq.3]."""
    regions = all_regions(2)
    rnd.shuffle(regions)
    count = messages_for_order(regions, 2)
    assert optimal_message_count(2) <= count <= basic_message_count(2)


@settings(max_examples=20)
@given(st.randoms(use_true_random=False))
def test_any_3d_order_within_analytic_bounds(rnd):
    regions = all_regions(3)
    rnd.shuffle(regions)
    count = messages_for_order(regions, 3)
    assert optimal_message_count(3) <= count <= basic_message_count(3)
