"""CLI (`python -m repro`) behaviour."""

import subprocess
import sys

import pytest

from repro.cli import main


def run_cli(*args):
    return subprocess.run(
        [sys.executable, "-m", "repro", *args],
        capture_output=True,
        text=True,
        timeout=300,
    )


class TestFigures:
    def test_list(self, capsys):
        assert main(["figures", "--list"]) == 0
        out = capsys.readouterr().out.split()
        assert len(out) == 16
        assert "fig9" in out

    def test_single_artifact(self, capsys):
        assert main(["figures", "tab1"]) == 0
        out = capsys.readouterr().out
        assert "TAB1" in out
        assert "1042" in out  # Eq. 1 at D=5

    def test_unknown_artifact(self):
        with pytest.raises(ValueError):
            main(["figures", "fig99"])


class TestRun:
    def test_memmap_run_validates(self, capsys):
        assert main(["run", "--method", "memmap", "--steps", "1"]) == 0
        out = capsys.readouterr().out
        assert "bit-exact vs serial reference: True" in out
        assert "perf" in out

    def test_open_boundaries_skip_validation(self, capsys):
        assert main(
            ["run", "--method", "layout", "--steps", "1",
             "--open-boundaries"]
        ) == 0
        out = capsys.readouterr().out
        assert "bit-exact" not in out

    def test_exchange_period_and_json(self, capsys, tmp_path):
        import json

        path = tmp_path / "run.json"
        assert main(
            ["run", "--method", "yask", "--steps", "4",
             "--exchange-period", "auto", "--json", str(path)]
        ) == 0
        out = capsys.readouterr().out
        assert "exchange period: 8" in out
        data = json.loads(path.read_text())
        assert data["bit_exact"] is True
        assert data["exchange_period"] == 8
        assert data["phases_s"]["pack"]["avg"] > 0
        assert data["messages_per_rank"] == 26


class TestAdvise:
    def test_advise_runs(self, capsys):
        assert main(["advise", "--domain", "512", "--max-nodes", "64"]) == 0
        out = capsys.readouterr().out
        assert "memmap" in out
        assert "eff%" in out


class TestSearchLayout:
    def test_2d_reaches_optimum(self, capsys):
        assert main(["search-layout", "2", "--restarts", "4",
                     "--iters", "1500"]) == 0
        out = capsys.readouterr().out
        assert "9 messages" in out

    def test_1d_exhaustive(self, capsys):
        assert main(["search-layout", "1", "--exhaustive"]) == 0


class TestChaos:
    def test_quick_soak_passes(self, capsys):
        # One trial per preset, no determinism recheck: the fast gate.
        assert main(
            ["chaos", "--trials", "7", "--quick", "--no-recheck"]
        ) == 0
        out = capsys.readouterr().out
        assert "chaos soak: 7 trials" in out
        assert "PASS" in out
        assert "silent" not in out.split("PASS")[1]

    def test_json_report(self, capsys, tmp_path):
        import json

        path = tmp_path / "chaos.json"
        assert main(
            ["chaos", "--trials", "2", "--quick", "--no-recheck",
             "--json", str(path)]
        ) == 0
        data = json.loads(path.read_text())
        assert data["trials"] == 2
        assert data["passed"] is True
        assert len(data["per_trial"]) == 2
        assert data["per_trial"][0]["preset"] == "corrupt"

    def test_seed_changes_fault_events(self, capsys):
        def events_for(seed):
            assert main(
                ["chaos", "--trials", "1", "--quick", "--no-recheck",
                 "--seed", str(seed)]
            ) == 0
            return capsys.readouterr().out.splitlines()[2]

        # Same preset/method row, different injected schedule per seed.
        assert events_for(1) != events_for(2)

    def test_preset_subset(self, capsys):
        assert main(
            ["chaos", "--trials", "2", "--quick", "--no-recheck",
             "--presets", "crash_restart"]
        ) == 0
        out = capsys.readouterr().out
        assert "resumed_exact: 2" in out
        assert "PASS" in out

    def test_unknown_preset_rejected(self, capsys):
        assert main(
            ["chaos", "--trials", "1", "--quick", "--presets", "bogus"]
        ) == 2
        err = capsys.readouterr().err
        assert "unknown preset" in err and "crash_restart" in err


class TestCheckpointCli:
    def _run_with_store(self, tmp_path, steps="2", extra=()):
        return main(
            ["run", "--method", "layout", "--steps", steps,
             "--checkpoint-dir", str(tmp_path), "--checkpoint-period", "1",
             *extra]
        )

    def test_run_writes_store_and_resumes(self, capsys, tmp_path):
        assert self._run_with_store(tmp_path) == 0
        out = capsys.readouterr().out
        assert "checkpoints: 1 epoch(s)" in out
        assert str(tmp_path) in out
        assert self._run_with_store(tmp_path, steps="4",
                                    extra=("--resume",)) == 0
        out = capsys.readouterr().out
        assert "(resumed from epoch 1)" in out
        assert "bit-exact vs serial reference: True" in out

    def test_ls_verify_prune(self, capsys, tmp_path):
        assert self._run_with_store(tmp_path, steps="3") == 0
        capsys.readouterr()

        assert main(["ckpt", "ls", str(tmp_path), "--nranks", "8"]) == 0
        out = capsys.readouterr().out
        assert "latest consistent epoch: 2" in out
        assert "yes" in out

        assert main(["ckpt", "verify", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "16/16 snapshot(s) verified clean" in out
        assert "CORRUPT" not in out

        assert main(["ckpt", "prune", str(tmp_path), "--keep", "1"]) == 0
        out = capsys.readouterr().out
        assert "pruned" in out
        assert main(["ckpt", "verify", str(tmp_path)]) == 0
        capsys.readouterr()

    def test_verify_detects_flipped_byte(self, capsys, tmp_path):
        assert self._run_with_store(tmp_path) == 0
        capsys.readouterr()
        bins = sorted(tmp_path.rglob("*.bin"))
        blob = bytearray(bins[0].read_bytes())
        blob[len(blob) // 2] ^= 0x01
        bins[0].write_bytes(bytes(blob))
        assert main(["ckpt", "verify", str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "CORRUPT" in out and "CRC32" in out

    def test_empty_store_ls(self, capsys, tmp_path):
        assert main(["ckpt", "ls", str(tmp_path)]) == 0
        assert "no checkpoints" in capsys.readouterr().out


class TestValidate:
    @pytest.mark.slow
    def test_all_methods_ok(self, capsys):
        assert main(["validate"]) == 0
        out = capsys.readouterr().out
        assert "all exchange methods bit-exact" in out
        assert "FAILED" not in out


@pytest.mark.slow
def test_module_entrypoint():
    res = run_cli("figures", "tab1")
    assert res.returncode == 0
    assert "TAB1" in res.stdout
