"""Cross-cutting property tests (hypothesis) over the whole pipeline."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.driver import run_executed
from repro.core.problem import StencilProblem
from repro.exchange.schedule import (
    array_schedule,
    basic_brick_schedule,
    brick_send_schedule,
    memmap_schedule,
)
from repro.hardware.profiles import generic_host
from repro.layout.order import SURFACE2D, SURFACE3D, surface_order
from repro.layout.regions import all_regions
from repro.stencil.reference import apply_periodic_reference
from repro.stencil.spec import star_stencil


def _ghost_volume_bytes(grid, width, brick_bytes, ndim):
    """Total (region, neighbor)-pair payload: the overlap-weighted shell."""
    from repro.layout.regions import receiving_neighbors, region_brick_extent

    total = 0
    for r in all_regions(ndim):
        nb = math.prod(region_brick_extent(r, grid, width))
        total += nb * len(receiving_neighbors(r))
    return total * brick_bytes


class TestScheduleConservation:
    """Every brick scheme moves exactly the overlap-weighted shell."""

    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(2, 3),
        st.tuples(st.integers(2, 7), st.integers(2, 7), st.integers(2, 7)),
        st.integers(1, 2),
    )
    def test_payload_conservation(self, ndim, grid3, width):
        grid = grid3[:ndim]
        if any(g < 2 * width for g in grid):
            return
        layout = surface_order(ndim)
        bb = 4096
        expected = _ghost_volume_bytes(grid, width, bb, ndim)
        for schedule in (brick_send_schedule, basic_brick_schedule):
            specs = schedule(grid, width, layout, bb)
            assert sum(m.payload_bytes for m in specs) == expected
        mm = memmap_schedule(grid, width, layout, bb, 4096)
        assert sum(m.payload_bytes for m in mm) == expected

    @settings(max_examples=30, deadline=None)
    @given(
        st.tuples(st.integers(2, 7), st.integers(2, 7), st.integers(2, 7)),
        st.integers(1, 2),
        st.sampled_from([4096, 16384, 65536]),
    )
    def test_memmap_wire_dominates_payload(self, grid, width, page):
        if any(g < 2 * width for g in grid):
            return
        specs = memmap_schedule(grid, width, SURFACE3D, 4096, page)
        for m in specs:
            assert m.wire_bytes >= m.payload_bytes
            assert m.wire_bytes % math.gcd(page, 4096 * m.nmappings or page) == 0

    @settings(max_examples=40, deadline=None)
    @given(
        st.tuples(st.integers(8, 40), st.integers(8, 40), st.integers(8, 40)),
        st.integers(1, 8),
    )
    def test_array_schedule_volume(self, extent, ghost):
        if any(e < ghost for e in extent):
            return
        specs = array_schedule(extent, ghost)
        total = sum(m.payload_bytes for m in specs)
        expected = 8 * sum(
            math.prod(ghost if v else e for v, e in zip(n.to_vector(3), extent))
            for n in all_regions(3)
        )
        assert total == expected


class TestEndToEndRandomConfigs:
    """Random small problems, every brick scheme, bit-exact vs reference."""

    @settings(max_examples=6, deadline=None)
    @given(
        st.sampled_from(["layout", "memmap", "basic"]),
        st.sampled_from([(2, 1, 1), (1, 2, 1), (2, 2, 1)]),
        st.integers(1, 3),
        st.integers(0, 2**31 - 1),
    )
    def test_3d_runs(self, method, rank_dims, steps, seed):
        sub = (8, 8, 8)
        problem = StencilProblem(
            global_extent=tuple(s * d for s, d in zip(sub, rank_dims)),
            rank_dims=rank_dims,
            stencil=star_stencil(3, 1),
            brick_dim=(4, 4, 4),
            ghost=4,
        )
        run = run_executed(
            problem, method, generic_host(), timesteps=steps, seed=seed
        )
        ref = apply_periodic_reference(
            problem.initial_global(seed), problem.stencil, steps
        )
        np.testing.assert_array_equal(run.global_result, ref)

    @settings(max_examples=6, deadline=None)
    @given(
        st.sampled_from(["yask", "memmap", "shift"]),
        st.integers(1, 4),
        st.integers(0, 2**31 - 1),
    )
    def test_2d_runs(self, method, steps, seed):
        problem = StencilProblem(
            global_extent=(24, 24),
            rank_dims=(2, 2),
            stencil=star_stencil(2, 1),
            brick_dim=(4, 4),
            ghost=4,
            layout=SURFACE2D,
        )
        run = run_executed(
            problem, method, generic_host(), timesteps=steps, seed=seed
        )
        ref = apply_periodic_reference(
            problem.initial_global(seed), problem.stencil, steps
        )
        np.testing.assert_array_equal(run.global_result, ref)


class TestAnisotropic:
    def test_anisotropic_bricks_need_uniform_width(self):
        """Anisotropic bricks require the ghost width to be the same
        number of *bricks* on every axis; (8,4,4) bricks with an 8-wide
        ghost would give widths {1, 2} and are rejected with a clear
        error rather than silently mis-decomposing."""
        from repro.brick.decomp import BrickDecomp

        with pytest.raises(ValueError, match="ghost width in bricks"):
            BrickDecomp((32, 16, 8), (8, 4, 4), 8)

    def test_anisotropic_domain_isotropic_bricks(self):
        problem = StencilProblem(
            global_extent=(32, 16, 8),
            rank_dims=(2, 1, 1),
            stencil=star_stencil(3, 1),
            brick_dim=(4, 4, 4),
            ghost=4,
        )
        run = run_executed(problem, "layout", generic_host(), timesteps=2)
        ref = apply_periodic_reference(
            problem.initial_global(0), problem.stencil, 2
        )
        np.testing.assert_array_equal(run.global_result, ref)

    def test_anisotropic_memmap(self):
        problem = StencilProblem(
            global_extent=(32, 16, 16),
            rank_dims=(2, 2, 1),
            stencil=star_stencil(3, 1),
            brick_dim=(4, 4, 4),
            ghost=4,
        )
        run = run_executed(problem, "memmap", generic_host(), timesteps=2)
        ref = apply_periodic_reference(
            problem.initial_global(0), problem.stencil, 2
        )
        np.testing.assert_array_equal(run.global_result, ref)
