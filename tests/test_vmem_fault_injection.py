"""Injected vmem failures: no leaked fds or mappings, thread-local arming.

Regression tests for the mid-stitch cleanup in ``vmem/realmap.py``: a
``mmap``/``memfd`` failure partway through arena or view construction
must release everything acquired so far (file descriptor, base mapping,
reserved span including already-overlaid chunks).  Leaks are observed
directly through ``/proc/self/fd`` and ``/proc/self/maps``.
"""

import threading

import numpy as np
import pytest

from repro.faults.runtime import VMEM_FAULTS, FaultPoints
from repro.vmem.realmap import MemfdArena, realmap_available
from repro.vmem.simmap import SimArena

requires_realmap = pytest.mark.skipif(
    not realmap_available(), reason="memfd_create/mmap(MAP_FIXED) unavailable"
)

PAGE = 4096


def _open_fds():
    import os

    return len(os.listdir("/proc/self/fd"))


def _n_maps():
    with open("/proc/self/maps") as f:
        return sum(1 for _ in f)


class TestFaultPoints:
    def test_unarmed_check_is_noop(self):
        points = FaultPoints()
        points.check("anything")  # no raise

    def test_armed_site_fires_count_times(self):
        points = FaultPoints()
        points.arm("site", count=2)
        for _ in range(2):
            with pytest.raises(OSError, match="injected fault"):
                points.check("site")
        points.check("site")  # charges consumed

    def test_skip_lets_early_triggers_through(self):
        points = FaultPoints()
        points.arm("site", count=1, skip=2)
        points.check("site")
        points.check("site")
        with pytest.raises(OSError):
            points.check("site")
        points.check("site")

    def test_armed_contextmanager_disarms(self):
        points = FaultPoints()
        with points.armed("site", count=5):
            with pytest.raises(OSError):
                points.check("site")
        points.check("site")  # disarmed on exit, remaining charges gone

    def test_arming_is_thread_local(self):
        # Ranks are threads: arming a fault on one rank must not break a
        # concurrent make_view on another.
        points = FaultPoints()
        points.arm("site")
        errors = []

        def other_thread():
            try:
                points.check("site")
            except OSError as exc:  # pragma: no cover - the failure mode
                errors.append(exc)

        t = threading.Thread(target=other_thread)
        t.start()
        t.join()
        assert not errors
        with pytest.raises(OSError):
            points.check("site")


@requires_realmap
class TestRealArenaCleanup:
    def test_memfd_create_failure_is_clean(self):
        before = _open_fds()
        with VMEM_FAULTS.armed("memfd_create"):
            with pytest.raises(OSError):
                MemfdArena(4 * PAGE, PAGE)
        assert _open_fds() == before

    def test_base_mmap_failure_closes_fd(self):
        # The regression: a failure after memfd_create but before the
        # arena was fully built used to leak the fd.
        before = _open_fds()
        with VMEM_FAULTS.armed("arena_mmap"):
            with pytest.raises(OSError):
                MemfdArena(4 * PAGE, PAGE)
        assert _open_fds() == before

    def test_mid_stitch_failure_unmaps_reservation(self):
        arena = MemfdArena(8 * PAGE, PAGE)
        try:
            baseline_maps = _n_maps()
            chunks = [(0, PAGE), (2 * PAGE, PAGE), (4 * PAGE, PAGE)]
            # skip=1: the first chunk maps fine, the second fails --
            # genuinely mid-stitch, with file pages already overlaid.
            with VMEM_FAULTS.armed("view_map_chunk", skip=1):
                with pytest.raises(OSError, match="view_map_chunk"):
                    arena.make_view(chunks)
            assert _n_maps() == baseline_maps
            assert arena.mapping_count == 1  # base only, no live views

            # The arena survives: a clean retry of the same view works.
            view = arena.make_view(chunks)
            arr = view.array(np.uint8)
            assert arr.size == 3 * PAGE
            view.close()
        finally:
            arena.close()

    def test_reserve_failure_before_any_chunk(self):
        arena = MemfdArena(4 * PAGE, PAGE)
        try:
            baseline_maps = _n_maps()
            with VMEM_FAULTS.armed("view_reserve"):
                with pytest.raises(OSError):
                    arena.make_view([(0, PAGE)])
            assert _n_maps() == baseline_maps
        finally:
            arena.close()

    def test_close_after_failed_view_is_idempotent(self):
        arena = MemfdArena(4 * PAGE, PAGE)
        with VMEM_FAULTS.armed("view_map_chunk"):
            with pytest.raises(OSError):
                arena.make_view([(0, PAGE)])
        arena.close()
        arena.close()  # second close must not raise / double-free


class TestSimArenaParity:
    def test_sim_view_shares_the_failure_site(self):
        arena = SimArena(4 * PAGE, PAGE)
        with VMEM_FAULTS.armed("view_map_chunk"):
            with pytest.raises(OSError, match="view_map_chunk"):
                arena.make_view([(0, PAGE)])
        # Clean retry works, like the real path.
        view = arena.make_view([(0, PAGE)])
        assert view.array(np.uint8).size == PAGE
        arena.close()
