"""GPU method variants through the executed driver."""

import numpy as np
import pytest

from repro.core.driver import run_executed
from repro.core.problem import StencilProblem
from repro.stencil.reference import apply_periodic_reference
from repro.stencil.spec import SEVEN_POINT


@pytest.fixture
def problem():
    return StencilProblem(
        (32, 32, 32), (2, 2, 2), SEVEN_POINT, (8, 8, 8), 8
    )


class TestGpuVariants:
    def test_staged_charges_move(self, problem, summit):
        run = run_executed(problem, "layout_staged", summit, timesteps=1)
        assert run.metrics.move.avg > 0
        ref = apply_periodic_reference(problem.initial_global(0), SEVEN_POINT, 1)
        np.testing.assert_array_equal(run.global_result, ref)

    def test_ca_and_um_no_explicit_move(self, problem, summit):
        for method in ("layout_ca", "memmap_um"):
            run = run_executed(problem, method, summit, timesteps=1)
            assert run.metrics.move.avg == 0.0

    def test_um_slower_compute_than_ca(self, problem, summit):
        ca = run_executed(problem, "layout_ca", summit, timesteps=1)
        um = run_executed(problem, "layout_um", summit, timesteps=1)
        assert um.metrics.calc.avg > ca.metrics.calc.avg

    def test_mpi_types_ca_catastrophic_but_correct(self, problem, summit):
        """The paper measured MPI_Types_CA 50x slower than MPI_Types_UM;
        our registry still executes it correctly (the cost model is what
        differs -- the datatype engine reading device memory)."""
        run = run_executed(problem, "mpi_types_ca", summit, timesteps=1)
        ref = apply_periodic_reference(problem.initial_global(0), SEVEN_POINT, 1)
        np.testing.assert_array_equal(run.global_result, ref)

    def test_gpu_method_requires_gpu_profile(self, problem, theta):
        with pytest.raises(RuntimeError, match="GPU"):
            run_executed(problem, "layout_ca", theta, timesteps=1)

    def test_memmap_um_page_size_defaults_to_gpu(self, problem, summit):
        run = run_executed(problem, "memmap_um", summit, timesteps=1)
        # 64 KiB pages on 16^3 subdomains: massive padding (Table 2 regime)
        assert run.padding_fraction > 1.0
