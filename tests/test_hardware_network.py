"""Network cost model."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hardware.network import NetworkModel


@pytest.fixture
def net():
    return NetworkModel(
        alpha=1e-6,
        bw_peak=10e9,
        n_half=16 * 1024,
        overhead_send=0.5e-6,
        overhead_recv=0.5e-6,
    )


class TestEffectiveBandwidth:
    def test_half_point(self, net):
        assert net.effective_bandwidth(16 * 1024) == pytest.approx(5e9)

    def test_asymptotic(self, net):
        assert net.effective_bandwidth(1 << 30) == pytest.approx(10e9, rel=0.001)

    def test_small_messages_much_slower(self, net):
        assert net.effective_bandwidth(64) < 0.01 * net.bw_peak


class TestWireTime:
    def test_zero_bytes_is_latency(self, net):
        assert net.wire_time(0) == pytest.approx(1e-6)

    def test_monotone_in_size(self, net):
        times = [net.wire_time(1 << k) for k in range(4, 24)]
        assert times == sorted(times)

    def test_negative_rejected(self, net):
        with pytest.raises(ValueError):
            net.wire_time(-1)


class TestExchange:
    def test_call_time_linear(self, net):
        assert net.call_time(26, 26) == pytest.approx(26e-6)

    def test_empty_exchange(self, net):
        assert net.wait_time([], []) == 0.0

    def test_duplex_overlap(self, net):
        """Send and recv streams overlap: doubling recvs to match sends
        does not double wait time."""
        sends = [1 << 20] * 4
        only_sends = net.wait_time(sends, [])
        both = net.wait_time(sends, sends)
        assert both == pytest.approx(only_sends)

    def test_injection_serializes_sends(self, net):
        one = net.wait_time([1 << 20], [])
        four = net.wait_time([1 << 20] * 4, [])
        assert four > 3.5 * (one - net.alpha)

    def test_concurrent_mode(self):
        net = NetworkModel(1e-6, 10e9, 1024, 0, 0, injection_serial=False)
        t = net.wait_time([1 << 20] * 8, [])
        assert t == pytest.approx(net.wire_time(1 << 20))

    def test_exchange_time_composition(self, net):
        sends = [4096] * 3
        total = net.exchange_time(sends, sends)
        assert total == pytest.approx(
            net.call_time(3, 3) + net.wait_time(sends, sends)
        )

    def test_startup_floor_for_tiny_messages(self, net):
        """Many tiny messages are latency/overhead dominated -- the Fig. 9
        flattening for small subdomains."""
        tiny = net.exchange_time([64] * 26, [64] * 26)
        assert tiny > net.call_time(26, 26)  # overheads dominate
        assert tiny < 2e-4


class TestValidation:
    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            NetworkModel(-1, 1e9, 0, 0, 0)
        with pytest.raises(ValueError):
            NetworkModel(1e-6, 0, 0, 0, 0)


@given(st.integers(1, 1 << 28))
def test_wire_time_exceeds_ideal(nbytes):
    net = NetworkModel(1e-6, 10e9, 16384, 0, 0)
    assert net.wire_time(nbytes) >= nbytes / net.bw_peak
