"""Method registry and run metrics."""

import pytest

from repro.core.methods import ALL_METHODS, BRICK_METHODS, method_info
from repro.core.metrics import RankMetrics, RunMetrics
from repro.util.timing import TimeBreakdown


class TestMethodInfo:
    def test_cpu_parsing(self):
        info = method_info("layout")
        assert info.base == "layout"
        assert info.transport is None
        assert info.uses_bricks and not info.packs
        assert not info.is_gpu

    def test_gpu_parsing(self):
        info = method_info("layout_ca")
        assert info.base == "layout"
        assert info.transport == "ca"
        assert info.name == "layout_ca"
        assert info.is_gpu

    def test_um_parsing(self):
        assert method_info("mpi_types_um").transport == "um"

    def test_memmap_ca_impossible(self):
        """cudaMalloc memory cannot back stitched host mappings."""
        with pytest.raises(ValueError):
            method_info("memmap_ca")

    def test_unknown_rejected(self):
        with pytest.raises(ValueError):
            method_info("quantum")

    def test_yask_packs_and_overlap(self):
        assert method_info("yask").packs
        assert not method_info("yask").overlaps
        assert method_info("yask_ol").overlaps

    def test_all_methods_parse(self):
        for name in ALL_METHODS:
            method_info(name)

    def test_brick_methods_subset(self):
        for name in BRICK_METHODS:
            assert method_info(name).uses_bricks


class TestRunMetrics:
    def _metrics(self):
        ranks = [
            RankMetrics(0, 2, TimeBreakdown(calc=2.0, pack=0.4, wait=0.6)),
            RankMetrics(1, 2, TimeBreakdown(calc=2.4, pack=0.2, wait=0.8)),
        ]
        return RunMetrics("yask", points_per_rank=1000, nranks=2,
                          timesteps=2, ranks=ranks)

    def test_phase_summary(self):
        m = self._metrics()
        assert m.calc.min == pytest.approx(1.0)
        assert m.calc.max == pytest.approx(1.2)
        assert m.pack.avg == pytest.approx(0.15)

    def test_comm_time(self):
        m = self._metrics()
        assert m.comm_time == pytest.approx((0.5 + 0.5) / 2)

    def test_timestep_gated_by_slowest(self):
        m = self._metrics()
        assert m.timestep_time == pytest.approx(1.7)

    def test_throughput(self):
        m = self._metrics()
        assert m.gstencils_per_s == pytest.approx(2000 / 1.7 / 1e9)

    def test_report_contains_all_phases(self):
        text = self._metrics().report()
        for phase in ("calc", "pack", "call", "wait", "move", "perf"):
            assert phase in text

    def test_per_timestep_requires_steps(self):
        with pytest.raises(ValueError):
            RankMetrics(0, 0, TimeBreakdown()).per_timestep()
