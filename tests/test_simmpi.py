"""Simulated MPI: fabric, communicators, launcher."""

import numpy as np
import pytest

from repro.simmpi import SimFabric, run_spmd
from repro.simmpi.comm import CartComm, SimComm


class TestPointToPoint:
    def test_ring(self):
        def ring(comm):
            n = comm.size
            data = np.full(8, float(comm.rank))
            out = np.empty(8)
            reqs = [
                comm.Irecv(out, (comm.rank - 1) % n, tag=1),
                comm.Isend(data, (comm.rank + 1) % n, tag=1),
            ]
            comm.Waitall(reqs)
            return out[0]

        res = run_spmd(4, ring)
        assert res == [3.0, 0.0, 1.0, 2.0]

    def test_tags_disambiguate(self):
        def fn(comm):
            if comm.rank == 0:
                comm.Isend(np.array([1.0]), 1, tag=5)
                comm.Isend(np.array([2.0]), 1, tag=6)
                return None
            a, b = np.empty(1), np.empty(1)
            # receive in reverse tag order
            rb = comm.Irecv(b, 0, tag=6)
            ra = comm.Irecv(a, 0, tag=5)
            comm.Waitall([rb, ra])
            return (a[0], b[0])

        res = run_spmd(2, fn)
        assert res[1] == (1.0, 2.0)

    def test_message_order_preserved_same_tag(self):
        def fn(comm):
            if comm.rank == 0:
                for v in (1.0, 2.0, 3.0):
                    comm.Send(np.array([v]), 1, tag=0)
                return None
            got = []
            for _ in range(3):
                buf = np.empty(1)
                comm.Recv(buf, 0, tag=0)
                got.append(buf[0])
            return got

        assert run_spmd(2, fn)[1] == [1.0, 2.0, 3.0]

    def test_dtype_preserved_via_bytes(self):
        def fn(comm):
            if comm.rank == 0:
                comm.Send(np.arange(4, dtype=np.int32), 1, tag=0)
                return None
            buf = np.empty(4, dtype=np.int32)
            comm.Recv(buf, 0, tag=0)
            return buf.tolist()

        assert run_spmd(2, fn)[1] == [0, 1, 2, 3]

    def test_size_mismatch_raises(self):
        def fn(comm):
            if comm.rank == 0:
                comm.Send(np.empty(4), 1, tag=0)
            else:
                buf = np.empty(8)
                comm.Recv(buf, 0, tag=0)

        with pytest.raises(RuntimeError):
            run_spmd(2, fn)

    def test_stats(self):
        fab = SimFabric(2)

        def fn(comm):
            if comm.rank == 0:
                comm.Send(np.empty(16), 1, tag=0)
            else:
                comm.Recv(np.empty(16), 0, tag=0)

        run_spmd(2, fn, fabric=fab)
        assert fab.stats[0].sends == 1
        assert fab.stats[0].bytes_sent == 128
        assert fab.stats[1].recvs == 1
        assert fab.total_stats().bytes_received == 128


class TestBarrierAndErrors:
    def test_barrier_synchronises(self):
        order = []

        def fn(comm):
            if comm.rank == 0:
                import time

                time.sleep(0.02)
            comm.Barrier()
            order.append(comm.rank)

        run_spmd(3, fn)
        assert len(order) == 3

    def test_rank_exception_propagates(self):
        def fn(comm):
            if comm.rank == 1:
                raise ValueError("boom")
            comm.Barrier()

        with pytest.raises(RuntimeError, match="rank 1"):
            run_spmd(2, fn)

    def test_invalid_rank_checked(self):
        def fn(comm):
            comm.Send(np.empty(1), 99, tag=0)

        with pytest.raises(RuntimeError):
            run_spmd(2, fn)


class TestCartesian:
    def test_coords_roundtrip(self):
        def fn(comm):
            cart = comm.Create_cart((2, 2, 2))
            return cart.coords_to_rank(cart.coords) == comm.rank

        assert all(run_spmd(8, fn))

    def test_axis1_fastest(self):
        def fn(comm):
            cart = comm.Create_cart((4, 2))
            return cart.coords

        res = run_spmd(8, fn)
        assert res[0] == (0, 0)
        assert res[1] == (1, 0)
        assert res[4] == (0, 1)

    def test_periodic_wrap(self):
        def fn(comm):
            cart = comm.Create_cart((2, 2, 2))
            return cart.neighbor_rank((-1, 0, 0))

        res = run_spmd(8, fn)
        assert res[0] == 1  # wraps

    def test_nonperiodic_edge(self):
        def fn(comm):
            cart = comm.Create_cart((2,), periods=[False])
            return cart.neighbor_rank((-1,))

        assert run_spmd(2, fn)[0] is None

    def test_wrong_total(self):
        def fn(comm):
            comm.Create_cart((3, 3))

        with pytest.raises(RuntimeError):
            run_spmd(8, fn)


class TestValidation:
    def test_fabric_size(self):
        with pytest.raises(ValueError):
            SimFabric(0)

    def test_comm_rank_bounds(self):
        fab = SimFabric(2)
        with pytest.raises(ValueError):
            SimComm(fab, 5)

    def test_recv_requires_ndarray(self):
        fab = SimFabric(1)
        comm = SimComm(fab, 0)
        with pytest.raises(TypeError):
            comm.Irecv([1, 2, 3], 0, 0)

    def test_recv_requires_contiguous(self):
        fab = SimFabric(1)
        comm = SimComm(fab, 0)
        arr = np.empty((4, 4))[:, ::2]
        with pytest.raises(ValueError):
            comm.Irecv(arr, 0, 0)


class TestPartitionedChannels:
    """Persistent partitioned sends/receives (the MPI-4 analogue)."""

    def _pair(self, n=64, partitions=4, timeout=None):
        fab = SimFabric(2, timeout=timeout)
        src = np.arange(n, dtype=np.float64)
        dst = np.zeros(n, dtype=np.float64)
        psend = fab.send_init(0, [(1, 3, src)], partitions)
        precv = fab.recv_init(1, [(0, 3, dst)], partitions)
        return fab, src, dst, psend, precv

    def test_roundtrip_pready_all(self):
        _fab, src, dst, psend, precv = self._pair()
        precv.start()
        psend.start()
        psend.pready_all()
        precv.complete()
        psend.wait()
        np.testing.assert_array_equal(dst, src)

    def test_partitions_released_independently(self):
        # Partitions marked ready out of order still land in the right
        # sub-views; parrived flips per-partition as bytes hit the wire.
        _fab, src, dst, psend, precv = self._pair(partitions=4)
        precv.start()
        psend.start()
        assert not precv.parrived(0, 2)
        psend.pready(0, 2)
        assert precv.parrived(0, 2)
        assert not precv.parrived(0, 0)
        psend.pready(0, 0)
        psend.pready(0, 1)
        psend.pready(0, 3)
        precv.complete()
        psend.wait()
        np.testing.assert_array_equal(dst, src)

    def test_missing_partition_blocks_completion(self):
        # The overlap guarantee: a receive epoch must NOT complete until
        # every partition was marked ready -- a dropped surface message
        # cannot let the surface sweep run early.
        from repro.simmpi import DeadlockError

        _fab, _src, _dst, psend, precv = self._pair(timeout=0.2)
        precv.start()
        psend.start()
        psend.pready(0, 0)
        psend.pready(0, 1)
        psend.pready(0, 3)  # partition 2 never released
        with pytest.raises(DeadlockError):
            precv.complete()

    def test_epoch_ordering_enforced(self):
        _fab, _src, _dst, psend, precv = self._pair()
        with pytest.raises(RuntimeError, match="before start"):
            psend.pready(0, 0)
        with pytest.raises(RuntimeError, match="before start"):
            psend.wait()
        with pytest.raises(RuntimeError, match="before start"):
            precv.parrived(0, 0)
        psend.start()
        with pytest.raises(RuntimeError, match="already started"):
            psend.start()
        psend.pready(0, 0)
        with pytest.raises(RuntimeError, match="already marked ready"):
            psend.pready(0, 0)

    def test_restartable_epochs(self):
        _fab, src, dst, psend, precv = self._pair(partitions=3)
        for step in range(3):
            src[:] = step
            precv.start()
            psend.start()
            psend.pready_all()
            precv.complete()
            psend.wait()
            np.testing.assert_array_equal(dst, src)

    def test_partition_views_cover_uneven_sizes(self):
        # 80 bytes over 4 partitions: equal byte splits computed the
        # same way on both ends, never empty unless the buffer is.
        _fab, src, dst, psend, precv = self._pair(n=10, partitions=4)
        assert psend.partitions == [4]
        assert precv.partitions == [4]
        precv.start()
        psend.start()
        psend.pready_all()
        precv.complete()
        psend.wait()
        np.testing.assert_array_equal(dst, src)

    def test_partition_tag_disjoint_from_plain_tags(self):
        from repro.simmpi.fabric import partition_tag

        tags = {partition_tag(t, p) for t in (0, 7, 1023) for p in range(4)}
        assert len(tags) == 12
        assert all(t >= 1 << 20 for t in tags)
        with pytest.raises(ValueError):
            partition_tag(1 << 20, 0)
        with pytest.raises(ValueError):
            partition_tag(-1, 0)
        with pytest.raises(ValueError):
            partition_tag(0, -1)

    def test_verified_fabric_refuses_partitioned(self):
        fab = SimFabric(2)
        fab.enable_envelope()
        buf = np.zeros(8)
        with pytest.raises(RuntimeError, match="verified fabric"):
            fab.send_init(0, [(1, 3, buf)], 2)
        with pytest.raises(RuntimeError, match="verified fabric"):
            fab.recv_init(1, [(0, 3, buf)], 2)
