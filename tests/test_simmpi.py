"""Simulated MPI: fabric, communicators, launcher."""

import numpy as np
import pytest

from repro.simmpi import SimFabric, run_spmd
from repro.simmpi.comm import CartComm, SimComm


class TestPointToPoint:
    def test_ring(self):
        def ring(comm):
            n = comm.size
            data = np.full(8, float(comm.rank))
            out = np.empty(8)
            reqs = [
                comm.Irecv(out, (comm.rank - 1) % n, tag=1),
                comm.Isend(data, (comm.rank + 1) % n, tag=1),
            ]
            comm.Waitall(reqs)
            return out[0]

        res = run_spmd(4, ring)
        assert res == [3.0, 0.0, 1.0, 2.0]

    def test_tags_disambiguate(self):
        def fn(comm):
            if comm.rank == 0:
                comm.Isend(np.array([1.0]), 1, tag=5)
                comm.Isend(np.array([2.0]), 1, tag=6)
                return None
            a, b = np.empty(1), np.empty(1)
            # receive in reverse tag order
            rb = comm.Irecv(b, 0, tag=6)
            ra = comm.Irecv(a, 0, tag=5)
            comm.Waitall([rb, ra])
            return (a[0], b[0])

        res = run_spmd(2, fn)
        assert res[1] == (1.0, 2.0)

    def test_message_order_preserved_same_tag(self):
        def fn(comm):
            if comm.rank == 0:
                for v in (1.0, 2.0, 3.0):
                    comm.Send(np.array([v]), 1, tag=0)
                return None
            got = []
            for _ in range(3):
                buf = np.empty(1)
                comm.Recv(buf, 0, tag=0)
                got.append(buf[0])
            return got

        assert run_spmd(2, fn)[1] == [1.0, 2.0, 3.0]

    def test_dtype_preserved_via_bytes(self):
        def fn(comm):
            if comm.rank == 0:
                comm.Send(np.arange(4, dtype=np.int32), 1, tag=0)
                return None
            buf = np.empty(4, dtype=np.int32)
            comm.Recv(buf, 0, tag=0)
            return buf.tolist()

        assert run_spmd(2, fn)[1] == [0, 1, 2, 3]

    def test_size_mismatch_raises(self):
        def fn(comm):
            if comm.rank == 0:
                comm.Send(np.empty(4), 1, tag=0)
            else:
                buf = np.empty(8)
                comm.Recv(buf, 0, tag=0)

        with pytest.raises(RuntimeError):
            run_spmd(2, fn)

    def test_stats(self):
        fab = SimFabric(2)

        def fn(comm):
            if comm.rank == 0:
                comm.Send(np.empty(16), 1, tag=0)
            else:
                comm.Recv(np.empty(16), 0, tag=0)

        run_spmd(2, fn, fabric=fab)
        assert fab.stats[0].sends == 1
        assert fab.stats[0].bytes_sent == 128
        assert fab.stats[1].recvs == 1
        assert fab.total_stats().bytes_received == 128


class TestBarrierAndErrors:
    def test_barrier_synchronises(self):
        order = []

        def fn(comm):
            if comm.rank == 0:
                import time

                time.sleep(0.02)
            comm.Barrier()
            order.append(comm.rank)

        run_spmd(3, fn)
        assert len(order) == 3

    def test_rank_exception_propagates(self):
        def fn(comm):
            if comm.rank == 1:
                raise ValueError("boom")
            comm.Barrier()

        with pytest.raises(RuntimeError, match="rank 1"):
            run_spmd(2, fn)

    def test_invalid_rank_checked(self):
        def fn(comm):
            comm.Send(np.empty(1), 99, tag=0)

        with pytest.raises(RuntimeError):
            run_spmd(2, fn)


class TestCartesian:
    def test_coords_roundtrip(self):
        def fn(comm):
            cart = comm.Create_cart((2, 2, 2))
            return cart.coords_to_rank(cart.coords) == comm.rank

        assert all(run_spmd(8, fn))

    def test_axis1_fastest(self):
        def fn(comm):
            cart = comm.Create_cart((4, 2))
            return cart.coords

        res = run_spmd(8, fn)
        assert res[0] == (0, 0)
        assert res[1] == (1, 0)
        assert res[4] == (0, 1)

    def test_periodic_wrap(self):
        def fn(comm):
            cart = comm.Create_cart((2, 2, 2))
            return cart.neighbor_rank((-1, 0, 0))

        res = run_spmd(8, fn)
        assert res[0] == 1  # wraps

    def test_nonperiodic_edge(self):
        def fn(comm):
            cart = comm.Create_cart((2,), periods=[False])
            return cart.neighbor_rank((-1,))

        assert run_spmd(2, fn)[0] is None

    def test_wrong_total(self):
        def fn(comm):
            comm.Create_cart((3, 3))

        with pytest.raises(RuntimeError):
            run_spmd(8, fn)


class TestValidation:
    def test_fabric_size(self):
        with pytest.raises(ValueError):
            SimFabric(0)

    def test_comm_rank_bounds(self):
        fab = SimFabric(2)
        with pytest.raises(ValueError):
            SimComm(fab, 5)

    def test_recv_requires_ndarray(self):
        fab = SimFabric(1)
        comm = SimComm(fab, 0)
        with pytest.raises(TypeError):
            comm.Irecv([1, 2, 3], 0, 0)

    def test_recv_requires_contiguous(self):
        fab = SimFabric(1)
        comm = SimComm(fab, 0)
        arr = np.empty((4, 4))[:, ::2]
        with pytest.raises(ValueError):
            comm.Irecv(arr, 0, 0)
