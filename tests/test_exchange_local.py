"""LocalDomainGrid: aliased intra-node halos, no communication at all."""

import numpy as np
import pytest

import repro.exchange.local as local_mod
from repro.exchange.local import LocalDomainGrid
from repro.stencil.brick_kernels import apply_brick_stencil
from repro.stencil.reference import apply_periodic_reference
from repro.stencil.spec import CUBE125, SEVEN_POINT, star_stencil
from repro.vmem import SimArena, realmap_available


def _run_grid(grid_a, grid_b, spec, steps):
    grids = [grid_a, grid_b]
    src, dst = 0, 1
    for _ in range(steps):
        for idx in range(grid_a.ndomains):
            apply_brick_stencil(
                spec,
                grids[src].storages[idx],
                grids[dst].storages[idx],
                grids[src].info,
                grids[src].compute_slots,
            )
        grids[dst].flush_owned()
        grids[dst].sync()
        src, dst = dst, src
    return grids[src].extract_global()


def _make_pair(domain_dims, sub=(16, 16, 16), **kw):
    a = LocalDomainGrid(domain_dims, sub, (8, 8, 8), 8, **kw)
    b = LocalDomainGrid(domain_dims, sub, (8, 8, 8), 8, **kw)
    return a, b


class TestHaloFreeSimulation:
    @pytest.mark.parametrize("spec", [SEVEN_POINT, CUBE125])
    def test_2x2x2_domains_match_reference(self, spec):
        a, b = _make_pair((2, 2, 2))
        rng = np.random.default_rng(0)
        global_arr = rng.random((32, 32, 32))
        a.load_global(global_arr)
        got = _run_grid(a, b, spec, steps=2)
        ref = apply_periodic_reference(global_arr, spec, 2)
        np.testing.assert_array_equal(got, ref)
        a.close()
        b.close()

    def test_single_domain_periodic_self_alias(self):
        """domain_dims (1,1,1): ghosts alias the domain's own opposite
        surface -- periodic boundaries with zero exchange code."""
        a, b = _make_pair((1, 1, 1))
        rng = np.random.default_rng(1)
        global_arr = rng.random((16, 16, 16))
        a.load_global(global_arr)
        got = _run_grid(a, b, SEVEN_POINT, steps=3)
        ref = apply_periodic_reference(global_arr, SEVEN_POINT, 3)
        np.testing.assert_array_equal(got, ref)
        a.close()
        b.close()

    def test_anisotropic_domain_grid(self):
        a, b = _make_pair((4, 1, 2))
        rng = np.random.default_rng(2)
        global_arr = rng.random((32, 16, 64))  # numpy order axis3..axis1
        a.load_global(global_arr)
        got = _run_grid(a, b, SEVEN_POINT, steps=1)
        ref = apply_periodic_reference(global_arr, SEVEN_POINT, 1)
        np.testing.assert_array_equal(got, ref)
        a.close()
        b.close()

    def test_2d(self):
        spec = star_stencil(2, 1)
        a = LocalDomainGrid((2, 2), (16, 16), (4, 4), 4)
        b = LocalDomainGrid((2, 2), (16, 16), (4, 4), 4)
        rng = np.random.default_rng(3)
        global_arr = rng.random((32, 32))
        a.load_global(global_arr)
        got = _run_grid(a, b, spec, steps=2)
        ref = apply_periodic_reference(global_arr, spec, 2)
        np.testing.assert_array_equal(got, ref)
        a.close()
        b.close()


class TestAliasing:
    def test_zero_copy_on_real_arena(self):
        if not realmap_available():
            pytest.skip("real arena unavailable")
        grid = LocalDomainGrid((2, 1, 1), (16, 16, 16), (8, 8, 8), 8)
        assert grid.zero_copy
        # Writing a surface brick of domain 0 is instantly visible in the
        # matching ghost brick of domain 1, with no sync of any kind.
        asn = grid.assignment
        region = next(r for r in grid.decomp.layout if len(r) == 3)
        src_sec = asn.surface[region]
        ghost_sec = asn.ghost[(region.opposite(), region)]
        grid.storages[0].data[src_sec.start, :] = 123.0
        nbr = grid.neighbor_index(0, region.opposite())
        assert nbr == 1
        np.testing.assert_array_equal(
            grid.storages[1].data[ghost_sec.start, :], 123.0
        )
        grid.close()

    def test_ghosts_use_no_physical_memory(self):
        grid = LocalDomainGrid((2, 2, 2), (16, 16, 16), (8, 8, 8), 8)
        bb = grid.decomp.brick_bytes
        total_virtual = grid.assignment.total_slots * bb * grid.ndomains
        assert grid.arena.nbytes == grid.ndomains * grid.owned_bytes
        assert grid.arena.nbytes < total_virtual  # ghosts are aliases
        grid.close()

    def test_sim_arena_equivalent(self, monkeypatch):
        results = []
        for force_sim in (False, True):
            if force_sim:
                monkeypatch.setattr(
                    local_mod, "default_arena", lambda n, p: SimArena(n, p)
                )
            elif not realmap_available():
                pytest.skip("real arena unavailable")
            a, b = _make_pair((2, 1, 1))
            rng = np.random.default_rng(7)
            global_arr = rng.random((16, 16, 32))
            a.load_global(global_arr)
            results.append(_run_grid(a, b, SEVEN_POINT, 2))
            a.close()
            b.close()
        np.testing.assert_array_equal(results[0], results[1])


class TestValidation:
    def test_dim_mismatch(self):
        with pytest.raises(ValueError):
            LocalDomainGrid((2, 2), (16, 16, 16), (8, 8, 8), 8)

    def test_bad_domain_dims(self):
        with pytest.raises(ValueError):
            LocalDomainGrid((0, 1, 1), (16, 16, 16), (8, 8, 8), 8)

    def test_load_shape_check(self):
        grid = LocalDomainGrid((2, 1, 1), (16, 16, 16), (8, 8, 8), 8)
        with pytest.raises(ValueError):
            grid.load_global(np.zeros((8, 8, 8)))
        grid.close()

    def test_context_manager(self):
        with LocalDomainGrid((1, 1, 1), (16, 16, 16), (8, 8, 8), 8) as g:
            assert g.ndomains == 1
