"""Arena byte-range access: the zero-copy paths checkpointing and
re-bricking stand on.

``read_bytes``/``write_bytes`` need no page alignment (unlike
``make_view``), must be exact at every boundary, and writes into the
padding that page alignment introduces must never leak into neighboring
sections.
"""

import numpy as np
import pytest

from repro.brick.decomp import BrickDecomp
from repro.vmem import NumpyArena, default_arena

PAGE = 4096


@pytest.fixture(params=["numpy", "default"])
def arena(request):
    if request.param == "numpy":
        a = NumpyArena(2 * PAGE, PAGE)
    else:
        a = default_arena(2 * PAGE, PAGE)
    yield a
    a.close()


class TestReadBytes:
    def test_zero_length_reads_are_valid_everywhere(self, arena):
        for offset in (0, 1, PAGE, arena.nbytes):
            view = arena.read_bytes(offset, 0)
            assert view.dtype == np.uint8
            assert view.nbytes == 0

    def test_out_of_range_raises(self, arena):
        with pytest.raises(ValueError):
            arena.read_bytes(-1, 4)
        with pytest.raises(ValueError):
            arena.read_bytes(0, -1)
        with pytest.raises(ValueError):
            arena.read_bytes(arena.nbytes - 3, 4)
        with pytest.raises(ValueError):
            arena.read_bytes(arena.nbytes + 1, 0)

    def test_full_span_and_last_byte(self, arena):
        assert arena.read_bytes(0, arena.nbytes).nbytes == arena.nbytes
        assert arena.read_bytes(arena.nbytes - 1, 1).nbytes == 1

    def test_view_spanning_page_boundary_is_zero_copy(self, arena):
        """A read crossing a page edge aliases the arena: mutations
        through the view are visible to any other read of the range."""
        view = arena.read_bytes(PAGE - 4, 8)
        view[:] = np.arange(8, dtype=np.uint8)
        again = arena.read_bytes(PAGE - 4, 8)
        np.testing.assert_array_equal(again, np.arange(8, dtype=np.uint8))
        # The halves land on their respective pages.
        np.testing.assert_array_equal(
            arena.read_bytes(PAGE, 4), np.arange(4, 8, dtype=np.uint8)
        )


class TestWriteBytes:
    def test_roundtrip_at_unaligned_offset(self, arena):
        payload = bytes(range(32))
        arena.write_bytes(PAGE - 7, payload)
        got = arena.read_bytes(PAGE - 7, 32)
        np.testing.assert_array_equal(
            got, np.frombuffer(payload, dtype=np.uint8)
        )

    def test_zero_length_write_is_a_noop(self, arena):
        before = arena.read_bytes(0, arena.nbytes).copy()
        arena.write_bytes(5, b"")
        np.testing.assert_array_equal(
            arena.read_bytes(0, arena.nbytes), before
        )

    def test_write_past_the_end_raises_and_leaves_content_alone(self, arena):
        before = arena.read_bytes(0, arena.nbytes).copy()
        with pytest.raises(ValueError):
            arena.write_bytes(arena.nbytes - 2, b"1234")
        np.testing.assert_array_equal(
            arena.read_bytes(0, arena.nbytes), before
        )

    def test_write_only_touches_its_range(self, arena):
        arena.read_bytes(0, arena.nbytes)[:] = 0xAA
        arena.write_bytes(100, bytes(16))
        full = arena.read_bytes(0, arena.nbytes)
        assert (full[:100] == 0xAA).all()
        assert (full[100:116] == 0).all()
        assert (full[116:] == 0xAA).all()


class TestPaddedSlotBytes:
    """Slot-granular byte access over an aligned (padded) layout."""

    def _padded_storage(self):
        # 4^3 bricks of float64 are 512 bytes; page alignment then needs
        # 8 slots per aligned unit, so the layout has real padding gaps.
        decomp = BrickDecomp((16, 16, 16), (4, 4, 4), 4)
        storage, asn = decomp.mmap_alloc(PAGE)
        assert asn.alignment > 1 and asn.padding_slots > 0
        return storage, asn

    def test_slot_bytes_routes_through_the_arena(self):
        storage, _ = self._padded_storage()
        storage.slot_view(3, 1)[:] = 2.5
        off, length = storage.slot_range_bytes(3, 1)
        np.testing.assert_array_equal(
            storage.slot_bytes(3, 1), storage.arena.read_bytes(off, length)
        )

    def test_slot_range_outside_storage_raises(self):
        storage, asn = self._padded_storage()
        with pytest.raises(IndexError):
            storage.slot_range_bytes(asn.total_slots, 1)
        with pytest.raises(IndexError):
            storage.slot_range_bytes(-1, 1)

    def test_load_slot_bytes_rejects_size_mismatch(self):
        storage, _ = self._padded_storage()
        with pytest.raises(ValueError, match="bytes"):
            storage.load_slot_bytes(0, 1, bytes(storage.brick_bytes - 8))

    def test_write_into_padding_leaves_sections_untouched(self):
        """The alignment gaps between sections are real storage; writing
        there (as a full-span restore does) must not corrupt neighbors."""
        storage, asn = self._padded_storage()
        sections = sorted(asn.sections, key=lambda s: s.start)
        gap = next(
            (prev, cur)
            for prev, cur in zip(sections, sections[1:])
            if cur.start > prev.start + prev.nbricks
        )
        prev, cur = gap
        pad_slot = prev.start + prev.nbricks
        assert asn.is_padding(pad_slot)

        storage.data[:] = 1.0
        before_prev = storage.slot_bytes(prev.start, prev.nbricks).copy()
        before_cur = storage.slot_bytes(cur.start, cur.nbricks).copy()
        storage.load_slot_bytes(
            pad_slot, 1, bytes([0xFF]) * storage.brick_bytes
        )
        np.testing.assert_array_equal(
            storage.slot_bytes(prev.start, prev.nbricks), before_prev
        )
        np.testing.assert_array_equal(
            storage.slot_bytes(cur.start, cur.nbricks), before_cur
        )
        assert (storage.slot_bytes(pad_slot, 1) == 0xFF).all()

    def test_full_span_snapshot_roundtrip(self):
        """What the checkpoint writer does: snapshot every byte --
        padding included -- and restore it bit-identically."""
        storage, asn = self._padded_storage()
        rng = np.random.default_rng(0)
        storage.data[:] = rng.random(storage.data.shape)
        image = bytes(storage.slot_bytes(0, asn.total_slots))
        expected = storage.data.copy()
        storage.fill(0.0)
        storage.load_slot_bytes(0, asn.total_slots, image)
        np.testing.assert_array_equal(storage.data, expected)
