"""Region/neighbor enumeration and the send relation."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.layout.regions import (
    all_neighbors,
    all_regions,
    receiving_neighbors,
    region_brick_extent,
    sending_regions,
)
from repro.util.bitset import BitSet


class TestEnumeration:
    @pytest.mark.parametrize("ndim,count", [(1, 2), (2, 8), (3, 26), (4, 80)])
    def test_region_count(self, ndim, count):
        regions = all_regions(ndim)
        assert len(regions) == count == 3**ndim - 1
        assert len(set(regions)) == count

    def test_neighbors_equal_regions(self):
        assert all_neighbors(3) == all_regions(3)

    def test_invalid_ndim(self):
        with pytest.raises(ValueError):
            all_regions(0)

    def test_2d_lexicographic_matches_figure2(self):
        # Figure 2(L) numbering: 1..8 bottom row, sides, top row.
        vecs = [r.to_vector(2) for r in all_regions(2)]
        assert vecs == [
            (-1, -1), (0, -1), (1, -1),
            (-1, 0), (1, 0),
            (-1, 1), (0, 1), (1, 1),
        ]


class TestSendRelation:
    def test_corner_goes_to_three_in_2d(self):
        nbrs = receiving_neighbors(BitSet([-1, -2]))
        assert set(nbrs) == {BitSet([-1]), BitSet([-2]), BitSet([-1, -2])}

    def test_face_goes_to_one(self):
        assert receiving_neighbors(BitSet([1])) == [BitSet([1])]

    def test_3d_corner_goes_to_seven(self):
        assert len(receiving_neighbors(BitSet([1, 2, 3]))) == 7

    def test_empty_region_rejected(self):
        with pytest.raises(ValueError):
            receiving_neighbors(BitSet())

    def test_sending_regions_counts(self):
        # A face neighbor in 3-D receives 3^2 = 9 regions.
        assert len(sending_regions(BitSet([1]), 3)) == 9
        # An edge neighbor receives 3 regions; a corner exactly 1.
        assert len(sending_regions(BitSet([1, -2]), 3)) == 3
        assert len(sending_regions(BitSet([1, -2, 3]), 3)) == 1

    def test_sending_receiving_duality(self):
        for neighbor in all_neighbors(2):
            for region in sending_regions(neighbor, 2):
                assert neighbor in receiving_neighbors(region)

    def test_total_pairs_equals_eq3(self):
        for ndim in (1, 2, 3):
            pairs = sum(
                len(receiving_neighbors(r)) for r in all_regions(ndim)
            )
            assert pairs == 5**ndim - 3**ndim


class TestRegionExtent:
    def test_corner_edge_face_3d(self):
        grid = (6, 6, 6)
        assert region_brick_extent(BitSet([1, 2, 3]), grid, 1) == (1, 1, 1)
        assert region_brick_extent(BitSet([1, 2]), grid, 1) == (1, 1, 4)
        assert region_brick_extent(BitSet([3]), grid, 1) == (4, 4, 1)

    def test_width_2(self):
        assert region_brick_extent(BitSet([-1]), (8, 8), 2) == (2, 4)

    def test_degenerate_interior(self):
        # n == 2 * width: free axes have zero span.
        assert region_brick_extent(BitSet([1]), (2, 2), 1) == (1, 0)

    def test_too_small_grid(self):
        with pytest.raises(ValueError):
            region_brick_extent(BitSet([1]), (1, 4), 1)


@given(st.integers(1, 3), st.integers(1, 2), st.integers(2, 4))
def test_region_volumes_tile_the_surface_shell(ndim, width, interior):
    """Surface regions partition the shell between interior and boundary."""
    n = 2 * width + interior
    grid = (n,) * ndim
    shell = n**ndim - interior**ndim
    total = sum(
        math.prod(region_brick_extent(r, grid, width)) for r in all_regions(ndim)
    )
    assert total == shell
