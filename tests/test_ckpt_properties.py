"""Property tests: BrickStorage snapshots round-trip bit-exactly.

Serialize a storage through the checkpoint store and deserialize into a
freshly allocated one: every byte of every saved slot range must come
back identical, across dtypes, arena kinds, and in the presence of
padded slots that are never part of any chunk.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.brick.storage import BrickStorage
from repro.ckpt import CheckpointStore, ChunkSpec, DirtyTracker

DTYPES = ("float64", "float32", "int32", "int16")
ARENAS = ("plain", "mapped")


def _make_storage(arena_kind, nslots, brick_elems, dtype):
    alloc = (
        BrickStorage.allocate
        if arena_kind == "plain"
        else BrickStorage.mmap_alloc
    )
    return alloc(nslots, brick_elems, dtype=dtype)


def _fill(storage, seed):
    rng = np.random.default_rng(seed)
    raw = rng.integers(
        0, 256, size=storage.nslots * storage.brick_bytes, dtype=np.uint8
    )
    flat = storage.data.reshape(-1).view(np.uint8)
    flat[:] = raw
    return raw


def _specs(nslots, padded):
    """Carve the slot space into chunk ranges; *padded* slots (at the
    end) belong to no chunk, like MemMap alignment padding."""
    usable = nslots - padded
    mid = max(1, usable // 2)
    specs = [ChunkSpec("interior", 0, mid)]
    if usable - mid:
        specs.append(ChunkSpec("surface:a", mid, usable - mid))
    return specs


class TestSnapshotRoundTrip:
    @settings(max_examples=25, deadline=None)
    @given(
        st.sampled_from(DTYPES),
        st.sampled_from(ARENAS),
        st.integers(2, 9),
        st.integers(3, 65),
        st.integers(0, 2),
        st.integers(0, 2**31 - 1),
    )
    def test_serialize_deserialize_bit_exact(
        self, tmp_path_factory, dtype, arena_kind, nslots, brick_elems,
        padded, seed
    ):
        nslots += padded
        src = _make_storage(arena_kind, nslots, brick_elems, dtype)
        raw = _fill(src, seed)
        specs = _specs(nslots, padded)

        root = tmp_path_factory.mktemp("ckpt")
        store = CheckpointStore(root)
        chunks = [
            (s.name, src.slot_bytes(s.start_slot, s.nslots)) for s in specs
        ]
        man = store.save(0, 0, chunks, problem_key="prop")

        dst = _make_storage(arena_kind, nslots, brick_elems, dtype)
        sentinel = _fill(dst, seed + 1)
        state = store.read_state(0, man)
        for s in specs:
            dst.load_slot_bytes(s.start_slot, s.nslots, state[s.name])

        got = dst.data.reshape(-1).view(np.uint8)
        covered = sum(s.nslots for s in specs) * src.brick_bytes
        np.testing.assert_array_equal(got[:covered], raw[:covered])
        # Padded slots were not part of any chunk and must be untouched.
        np.testing.assert_array_equal(got[covered:], sentinel[covered:])
        # And the logical values agree, not just the bytes.
        np.testing.assert_array_equal(
            dst.data.reshape(-1)[: covered // src.dtype.itemsize],
            src.data.reshape(-1)[: covered // src.dtype.itemsize],
        )

    @settings(max_examples=15, deadline=None)
    @given(
        st.sampled_from(DTYPES),
        st.sampled_from(ARENAS),
        st.integers(0, 2**31 - 1),
        st.lists(st.integers(0, 5), min_size=0, max_size=4),
    )
    def test_incremental_round_trip_with_dirty_subset(
        self, tmp_path_factory, dtype, arena_kind, seed, dirty_slots
    ):
        nslots, brick_elems = 6, 16
        src = _make_storage(arena_kind, nslots, brick_elems, dtype)
        _fill(src, seed)
        specs = [ChunkSpec(f"s{i}", i, 1) for i in range(nslots)]

        store = CheckpointStore(tmp_path_factory.mktemp("ckpt"))
        chunks = lambda: [  # noqa: E731 - tiny local helper
            (s.name, src.slot_bytes(s.start_slot, s.nslots)) for s in specs
        ]
        parent = store.save(0, 0, chunks(), problem_key="prop")

        # Mutate exactly the dirty slots, then snapshot incrementally.
        tracker = DirtyTracker(nslots)
        rng = np.random.default_rng(seed + 1)
        for slot in set(dirty_slots):
            src.data[slot] = src.data[slot] + np.asarray(1, src.dtype)
            tracker.mark_slots([slot])
        man = store.save(
            0, 1, chunks(), mode="incr", problem_key="prop", parent=parent,
            dirty_names=tracker.names(specs),
        )

        dst = _make_storage(arena_kind, nslots, brick_elems, dtype)
        _fill(dst, rng.integers(0, 2**31))
        state = store.read_state(0, man)
        for s in specs:
            dst.load_slot_bytes(s.start_slot, s.nslots, state[s.name])
        np.testing.assert_array_equal(
            dst.data.reshape(-1).view(np.uint8),
            src.data.reshape(-1).view(np.uint8),
        )
        # Clean slots were referenced, not rewritten.
        assert man["data_bytes"] <= len(set(dirty_slots)) * src.brick_bytes
