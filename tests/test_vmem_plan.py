"""View planning: padding accounting and chunk coalescing."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.vmem.layout_plan import align_up, plan_view


class TestAlignUp:
    @pytest.mark.parametrize(
        "n,page,expected",
        [(0, 4096, 0), (1, 4096, 4096), (4096, 4096, 4096), (4097, 4096, 8192)],
    )
    def test_values(self, n, page, expected):
        assert align_up(n, page) == expected

    def test_invalid(self):
        with pytest.raises(ValueError):
            align_up(-1, 4096)
        with pytest.raises(ValueError):
            align_up(1, 0)


class TestPlanView:
    def test_exact_pages_no_padding(self):
        plan = plan_view([(0, 4096), (8192, 8192)], 4096)
        assert plan.padding_bytes == 0
        assert plan.mapped_bytes == plan.payload_bytes == 12288

    def test_padding_accounted(self):
        # A 512-byte region on 4 KiB pages wastes 7/8 of the page --
        # the paper's Section 4 example (4^3 doubles).
        plan = plan_view([(0, 512)], 4096)
        assert plan.mapped_bytes == 4096
        assert plan.padding_fraction == pytest.approx(7.0)

    def test_adjacent_chunks_coalesce(self):
        plan = plan_view([(0, 4096), (4096, 4096), (8192, 4096)], 4096)
        assert plan.mapping_count == 1
        assert plan.chunks == ((0, 12288),)

    def test_gap_prevents_coalescing(self):
        plan = plan_view([(0, 4096), (8192, 4096)], 4096)
        assert plan.mapping_count == 2

    def test_coalesce_disabled(self):
        plan = plan_view([(0, 4096), (4096, 4096)], 4096, coalesce=False)
        assert plan.mapping_count == 2
        assert plan.mapped_bytes == 8192

    def test_unaligned_offset_rejected(self):
        with pytest.raises(ValueError):
            plan_view([(100, 4096)], 4096)

    def test_zero_length_rejected(self):
        with pytest.raises(ValueError):
            plan_view([(0, 0)], 4096)

    def test_padding_after_short_region_breaks_coalescing_correctly(self):
        # region of 1000 bytes padded to 4096; next region at 4096 is
        # adjacent to the padded end, so they coalesce.
        plan = plan_view([(0, 1000), (4096, 4096)], 4096)
        assert plan.mapping_count == 1
        assert plan.payload_bytes == 5096
        assert plan.mapped_bytes == 8192


@given(
    st.lists(
        st.tuples(st.integers(0, 63), st.integers(1, 3 * 4096)),
        min_size=1,
        max_size=12,
    )
)
def test_plan_invariants(ranges):
    byte_ranges = [(p * 4096, n) for p, n in ranges]
    plan = plan_view(byte_ranges, 4096)
    assert plan.payload_bytes == sum(n for _, n in ranges)
    assert plan.mapped_bytes >= plan.payload_bytes
    assert plan.mapped_bytes % 4096 == 0
    assert plan.mapping_count <= len(ranges)
    # chunks are disjoint in the virtual window by construction and all
    # page aligned
    for off, length in plan.chunks:
        assert off % 4096 == 0 and length % 4096 == 0
