"""Hierarchical exchange: subdomains per rank, aliased + messaged halos."""

import math

import numpy as np
import pytest

from repro.exchange.hierarchical import RankDomainGrid
from repro.simmpi import run_spmd
from repro.stencil.brick_kernels import apply_brick_stencil
from repro.stencil.reference import apply_periodic_reference
from repro.stencil.spec import CUBE125, SEVEN_POINT

SUB = (16, 16, 16)


def _run_hierarchical(rank_dims, local_dims, spec, steps, seed=0):
    """Run on rank_dims ranks x local_dims subdomains each; return the
    assembled global result and per-rank message counts."""
    ndim = len(rank_dims)
    global_extent = tuple(
        s * r * l for s, r, l in zip(SUB, rank_dims, local_dims)
    )
    rng = np.random.default_rng(seed)
    global_arr = rng.random(tuple(reversed(global_extent)))
    nranks = math.prod(rank_dims)

    def fn(comm):
        cart = comm.Create_cart(rank_dims)
        grids = [
            RankDomainGrid(cart, local_dims, SUB, (8, 8, 8), 8)
            for _ in range(2)
        ]
        g0 = grids[0]
        # load: global subdomain coords = rank_coords * local + local_coords
        for idx in range(g0.nlocal):
            lc = g0._local_coords(idx)
            gc = [
                rc * ld + c
                for rc, ld, c in zip(cart.coords, local_dims, lc)
            ]
            lo = [c * s for c, s in zip(gc, SUB)]
            slc = tuple(
                slice(l, l + s) for l, s in zip(reversed(lo), reversed(SUB))
            )
            g0.load_owned(idx, global_arr[slc])
        g0.flush_owned()
        g0.sync()

        src, dst = 0, 1
        for _ in range(steps):
            grids[src].exchange()
            for idx in range(g0.nlocal):
                apply_brick_stencil(
                    spec,
                    grids[src].storages[idx],
                    grids[dst].storages[idx],
                    g0.info,
                    g0.compute_slots,
                )
            grids[dst].flush_owned()
            grids[dst].sync()
            src, dst = dst, src

        blocks = {}
        for idx in range(g0.nlocal):
            lc = g0._local_coords(idx)
            gc = tuple(
                rc * ld + c
                for rc, ld, c in zip(cart.coords, local_dims, lc)
            )
            blocks[gc] = grids[src].extract_owned(idx).copy()
        msgs = g0.messages_per_exchange
        for g in grids:
            g.close()
        return blocks, msgs

    outs = run_spmd(nranks, fn)
    result = np.empty(tuple(reversed(global_extent)))
    msg_counts = []
    for blocks, msgs in outs:
        msg_counts.append(msgs)
        for gc, block in blocks.items():
            lo = [c * s for c, s in zip(gc, SUB)]
            slc = tuple(
                slice(l, l + s) for l, s in zip(reversed(lo), reversed(SUB))
            )
            result[slc] = block
    ref = apply_periodic_reference(global_arr, spec, steps)
    return result, ref, msg_counts


class TestHierarchicalCorrectness:
    def test_2ranks_4domains_each(self):
        got, ref, _ = _run_hierarchical(
            (2, 1, 1), (1, 2, 2), SEVEN_POINT, steps=2
        )
        np.testing.assert_array_equal(got, ref)

    def test_8ranks_1domain_each(self):
        got, ref, _ = _run_hierarchical(
            (2, 2, 2), (1, 1, 1), SEVEN_POINT, steps=2
        )
        np.testing.assert_array_equal(got, ref)

    def test_2x2ranks_2x2domains(self):
        got, ref, _ = _run_hierarchical(
            (2, 2, 1), (2, 2, 1), SEVEN_POINT, steps=2
        )
        np.testing.assert_array_equal(got, ref)

    def test_cube125(self):
        got, ref, _ = _run_hierarchical(
            (2, 1, 1), (2, 2, 1), CUBE125, steps=1
        )
        np.testing.assert_array_equal(got, ref)

    def test_single_rank_all_aliased(self):
        got, ref, msgs = _run_hierarchical(
            (1, 1, 1), (2, 2, 2), SEVEN_POINT, steps=2
        )
        np.testing.assert_array_equal(got, ref)


class TestMessageEconomy:
    def test_intra_rank_halos_send_nothing(self):
        """With 2x2x2 subdomains on ONE rank (fully periodic), every halo
        is either an alias or a self-message along the wrapping axes; with
        the same subdomains spread over 8 ranks, every halo is a message.
        Hierarchical placement must send strictly less."""
        _, _, one_rank = _run_hierarchical(
            (1, 1, 1), (2, 2, 2), SEVEN_POINT, steps=1
        )
        _, _, eight_ranks = _run_hierarchical(
            (2, 2, 2), (1, 1, 1), SEVEN_POINT, steps=1
        )
        # 8 ranks x 1 domain: every domain sends its full 26-direction
        # neighborhood off-rank.
        assert all(m == eight_ranks[0] for m in eight_ranks)
        # 1 rank x 8 domains: wrapping directions still message (to self),
        # but strictly fewer than the fully-distributed case in total.
        assert one_rank[0] < 8 * eight_ranks[0]

    def test_mixed_placement_counts(self):
        _, _, msgs = _run_hierarchical(
            (2, 1, 1), (1, 2, 2), SEVEN_POINT, steps=1
        )
        # every rank has the same structural position here
        assert len(set(msgs)) == 1
        assert msgs[0] > 0
