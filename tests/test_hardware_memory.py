"""Memory model: STREAM with pattern penalties."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hardware.memory import AccessPattern, MemoryModel


@pytest.fixture
def mem():
    return MemoryModel(stream_bw=100e9, seg_overhead=50e-9)


class TestPatternClassification:
    def test_thresholds(self):
        assert AccessPattern.classify(8) is AccessPattern.STRIDED
        assert AccessPattern.classify(64) is AccessPattern.STANZA
        assert AccessPattern.classify(1 << 16) is AccessPattern.UNIT

    def test_boundaries(self):
        assert AccessPattern.classify(31) is AccessPattern.STRIDED
        assert AccessPattern.classify(32) is AccessPattern.STANZA
        assert AccessPattern.classify(4096) is AccessPattern.UNIT


class TestCopyTime:
    def test_unit_stride(self, mem):
        # 1 GB moved (read+write) at full stream bw.
        assert mem.copy_time(1 << 30) == pytest.approx(2 * (1 << 30) / 100e9)

    def test_pattern_ordering(self, mem):
        n = 1 << 20
        unit = mem.copy_time(n, AccessPattern.UNIT)
        stanza = mem.copy_time(n, AccessPattern.STANZA)
        strided = mem.copy_time(n, AccessPattern.STRIDED)
        assert unit < stanza < strided

    def test_zero(self, mem):
        assert mem.copy_time(0) == 0.0

    def test_negative(self, mem):
        with pytest.raises(ValueError):
            mem.copy_time(-1)


class TestPackTime:
    def test_empty(self, mem):
        assert mem.pack_time(0, 0, 8) == 0.0

    def test_segment_overhead_dominates_tiny_packs(self, mem):
        # 1000 runs of 8 doubles each.
        t = mem.pack_time(8000 * 8, 1000, 8)
        assert t >= 1000 * mem.seg_overhead

    def test_strided_packs_slower_per_byte(self, mem):
        nbytes = 1 << 24
        long_runs = mem.pack_time(nbytes, 16, (nbytes // 16) // 8)
        short_runs = mem.pack_time(nbytes, nbytes // 64, 8)
        assert short_runs > 2 * long_runs

    def test_negative_segments(self, mem):
        with pytest.raises(ValueError):
            mem.pack_time(8, -1, 8)


class TestValidation:
    def test_bad_bw(self):
        with pytest.raises(ValueError):
            MemoryModel(stream_bw=0)

    def test_bad_derate(self):
        with pytest.raises(ValueError):
            MemoryModel(stream_bw=1e9, derate={AccessPattern.UNIT: 1.5,
                                               AccessPattern.STANZA: 0.5,
                                               AccessPattern.STRIDED: 0.1})


@given(st.integers(0, 1 << 26), st.integers(1, 10000))
def test_pack_time_nonnegative_monotone(nbytes, nsegments):
    mem = MemoryModel(stream_bw=100e9)
    t = mem.pack_time(nbytes, nsegments, 8)
    assert t >= 0.0
    assert mem.pack_time(nbytes, nsegments + 1, 8) >= t
