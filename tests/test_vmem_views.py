"""Stitched views: real mmap vs simulated page table.

The critical property: both implementations expose identical data through
identical interfaces, so every exchange result is independent of which one
backs the storage.  The real one must additionally prove genuine aliasing
(no copies).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.vmem import SimArena, default_arena, realmap_available
from repro.vmem.arena import NumpyArena

PAGE = 4096
NPAGES = 32

pytestmark = []


def _filled_arena(make):
    arena = make(NPAGES * PAGE, PAGE)
    per = PAGE // 8
    phys = arena.buffer.view(np.float64)
    for p in range(NPAGES):
        phys[p * per : (p + 1) * per] = float(p)
    return arena


@pytest.fixture(params=["sim", "real"])
def arena(request):
    if request.param == "real":
        if not realmap_available():
            pytest.skip("memfd/MAP_FIXED unavailable")
        a = _filled_arena(lambda n, p: default_arena(n, p))
        if isinstance(a, SimArena):
            pytest.skip("default arena is not the real one here")
    else:
        a = _filled_arena(SimArena)
    yield a
    a.close()


class TestViewContents:
    def test_reordered_pages(self, arena):
        v = arena.make_view([(5 * PAGE, PAGE), (2 * PAGE, PAGE), (9 * PAGE, PAGE)])
        a = v.array(np.float64)
        per = PAGE // 8
        assert a[0] == 5.0 and a[per] == 2.0 and a[2 * per] == 9.0
        assert a.size == 3 * per

    def test_repeated_mapping(self, arena):
        """The same physical page may appear in several views/positions --
        exactly how overlapping surface regions are sent to multiple
        neighbors with one copy of the data."""
        v = arena.make_view([(3 * PAGE, PAGE), (3 * PAGE, PAGE)])
        a = v.array(np.float64)
        per = PAGE // 8
        assert np.array_equal(a[:per], a[per:])

    def test_write_through_view_visible_in_arena(self, arena):
        v = arena.make_view([(7 * PAGE, PAGE)])
        a = v.array(np.float64)
        a[3] = 123.5
        v.flush()
        assert arena.buffer.view(np.float64)[7 * PAGE // 8 + 3] == 123.5

    def test_arena_write_visible_in_view(self, arena):
        v = arena.make_view([(4 * PAGE, PAGE)])
        arena.buffer.view(np.float64)[4 * PAGE // 8] = -7.0
        v.refresh()
        assert v.array(np.float64)[0] == -7.0

    def test_multi_page_chunk(self, arena):
        v = arena.make_view([(2 * PAGE, 3 * PAGE)])
        a = v.array(np.float64)
        per = PAGE // 8
        assert a[0] == 2.0 and a[per] == 3.0 and a[2 * per] == 4.0


class TestViewValidation:
    def test_unaligned_offset_rejected(self, arena):
        with pytest.raises(ValueError):
            arena.make_view([(100, PAGE)])

    def test_unaligned_length_rejected(self, arena):
        with pytest.raises(ValueError):
            arena.make_view([(0, 100)])

    def test_out_of_bounds_rejected(self, arena):
        with pytest.raises(ValueError):
            arena.make_view([(NPAGES * PAGE, PAGE)])

    def test_empty_rejected(self, arena):
        with pytest.raises(ValueError):
            arena.make_view([])

    def test_closed_view_refuses_access(self, arena):
        v = arena.make_view([(0, PAGE)])
        v.close()
        with pytest.raises(ValueError):
            v.array()


class TestRealAliasing:
    def test_zero_copy_no_flush_needed(self):
        if not realmap_available():
            pytest.skip("memfd/MAP_FIXED unavailable")
        arena = _filled_arena(default_arena)
        try:
            v = arena.make_view([(1 * PAGE, PAGE)])
            assert v.zero_copy
            a = v.array(np.float64)
            # No refresh: arena writes appear instantly.
            arena.buffer.view(np.float64)[PAGE // 8 + 5] = 42.0
            assert a[5] == 42.0
            # No flush: view writes appear instantly.
            a[6] = 43.0
            assert arena.buffer.view(np.float64)[PAGE // 8 + 6] == 43.0
        finally:
            arena.close()

    def test_sim_is_not_aliased(self):
        arena = _filled_arena(SimArena)
        v = arena.make_view([(0, PAGE)])
        assert not v.zero_copy
        arena.buffer.view(np.float64)[0] = 99.0
        assert v.array(np.float64)[0] != 99.0  # until refresh
        v.refresh()
        assert v.array(np.float64)[0] == 99.0
        arena.close()


class TestEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(
        st.lists(
            st.tuples(st.integers(0, NPAGES - 2), st.integers(1, 2)),
            min_size=1,
            max_size=8,
        ),
        st.integers(0, 2**32 - 1),
    )
    def test_real_and_sim_views_identical(self, chunks, seed):
        """Property: any chunk list yields identical view contents on both
        arenas; write-back is additionally identical when no physical page
        is mapped twice.  (Writing *different* values through two aliases
        of one page is a data race with unspecified order even on the real
        mapping -- glibc may copy in either direction -- and the exchange
        never does it: recv views map disjoint ghost pages.)"""
        if not realmap_available():
            pytest.skip("memfd/MAP_FIXED unavailable")
        rng = np.random.default_rng(seed)
        content = rng.random(NPAGES * PAGE // 8)
        byte_chunks = [(p * PAGE, n * PAGE) for p, n in chunks]
        covered = [set(range(p, p + n)) for p, n in chunks]
        has_overlap = sum(len(c) for c in covered) != len(set().union(*covered))

        results = []
        for make in (default_arena, SimArena):
            arena = make(NPAGES * PAGE, PAGE)
            arena.buffer.view(np.float64)[:] = content
            v = arena.make_view(byte_chunks)
            v.refresh()
            a = v.array(np.float64).copy()
            phys = None
            if not has_overlap:
                # write a pattern through the view, read the arena back
                v.array(np.float64)[:] = np.arange(
                    v.nbytes // 8, dtype=np.float64
                )
                v.flush()
                phys = arena.buffer.view(np.float64).copy()
            results.append((a, phys))
            arena.close()
        (a_real, phys_real), (a_sim, phys_sim) = results
        np.testing.assert_array_equal(a_real, a_sim)
        if not has_overlap:
            np.testing.assert_array_equal(phys_real, phys_sim)


class TestArenaBasics:
    def test_numpy_arena_cannot_map(self):
        arena = NumpyArena(4 * PAGE, PAGE)
        with pytest.raises(NotImplementedError):
            arena.make_view([(0, PAGE)])

    def test_size_must_be_page_multiple(self):
        with pytest.raises(ValueError):
            NumpyArena(PAGE + 1, PAGE)

    def test_mapping_count(self):
        arena = SimArena(8 * PAGE, PAGE)
        assert arena.mapping_count == 1
        arena.make_view([(0, PAGE), (2 * PAGE, PAGE)])
        assert arena.mapping_count == 3
        arena.close()
        assert arena.mapping_count == 1
