"""Shared fixtures for the test suite."""

import numpy as np
import pytest

from repro.brick.decomp import BrickDecomp
from repro.core.problem import StencilProblem
from repro.hardware.profiles import generic_host, summit_v100, theta_knl
from repro.stencil.spec import SEVEN_POINT, star_stencil


@pytest.fixture
def theta():
    return theta_knl()


@pytest.fixture
def summit():
    return summit_v100()


@pytest.fixture
def host():
    return generic_host()


@pytest.fixture
def small_decomp():
    """32^3 subdomain, 8^3 bricks, ghost 8: grid 4^3 with real interior."""
    return BrickDecomp((32, 32, 32), (8, 8, 8), 8)


@pytest.fixture
def tiny_decomp():
    """16^3 subdomain: degenerate grid 2^3 (all bricks are corners)."""
    return BrickDecomp((16, 16, 16), (8, 8, 8), 8)


@pytest.fixture
def decomp2d():
    """2-D decomposition: 32x32 elements, 4x4 bricks, ghost 4."""
    return BrickDecomp((32, 32), (4, 4), 4)


@pytest.fixture
def small_problem():
    """8 ranks over a 32^3 periodic cube (16^3 subdomains)."""
    return StencilProblem(
        global_extent=(32, 32, 32),
        rank_dims=(2, 2, 2),
        stencil=SEVEN_POINT,
        brick_dim=(8, 8, 8),
        ghost=8,
    )


@pytest.fixture
def medium_problem():
    """8 ranks over a 64^3 periodic cube (32^3 subdomains, real interior)."""
    return StencilProblem(
        global_extent=(64, 64, 64),
        rank_dims=(2, 2, 2),
        stencil=SEVEN_POINT,
        brick_dim=(8, 8, 8),
        ghost=8,
    )


@pytest.fixture
def star5_2d():
    return star_stencil(2, 1, name="5pt-2d")
