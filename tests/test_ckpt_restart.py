"""Crash-resume acceptance: restarted runs are bit-identical to
uninterrupted ones, for every exchanger family, over several fault seeds.
"""

import numpy as np
import pytest

from repro.ckpt import CheckpointStore
from repro.core.driver import run_executed
from repro.core.problem import StencilProblem
from repro.faults import FaultPlan
from repro.stencil.spec import SEVEN_POINT

STEPS = 4
CRASH_STEP = 2


def _problem():
    return StencilProblem(
        global_extent=(32, 32, 16),
        rank_dims=(2, 2, 1),
        stencil=SEVEN_POINT,
        brick_dim=(8, 8, 8),
        ghost=8,
    )


_BASELINES = {}


def _baseline(method):
    if method not in _BASELINES:
        _BASELINES[method] = run_executed(
            _problem(), method, timesteps=STEPS, seed=0
        )
    return _BASELINES[method]


class TestCrashResumeBitExact:
    @pytest.mark.parametrize("method", ["basic", "layout", "memmap"])
    @pytest.mark.parametrize("fault_seed", [1, 2, 3])
    def test_resumed_run_matches_uninterrupted(
        self, tmp_path, method, fault_seed
    ):
        problem = _problem()
        base = _baseline(method)
        crash_rank = 1 + fault_seed % (problem.nranks - 1)
        plan = FaultPlan(seed=fault_seed, crashes=((crash_rank, CRASH_STEP),))
        run = run_executed(
            problem, method, timesteps=STEPS, seed=0, fault_plan=plan,
            checkpoint_dir=tmp_path, checkpoint_period=1,
            fabric_timeout=15.0,
        )
        assert run.restarts == 1
        assert run.resumed_epoch >= 0
        assert run.faults["events"].get("injected_crash") == 1
        assert run.faults["events"].get("restarted") == 1
        # Final fields bit-identical.
        np.testing.assert_array_equal(run.global_result, base.global_result)
        # Modelled RankMetrics bit-identical, rank by rank.
        for r0, r1 in zip(base.metrics.ranks, run.metrics.ranks):
            assert r0.totals.as_dict() == r1.totals.as_dict()
        # Communication accounting survives the restart (counters are
        # checkpointed and replayed exactly).
        assert run.messages_per_rank == base.messages_per_rank
        assert run.wire_bytes_per_rank == base.wire_bytes_per_rank
        assert run.final_method == base.final_method

    def test_memmap_views_rebuilt_over_restored_arena(self, tmp_path):
        problem = _problem()
        base = _baseline("memmap")
        plan = FaultPlan(seed=7, crashes=((2, CRASH_STEP),))
        run = run_executed(
            problem, "memmap", timesteps=STEPS, seed=0, fault_plan=plan,
            checkpoint_dir=tmp_path, checkpoint_period=1,
            fabric_timeout=15.0,
        )
        assert run.restarts == 1
        # The relaunched world rebuilt its stitched views from the
        # restored arena: mappings exist and the answer is exact.
        assert run.mapping_count == base.mapping_count > 0
        np.testing.assert_array_equal(run.global_result, base.global_result)


class TestResumeSemantics:
    def test_cold_resume_continues_run(self, tmp_path):
        problem = _problem()
        base = _baseline("layout")
        run_executed(
            problem, "layout", timesteps=CRASH_STEP, seed=0,
            checkpoint_dir=tmp_path, checkpoint_period=1,
        )
        resumed = run_executed(
            problem, "layout", timesteps=STEPS, seed=0,
            checkpoint_dir=tmp_path, checkpoint_period=1, resume=True,
        )
        assert resumed.resumed_epoch == CRASH_STEP - 1
        np.testing.assert_array_equal(
            resumed.global_result, base.global_result
        )

    def test_resume_from_empty_store_starts_fresh(self, tmp_path):
        problem = _problem()
        base = _baseline("layout")
        run = run_executed(
            problem, "layout", timesteps=STEPS, seed=0,
            checkpoint_dir=tmp_path, resume=True,
        )
        assert run.resumed_epoch == -1
        np.testing.assert_array_equal(run.global_result, base.global_result)

    def test_resume_without_store_rejected(self):
        with pytest.raises(ValueError, match="checkpoint_dir"):
            run_executed(_problem(), "layout", timesteps=1, resume=True)

    def test_incremental_writes_fewer_bytes_than_full(self, tmp_path):
        # Ghost-expansion workload: with exchange period 2, the cycle
        # position that skips the exchange leaves outer ghost sections
        # untouched, so incremental snapshots reference them instead of
        # rewriting.
        problem = StencilProblem(
            global_extent=(32, 32, 32),
            rank_dims=(2, 2, 2),
            stencil=SEVEN_POINT,
            brick_dim=(4, 4, 4),
            ghost=8,
        )
        bytes_by_mode = {}
        for mode in ("full", "incr"):
            run = run_executed(
                problem, "layout", timesteps=STEPS, seed=0,
                exchange_period=2, checkpoint_dir=tmp_path / mode,
                checkpoint_period=1, checkpoint_mode=mode,
            )
            bytes_by_mode[mode] = run.checkpoint_bytes
        assert bytes_by_mode["incr"] < bytes_by_mode["full"]

    def test_array_method_crash_resume(self, tmp_path):
        problem = _problem()
        base = run_executed(problem, "yask", timesteps=STEPS, seed=0)
        plan = FaultPlan(seed=2, crashes=((1, CRASH_STEP),))
        run = run_executed(
            problem, "yask", timesteps=STEPS, seed=0, fault_plan=plan,
            checkpoint_dir=tmp_path, checkpoint_period=1,
            fabric_timeout=15.0,
        )
        assert run.restarts == 1
        np.testing.assert_array_equal(run.global_result, base.global_result)

    def test_multiple_scheduled_crashes_all_survived(self, tmp_path):
        problem = _problem()
        base = _baseline("layout")
        plan = FaultPlan(seed=4, crashes=((1, 1), (2, 3)))
        run = run_executed(
            problem, "layout", timesteps=STEPS, seed=0, fault_plan=plan,
            checkpoint_dir=tmp_path, checkpoint_period=1,
            fabric_timeout=15.0,
        )
        assert run.restarts == 2
        np.testing.assert_array_equal(run.global_result, base.global_result)

    def test_store_is_consistent_after_survived_crash(self, tmp_path):
        problem = _problem()
        plan = FaultPlan(seed=1, crashes=((1, CRASH_STEP),))
        run_executed(
            problem, "layout", timesteps=STEPS, seed=0, fault_plan=plan,
            checkpoint_dir=tmp_path, checkpoint_period=1,
            fabric_timeout=15.0,
        )
        store = CheckpointStore(tmp_path)
        assert store.ranks() == list(range(problem.nranks))
        assert store.latest_consistent(problem.nranks) >= CRASH_STEP
        assert all(row["ok"] for row in store.verify())
