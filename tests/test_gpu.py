"""Simulated GPU device and transport strategies."""

import pytest

from repro.exchange.schedule import MessageSpec
from repro.gpu.device import DeviceBuffer, Residency, SimDevice
from repro.gpu.transports import (
    CudaAwareTransport,
    StagedTransport,
    UnifiedMemoryTransport,
)
from repro.hardware.gpu import GpuModel
from repro.hardware.network import NetworkModel
from repro.util.bitset import BitSet


@pytest.fixture
def gpu():
    return GpuModel()


@pytest.fixture
def net():
    return NetworkModel(1.5e-6, 23e9, 65536, 1e-6, 1e-6)


def spec(nbytes, wire=None, nmappings=1):
    return MessageSpec(
        BitSet([1]), nbytes, wire or nbytes, nmappings=nmappings
    )


class TestDevice:
    def test_managed_starts_on_host(self, gpu):
        dev = SimDevice(gpu)
        buf = dev.alloc(4 * gpu.page_size)
        assert buf.resident_fraction(Residency.HOST) == 1.0

    def test_first_touch_faults_then_free(self, gpu):
        dev = SimDevice(gpu)
        buf = dev.alloc(4 * gpu.page_size)
        cost1 = buf.touch(Residency.DEVICE)
        assert cost1 > 0
        cost2 = buf.touch(Residency.DEVICE)
        assert cost2 == 0.0
        assert buf.resident_fraction(Residency.DEVICE) == 1.0

    def test_partial_touch(self, gpu):
        dev = SimDevice(gpu)
        buf = dev.alloc(4 * gpu.page_size)
        buf.touch(Residency.DEVICE, 0, gpu.page_size)
        assert buf.resident_fraction(Residency.DEVICE) == 0.25

    def test_ping_pong_costs_both_ways(self, gpu):
        dev = SimDevice(gpu)
        buf = dev.alloc(gpu.page_size)
        buf.touch(Residency.DEVICE)
        assert buf.touch(Residency.HOST) > 0

    def test_device_memory_host_access_forbidden(self, gpu):
        dev = SimDevice(gpu)
        buf = dev.alloc(gpu.page_size, kind="device")
        with pytest.raises(RuntimeError):
            buf.touch(Residency.HOST)
        assert buf.touch(Residency.DEVICE) == 0.0

    def test_range_validation(self, gpu):
        dev = SimDevice(gpu)
        buf = dev.alloc(gpu.page_size)
        with pytest.raises(ValueError):
            buf.touch(Residency.DEVICE, 0, 2 * gpu.page_size)

    def test_bad_kind(self, gpu):
        with pytest.raises(ValueError):
            DeviceBuffer(SimDevice(gpu), 16, kind="weird")


class TestCudaAware:
    def test_deratess_bandwidth_only(self, net, gpu):
        t = CudaAwareTransport(net, gpu)
        assert t.network().bw_peak == pytest.approx(net.bw_peak * 0.95)
        assert t.network().alpha == net.alpha

    def test_no_extra_costs(self, net, gpu):
        t = CudaAwareTransport(net, gpu)
        msgs = [spec(1 << 20)]
        assert t.extra_wait(msgs, msgs) == 0.0
        assert t.move(msgs, msgs) == 0.0
        assert t.compute_penalty(msgs) == 0.0

    def test_memmap_unsupported(self, net, gpu):
        assert not CudaAwareTransport(net, gpu).supports_memmap


class TestUnifiedMemory:
    def test_supports_memmap(self, net, gpu):
        assert UnifiedMemoryTransport(net, gpu).supports_memmap

    def test_extra_wait_scales_with_pages(self, net, gpu):
        t = UnifiedMemoryTransport(net, gpu)
        small = t.extra_wait([spec(gpu.page_size)], [])
        big = t.extra_wait([spec(16 * gpu.page_size)], [])
        assert big > 4 * small

    def test_aligned_cheaper_than_unaligned(self, net, gpu):
        """Figure 15: page-aligned (MemMap) regions fault cleanly;
        unaligned (Layout_UM) ones straddle extra pages."""
        t = UnifiedMemoryTransport(net, gpu)
        aligned = t.compute_penalty([spec(gpu.page_size, gpu.page_size)])
        unaligned = t.compute_penalty(
            [spec(gpu.page_size - 512, gpu.page_size - 512)]
        )
        assert unaligned > aligned

    def test_no_explicit_move(self, net, gpu):
        t = UnifiedMemoryTransport(net, gpu)
        assert t.move([spec(1 << 20)], [spec(1 << 20)]) == 0.0


class TestStaged:
    def test_move_cost_both_directions(self, net, gpu):
        t = StagedTransport(net, gpu)
        msgs = [spec(1 << 20)] * 4
        m = t.move(msgs, msgs)
        assert m == pytest.approx(2 * gpu.staged_copy_time(4 << 20, 4))

    def test_network_undeterred(self, net, gpu):
        assert StagedTransport(net, gpu).network() is net
