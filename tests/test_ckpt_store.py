"""Checkpoint store unit tests: commits, incrementals, corruption, prune."""

import json

import numpy as np
import pytest

from repro.ckpt import (
    CheckpointCorruptionError,
    CheckpointError,
    CheckpointStore,
    negotiate_epoch,
)
from repro.simmpi.collectives import allreduce
from repro.simmpi.launcher import run_spmd


def _chunks(seed, sizes):
    rng = np.random.default_rng(seed)
    return [
        (name, rng.integers(0, 256, size=n, dtype=np.uint8))
        for name, n in sizes.items()
    ]


SIZES = {"interior": 512, "surface:a": 128, "surface:b": 128, "ghost:c": 64}


class TestCommit:
    def test_full_round_trip(self, tmp_path):
        store = CheckpointStore(tmp_path)
        chunks = _chunks(0, SIZES)
        man = store.save(0, 0, chunks, meta={"step": 0}, problem_key="k")
        assert man["mode"] == "full"
        assert man["data_bytes"] == sum(SIZES.values())
        state = store.read_state(0, store.manifest(0, 0))
        for name, buf in chunks:
            assert state[name] == buf.tobytes()
        assert store.manifest(0, 0)["meta"] == {"step": 0}

    def test_commit_leaves_no_temp_files(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save(0, 0, _chunks(0, SIZES))
        assert not list(tmp_path.rglob("*.tmp"))

    def test_manifest_is_the_commit_point(self, tmp_path):
        # Data without a manifest (a simulated mid-commit crash) is
        # invisible: the epoch is not listed and not negotiable.
        store = CheckpointStore(tmp_path)
        store.save(0, 0, _chunks(0, SIZES))
        store.data_path(0, 1).parent.mkdir(exist_ok=True)
        store.data_path(0, 1).write_bytes(b"half-written")
        assert store.epochs(0) == [0]
        assert store.verified_epochs(0) == [0]

    def test_meta_jsonified(self, tmp_path):
        store = CheckpointStore(tmp_path)
        meta = {"step": np.int64(3), "vals": (np.float64(1.5), 2)}
        store.save(0, 0, _chunks(0, SIZES), meta=meta)
        doc = json.loads(store.manifest_path(0, 0).read_text())
        assert doc["meta"] == {"step": 3, "vals": [1.5, 2]}

    def test_bad_inputs(self, tmp_path):
        store = CheckpointStore(tmp_path)
        with pytest.raises(CheckpointError, match="mode"):
            store.save(0, 0, [], mode="weird")
        with pytest.raises(CheckpointError, match="epoch"):
            store.save(0, -1, [])
        with pytest.raises(CheckpointError, match="no manifest"):
            store.manifest(0, 42)


class TestIncremental:
    def test_surface_only_change_writes_strictly_fewer_bytes(self, tmp_path):
        store = CheckpointStore(tmp_path)
        chunks = _chunks(0, SIZES)
        parent = store.save(0, 0, chunks, problem_key="k")
        # Workload where only surface bricks change between periods.
        changed = []
        for name, buf in chunks:
            buf = buf.copy()
            if name.startswith("surface:"):
                buf[0] ^= 0xFF
            changed.append((name, buf))
        man = store.save(
            0, 1, changed, mode="incr", problem_key="k", parent=parent,
            dirty_names=[n for n, _ in changed if n.startswith("surface:")],
        )
        assert man["mode"] == "incr"
        full_bytes = parent["data_bytes"]
        assert 0 < man["data_bytes"] < full_bytes
        assert man["data_bytes"] == SIZES["surface:a"] + SIZES["surface:b"]
        # Unchanged chunks are references to the epoch that wrote them.
        by_name = {c["name"]: c for c in man["chunks"]}
        assert by_name["interior"]["epoch"] == 0
        assert by_name["ghost:c"]["epoch"] == 0
        assert by_name["surface:a"]["epoch"] == 1
        # The reconstructed state follows references transparently.
        state = store.read_state(0, man)
        for name, buf in changed:
            assert state[name] == buf.tobytes()

    def test_crc_dedup_inside_dirty_set(self, tmp_path):
        # A chunk marked dirty whose bytes did not actually change is
        # still deduplicated by CRC comparison against the parent.
        store = CheckpointStore(tmp_path)
        chunks = _chunks(0, SIZES)
        parent = store.save(0, 0, chunks, problem_key="k")
        man = store.save(
            0, 1, chunks, mode="incr", problem_key="k", parent=parent,
            dirty_names=[n for n, _ in chunks],
        )
        assert man["data_bytes"] == 0
        assert all(c["epoch"] == 0 for c in man["chunks"])

    def test_parentless_incremental_degrades_to_full(self, tmp_path):
        store = CheckpointStore(tmp_path)
        man = store.save(0, 0, _chunks(0, SIZES), mode="incr")
        assert man["mode"] == "full"

    def test_incremental_rejects_foreign_parent(self, tmp_path):
        store = CheckpointStore(tmp_path)
        parent = store.save(0, 0, _chunks(0, SIZES), problem_key="run-a")
        with pytest.raises(CheckpointError, match="different run"):
            store.save(
                0, 1, _chunks(1, SIZES), mode="incr", problem_key="run-b",
                parent=parent,
            )


class TestCorruption:
    def test_single_flipped_byte_detected_in_any_chunk(self, tmp_path):
        offsets = {}
        store = CheckpointStore(tmp_path)
        man = store.save(0, 0, _chunks(0, SIZES), problem_key="k")
        for entry in man["chunks"]:
            # Flip one byte in the middle of this chunk, check detection,
            # then restore the original byte for the next round.
            offsets[entry["name"]] = entry["offset"] + entry["nbytes"] // 2
        path = store.data_path(0, 0)
        pristine = path.read_bytes()
        for name, off in offsets.items():
            blob = bytearray(pristine)
            blob[off] ^= 0x01
            path.write_bytes(bytes(blob))
            with pytest.raises(CheckpointCorruptionError, match="CRC32"):
                store.read_state(0, store.manifest(0, 0))
            rows = store.verify()
            assert [r["ok"] for r in rows] == [False], name
            assert store.verified_epochs(0) == []
        path.write_bytes(pristine)
        assert store.verified_epochs(0) == [0]

    def test_truncated_data_detected(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save(0, 0, _chunks(0, SIZES))
        path = store.data_path(0, 0)
        path.write_bytes(path.read_bytes()[:-10])
        with pytest.raises(CheckpointCorruptionError, match="truncated"):
            store.read_state(0, store.manifest(0, 0))

    def test_missing_referenced_data_file_detected(self, tmp_path):
        store = CheckpointStore(tmp_path)
        parent = store.save(0, 0, _chunks(0, SIZES), problem_key="k")
        man = store.save(
            0, 1, _chunks(0, SIZES), mode="incr", problem_key="k",
            parent=parent, dirty_names=[],
        )
        store.data_path(0, 0).unlink()
        with pytest.raises(CheckpointCorruptionError, match="missing data"):
            store.read_state(0, man)

    def test_manifest_identity_mismatch_detected(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save(0, 0, _chunks(0, SIZES))
        doc = json.loads(store.manifest_path(0, 0).read_text())
        doc["rank"] = 5
        store.manifest_path(0, 0).write_text(json.dumps(doc))
        with pytest.raises(CheckpointCorruptionError, match="identifies"):
            store.manifest(0, 0)


class TestMaintenance:
    def test_prune_keeps_reference_closure(self, tmp_path):
        store = CheckpointStore(tmp_path)
        chunks = _chunks(0, SIZES)
        man = store.save(0, 0, chunks, problem_key="k")
        for epoch in (1, 2, 3):
            man = store.save(
                0, epoch, chunks, mode="incr", problem_key="k", parent=man,
                dirty_names=[],
            )
        removed = store.prune(keep=1)
        # Epoch 3 is kept; its references point at epoch 0 (the writing
        # epoch), which must survive; 1 and 2 go.
        assert store.epochs(0) == [0, 3]
        assert removed
        state = store.read_state(0, store.manifest(0, 3))
        for name, buf in chunks:
            assert state[name] == buf.tobytes()

    def test_prune_requires_keep(self, tmp_path):
        with pytest.raises(CheckpointError, match="at least one"):
            CheckpointStore(tmp_path).prune(keep=0)

    def test_verified_epochs_filter_by_problem_key(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save(0, 0, _chunks(0, SIZES), problem_key="run-a")
        store.save(0, 1, _chunks(1, SIZES), problem_key="run-b")
        assert store.verified_epochs(0, "run-a") == [0]
        assert store.verified_epochs(0, "run-b") == [1]
        assert store.verified_epochs(0) == [0, 1]

    def test_latest_consistent_with_gaps(self, tmp_path):
        store = CheckpointStore(tmp_path)
        for rank, epochs in ((0, (1, 2)), (1, (1,))):
            for e in epochs:
                store.save(rank, e, _chunks(e, SIZES))
        assert store.consistent_epochs(2) == [1]
        assert store.latest_consistent(2) == 1
        # A rank directory missing entirely means no consistent epoch.
        assert store.latest_consistent(3) == -1

    def test_ls_rows(self, tmp_path):
        store = CheckpointStore(tmp_path)
        store.save(0, 0, _chunks(0, SIZES))
        store.save(1, 0, _chunks(1, SIZES))
        store.save(0, 1, _chunks(2, SIZES))
        rows = store.ls_rows(nranks=2)
        assert [r["epoch"] for r in rows] == [0, 1]
        assert rows[0]["consistent"] and not rows[1]["consistent"]


class TestNegotiation:
    @pytest.mark.parametrize(
        "per_rank,expected",
        [
            (((1, 2, 3), (1, 3)), 3),
            (((1, 2), (2, 3)), 2),
            (((1, 4), (3, 5)), -1),  # descent exhausts: no common epoch
            (((), (1,)), -1),
            (((2,), (2,)), 2),
        ],
    )
    def test_negotiate_epoch(self, per_rank, expected):
        def rank_fn(comm):
            return negotiate_epoch(comm, per_rank[comm.rank], allreduce)

        results = run_spmd(len(per_rank), rank_fn)
        assert results == [expected] * len(per_rank)
