"""Closed-form message-count formulas (Table 1)."""

import pytest

from repro.layout.analysis import (
    basic_message_count,
    neighbor_count,
    optimal_message_count,
    table1,
)


class TestFormulas:
    @pytest.mark.parametrize(
        "ndim,expected", [(1, 2), (2, 8), (3, 26), (4, 80), (5, 242)]
    )
    def test_eq2_neighbors(self, ndim, expected):
        assert neighbor_count(ndim) == expected

    @pytest.mark.parametrize(
        "ndim,expected", [(1, 2), (2, 9), (3, 42), (4, 209), (5, 1042)]
    )
    def test_eq1_optimal(self, ndim, expected):
        assert optimal_message_count(ndim) == expected

    @pytest.mark.parametrize(
        "ndim,expected", [(1, 2), (2, 16), (3, 98), (4, 544), (5, 2882)]
    )
    def test_eq3_basic(self, ndim, expected):
        assert basic_message_count(ndim) == expected

    @pytest.mark.parametrize("fn", [neighbor_count, optimal_message_count, basic_message_count])
    def test_rejects_ndim_zero(self, fn):
        with pytest.raises(ValueError):
            fn(0)

    def test_eq1_always_integer_up_to_10d(self):
        for d in range(1, 11):
            optimal_message_count(d)  # raises if non-integral


class TestTable1:
    def test_exact_reproduction(self):
        t = table1()
        assert t["Dimensions"] == [1, 2, 3, 4, 5]
        assert t["Number of neighbors (Eq. 2)"] == [2, 8, 26, 80, 242]
        assert t["Layout (Eq. 1)"] == [2, 9, 42, 209, 1042]
        assert t["Basic (Eq. 3)"] == [2, 16, 98, 544, 2882]

    def test_ordering_invariant(self):
        """Packing <= Layout <= Basic for every dimension."""
        for d in range(1, 8):
            assert (
                neighbor_count(d)
                <= optimal_message_count(d)
                <= basic_message_count(d)
            )

    def test_layout_saves_at_most_two_thirds_asymptotically(self):
        # Section 3.3: Layout reduces Basic's messages by at most 2/3.
        for d in range(2, 8):
            ratio = optimal_message_count(d) / basic_message_count(d)
            assert ratio > 1 / 3 - 0.01
        # and approaches exactly 1/3 for large D
        assert optimal_message_count(10) / basic_message_count(10) == pytest.approx(
            1 / 3, rel=0.01
        )
