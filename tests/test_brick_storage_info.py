"""BrickStorage and BrickInfo adjacency."""

import numpy as np
import pytest

from repro.brick.decomp import BrickDecomp
from repro.brick.info import BrickInfo, all_direction_vectors, direction_index
from repro.brick.storage import BrickStorage


class TestStorage:
    def test_allocate_shape(self):
        st = BrickStorage.allocate(10, 512)
        assert st.data.shape == (10, 512)
        assert st.brick_bytes == 4096
        assert not st.can_map

    def test_mmap_alloc_can_map(self):
        st = BrickStorage.mmap_alloc(4, 512, page_size=4096)
        assert st.can_map
        st.close()

    def test_slot_view_is_view(self):
        st = BrickStorage.allocate(10, 512)
        v = st.slot_view(2, 3)
        v[:] = 7.0
        assert (st.data[2:5] == 7.0).all()
        assert (st.data[0] == 0.0).all()

    def test_slot_range_bounds(self):
        st = BrickStorage.allocate(4, 8)
        with pytest.raises(IndexError):
            st.slot_range_bytes(3, 2)

    def test_fill(self):
        st = BrickStorage.allocate(4, 8)
        st.fill(1.5)
        assert (st.data == 1.5).all()

    def test_invalid_sizes(self):
        with pytest.raises(ValueError):
            BrickStorage.allocate(0, 8)

    def test_dtype(self):
        st = BrickStorage.allocate(4, 8, dtype=np.float32)
        assert st.brick_bytes == 32


class TestDirectionIndex:
    def test_roundtrip(self):
        vecs = all_direction_vectors(3)
        assert len(vecs) == 27
        for i, v in enumerate(vecs):
            assert direction_index(v) == i

    def test_center(self):
        assert direction_index((0, 0, 0)) == 13

    def test_invalid(self):
        with pytest.raises(ValueError):
            direction_index((2, 0))


class TestAdjacency:
    def test_center_is_self(self, small_decomp):
        info = small_decomp.brick_info()
        center = direction_index((0, 0, 0))
        slots = np.arange(info.nslots)
        assert (info.adjacency[:, center] == slots).all()

    def test_neighbors_mutual(self, small_decomp):
        info = small_decomp.brick_info()
        plus_x = direction_index((1, 0, 0))
        minus_x = direction_index((-1, 0, 0))
        for slot in range(0, info.nslots, 7):
            n = info.adjacency[slot, plus_x]
            if n >= 0:
                assert info.adjacency[n, minus_x] == slot

    def test_adjacency_matches_coords(self, small_decomp):
        d = small_decomp
        asn = d.assignment(1)
        info = d.brick_info(asn)
        for slot in range(0, info.nslots, 11):
            base = asn.slot_coords[slot]
            for vec in ((1, 0, 0), (0, -1, 0), (1, 1, -1)):
                n = info.neighbor_slot(slot, vec)
                if n >= 0:
                    np.testing.assert_array_equal(
                        asn.slot_coords[n], base + np.array(vec)
                    )

    def test_outer_boundary_has_missing_neighbors(self, small_decomp):
        d = small_decomp
        asn = d.assignment(1)
        info = d.brick_info(asn)
        # A ghost corner brick has no neighbor further out.
        corner_slot = int(asn.grid_index[0, 0, 0])
        assert info.neighbor_slot(corner_slot, (-1, -1, -1)) == -1

    def test_compute_slots_have_full_neighborhoods(self, small_decomp):
        d = small_decomp
        asn = d.assignment(1)
        info = d.brick_info(asn)
        slots = d.compute_slots(asn)
        assert len(slots) == 4**3
        assert (info.adjacency[slots] >= 0).all()

    def test_padding_slots_have_no_neighbors(self, small_decomp):
        d = small_decomp
        asn = d.assignment(16)
        info = d.brick_info(asn)
        pads = [s for s in range(asn.total_slots) if asn.is_padding(s)]
        arr = info.adjacency[pads]
        center = direction_index((0, 0, 0))
        mask = np.ones(27, dtype=bool)
        mask[center] = False
        assert (arr[:, mask] == -1).all()

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            BrickInfo(3, (8, 8, 8), np.zeros((4, 9), dtype=np.int64))
