"""MinAvgMax summaries and aggregation."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util.stats import MinAvgMax, geometric_mean, summarize


class TestSummarize:
    def test_single(self):
        s = summarize([2.0])
        assert s.min == s.avg == s.max == 2.0
        assert s.std == 0.0
        assert s.n == 1

    def test_known_values(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s.min == 1.0
        assert s.avg == 2.0
        assert s.max == 3.0
        assert s.std == pytest.approx(math.sqrt(2.0 / 3.0))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_scaled(self):
        s = summarize([1.0, 3.0]).scaled(2.0)
        assert (s.min, s.avg, s.max) == (2.0, 4.0, 6.0)

    def test_format(self):
        text = f"{summarize([1.0, 2.0]):.2f}"
        assert "[1.00, 1.50, 2.00]" in text


class TestGeometricMean:
    def test_known(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            geometric_mean([])


@given(st.lists(st.floats(0.001, 1e6), min_size=1, max_size=50))
def test_summary_invariants(values):
    s = summarize(values)
    # tolerate the last-ulp rounding of the mean computation
    eps = 1e-12 * max(abs(s.min), abs(s.max), 1.0)
    assert s.min - eps <= s.avg <= s.max + eps
    assert s.std >= 0.0
    assert s.n == len(values)


@given(st.lists(st.floats(0.001, 1e3), min_size=1, max_size=20))
def test_geometric_mean_between_min_and_max(values):
    g = geometric_mean(values)
    assert min(values) * (1 - 1e-9) <= g <= max(values) * (1 + 1e-9)
