"""Integration tests pinning the paper's headline qualitative claims.

Each test names the paper artifact it guards.  These are *shape* checks
(orderings, crossovers, factors within broad bands) -- the quantities
EXPERIMENTS.md tracks in detail.
"""

import numpy as np
import pytest

from repro.core.model import model_timestep
from repro.hardware.profiles import summit_v100, theta_knl
from repro.stencil.spec import CUBE125, SEVEN_POINT

SIZES = (512, 256, 128, 64, 32, 16)


def comm(profile, method, n, stencil=SEVEN_POINT, **kw):
    return model_timestep(profile, method, (n, n, n), stencil, **kw).comm


class TestFig1Motivation:
    """Fig. 1: packing dominates YASK's timestep for small subdomains."""

    def test_packing_fraction_grows_as_boxes_shrink(self):
        theta = theta_knl()
        fracs = []
        for n in SIZES:
            bd = model_timestep(theta, "yask", (n, n, n), SEVEN_POINT)
            fracs.append(bd.pack / bd.total)
        assert fracs[-1] > fracs[0]
        assert fracs[-1] > 0.4  # majority-ish at 16^3

    def test_comm_exceeds_compute_by_256(self):
        theta = theta_knl()
        bd = model_timestep(theta, "yask", (256, 256, 256), SEVEN_POINT)
        assert bd.comm > bd.calc


class TestFig4LayoutVsBasic:
    """Fig. 4: Layout up to ~2.3x faster than Basic at small sizes."""

    def test_layout_beats_basic_small(self):
        theta = theta_knl()
        ratio = comm(theta, "basic", 16) / comm(theta, "layout", 16)
        assert 1.3 < ratio < 4.0

    def test_gap_shrinks_for_large_boxes(self):
        theta = theta_knl()
        small_gap = comm(theta, "basic", 16) / comm(theta, "layout", 16)
        big_gap = comm(theta, "basic", 512) / comm(theta, "layout", 512)
        assert big_gap < small_gap


class TestK1Ordering:
    """Figs. 8-9: MemMap ~ Layout ~ Network << YASK << MPI_Types."""

    @pytest.mark.parametrize("n", SIZES)
    def test_ordering_every_size(self, n):
        theta = theta_knl()
        network = comm(theta, "network", n)
        memmap = comm(theta, "memmap", n)
        layout = comm(theta, "layout", n)
        yask = comm(theta, "yask", n)
        types = comm(theta, "mpi_types", n)
        assert network <= memmap <= layout * 1.05
        assert layout < yask
        assert yask < types

    def test_memmap_speedup_vs_yask_band(self):
        """Paper: up to 14.4x vs YASK; speedup grows as boxes shrink."""
        theta = theta_knl()
        speedups = [comm(theta, "yask", n) / comm(theta, "memmap", n) for n in SIZES]
        assert speedups[-1] > speedups[0]
        assert 5 < max(speedups) < 60

    def test_memmap_speedup_vs_mpi_types_band(self):
        """Paper: up to 460x vs MPI_Types."""
        theta = theta_knl()
        speedups = [
            comm(theta, "mpi_types", n) / comm(theta, "memmap", n) for n in SIZES
        ]
        assert max(speedups) > 100

    def test_comm_flattens_at_small_sizes(self):
        """Fig. 9: startup-dominated below 64^3."""
        theta = theta_knl()
        t64, t32, t16 = (comm(theta, "memmap", n) for n in (64, 32, 16))
        assert t64 / t16 < 8  # far from the 16x surface-area ratio
        assert t32 / t16 < 3


class TestK2StrongScaling:
    """Figs. 11-12: 1024^3 domain, 8 -> 1024 nodes."""

    def _total(self, method, nodes, stencil):
        theta = theta_knl()
        per_axis = round(1024 / nodes ** (1 / 3))
        bd = model_timestep(theta, method, (per_axis,) * 3, stencil)
        return bd.total

    def test_speedup_at_1024_nodes(self):
        """Paper: 9.3x (7-pt) and 13.4x (125-pt) vs YASK at 1024 nodes."""
        for stencil, lo, hi in ((SEVEN_POINT, 3, 40), (CUBE125, 3, 40)):
            ratio = self._total("yask", 1024, stencil) / self._total(
                "memmap", 1024, stencil
            )
            assert lo < ratio < hi

    def test_comm_becomes_bottleneck_at_scale(self):
        """Fig. 12: the comm/comp ratio grows monotonically with node
        count; compute is at least comparable at 8 nodes and communication
        strongly dominates at 512+ nodes."""
        theta = theta_knl()
        ratios = []
        for n in (512, 256, 128, 64):  # 8 -> 4096 nodes on 1024^3
            bd = model_timestep(theta, "memmap", (n,) * 3, SEVEN_POINT)
            ratios.append(bd.comm / bd.calc)
        assert ratios == sorted(ratios)
        assert ratios[0] < 3.0  # roughly balanced at 8 nodes
        assert ratios[-1] > 3.0  # comm-bound at scale


class TestV1Gpu:
    """Figs. 13-15: Summit, 8 V100s."""

    @pytest.mark.parametrize("n", SIZES)
    def test_pack_free_beats_mpi_types(self, n):
        summit = summit_v100()
        types = comm(summit, "mpi_types_um", n)
        for method in ("layout_ca", "layout_um", "memmap_um"):
            assert comm(summit, method, n) < types

    def test_layout_ca_best_comm(self):
        summit = summit_v100()
        for n in SIZES:
            ca = comm(summit, "layout_ca", n)
            assert ca <= comm(summit, "layout_um", n) * 1.01
            assert ca <= comm(summit, "memmap_um", n) * 1.01

    def test_memmap_wastes_bandwidth_on_64k_pages(self):
        """Table 2: padding grows dramatically as subdomains shrink."""
        from repro.exchange.schedule import memmap_schedule
        from repro.layout.order import SURFACE3D

        fracs = {}
        for n in (512, 64, 16):
            grid = (n // 8,) * 3
            specs = memmap_schedule(grid, 1, SURFACE3D, 4096, 65536)
            pay = sum(m.payload_bytes for m in specs)
            wire = sum(m.wire_bytes for m in specs)
            fracs[n] = (wire - pay) / pay
        assert fracs[512] < 0.10
        assert fracs[64] > 0.5
        assert fracs[16] > 4.0


class TestFig18PageSize:
    """Fig. 18: even 64 KiB pages leave MemMap ahead of YASK/MPI_Types."""

    @pytest.mark.parametrize("page", [4096, 16384, 65536])
    def test_memmap_beats_baselines_any_page_size(self, page):
        theta = theta_knl()
        for n in SIZES:
            mm = comm(theta, "memmap", n, page_size=page)
            assert mm < comm(theta, "yask", n)
            assert mm < comm(theta, "mpi_types", n)

    def test_larger_pages_monotonically_slower(self):
        theta = theta_knl()
        for n in (64, 32, 16):
            times = [
                comm(theta, "memmap", n, page_size=p)
                for p in (4096, 16384, 65536)
            ]
            assert times == sorted(times)
