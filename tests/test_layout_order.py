"""Packaged layout constants and order helpers."""

import pytest

from repro.layout.analysis import optimal_message_count
from repro.layout.messages import messages_for_order
from repro.layout.order import (
    SURFACE1D,
    SURFACE2D,
    SURFACE3D,
    basic_order,
    grouped_order,
    lexicographic_order,
    surface_order,
    validate_order,
)
from repro.layout.regions import all_regions
from repro.util.bitset import BitSet


class TestPackagedConstants:
    @pytest.mark.parametrize(
        "order,ndim",
        [(SURFACE1D, 1), (SURFACE2D, 2), (SURFACE3D, 3)],
    )
    def test_optimal(self, order, ndim):
        assert validate_order(order, ndim) == optimal_message_count(ndim)

    @pytest.mark.parametrize(
        "order,ndim",
        [(SURFACE1D, 1), (SURFACE2D, 2), (SURFACE3D, 3)],
    )
    def test_is_permutation(self, order, ndim):
        assert set(order) == set(all_regions(ndim))
        assert len(order) == 3**ndim - 1

    def test_surface2d_is_perimeter_walk(self):
        """Consecutive ring entries share an edge (differ in one axis step)."""
        vecs = [r.to_vector(2) for r in SURFACE2D]
        for a, b in zip(vecs, vecs[1:]):
            dist = abs(a[0] - b[0]) + abs(a[1] - b[1])
            assert dist == 1


class TestOrderHelpers:
    def test_lexicographic_2d_needs_12(self):
        assert messages_for_order(lexicographic_order(2), 2) == 12

    def test_basic_order_is_permutation(self):
        validate_order(basic_order(3), 3)

    def test_grouped_order_is_permutation_and_helps(self):
        order = grouped_order(3)
        count = validate_order(order, 3)
        assert count <= messages_for_order(lexicographic_order(3), 3) + 20
        assert count >= optimal_message_count(3)

    def test_surface_order_dispatch(self):
        assert surface_order(2) == SURFACE2D
        assert surface_order(3) == SURFACE3D

    def test_surface_order_unpackaged_dim(self):
        with pytest.raises(ValueError):
            surface_order(4)

    def test_validate_rejects_missing_region(self):
        with pytest.raises(ValueError):
            validate_order(SURFACE2D[:-1], 2)

    def test_validate_rejects_duplicates(self):
        broken = list(SURFACE2D)
        broken[0] = broken[1]
        with pytest.raises(ValueError):
            validate_order(broken, 2)

    def test_validate_rejects_wrong_dim(self):
        with pytest.raises(ValueError):
            validate_order(SURFACE2D, 3)
