"""Arena/view lifecycle: close semantics, budgets, large mappings."""

import numpy as np
import pytest

from repro.vmem import SimArena, default_arena, realmap_available

PAGE = 4096


class TestLifecycle:
    @pytest.fixture(params=["sim", "real"])
    def arena(self, request):
        if request.param == "real" and not realmap_available():
            pytest.skip("real arena unavailable")
        make = SimArena if request.param == "sim" else default_arena
        a = make(64 * PAGE, PAGE)
        yield a
        a.close()

    def test_close_view_then_arena(self, arena):
        v = arena.make_view([(0, PAGE)])
        v.close()
        v.close()  # idempotent
        with pytest.raises(ValueError):
            v.array()

    def test_arena_close_closes_views(self, arena):
        v = arena.make_view([(0, PAGE)])
        arena.close()
        with pytest.raises(ValueError):
            v.array()

    def test_many_views(self, arena):
        """Dozens of simultaneous views (an exchange holds 2 x 26)."""
        views = [
            arena.make_view([(p * PAGE, PAGE)]) for p in range(60)
        ]
        arena.buffer.view(np.float64)[: PAGE // 8] = 5.0
        views[0].refresh()
        assert views[0].array(np.float64)[0] == 5.0
        assert arena.mapping_count == 1 + 60
        for v in views:
            v.close()

    def test_view_spanning_whole_arena(self, arena):
        v = arena.make_view([(0, 64 * PAGE)])
        assert v.nbytes == 64 * PAGE

    def test_interleaved_reads_writes(self, arena):
        """Two views of the same page stay coherent through the
        refresh/flush protocol on both arena kinds."""
        v1 = arena.make_view([(3 * PAGE, PAGE)])
        v2 = arena.make_view([(3 * PAGE, PAGE)])
        a1 = v1.array(np.float64)
        a1[:] = 7.0
        v1.flush()
        v2.refresh()
        assert v2.array(np.float64)[0] == 7.0


class TestPartialFlush:
    def test_sim_flush_prefix_only(self):
        arena = SimArena(8 * PAGE, PAGE)
        v = arena.make_view([(0, PAGE), (4 * PAGE, PAGE)])
        a = v.array(np.float64)
        a[:] = 9.0
        v.flush(up_to_bytes=PAGE)  # only the first page writes back
        phys = arena.buffer.view(np.float64)
        assert phys[0] == 9.0
        assert phys[4 * PAGE // 8] == 0.0
        arena.close()

    def test_sim_flush_prefix_must_be_page_multiple(self):
        arena = SimArena(4 * PAGE, PAGE)
        v = arena.make_view([(0, 2 * PAGE)])
        with pytest.raises(ValueError):
            v.flush(up_to_bytes=100)
        arena.close()

    def test_real_flush_prefix_noop(self):
        if not realmap_available():
            pytest.skip("real arena unavailable")
        arena = default_arena(4 * PAGE, PAGE)
        v = arena.make_view([(0, PAGE)])
        v.array(np.float64)[0] = 3.0
        v.flush(up_to_bytes=PAGE)  # aliased anyway
        assert arena.buffer.view(np.float64)[0] == 3.0
        arena.close()
