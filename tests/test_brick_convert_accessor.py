"""Array<->brick conversion and the element accessor."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.brick.accessor import Brick
from repro.brick.convert import (
    bricks_to_extended,
    extended_shape,
    extended_to_bricks,
)
from repro.brick.decomp import BrickDecomp


def _random_extended(decomp, seed=0):
    rng = np.random.default_rng(seed)
    return rng.random(extended_shape(decomp))


class TestConversion:
    def test_roundtrip(self, small_decomp):
        st_, asn = small_decomp.allocate()
        arr = _random_extended(small_decomp)
        extended_to_bricks(arr, small_decomp, st_, asn)
        np.testing.assert_array_equal(
            bricks_to_extended(small_decomp, st_, asn), arr
        )

    def test_roundtrip_padded_storage(self, small_decomp):
        st_, asn = small_decomp.mmap_alloc(65536)
        arr = _random_extended(small_decomp, 1)
        extended_to_bricks(arr, small_decomp, st_, asn)
        np.testing.assert_array_equal(
            bricks_to_extended(small_decomp, st_, asn), arr
        )
        st_.close()

    def test_roundtrip_2d(self, decomp2d):
        st_, asn = decomp2d.allocate()
        arr = _random_extended(decomp2d, 2)
        extended_to_bricks(arr, decomp2d, st_, asn)
        np.testing.assert_array_equal(
            bricks_to_extended(decomp2d, st_, asn), arr
        )

    def test_shape_check(self, small_decomp):
        st_, asn = small_decomp.allocate()
        with pytest.raises(ValueError):
            extended_to_bricks(np.zeros((4, 4, 4)), small_decomp, st_, asn)

    def test_brick_contents_are_blocks(self, small_decomp):
        """One brick holds exactly one 8^3 block of the extended array."""
        d = small_decomp
        st_, asn = d.allocate()
        arr = _random_extended(d, 3)
        extended_to_bricks(arr, d, st_, asn)
        slot = int(asn.grid_index[2, 3, 1])  # grid coord (a3=2,a2=3,a1=1)
        block = st_.data[slot].reshape(8, 8, 8)  # numpy order axis3..axis1
        np.testing.assert_array_equal(
            block, arr[16:24, 24:32, 8:16]
        )

    def test_fields_interleaved(self):
        d = BrickDecomp((16, 16, 16), (8, 8, 8), 8, nfields=2)
        st_, asn = d.allocate()
        a0 = _random_extended(d, 4)
        a1 = _random_extended(d, 5)
        extended_to_bricks(a0, d, st_, asn, fld=0)
        extended_to_bricks(a1, d, st_, asn, fld=1)
        np.testing.assert_array_equal(bricks_to_extended(d, st_, asn, fld=0), a0)
        np.testing.assert_array_equal(bricks_to_extended(d, st_, asn, fld=1), a1)

    def test_field_out_of_range(self, small_decomp):
        st_, asn = small_decomp.allocate()
        with pytest.raises(ValueError):
            bricks_to_extended(small_decomp, st_, asn, fld=1)


class TestAccessor:
    @pytest.fixture
    def loaded(self, small_decomp):
        st_, asn = small_decomp.allocate()
        arr = _random_extended(small_decomp, 7)
        extended_to_bricks(arr, small_decomp, st_, asn)
        info = small_decomp.brick_info(asn)
        return Brick(info, st_), arr, asn, small_decomp

    def test_in_brick_access(self, loaded):
        brick, arr, asn, d = loaded
        slot = int(asn.grid_index[1, 1, 1])
        # element (i1=2, i2=3, i3=4) of grid brick (1,1,1)
        assert brick[slot][2, 3, 4] == arr[8 + 4, 8 + 3, 8 + 2]

    def test_cross_brick_access(self, loaded):
        brick, arr, asn, d = loaded
        slot = int(asn.grid_index[1, 1, 1])
        assert brick[slot][-1, 0, 0] == arr[8, 8, 7]
        assert brick[slot][8, 0, 0] == arr[8, 8, 16]
        assert brick[slot][8, -1, 8] == arr[16, 7, 16]

    def test_write(self, loaded):
        brick, arr, asn, d = loaded
        slot = int(asn.grid_index[1, 1, 1])
        brick[slot][0, 0, 0] = 42.0
        assert brick[slot][0, 0, 0] == 42.0

    def test_beyond_adjacent_rejected(self, loaded):
        brick, _, asn, _ = loaded
        slot = int(asn.grid_index[1, 1, 1])
        with pytest.raises(IndexError):
            brick[slot][17, 0, 0]

    def test_off_grid_rejected(self, loaded):
        brick, _, asn, _ = loaded
        corner = int(asn.grid_index[0, 0, 0])
        with pytest.raises(IndexError):
            brick[corner][-1, 0, 0]

    def test_slot_bounds(self, loaded):
        brick, _, _, _ = loaded
        with pytest.raises(IndexError):
            brick[10**6]

    def test_wrong_arity(self, loaded):
        brick, _, asn, _ = loaded
        slot = int(asn.grid_index[1, 1, 1])
        with pytest.raises(IndexError):
            brick[slot][1, 2]


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 2**31 - 1))
def test_conversion_preserves_all_values(seed):
    d = BrickDecomp((16, 16), (4, 4), 4)
    st_, asn = d.allocate()
    rng = np.random.default_rng(seed)
    arr = rng.random(extended_shape(d))
    extended_to_bricks(arr, d, st_, asn)
    assert np.array_equal(bricks_to_extended(d, st_, asn), arr)
    # every array value appears exactly once in the logical slots
    logical = np.concatenate(
        [st_.data[s.start : s.end].reshape(-1) for s in asn.sections]
    )
    assert np.array_equal(np.sort(logical), np.sort(arr.reshape(-1)))
