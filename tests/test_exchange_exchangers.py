"""Exchanger engines: correctness of every ghost-zone exchange.

The oracle: after one exchange, the extended array's ghost shell must
equal the periodic wrap of the global domain (np.pad mode="wrap" of the
assembled global array, restricted to this rank's window).
"""

import numpy as np
import pytest

from repro.brick.convert import bricks_to_extended, extended_to_bricks
from repro.brick.decomp import BrickDecomp
from repro.exchange.layout_ex import LayoutExchanger
from repro.exchange.memmap_ex import MemMapExchanger
from repro.exchange.mpitypes import MPITypesExchanger
from repro.exchange.pack import PackExchanger
from repro.exchange.shift import ShiftExchanger
from repro.hardware.profiles import theta_knl
from repro.simmpi.launcher import run_spmd

RANK_DIMS = (2, 2, 2)
SUB = (16, 16, 16)
G = 8
GLOBAL = tuple(s * d for s, d in zip(SUB, RANK_DIMS))


def _global_data(seed=0):
    rng = np.random.default_rng(seed)
    return rng.random(tuple(reversed(GLOBAL)))


def _expected_extended(global_arr, coords):
    """This rank's extended array after a perfect exchange."""
    wrapped = np.pad(global_arr, [(G, G)] * 3, mode="wrap")
    lo = [c * s for c, s in zip(coords, SUB)]
    slc = tuple(
        slice(l, l + s + 2 * G) for l, s in zip(reversed(lo), reversed(SUB))
    )
    return wrapped[slc]


def _run_array_exchanger(make, seed=0):
    global_arr = _global_data(seed)

    def fn(comm):
        cart = comm.Create_cart(RANK_DIMS)
        lo = [c * s for c, s in zip(cart.coords, SUB)]
        own = tuple(
            slice(l, l + s) for l, s in zip(reversed(lo), reversed(SUB))
        )
        arr = np.zeros(tuple(s + 2 * G for s in reversed(SUB)))
        arr[tuple(slice(G, G + s) for s in reversed(SUB))] = global_arr[own]
        ex = make(cart, arr)
        result = ex.exchange()
        expected = _expected_extended(global_arr, cart.coords)
        np.testing.assert_array_equal(arr, expected)
        return result

    return run_spmd(8, fn)


def _run_brick_exchanger(mode, seed=0, page_size=4096, layout=None):
    global_arr = _global_data(seed)
    profile = theta_knl()

    def fn(comm):
        cart = comm.Create_cart(RANK_DIMS)
        d = BrickDecomp(SUB, (8, 8, 8), G, layout=layout)
        if mode == "memmap":
            storage, asn = d.mmap_alloc(page_size)
            ex = MemMapExchanger(cart, d, storage, asn, profile, page_size)
        else:
            storage, asn = d.allocate()
            ex = LayoutExchanger(
                cart, d, storage, asn, profile, merge_runs=(mode == "layout")
            )
        lo = [c * s for c, s in zip(cart.coords, SUB)]
        own = tuple(
            slice(l, l + s) for l, s in zip(reversed(lo), reversed(SUB))
        )
        ext = np.zeros(tuple(s + 2 * G for s in reversed(SUB)))
        ext[tuple(slice(G, G + s) for s in reversed(SUB))] = global_arr[own]
        extended_to_bricks(ext, d, storage, asn)
        result = ex.exchange()
        got = bricks_to_extended(d, storage, asn)
        expected = _expected_extended(global_arr, cart.coords)
        np.testing.assert_array_equal(got, expected)
        if mode == "memmap":
            ex.close()
        out = (result, getattr(ex, "mapping_count", 0))
        storage.close()
        return out

    return run_spmd(8, fn)


class TestArrayExchangers:
    def test_pack_fills_ghosts(self):
        profile = theta_knl()
        results = _run_array_exchanger(
            lambda cart, arr: PackExchanger(cart, arr, SUB, G, profile)
        )
        r = results[0]
        assert r.messages_sent == 26
        assert r.breakdown.pack > 0
        assert r.padding_fraction == 0.0

    def test_mpi_types_fills_ghosts(self):
        profile = theta_knl()
        results = _run_array_exchanger(
            lambda cart, arr: MPITypesExchanger(cart, arr, SUB, G, profile)
        )
        r = results[0]
        assert r.messages_sent == 26
        assert r.breakdown.pack == 0.0  # packing is inside MPI
        assert r.breakdown.wait > 0

    def test_shift_fills_ghosts_including_corners(self):
        profile = theta_knl()
        results = _run_array_exchanger(
            lambda cart, arr: ShiftExchanger(cart, arr, SUB, G, profile)
        )
        r = results[0]
        assert r.messages_sent == 6


class TestBrickExchangers:
    def test_layout_pack_free(self):
        results = _run_brick_exchanger("layout")
        r, _ = results[0]
        assert r.breakdown.pack == 0.0
        assert r.messages_sent > 26  # more messages, no copies

    def test_basic_more_messages(self):
        basic = _run_brick_exchanger("basic")[0][0]
        layout = _run_brick_exchanger("layout")[0][0]
        assert basic.messages_sent > layout.messages_sent
        assert basic.payload_bytes_sent == layout.payload_bytes_sent

    def test_memmap_one_message_per_neighbor(self):
        results = _run_brick_exchanger("memmap")
        r, maps = results[0]
        assert r.messages_sent == 26
        assert r.breakdown.pack == 0.0
        assert maps > 0

    def test_memmap_64k_pages_pad(self):
        r, _ = _run_brick_exchanger("memmap", page_size=65536)[0]
        assert r.padding_fraction > 0
        assert r.wire_bytes_sent % 65536 == 0

    def test_memmap_4k_pages_free_on_theta(self):
        """8^3 double bricks are exactly one 4 KiB page: zero waste."""
        r, _ = _run_brick_exchanger("memmap", page_size=4096)[0]
        assert r.padding_fraction == 0.0

    def test_all_schemes_same_payload(self):
        pay = set()
        for mode in ("layout", "basic", "memmap"):
            r = _run_brick_exchanger(mode)[0][0]
            pay.add(r.payload_bytes_sent)
        assert len(pay) == 1


class TestExchangerValidation:
    def test_layout_rejects_padded_storage(self):
        def fn(comm):
            cart = comm.Create_cart(RANK_DIMS)
            d = BrickDecomp(SUB, (8, 8, 8), G)
            storage, asn = d.mmap_alloc(65536)
            with pytest.raises(ValueError):
                LayoutExchanger(cart, d, storage, asn)
            storage.close()

        run_spmd(8, fn)

    def test_memmap_rejects_plain_storage(self):
        def fn(comm):
            cart = comm.Create_cart(RANK_DIMS)
            d = BrickDecomp(SUB, (8, 8, 8), G)
            storage, asn = d.allocate()
            with pytest.raises(ValueError):
                MemMapExchanger(cart, d, storage, asn)

        run_spmd(8, fn)

    def test_pack_shape_validation(self):
        def fn(comm):
            cart = comm.Create_cart(RANK_DIMS)
            with pytest.raises(ValueError):
                PackExchanger(cart, np.zeros((4, 4, 4)), SUB, G, theta_knl())

        run_spmd(8, fn)


class TestRepeatedExchanges:
    def test_exchange_idempotent_on_static_data(self):
        """Exchanging twice without changing the data leaves it fixed."""
        global_arr = _global_data(2)
        profile = theta_knl()

        def fn(comm):
            cart = comm.Create_cart(RANK_DIMS)
            d = BrickDecomp(SUB, (8, 8, 8), G)
            storage, asn = d.mmap_alloc(4096)
            ex = MemMapExchanger(cart, d, storage, asn, profile)
            lo = [c * s for c, s in zip(cart.coords, SUB)]
            own = tuple(
                slice(l, l + s) for l, s in zip(reversed(lo), reversed(SUB))
            )
            ext = np.zeros(tuple(s + 2 * G for s in reversed(SUB)))
            ext[tuple(slice(G, G + s) for s in reversed(SUB))] = global_arr[own]
            extended_to_bricks(ext, d, storage, asn)
            ex.exchange()
            first = bricks_to_extended(d, storage, asn)
            ex.exchange()
            second = bricks_to_extended(d, storage, asn)
            np.testing.assert_array_equal(first, second)
            ex.close()
            storage.close()

        run_spmd(8, fn)
