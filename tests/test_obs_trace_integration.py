"""Observability end to end: traced executed runs, exports, CLI, gating.

The contract under test (DESIGN.md Section 6 extension): tracing is an
*observer*.  A traced run must produce bit-identical modelled metrics and
results, while the trace itself must cover every layer (driver ->
exchanger -> fabric) on every rank.
"""

import json

import numpy as np
import pytest

from repro import obs
from repro.core.driver import run_executed
from repro.core.problem import StencilProblem
from repro.hardware.profiles import theta_knl
from repro.stencil.spec import SEVEN_POINT

pytestmark = pytest.mark.filterwarnings("ignore")


def small_problem():
    return StencilProblem(
        global_extent=(32, 32, 32),
        rank_dims=(2, 2, 2),
        stencil=SEVEN_POINT,
        brick_dim=(8, 8, 8),
        ghost=8,
    )


@pytest.fixture(autouse=True)
def obs_reset():
    """Never leak enabled observability into other tests."""
    yield
    obs.disable()
    obs.TRACER.clear()
    obs.METRICS.clear()


def traced_run(method="layout", steps=2):
    obs.enable()
    try:
        run = run_executed(small_problem(), method, theta_knl(), timesteps=steps)
    finally:
        obs.disable()
    return run


class TestTracedRun:
    def test_spans_cover_all_layers_on_every_rank(self):
        traced_run()
        events = obs.TRACER.events()
        layers = {
            "driver": {"driver.step", "driver.exchange", "driver.calc"},
            "exchange": {"exchange.post", "exchange.wait"},
            "fabric": {"fabric.recv", "fabric.send_wait"},
        }
        names_by_rank = {}
        for ev in events:
            if ev.rank is not None:
                names_by_rank.setdefault(ev.rank, set()).add(ev.name)
        assert sorted(names_by_rank) == list(range(8))
        for rank, names in names_by_rank.items():
            for layer, expected in layers.items():
                assert expected <= names, (
                    f"rank {rank} missing {layer} spans: {expected - names}"
                )

    def test_span_hierarchy_reaches_fabric_through_exchange(self):
        traced_run()
        paths = {ev.path for ev in obs.TRACER.events()}
        assert any(
            p.startswith("driver.step;driver.exchange;")
            and p.endswith("fabric.recv")
            for p in paths
        ), f"no driver->exchange->fabric chain in {sorted(paths)[:10]}"

    def test_deterministic_counters_agree_across_layers(self):
        run = traced_run()
        total_msgs = run.messages_per_rank * 8 * 2  # per rank/step, 8 ranks
        assert obs.METRICS.counter_total("driver.messages") == total_msgs
        assert obs.METRICS.counter_total("exchange.messages") == total_msgs
        assert obs.METRICS.counter_total("fabric.messages") == total_msgs

    def test_modelled_metrics_bit_identical_traced_vs_untraced(self):
        baseline = run_executed(
            small_problem(), "layout", theta_knl(), timesteps=2
        )
        traced = traced_run()
        for b, t in zip(baseline.metrics.ranks, traced.metrics.ranks):
            assert b.totals.as_dict() == t.totals.as_dict()
        assert np.array_equal(baseline.global_result, traced.global_result)
        assert baseline.messages_per_rank == traced.messages_per_rank
        assert baseline.wire_bytes_per_rank == traced.wire_bytes_per_rank


class TestChromeExport:
    def test_schema_round_trip(self, tmp_path):
        traced_run()
        out = tmp_path / "trace.json"
        obs.write_chrome_trace(out, obs.TRACER, obs.METRICS)
        doc = json.loads(out.read_text())
        events = doc["traceEvents"]
        assert doc["displayTimeUnit"] == "ms"
        phases = {ev["ph"] for ev in events}
        assert phases == {"X", "M"}
        complete = [ev for ev in events if ev["ph"] == "X"]
        assert len(complete) == len(obs.TRACER.events())
        for ev in complete:
            assert ev["pid"] == 0
            assert ev["dur"] > 0
            assert isinstance(ev["ts"], float)
            assert "path" in ev["args"]
        # one timeline row per rank, each named
        named = {
            ev["tid"]: ev["args"]["name"]
            for ev in events
            if ev["ph"] == "M" and ev["name"] == "thread_name"
        }
        for rank in range(8):
            assert named[rank] == f"rank {rank}"
        # metrics ride along for tooling
        assert "driver.messages" in doc["otherData"]["counters"]

    def test_unranked_spans_attributed_to_rank_rows(self, tmp_path):
        traced_run()
        doc = obs.chrome_trace(obs.TRACER, obs.METRICS)
        compile_rows = {
            ev["tid"]
            for ev in doc["traceEvents"]
            if ev.get("name") == "plan.compile"
        }
        assert compile_rows  # spans exist
        assert compile_rows <= set(range(8))  # inferred via thread ident

    def test_flame_summary_lists_hot_paths(self):
        traced_run()
        text = obs.flame_summary(obs.TRACER)
        assert "driver.step" in text
        assert "driver.exchange" in text


class TestCli:
    def test_trace_command_smoke(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "t.json"
        bench = tmp_path / "b.json"
        rc = main(
            ["trace", "--method", "layout", "--steps", "4",
             "--out", str(out), "--bench-json", str(bench)]
        )
        assert rc == 0
        doc = json.loads(out.read_text())
        assert any(ev["ph"] == "X" for ev in doc["traceEvents"])
        stats = json.loads(bench.read_text())
        assert stats["counts"]["ranks_traced"] == 8
        assert stats["counts"]["spans_by_name"]["driver.step"] == 32
        captured = capsys.readouterr().out
        assert "flame summary" in captured

    def test_run_trace_flag_smoke(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "t.json"
        rc = main(
            ["run", "--method", "yask", "--steps", "2",
             "--trace", "--trace-out", str(out)]
        )
        assert rc == 0
        doc = json.loads(out.read_text())
        names = {ev["name"] for ev in doc["traceEvents"]}
        assert "exchange.pack" in names  # the pack path is instrumented
        assert "bit-exact vs serial reference: True" in capsys.readouterr().out
