"""Span tracer: nesting, disable semantics, exceptions, threads, cost."""

import threading
import time

import pytest

from repro.obs.tracer import Tracer, _NULL_SPAN


@pytest.fixture
def tracer():
    t = Tracer()
    t.enable()
    return t


class TestDisabled:
    def test_disabled_records_nothing(self):
        t = Tracer()
        with t.span("a", rank=0):
            pass
        assert len(t) == 0
        assert t.events() == []

    def test_disabled_returns_shared_null_span(self):
        t = Tracer()
        assert t.span("a") is _NULL_SPAN
        assert t.span("b", rank=3, step=7, extra=1) is _NULL_SPAN

    def test_disable_keeps_recorded_events_readable(self, tracer):
        with tracer.span("a"):
            pass
        tracer.disable()
        assert [ev.name for ev in tracer.events()] == ["a"]
        with tracer.span("b"):
            pass
        assert [ev.name for ev in tracer.events()] == ["a"]

    def test_reenable_clears_previous_trace(self, tracer):
        with tracer.span("old"):
            pass
        tracer.enable()
        with tracer.span("new"):
            pass
        assert [ev.name for ev in tracer.events()] == ["new"]

    def test_disabled_overhead_is_negligible(self):
        # Guard rail, not a benchmark: the disabled path must stay a
        # constant-time null-object return.  Generous bound for CI noise.
        t = Tracer()
        n = 20_000
        t0 = time.perf_counter()
        for _ in range(n):
            with t.span("x", rank=0):
                pass
        per_span = (time.perf_counter() - t0) / n
        assert per_span < 20e-6, f"disabled span cost {per_span * 1e9:.0f}ns"


class TestNesting:
    def test_depth_and_path(self, tracer):
        with tracer.span("outer"):
            with tracer.span("mid"):
                with tracer.span("inner"):
                    pass
        by_name = {ev.name: ev for ev in tracer.events()}
        assert by_name["outer"].depth == 0
        assert by_name["mid"].depth == 1
        assert by_name["inner"].depth == 2
        assert by_name["inner"].path == "outer;mid;inner"
        assert by_name["inner"].parent == "mid"
        assert by_name["outer"].parent is None

    def test_siblings_share_parent(self, tracer):
        with tracer.span("p"):
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        paths = sorted(ev.path for ev in tracer.events())
        assert paths == ["p", "p;a", "p;b"]

    def test_parent_encloses_child_times(self, tracer):
        with tracer.span("p"):
            with tracer.span("c"):
                time.sleep(0.002)
        by_name = {ev.name: ev for ev in tracer.events()}
        p, c = by_name["p"], by_name["c"]
        assert p.start_ns <= c.start_ns
        assert p.dur_ns >= c.dur_ns
        assert c.dur_ns >= 1_000_000  # slept 2ms

    def test_events_sorted_by_start(self, tracer):
        for name in ("a", "b", "c"):
            with tracer.span(name):
                pass
        starts = [ev.start_ns for ev in tracer.events()]
        assert starts == sorted(starts)


class TestAttributes:
    def test_rank_step_and_attrs_recorded(self, tracer):
        with tracer.span("x", rank=3, step=11, method="layout"):
            pass
        (ev,) = tracer.events()
        assert ev.rank == 3
        assert ev.step == 11
        assert ev.attrs == {"method": "layout"}

    def test_unranked_span_has_none_rank(self, tracer):
        with tracer.span("x"):
            pass
        (ev,) = tracer.events()
        assert ev.rank is None and ev.step is None


class TestExceptions:
    def test_records_and_reraises(self, tracer):
        with pytest.raises(ValueError, match="boom"):
            with tracer.span("failing"):
                time.sleep(0.002)
                raise ValueError("boom")
        (ev,) = tracer.events()
        assert ev.name == "failing"
        assert ev.dur_ns >= 1_000_000

    def test_stack_unwinds_after_exception(self, tracer):
        with pytest.raises(ValueError):
            with tracer.span("failing"):
                raise ValueError()
        with tracer.span("after"):
            pass
        by_name = {ev.name: ev for ev in tracer.events()}
        assert by_name["after"].depth == 0
        assert by_name["after"].path == "after"


class TestThreads:
    def test_threads_have_independent_stacks(self, tracer):
        barrier = threading.Barrier(4)

        def work(rank):
            with tracer.span("outer", rank=rank):
                barrier.wait()
                with tracer.span("inner", rank=rank):
                    pass

        threads = [threading.Thread(target=work, args=(r,)) for r in range(4)]
        for th in threads:
            th.start()
        for th in threads:
            th.join()
        events = tracer.events()
        assert len(events) == 8
        inners = [ev for ev in events if ev.name == "inner"]
        assert all(ev.path == "outer;inner" and ev.depth == 1 for ev in inners)
        assert sorted(ev.rank for ev in inners) == [0, 1, 2, 3]
        # Each rank ran on its own thread.
        assert len({ev.tid for ev in events}) == 4


class TestSampling:
    def test_keeps_every_kth_top_level_tree(self):
        t = Tracer(sample_every=3)
        t.enable()
        for i in range(7):
            with t.span("step", step=i):
                with t.span("child"):
                    pass
        events = t.events()
        steps = [ev for ev in events if ev.name == "step"]
        assert [ev.step for ev in steps] == [0, 3, 6]
        # Kept trees are kept whole: each surviving step has its child,
        # with nesting intact.
        children = [ev for ev in events if ev.name == "child"]
        assert len(children) == 3
        assert all(
            ev.path == "step;child" and ev.depth == 1 for ev in children
        )
        assert len(events) == 6

    def test_rate_one_keeps_everything(self):
        t = Tracer(sample_every=1)
        t.enable()
        for i in range(5):
            with t.span("step", step=i):
                pass
        assert [ev.step for ev in t.events()] == list(range(5))

    def test_enable_overrides_rate(self):
        t = Tracer()
        t.enable(sample_every=2)
        for i in range(4):
            with t.span("step", step=i):
                pass
        assert [ev.step for ev in t.events()] == [0, 2]
        # Re-enabling without a rate keeps the current one and clears.
        t.enable()
        with t.span("step", step=0):
            pass
        assert [ev.step for ev in t.events()] == [0]

    def test_invalid_rate_rejected(self):
        with pytest.raises(ValueError, match="sample_every"):
            Tracer(sample_every=0)
        with pytest.raises(ValueError, match="sample_every"):
            Tracer().enable(sample_every=-2)

    def test_suppressed_span_is_exception_transparent(self):
        t = Tracer(sample_every=2)
        t.enable()
        with t.span("step", step=0):
            pass
        # Step 1 is suppressed; an exception inside it must propagate and
        # leave the sampling state consistent.
        with pytest.raises(ValueError, match="boom"):
            with t.span("step", step=1):
                with t.span("child"):
                    raise ValueError("boom")
        with t.span("step", step=2):
            pass
        steps = [ev.step for ev in t.events() if ev.name == "step"]
        assert steps == [0, 2]
        assert all(ev.name != "child" for ev in t.events())
