"""Modelled per-timestep costs: internal consistency and paper shapes."""

import pytest

from repro.core.model import compute_time, exchange_breakdown, model_timestep
from repro.core.methods import method_info
from repro.stencil.spec import CUBE125, SEVEN_POINT


class TestComputeTime:
    def test_bricks_faster_than_yask_small_boxes(self, theta):
        small = (16, 16, 16)
        y = compute_time(theta, method_info("yask"), 16**3, SEVEN_POINT)
        b = compute_time(theta, method_info("layout"), 16**3, SEVEN_POINT)
        assert b < y

    def test_gpu_needs_gpu_profile(self, theta):
        with pytest.raises(ValueError):
            compute_time(theta, method_info("layout_ca"), 100, SEVEN_POINT)

    def test_gpu_roofline(self, summit):
        t = compute_time(summit, method_info("layout_ca"), 512**3, SEVEN_POINT)
        assert t >= 512**3 * 16 / summit.gpu.hbm_bw


class TestExchangeBreakdown:
    def test_pack_only_for_packing_methods(self, theta):
        ext = (64, 64, 64)
        for method, packs in [
            ("yask", True), ("mpi_types", False), ("layout", False),
            ("memmap", False), ("basic", False), ("shift", True),
        ]:
            bd = exchange_breakdown(theta, method, ext)
            assert (bd.pack > 0) == packs, method

    def test_mpi_types_wait_dominates(self, theta):
        """The datatype engine makes MPI_Types orders of magnitude worse
        than the pack-free schemes (paper: up to 460x vs MemMap)."""
        ext = (16, 16, 16)
        t = exchange_breakdown(theta, "mpi_types", ext).comm
        m = exchange_breakdown(theta, "memmap", ext).comm
        assert t / m > 50

    def test_network_is_floor(self, theta):
        """No scheme beats the raw network time (Fig. 9's Network line)."""
        ext = (64, 64, 64)
        floor = exchange_breakdown(theta, "network", ext).comm
        for method in ("yask", "mpi_types", "layout", "memmap", "basic"):
            assert exchange_breakdown(theta, method, ext).comm >= floor * 0.999

    def test_memmap_close_to_network_on_theta(self, theta):
        """MemMap 'essentially eliminates on-node data movement with no
        discernible added cost' (K1 discussion): within ~2x of Network."""
        for n in (64, 32, 16):
            ext = (n, n, n)
            floor = exchange_breakdown(theta, "network", ext).comm
            mm = exchange_breakdown(theta, "memmap", ext).comm
            assert mm <= 2.0 * floor

    def test_layout_slightly_above_memmap_small_boxes(self, theta):
        """42 messages vs 26: Layout pays more per-message overhead."""
        ext = (16, 16, 16)
        lay = exchange_breakdown(theta, "layout", ext).comm
        mm = exchange_breakdown(theta, "memmap", ext).comm
        assert lay >= mm

    def test_basic_worse_than_layout(self, theta):
        ext = (16, 16, 16)
        assert (
            exchange_breakdown(theta, "basic", ext).comm
            > exchange_breakdown(theta, "layout", ext).comm
        )

    def test_memmap_padding_hurts_on_large_pages(self, theta):
        ext = (32, 32, 32)
        p4k = exchange_breakdown(theta, "memmap", ext, page_size=4096).comm
        p64k = exchange_breakdown(theta, "memmap", ext, page_size=65536).comm
        assert p64k > p4k

    def test_gpu_staged_charges_move(self, summit):
        bd = exchange_breakdown(summit, "layout_staged", (64, 64, 64))
        assert bd.move > 0

    def test_gpu_ca_no_move(self, summit):
        bd = exchange_breakdown(summit, "layout_ca", (64, 64, 64))
        assert bd.move == 0.0


class TestModelTimestep:
    def test_overlap_hides_wait(self, theta):
        """YASK-OL reduces visible wait but keeps pack (Fig. 8: little
        difference for small subdomains where packing dominates)."""
        big = (128, 128, 128)
        plain = model_timestep(theta, "yask", big, SEVEN_POINT)
        ol = model_timestep(theta, "yask_ol", big, SEVEN_POINT)
        assert ol.wait <= plain.wait
        assert ol.pack == plain.pack
        assert ol.total <= plain.total

    def test_calc_independent_of_cpu_exchange_method(self, theta):
        ext = (64, 64, 64)
        calcs = {
            model_timestep(theta, m, ext, SEVEN_POINT).calc
            for m in ("layout", "memmap", "basic", "network")
        }
        assert len(calcs) == 1

    def test_125pt_more_compute(self, theta):
        # Large enough that the roofline, not launch overhead, dominates:
        # 125-pt is compute-bound (AI 8.7) vs the bandwidth-bound 7-pt.
        # The roofline bound: c125/c7 -> AI_125 / machine-balance ~ 1.8x
        # on KNL (139 flops vs the 16-byte bandwidth term of the 7-pt).
        ext = (256, 256, 256)
        c7 = model_timestep(theta, "memmap", ext, SEVEN_POINT).calc
        c125 = model_timestep(theta, "memmap", ext, CUBE125).calc
        assert 1.5 * c7 < c125 < 3 * c7

    def test_um_compute_penalty(self, summit):
        """Figure 15: Layout_UM computes slower than Layout_CA because
        received unaligned regions fault onto the GPU."""
        ext = (64, 64, 64)
        ca = model_timestep(summit, "layout_ca", ext, SEVEN_POINT).calc
        um = model_timestep(summit, "layout_um", ext, SEVEN_POINT).calc
        assert um > ca

    def test_memmap_um_computes_faster_than_layout_um(self, summit):
        """Figure 15: page-aligned MemMap_UM regions fault cleanly."""
        ext = (64, 64, 64)
        mm = model_timestep(summit, "memmap_um", ext, SEVEN_POINT).calc
        lay = model_timestep(summit, "layout_um", ext, SEVEN_POINT).calc
        assert mm < lay

    def test_communication_dominates_small_subdomains(self, theta):
        """Figure 1's motivation: comm time exceeds compute well before
        the smallest subdomain."""
        bd = model_timestep(theta, "yask", (32, 32, 32), SEVEN_POINT)
        assert bd.comm > bd.calc
